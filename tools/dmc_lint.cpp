// dmc_lint: the repo's determinism & concurrency static-analysis pass
// (lexer-level, no compiler front-end — see src/lint/lint.h for the rule
// catalog and README "Correctness tooling" for the contract each family
// enforces). Scans src/ tools/ tests/ bench/ by default, prints
// file:line: [rule] diagnostics, and exits non-zero on any finding so CI
// can require a clean tree.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "util/parse.h"

namespace {

using namespace dmc;

constexpr const char* kUsage = R"(usage: dmc_lint [options] [FILE...]

Scans the given files, or with no FILE arguments every *.h / *.cpp under
src/ tools/ tests/ bench/ of --root (tests/lint_fixtures/ excluded: that
corpus exists to violate the rules).

options
  --root DIR      repository root for the default scan + README lookup
                  (default: .)
  --json PATH     write the dmc.lint.v1 report (- = stdout)
  --list-rules    print the rule catalog and exit
  --max-ms N      fail (exit 3) when the scan takes longer than N ms —
                  CI pins the full-repo scan under its latency budget
  --quiet         suppress the per-finding text output
exit status: 0 clean, 1 findings, 2 usage/io error, 3 over --max-ms
)";

struct CliOptions {
  std::string root = ".";
  std::string json_path;
  std::vector<std::string> files;
  double max_ms = 0;  // 0 = unlimited
  bool quiet = false;
  bool list_rules = false;
};

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + ": missing value");
      }
      return argv[++i];
    };
    if (arg == "--root") {
      options.root = value();
    } else if (arg == "--json") {
      options.json_path = value();
    } else if (arg == "--max-ms") {
      options.max_ms = util::parse_positive<double>(arg, value());
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--list-rules") {
      options.list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::invalid_argument("unknown option '" + arg + "'");
    } else {
      options.files.push_back(arg);
    }
  }
  return options;
}

void write_output(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text << "\n";
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << text << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  try {
    options = parse_cli(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "dmc_lint: " << error.what() << "\n\n" << kUsage;
    return 2;
  }
  if (options.list_rules) {
    for (const auto& [id, description] : lint::rule_catalog()) {
      std::cout << id << "\t" << description << "\n";
    }
    return 0;
  }
  try {
    // Wallclock is CLI telemetry only (elapsed_ms in the report footer);
    // findings are a pure function of the scanned bytes.
    // dmc-lint: allow(det-wallclock)
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::string> paths = options.files;
    if (paths.empty()) paths = lint::default_targets(options.root);
    if (paths.empty()) throw std::runtime_error("nothing to scan");

    std::vector<lint::FileInput> inputs;
    inputs.reserve(paths.size());
    for (const std::string& path : paths) {
      const bool relative = !path.empty() && path[0] != '/';
      const std::string full =
          relative ? options.root + "/" + path : path;
      inputs.push_back({path, lint::read_file(full)});
    }
    lint::Options lint_options;
    try {
      lint_options.readme_text = lint::read_file(options.root + "/README.md");
    } catch (const std::exception&) {
      // No README: every schema string becomes an export-schema-doc finding,
      // which is the honest outcome.
    }
    const lint::Report report = lint::run(inputs, lint_options);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            // dmc-lint: allow(det-wallclock)
            std::chrono::steady_clock::now() - start)
            .count();

    if (!options.quiet) {
      for (const lint::Finding& finding : report.findings) {
        std::cerr << finding.path << ":" << finding.line << ": ["
                  << finding.rule << "] " << finding.message << "\n";
      }
      std::cerr << "dmc_lint: " << report.findings.size() << " finding(s), "
                << report.suppressed << " suppressed, "
                << report.files_scanned << " files, " << elapsed_ms
                << " ms\n";
    }
    if (!options.json_path.empty()) {
      write_output(options.json_path, lint::to_json(report, elapsed_ms));
    }
    if (options.max_ms > 0 && elapsed_ms > options.max_ms) {
      std::cerr << "dmc_lint: scan took " << elapsed_ms
                << " ms, over the --max-ms " << options.max_ms
                << " budget\n";
      return 3;
    }
    return report.findings.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "dmc_lint: " << error.what() << "\n";
    return 2;
  }
}
