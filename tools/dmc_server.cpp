// dmc_server: drive the online session server (server/server.h) over one
// workload of staggered arrivals — admission control, contention-aware
// planning, and departure-triggered re-planning over the shared Table III
// network. Prints per-session fates and aggregate curves; exports the same
// schema-versioned JSON/CSV as dmc_fleet (one aggregate record per policy).
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/units.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"
#include "fleet/job.h"
#include "fleet/results.h"
#include "obs/export.h"
#include "server/arrivals.h"
#include "server/server.h"
#include "server/sharded_server.h"
#include "util/format.h"
#include "util/parse.h"

namespace {

using namespace dmc;

constexpr const char* kUsage = R"(usage: dmc_server [options]

Runs an online-admission workload against the shared Table III network,
once per policy, over the identical arrival sequence.

options
  --policies L      comma-separated admission policies
                    (default always-admit,feasibility-lp,threshold)
  --count N         number of arrivals (default 200)
  --arrival-rate X  Poisson arrivals per second (default 20)
  --rate-mbps X     mean per-session data rate (default 20)
  --lifetime-ms X   mean per-session deadline (default 800)
  --messages N      mean messages per session (default 400)
  --min-quality X   feasibility-lp admission bar (default 0.9)
  --patience-s X    queued-request patience (default 2)
  --no-replan       disable re-planning on departure events
  --no-warm-start   solve every admission/re-plan LP cold (default: warm
                    re-solves from the previous optimal basis)
  --seed N          workload + network seed (default 42)
  --shards N        run the sharded server with N worker threads (N >= 1);
                    omit the flag for the classic single-loop server. Output
                    is bit-identical at any N — workers only execute the
                    fixed --shard-slices partition
  --shard-slices S  logical shard count of the sharded partition (default 16;
                    changing S changes the partition and thus the results)
  --reconcile-s X   simulated seconds between shard load-reconciliation
                    barriers (default 0.25)
  --arrivals T      comma-separated arrival instants instead of Poisson
  --json PATH       write the JSON result set (- = stdout)
  --csv PATH        write the CSV result set (- = stdout)
  --trace PATH      write a Chrome trace-event JSON file (load in Perfetto);
                    with several policies, the policy name is inserted
                    before the extension
  --metrics PATH    write Prometheus text exposition (same policy-name rule)
  --forensics PATH  run the deadline-miss analyzer over the trace ring and
                    write the dmc.obs.analysis.v1 report (- = stdout; same
                    policy-name rule); adds the per-cause "forensics" block
                    to the result records
  --slo X           forensics SLO target miss rate (default 0.01)
  --window X        forensics time-series window in seconds (default 1)
  --trace-capacity N  trace ring capacity in events (default 1048576)
  --sessions        also print the per-session fate table
  --quiet           suppress the text tables
)";

struct CliOptions {
  std::string policies = "always-admit,feasibility-lp,threshold";
  int count = 200;
  double arrival_rate = 20.0;
  double rate_mbps = 20.0;
  double lifetime_ms = 800.0;
  std::uint64_t messages = 400;
  double min_quality = 0.9;
  double patience_s = 2.0;
  bool replan = true;
  bool warm_start = true;
  std::uint64_t seed = 42;
  std::size_t shards = 0;  // 0 = classic single-loop server
  std::size_t shard_slices = 16;
  double reconcile_s = 0.25;
  std::string arrivals;
  std::string json_path;
  std::string csv_path;
  std::string trace_path;
  std::string metrics_path;
  std::string forensics_path;
  double slo = 0.01;
  double window_s = 1.0;
  std::size_t trace_capacity = std::size_t{1} << 20;
  bool per_session = false;
  bool quiet = false;
};

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + ": missing value");
      }
      return argv[++i];
    };
    if (arg == "--policies") {
      options.policies = value();
    } else if (arg == "--count") {
      options.count = util::parse_positive<int>(arg, value());
    } else if (arg == "--arrival-rate") {
      options.arrival_rate = util::parse_positive<double>(arg, value());
    } else if (arg == "--rate-mbps") {
      options.rate_mbps = util::parse_positive<double>(arg, value());
    } else if (arg == "--lifetime-ms") {
      options.lifetime_ms = util::parse_positive<double>(arg, value());
    } else if (arg == "--messages") {
      options.messages = util::parse_positive<std::uint64_t>(arg, value());
    } else if (arg == "--min-quality") {
      options.min_quality = util::parse_number<double>(arg, value());
    } else if (arg == "--patience-s") {
      options.patience_s = util::parse_number<double>(arg, value());
    } else if (arg == "--no-replan") {
      options.replan = false;
    } else if (arg == "--no-warm-start") {
      options.warm_start = false;
    } else if (arg == "--seed") {
      options.seed = util::parse_number<std::uint64_t>(arg, value());
    } else if (arg == "--shards") {
      options.shards = util::parse_positive<std::size_t>(arg, value());
    } else if (arg == "--shard-slices") {
      options.shard_slices = util::parse_positive<std::size_t>(arg, value());
    } else if (arg == "--reconcile-s") {
      options.reconcile_s = util::parse_positive<double>(arg, value());
    } else if (arg == "--arrivals") {
      options.arrivals = value();
    } else if (arg == "--json") {
      options.json_path = value();
    } else if (arg == "--csv") {
      options.csv_path = value();
    } else if (arg == "--trace") {
      options.trace_path = value();
    } else if (arg == "--metrics") {
      options.metrics_path = value();
    } else if (arg == "--forensics") {
      options.forensics_path = value();
    } else if (arg == "--slo") {
      options.slo = util::parse_positive<double>(arg, value());
    } else if (arg == "--window") {
      options.window_s = util::parse_positive<double>(arg, value());
    } else if (arg == "--trace-capacity") {
      options.trace_capacity =
          util::parse_positive<std::size_t>(arg, value());
    } else if (arg == "--sessions") {
      options.per_session = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  return options;
}

std::vector<server::SessionRequest> build_workload(
    const CliOptions& options) {
  server::WorkloadOptions workload;
  workload.count = options.count;
  workload.arrivals_per_s = options.arrival_rate;
  workload.mean_rate_bps = mbps(options.rate_mbps);
  workload.mean_lifetime_s = ms(options.lifetime_ms);
  workload.mean_messages = static_cast<double>(options.messages);
  workload.seed = options.seed;
  if (options.arrivals.empty()) return server::poisson_arrivals(workload);
  std::vector<double> times;
  for (const std::string& item :
       util::split_list("--arrivals", options.arrivals)) {
    times.push_back(util::parse_number<double>("--arrivals", item));
  }
  return server::trace_arrivals(times, workload);
}

exp::Table session_table(const server::ServerOutcome& outcome) {
  exp::Table table({"req", "arrival (s)", "fate", "wait (ms)", "predicted Q",
                    "measured Q", "replans"});
  for (const server::SessionRecord& record : outcome.sessions) {
    const bool ran = record.fate == server::RequestFate::admitted ||
                     record.fate == server::RequestFate::queued_admitted;
    table.add_row({util::to_decimal(record.request_id),
                   exp::Table::num(record.arrival_s, 3),
                   server::to_string(record.fate),
                   exp::Table::num(to_ms(record.queue_wait_s), 1),
                   ran ? exp::Table::percent(record.predicted_quality)
                       : std::string("-"),
                   ran ? exp::Table::percent(record.measured_quality)
                       : std::string("-"),
                   util::to_decimal(record.replans)});
  }
  return table;
}

void write_to(const std::string& path, const fleet::ResultSet& results,
              bool csv) {
  if (path == "-") {
    csv ? results.write_csv(std::cout) : results.write_json(std::cout);
    return;
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  csv ? results.write_csv(out) : results.write_json(out);
}

// "out.json" + "threshold" -> "out.threshold.json" so several policies do
// not clobber each other's trace/metrics files.
std::string with_policy(const std::string& path, const std::string& policy,
                        bool multi_policy) {
  if (!multi_policy) return path;
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + "." + policy;
  }
  return path.substr(0, dot) + "." + policy + path.substr(dot);
}

template <typename Writer>
void export_obs(const std::string& path, Writer&& writer) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  writer(out);
}

int run(const CliOptions& options) {
  const std::vector<server::SessionRequest> requests =
      build_workload(options);
  const std::vector<std::string> policies =
      util::split_list("--policies", options.policies);
  const bool multi_policy = policies.size() > 1;

  fleet::ResultSet results;
  exp::Table summary({"policy", "admitted", "rejected", "expired",
                      "admission rate", "deadline miss", "goodput (Mbps)",
                      "orphans", "replans", "lp warm/cold"});
  std::size_t failures = 0;
  for (const std::string& policy : policies) {
    server::ServerConfig config;
    config.planning_paths = exp::table3_model_paths();
    config.true_paths = exp::table3_paths();
    config.policy = policy;
    config.min_quality = options.min_quality;
    config.max_queue_wait_s = options.patience_s;
    config.replan_on_departure = options.replan;
    config.warm_start = options.warm_start;
    config.seed = options.seed;
    config.collect_metrics = true;  // feeds the footer + "obs" JSON block
    config.collect_trace = !options.trace_path.empty();
    config.collect_forensics = !options.forensics_path.empty();
    config.forensics.slo_miss_rate = options.slo;
    config.forensics.window_s = options.window_s;
    config.trace_capacity = options.trace_capacity;
    const bool sharded = options.shards > 0;
    if (sharded) {
      config.shards = options.shards;
      config.shard_slices = options.shard_slices;
      config.reconcile_interval_s = options.reconcile_s;
    }

    // dmc-lint: allow(det-wallclock) run-footer telemetry only
    const auto wall_start = std::chrono::steady_clock::now();
    const server::ServerOutcome outcome =
        sharded ? server::ShardedSessionServer(config).run(requests)
                : server::SessionServer(config).run(requests);
    const double wall_s =
        // dmc-lint: allow(det-wallclock) run-footer telemetry only
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (!outcome.conserved) {
      std::cerr << "dmc_server: link packet conservation violated under "
                << policy << "\n";
      ++failures;
    }

    const std::uint64_t trace_dropped =
        outcome.trace_data != nullptr ? outcome.trace_data->dropped
        : outcome.trace_events != nullptr ? outcome.trace_events->dropped()
                                          : 0;
    if (trace_dropped > 0) {
      std::cerr << "dmc_server: trace ring wrapped under " << policy << ": "
                << trace_dropped
                << " events overwritten; raise --trace-capacity (currently "
                << options.trace_capacity << ") to keep full history\n";
    }
    if (!options.trace_path.empty() &&
        (outcome.trace_data != nullptr || outcome.trace_events != nullptr)) {
      export_obs(with_policy(options.trace_path, policy, multi_policy),
                 [&](std::ostream& out) {
                   if (outcome.trace_data != nullptr) {
                     obs::write_chrome_trace(out, *outcome.trace_data);
                   } else {
                     obs::write_chrome_trace(out, *outcome.trace_events);
                   }
                 });
    }
    if (!options.forensics_path.empty() && outcome.forensics.has_value()) {
      const std::string report = outcome.forensics->to_json();
      if (options.forensics_path == "-") {
        std::cout << report << "\n";
      } else {
        export_obs(with_policy(options.forensics_path, policy, multi_policy),
                   [&](std::ostream& out) { out << report << "\n"; });
      }
    }
    if (!options.metrics_path.empty() &&
        (outcome.metrics != nullptr || !outcome.obs.empty())) {
      export_obs(with_policy(options.metrics_path, policy, multi_policy),
                 [&](std::ostream& out) {
                   if (outcome.metrics != nullptr) {
                     obs::write_prometheus(out, *outcome.metrics);
                   } else {
                     // Sharded runs carry no live registry; export the
                     // merged deterministic snapshot instead.
                     obs::write_prometheus(out, outcome.obs);
                   }
                 });
    }

    summary.add_row(
        {policy, util::to_decimal(outcome.admitted),
         util::to_decimal(outcome.rejected), util::to_decimal(outcome.expired),
         exp::Table::percent(outcome.admission_rate),
         exp::Table::percent(outcome.deadline_miss_rate),
         exp::Table::num(to_mbps(outcome.goodput_bps), 1),
         util::to_decimal(outcome.orphans.total()),
         util::to_decimal(outcome.replans),
         util::to_decimal(outcome.lp.warm_solves) + "/" +
             util::to_decimal(outcome.lp.cold_solves)});
    if (!options.quiet && options.per_session) {
      exp::banner("per-session fates: " + policy);
      session_table(outcome).print();
      std::cout << "\n";
    }
    if (!options.quiet) {
      if (outcome.metrics != nullptr) {
        std::cout << policy << " ";
        obs::print_run_footer(std::cout, *outcome.metrics);
      } else if (!outcome.obs.empty()) {
        std::cout << policy << " ";
        obs::print_run_footer(std::cout, outcome.obs, wall_s);
      }
    }
    results.records.push_back(
        fleet::server_record("server",
                             {{"arrivals_per_s", options.arrival_rate},
                              {"rate_mbps", options.rate_mbps},
                              {"lifetime_ms", options.lifetime_ms}},
                             config, outcome));
  }

  if (!options.quiet) {
    exp::banner("online admission: " + util::to_decimal(requests.size()) +
                " arrivals at " + exp::Table::num(options.arrival_rate, 1) +
                "/s");
    summary.print();
    std::cout << "\n";
  }
  if (!options.json_path.empty()) write_to(options.json_path, results, false);
  if (!options.csv_path.empty()) write_to(options.csv_path, results, true);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_cli(argc, argv));
  } catch (const std::invalid_argument& e) {
    std::cerr << "dmc_server: " << e.what() << "\n\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "dmc_server: " << e.what() << "\n";
    return 1;
  }
}
