// dmc_fleet: one-command reproduction of the paper's evaluation grids on
// the fleet engine, plus the multi-session contention family. Results
// export as schema-versioned JSON/CSV (fleet/results.h); output is
// bit-identical at any --threads value.
#include <chrono>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/table.h"
#include "fleet/engine.h"
#include "fleet/grids.h"
#include "fleet/job.h"
#include "fleet/results.h"
#include "obs/export.h"
#include "util/format.h"
#include "util/parse.h"

namespace {

using namespace dmc;

constexpr const char* kUsage = R"(usage: dmc_fleet <command> [options]

commands
  fig2-rate       Figure 2 (top): quality vs data rate, delta = 800 ms
  fig2-lifetime   Figure 2 (bottom): quality vs lifetime, lambda = 90 Mbps
  table4-rates    Table IV (top) rate grid
  contention      1..N sessions contending on the shared Table III network
  server          online admission: arrival-rate sweep per admission policy
  all             every grid above

options
  --threads N     worker threads (default: DMC_THREADS, else hardware)
  --messages N    messages per point/session (DMC_MESSAGES, else 100000)
  --seed N        base seed for the deterministic per-job streams (default 42)
  --replicates N  seed replicates per grid point (default 1)
  --sessions N    max contending sessions for `contention` (default 4)
  --rate-mbps X   per-session rate for `contention`/`server` (default 30/20)
  --policies L    comma-separated admission policies for `server`
                  (default always-admit,feasibility-lp,threshold)
  --count N       arrivals per `server` grid cell (default 200)
  --session-messages N
                  mean session size for `server` (default 400)
  --warm-start M  on|off: warm-started LP re-solves in every `server` cell
                  (default on; the lp_* result columns show the split)
  --shards L      comma-separated shard axis for `server` cells: 0 = the
                  classic single-loop server, N > 0 = the sharded server
                  with N logical slices (default 0)
  --obs           collect per-cell metrics in `server` grids (adds the
                  deterministic dmc.obs.v1 "obs" block to each record)
  --forensics     run deadline-miss forensics per `server` cell (adds the
                  per-cause "forensics" block and cause_* CSV columns)
  --json PATH     write the JSON result set (- = stdout)
  --csv PATH      write the CSV result set (- = stdout)
  --quiet         suppress the text tables
)";

struct CliOptions {
  std::string command;
  unsigned threads = 0;
  std::uint64_t messages = 0;  // 0 = DMC_MESSAGES / 100000
  std::uint64_t seed = 42;
  int replicates = 1;
  int sessions = 4;
  double rate_mbps = 0.0;  // 0 = per-command default (30 contention, 20 server)
  std::string policies = "always-admit,feasibility-lp,threshold";
  int count = 200;
  std::uint64_t session_messages = 400;
  bool warm_start = true;
  bool obs = false;
  bool forensics = false;
  std::string shards;
  std::string json_path;
  std::string csv_path;
  bool quiet = false;
};

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  if (argc < 2) throw std::invalid_argument("missing command");
  options.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + ": missing value");
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      // 0 is allowed and means "auto" (DMC_THREADS / hardware).
      options.threads = util::parse_number<unsigned>(arg, value());
    } else if (arg == "--messages") {
      options.messages = util::parse_positive<std::uint64_t>(arg, value());
    } else if (arg == "--seed") {
      options.seed = util::parse_number<std::uint64_t>(arg, value());
    } else if (arg == "--replicates") {
      options.replicates = util::parse_positive<int>(arg, value());
    } else if (arg == "--sessions") {
      options.sessions = util::parse_positive<int>(arg, value());
    } else if (arg == "--rate-mbps") {
      options.rate_mbps = util::parse_positive<double>(arg, value());
    } else if (arg == "--policies") {
      options.policies = value();
    } else if (arg == "--count") {
      options.count = util::parse_positive<int>(arg, value());
    } else if (arg == "--session-messages") {
      options.session_messages =
          util::parse_positive<std::uint64_t>(arg, value());
    } else if (arg == "--warm-start") {
      const std::string mode = value();
      if (mode == "on") {
        options.warm_start = true;
      } else if (mode == "off") {
        options.warm_start = false;
      } else {
        throw std::invalid_argument("--warm-start: expected on or off");
      }
    } else if (arg == "--shards") {
      options.shards = value();
    } else if (arg == "--obs") {
      options.obs = true;
    } else if (arg == "--forensics") {
      options.forensics = true;
    } else if (arg == "--json") {
      options.json_path = value();
    } else if (arg == "--csv") {
      options.csv_path = value();
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  return options;
}

exp::Table contention_table(const std::vector<fleet::RunRecord>& records) {
  exp::Table table({"sessions", "session", "quality (sim)",
                    "quality (isolated theory)", "retransmissions",
                    "queue drops (shared)"});
  for (const fleet::RunRecord& record : records) {
    if (!record.ok) {
      table.add_row({exp::Table::num(record.sessions, 0), "-",
                     "error: " + record.error, "-", "-", "-"});
      continue;
    }
    std::uint64_t queue_drops = 0;
    for (const fleet::LinkRecord& link : record.links) {
      queue_drops += link.queue_drops;
    }
    table.add_row({exp::Table::num(record.sessions, 0),
                   exp::Table::num(record.session_index, 0),
                   exp::Table::percent(record.measured_quality),
                   exp::Table::percent(record.theory_quality),
                   util::to_decimal(record.trace.retransmissions),
                   util::to_decimal(queue_drops)});
  }
  return table;
}

exp::Table server_table(const std::vector<fleet::RunRecord>& records) {
  exp::Table table({"arrivals/s", "policy", "admitted", "admission rate",
                    "deadline miss", "goodput (Mbps)", "queue wait (ms)",
                    "replans"});
  for (const fleet::RunRecord& record : records) {
    const double x = record.params.empty() ? 0.0 : record.params[0].value;
    if (!record.ok) {
      table.add_row({exp::Table::num(x, 0), record.policy,
                     "error: " + record.error, "-", "-", "-", "-", "-"});
      continue;
    }
    table.add_row(
        {exp::Table::num(x, 0), record.policy,
         util::to_decimal(record.admitted) + "/" +
             util::to_decimal(record.arrivals),
         exp::Table::percent(record.admission_rate),
         exp::Table::percent(record.deadline_miss_rate),
         exp::Table::num(to_mbps(record.goodput_bps), 1),
         exp::Table::num(to_ms(record.mean_queue_wait_s), 1),
         util::to_decimal(record.replans)});
  }
  return table;
}

exp::Table rate_table(const std::vector<fleet::RunRecord>& records) {
  exp::Table table({"lambda (Mbps)", "our Q (theory)", "measured Q"});
  for (const fleet::RunRecord& record : records) {
    const double x = record.params.empty() ? 0.0 : record.params[0].value;
    if (!record.ok) {
      table.add_row(
          {exp::Table::num(x, 0), "error: " + record.error, "-"});
      continue;
    }
    table.add_row({exp::Table::num(x, 0),
                   exp::Table::percent(record.theory_quality),
                   exp::Table::percent(record.measured_quality)});
  }
  return table;
}

void write_to(const std::string& path, const fleet::ResultSet& results,
              bool csv) {
  if (path == "-") {
    csv ? results.write_csv(std::cout) : results.write_json(std::cout);
    return;
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  csv ? results.write_csv(out) : results.write_json(out);
}

int run(const CliOptions& options) {
  // dmc-lint: allow(det-wallclock) run-footer telemetry only
  const std::chrono::steady_clock::time_point wall_start =
      // dmc-lint: allow(det-wallclock) run-footer telemetry only
      std::chrono::steady_clock::now();
  fleet::GridOptions grid;
  grid.messages =
      options.messages > 0 ? options.messages : exp::default_messages(100000);
  grid.base_seed = options.seed;
  grid.replicates = options.replicates;

  fleet::Engine engine({options.threads});
  fleet::ResultSet results;

  struct GridRun {
    std::string title;
    std::vector<fleet::JobSpec> jobs;
    enum { kFig2, kRates, kContention, kServer } table;
    std::string x_header;
  };
  std::vector<GridRun> runs;
  const bool all = options.command == "all";
  if (all || options.command == "fig2-rate") {
    runs.push_back({"Figure 2 (top): quality vs data rate (delta = 800 ms)",
                    fleet::fig2_rate_grid(grid), GridRun::kFig2,
                    "lambda (Mbps)"});
  }
  if (all || options.command == "fig2-lifetime") {
    runs.push_back({"Figure 2 (bottom): quality vs lifetime (lambda = 90 Mbps)",
                    fleet::fig2_lifetime_grid(grid), GridRun::kFig2,
                    "delta (ms)"});
  }
  if (all || options.command == "table4-rates") {
    runs.push_back({"Table IV (top): quality vs data rate",
                    fleet::table4_rate_grid(grid), GridRun::kRates, ""});
  }
  if (all || options.command == "contention") {
    const double rate =
        options.rate_mbps > 0.0 ? options.rate_mbps : 30.0;
    runs.push_back(
        {"Cross-traffic: sessions contending on the shared Table III network",
         fleet::contention_grid(options.sessions, mbps(rate), grid),
         GridRun::kContention, ""});
  }
  if (all || options.command == "server") {
    fleet::ServerAxes axes;
    axes.policies = util::split_list("--policies", options.policies);
    axes.count = options.count;
    axes.mean_messages = static_cast<double>(options.session_messages);
    axes.warm_start = options.warm_start;
    axes.collect_metrics = options.obs;
    axes.collect_forensics = options.forensics;
    if (!options.shards.empty()) {
      axes.shards.clear();
      for (const std::string& item :
           util::split_list("--shards", options.shards)) {
        // 0 is allowed and selects the classic single-loop server.
        axes.shards.push_back(util::parse_number<unsigned>("--shards", item));
      }
    }
    if (options.rate_mbps > 0.0) axes.rate_mbps = {options.rate_mbps};
    runs.push_back(
        {"Online admission: arrival-rate sweep on the Table III network",
         fleet::server_grid(axes, grid), GridRun::kServer, ""});
  }
  if (runs.empty()) {
    throw std::invalid_argument("unknown command '" + options.command + "'");
  }

  std::size_t failures = 0;
  for (GridRun& grid_run : runs) {
    auto records = fleet::run_jobs(engine, grid_run.jobs);
    if (!options.quiet) {
      exp::banner(grid_run.title);
      std::cout << "jobs: " << grid_run.jobs.size()
                << "  threads: " << engine.threads()
                << "  messages/point: " << grid.messages << "\n\n";
      switch (grid_run.table) {
        case GridRun::kFig2:
          fleet::fig2_table(records, grid_run.x_header).print();
          break;
        case GridRun::kRates:
          rate_table(records).print();
          break;
        case GridRun::kContention:
          contention_table(records).print();
          break;
        case GridRun::kServer:
          server_table(records).print();
          break;
      }
      std::cout << "\n";
    }
    for (const fleet::RunRecord& record : records) {
      if (!record.ok) {
        ++failures;
        std::cerr << "dmc_fleet: " << record.scenario
                  << " job failed: " << record.error << "\n";
      }
    }
    results.records.insert(results.records.end(),
                           std::make_move_iterator(records.begin()),
                           std::make_move_iterator(records.end()));
  }

  if (!options.json_path.empty()) write_to(options.json_path, results, false);
  if (!options.csv_path.empty()) write_to(options.csv_path, results, true);

  if (!options.quiet) {
    // Sweep-level footer from the same registry/exporter path the server
    // uses: simulated seconds and events summed over every record.
    obs::MetricRegistry registry;
    double sim_s = 0.0;
    std::uint64_t events = 0;
    for (const fleet::RunRecord& record : results.records) {
      sim_s += record.elapsed_s;
      events += record.events;
    }
    registry.gauge(obs::kRunSimSeconds, "Simulated seconds, summed").set(sim_s);
    registry.counter(obs::kRunEventsTotal, "Events executed").set(events);
    registry.gauge(obs::kRunWallSeconds, "Wall-clock seconds", true)
        // dmc-lint: allow(det-wallclock) feeds a wallclock-flagged gauge
        .set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall_start)
                 .count());
    obs::print_run_footer(std::cout, registry);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_cli(argc, argv));
  } catch (const std::invalid_argument& e) {
    std::cerr << "dmc_fleet: " << e.what() << "\n\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "dmc_fleet: " << e.what() << "\n";
    return 1;
  }
}
