// dmc_trace: offline deadline-miss forensics over an exported Chrome
// trace-event file (dmc_server --trace / write_chrome_trace). Re-imports
// the trace, reconstructs per-session message timelines, attributes every
// miss to one root cause, and prints the cause table, worst sessions, and
// windowed SLO series — or the full dmc.obs.analysis.v1 JSON report.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/table.h"
#include "obs/analysis.h"
#include "obs/export.h"
#include "util/format.h"
#include "util/parse.h"

namespace {

using namespace dmc;

constexpr const char* kUsage = R"(usage: dmc_trace [options] TRACE.json

Analyzes a Chrome trace-event file written by dmc_server --trace (or any
obs::write_chrome_trace output). TRACE.json may be - for stdin.

options
  --json PATH     write the dmc.obs.analysis.v1 report (- = stdout)
  --window X      time-series window in seconds (default 1; doubles until
                  the run fits in --max-windows buckets)
  --max-windows N cap on time-series buckets (default 4096)
  --slo X         SLO target miss rate for burn scoring (default 0.01)
  --session N     print the per-message timeline of session N and include
                  its forensics rows in the JSON report
  --quiet         suppress the text report (useful with --json)
)";

struct CliOptions {
  std::string trace_path;
  std::string json_path;
  obs::AnalysisOptions analysis;
  bool quiet = false;
};

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + ": missing value");
      }
      return argv[++i];
    };
    if (arg == "--json") {
      options.json_path = value();
    } else if (arg == "--window") {
      options.analysis.window_s = util::parse_positive<double>(arg, value());
    } else if (arg == "--max-windows") {
      options.analysis.max_windows =
          util::parse_positive<std::size_t>(arg, value());
    } else if (arg == "--slo") {
      options.analysis.slo_miss_rate =
          util::parse_positive<double>(arg, value());
    } else if (arg == "--session") {
      options.analysis.detail_session =
          util::parse_number<std::int64_t>(arg, value());
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      throw std::invalid_argument("unknown option '" + arg + "'");
    } else if (options.trace_path.empty()) {
      options.trace_path = arg;
    } else {
      throw std::invalid_argument("more than one trace file given");
    }
  }
  if (options.trace_path.empty()) {
    throw std::invalid_argument("missing trace file");
  }
  return options;
}

obs::TraceData load(const std::string& path) {
  if (path == "-") return obs::import_chrome_trace(std::cin);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return obs::import_chrome_trace(in);
}

std::string maybe_num(double value, int precision) {
  return std::isfinite(value) ? exp::Table::num(value, precision) : "-";
}

void print_report(const obs::AnalysisReport& report) {
  std::cout << "trace: " << report.events << " events, "
            << exp::Table::num(report.t_start_s, 3) << " s .. "
            << exp::Table::num(report.t_end_s, 3) << " s";
  if (report.truncated) {
    std::cout << "  [TRUNCATED: " << report.dropped
              << " events lost to ring wraparound; counts are lower bounds]";
  }
  std::cout << "\n";
  std::cout << "sessions: " << report.sessions_observed << " observed, "
            << report.admits << " admitted, " << report.rejects
            << " rejected, " << report.expires << " expired, "
            << report.replans << " replans\n";
  std::cout << "messages: " << report.messages_observed << " observed | "
            << report.on_time << " on-time, " << report.late << " late, "
            << report.gave_up << " gave-up, " << report.blackholed
            << " blackholed, " << report.unresolved << " unresolved\n";
  std::cout << "delay: p50 " << maybe_num(report.delay_p50_s * 1e3, 3)
            << " ms, p95 " << maybe_num(report.delay_p95_s * 1e3, 3)
            << " ms, p99 " << maybe_num(report.delay_p99_s * 1e3, 3)
            << " ms\n";
  std::cout << "slo: miss rate "
            << exp::Table::percent(report.overall_miss_rate, 3)
            << " vs target "
            << exp::Table::percent(report.slo_miss_rate, 3) << " (burn "
            << exp::Table::num(report.slo_burn, 2) << "x)\n\n";

  exp::banner("root causes: " + util::to_decimal(report.misses.total()) +
              " missed deadlines" +
              (report.lower_bound ? " (lower bound)" : ""));
  exp::Table causes({"cause", "misses", "share"});
  for (std::size_t c = 0; c < obs::kNumMissCauses; ++c) {
    const std::uint64_t count =
        report.misses.counts[c];
    causes.add_row(
        {obs::to_string(static_cast<obs::MissCause>(c)),
         util::to_decimal(count),
         report.misses.total() > 0
             ? exp::Table::percent(static_cast<double>(count) /
                                   static_cast<double>(report.misses.total()))
             : "-"});
  }
  causes.print();
  std::cout << "\n";

  if (!report.worst_sessions.empty()) {
    exp::banner("worst sessions");
    exp::Table worst({"session", "request", "admitted (s)", "admit Q",
                      "messages", "misses", "dominant cause"});
    for (const obs::SessionSummary& s : report.worst_sessions) {
      std::size_t dominant = 0;
      for (std::size_t c = 1; c < obs::kNumMissCauses; ++c) {
        if (s.causes.counts[c] > s.causes.counts[dominant]) dominant = c;
      }
      worst.add_row({util::to_decimal(s.session), util::to_decimal(s.request),
                     maybe_num(s.admitted_at_s, 3),
                     std::isnan(s.admit_quality)
                         ? std::string("-")
                         : exp::Table::percent(s.admit_quality, 2),
                     util::to_decimal(s.observed), util::to_decimal(s.misses),
                     obs::to_string(static_cast<obs::MissCause>(dominant))});
    }
    worst.print();
    std::cout << "\n";
  }

  if (report.detail_session >= 0) {
    exp::banner("session " + util::to_decimal(report.detail_session) +
                " timeline");
    exp::Table detail({"seq", "outcome", "cause", "first tx (s)",
                       "resolved (s)", "late by (ms)", "attempts", "losses",
                       "queue drops", "queue excess (ms)"});
    for (const obs::MessageForensics& row : report.detail) {
      detail.add_row(
          {util::to_decimal(row.seq), row.outcome,
           row.cause >= 0
               ? obs::to_string(static_cast<obs::MissCause>(row.cause))
               : "-",
           maybe_num(row.first_tx_s, 4), maybe_num(row.resolved_at_s, 4),
           exp::Table::num(row.late_by_s * 1e3, 2),
           util::to_decimal(row.attempts), util::to_decimal(row.losses),
           util::to_decimal(row.queue_drops),
           maybe_num(row.queue_excess_s * 1e3, 2)});
    }
    detail.print();
    std::cout << "\n";
  }

  if (!report.windows.empty()) {
    exp::banner("slo time-series (window " +
                exp::Table::num(report.effective_window_s, 2) + " s)");
    exp::Table series({"t0 (s)", "generated", "delivered", "late", "gave-up",
                       "blackholed", "miss rate", "burn", "p99 delay (ms)"});
    for (const obs::WindowStats& window : report.windows) {
      series.add_row({exp::Table::num(window.t0, 2),
                      util::to_decimal(window.generated),
                      util::to_decimal(window.delivered),
                      util::to_decimal(window.late),
                      util::to_decimal(window.gave_up),
                      util::to_decimal(window.blackholed),
                      exp::Table::percent(window.miss_rate),
                      exp::Table::num(window.slo_burn, 2),
                      maybe_num(window.p99_delay_s * 1e3, 3)});
    }
    series.print();
    std::cout << "\n";
  }
}

int run(const CliOptions& options) {
  const obs::TraceData data = load(options.trace_path);
  const obs::AnalysisReport report = obs::analyze(data, options.analysis);

  if (!options.quiet) print_report(report);
  if (!options.json_path.empty()) {
    if (options.json_path == "-") {
      std::cout << report.to_json() << "\n";
    } else {
      std::ofstream out(options.json_path);
      if (!out) {
        throw std::runtime_error("cannot open '" + options.json_path +
                                 "' for writing");
      }
      out << report.to_json() << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_cli(argc, argv));
  } catch (const std::invalid_argument& e) {
    std::cerr << "dmc_trace: " << e.what() << "\n\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "dmc_trace: " << e.what() << "\n";
    return 1;
  }
}
