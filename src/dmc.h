// Umbrella header for the deadline-aware multipath communication library.
//
// Layering (each header is also usable directly):
//   lp/         dense two-phase simplex solver
//   stats/      delay distributions, gamma math, convolution, RNG
//   sim/        discrete-event network simulator (links, paths, packets)
//   core/       the paper's optimization model, planner, schedulers
//   protocol/   deadline-aware sender/receiver, acks, baselines
//   estimation/ online estimators and the adaptive re-planning controller
//   experiments/ scenario library, sweep runners, table printers
#pragma once

// std::span (and other C++20 library facilities) are used throughout; an
// out-of-tree build with the compiler's default -std would otherwise die in
// 100+ unrelated-looking errors. Fail early with one clear message instead.
// MSVC reports __cplusplus as 199711L unless /Zc:__cplusplus is set, so its
// real language level is read from _MSVC_LANG.
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "dmc requires C++20: compile with /std:c++20 or newer"
#endif
#elif !defined(__cplusplus) || __cplusplus < 202002L
#error "dmc requires C++20: compile with -std=c++20 (or use the provided CMake build, which sets it)"
#endif
#if defined(__has_include)
#if !__has_include(<span>)
#error "dmc requires a standard library providing <span> (C++20)"
#endif
#endif

#include "core/combination.h"
#include "core/load_aware.h"
#include "core/model.h"
#include "core/paper_model.h"
#include "core/path.h"
#include "core/planner.h"
#include "core/risk.h"
#include "core/scheduler.h"
#include "core/timeout_optimizer.h"
#include "core/units.h"
#include "estimation/adaptive.h"
#include "estimation/estimators.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"
#include "lp/interior_point.h"
#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp/validate.h"
#include "protocol/ack.h"
#include "protocol/baselines.h"
#include "protocol/receiver.h"
#include "protocol/sender.h"
#include "protocol/session.h"
#include "protocol/trace.h"
#include "sim/link.h"
#include "sim/network.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "stats/convolution.h"
#include "stats/distributions.h"
#include "stats/gamma_math.h"
#include "stats/rng.h"
#include "stats/summary.h"
