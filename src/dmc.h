// Umbrella header for the deadline-aware multipath communication library.
//
// Layering (each header is also usable directly):
//   lp/         dense two-phase simplex solver
//   stats/      delay distributions, gamma math, convolution, RNG
//   sim/        discrete-event network simulator (links, paths, packets)
//   core/       the paper's optimization model, planner, schedulers
//   protocol/   deadline-aware sender/receiver, acks, baselines
//   estimation/ online estimators and the adaptive re-planning controller
//   experiments/ scenario library, sweep runners, table printers
#pragma once

#include "core/combination.h"
#include "core/load_aware.h"
#include "core/model.h"
#include "core/paper_model.h"
#include "core/path.h"
#include "core/planner.h"
#include "core/risk.h"
#include "core/scheduler.h"
#include "core/timeout_optimizer.h"
#include "core/units.h"
#include "estimation/adaptive.h"
#include "estimation/estimators.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"
#include "lp/interior_point.h"
#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp/validate.h"
#include "protocol/ack.h"
#include "protocol/baselines.h"
#include "protocol/receiver.h"
#include "protocol/sender.h"
#include "protocol/session.h"
#include "protocol/trace.h"
#include "sim/link.h"
#include "sim/network.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "stats/convolution.h"
#include "stats/distributions.h"
#include "stats/gamma_math.h"
#include "stats/rng.h"
#include "stats/summary.h"
