// Online estimation of path characteristics (Section VIII-A).
//
// Loss: lost / sent, starting at 0 and refined per recorded loss — exactly
// the bootstrap the paper prescribes. Delay: RTT/one-way samples feed an
// EWMA plus a sample store; a shifted-gamma can be fitted by the method of
// moments for the random-delay model. Bandwidth: the trickiest metric (the
// paper surveys capacity vs available bandwidth vs bulk-transfer capacity);
// here an AIMD probe in the PCC spirit — grow the estimate while the path
// sustains it, multiplicative-decrease on congestion inference.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "stats/distributions.h"
#include "stats/summary.h"

namespace dmc::est {

class LossEstimator {
 public:
  // Optional smoothing pseudo-counts (alpha successes / beta losses) keep
  // early estimates from slamming to extremes; the paper's "start at 0%"
  // corresponds to the default (0, 0). `memory_packets` > 0 enables
  // exponential forgetting with that effective window, so the estimate can
  // track *improving* conditions too (a pure cumulative ratio never comes
  // back down after a loss episode).
  explicit LossEstimator(double prior_sent = 0.0, double prior_lost = 0.0,
                         double memory_packets = 0.0)
      : prior_sent_(prior_sent),
        prior_lost_(prior_lost),
        decay_(memory_packets > 0.0 ? 1.0 - 1.0 / memory_packets : 1.0) {}

  void on_sent() {
    sent_ = sent_ * decay_ + 1.0;
    lost_ *= decay_;
  }
  void on_loss() { lost_ += 1.0; }

  // Reverts one previously recorded loss (spurious-timeout detection: the
  // "lost" packet's ack arrived after all). The sent count stays — the
  // transmission did resolve, just not as a loss.
  void revert_loss() { lost_ = std::max(0.0, lost_ - 1.0); }

  double sent() const { return sent_; }
  double lost() const { return lost_; }

  // Current estimate of tau; 0 while nothing was sent.
  double estimate() const {
    const double total = sent_ + prior_sent_;
    if (total <= 0.0) return 0.0;
    return std::min(1.0, (lost_ + prior_lost_) / total);
  }

 private:
  double prior_sent_;
  double prior_lost_;
  double decay_;
  double sent_ = 0.0;
  double lost_ = 0.0;
};

struct ShiftedGammaFit {
  double shift = 0.0;
  double shape = 1.0;
  double scale = 1.0;
};

// Method-of-moments fit of a shifted gamma: shift slightly below the sample
// minimum, then shape = mean^2/var and scale = var/mean of the excess.
std::optional<ShiftedGammaFit> fit_shifted_gamma(
    const std::vector<double>& samples);

class DelayEstimator {
 public:
  // ewma_alpha: weight of the newest sample (TCP's SRTT uses 1/8).
  explicit DelayEstimator(double ewma_alpha = 0.125)
      : alpha_(ewma_alpha) {}

  void add_sample(double delay_s);

  std::size_t count() const { return samples_.count(); }
  // Smoothed (EWMA) delay; 0 until the first sample.
  double smoothed() const { return smoothed_.value_or(0.0); }
  double mean() const { return samples_.mean(); }
  double stddev() { return samples_.stddev(); }
  double quantile(double p) { return samples_.quantile(p); }

  // Parametric fit for the random-delay model; nullopt with < 8 samples or
  // degenerate variance.
  std::optional<ShiftedGammaFit> gamma_fit() const {
    return fit_shifted_gamma(samples_.samples());
  }

  // Nonparametric alternative (Section VIII-A's discretized option).
  stats::DelayDistributionPtr empirical() const {
    return stats::make_empirical(samples_.samples());
  }

 private:
  double alpha_;
  std::optional<double> smoothed_;
  stats::SampleSet samples_;
};

class BandwidthEstimator {
 public:
  struct Options {
    double initial_bps = 1e6;
    double additive_increase_bps = 0.5e6;  // per update without congestion
    double multiplicative_decrease = 0.85;
    double floor_bps = 0.1e6;
  };

  BandwidthEstimator() : BandwidthEstimator(Options()) {}
  explicit BandwidthEstimator(Options options)
      : options_(options), estimate_(options.initial_bps) {}

  // Report achieved goodput over an interval and whether congestion was
  // inferred (loss burst / queue growth) during it.
  void update(double achieved_bps, bool congestion);

  double estimate() const { return estimate_; }

 private:
  Options options_;
  double estimate_;
};

// Re-solve trigger (Section VIII-B): "solve ... only when the estimations
// of network characteristics vary significantly".
class ChangeDetector {
 public:
  struct Options {
    double relative_threshold = 0.10;  // 10% movement triggers a re-solve
    double absolute_loss_threshold = 0.02;
  };

  ChangeDetector() : ChangeDetector(Options()) {}
  explicit ChangeDetector(Options options) : options_(options) {}

  struct Snapshot {
    std::vector<double> bandwidth_bps;
    std::vector<double> delay_s;
    std::vector<double> loss;
  };

  // True when `current` deviates significantly from the last committed
  // snapshot (always true before the first commit).
  bool significant_change(const Snapshot& current) const;
  void commit(Snapshot snapshot) { last_ = std::move(snapshot); }
  bool has_baseline() const { return last_.has_value(); }

 private:
  Options options_;
  std::optional<Snapshot> last_;
};

}  // namespace dmc::est
