#include "estimation/estimators.h"

#include <algorithm>
#include <cmath>

namespace dmc::est {

std::optional<ShiftedGammaFit> fit_shifted_gamma(
    const std::vector<double>& samples) {
  if (samples.size() < 8) return std::nullopt;
  double min = samples.front();
  double sum = 0.0;
  for (double v : samples) {
    min = std::min(min, v);
    sum += v;
  }
  const double n = static_cast<double>(samples.size());
  const double mean = sum / n;
  double m2 = 0.0;
  for (double v : samples) m2 += (v - mean) * (v - mean);
  const double var = m2 / n;
  if (var <= 0.0) return std::nullopt;

  // Put the shift a touch below the minimum so the excess stays positive;
  // a fraction of a standard deviation works well in practice.
  const double shift = std::max(0.0, min - 0.05 * std::sqrt(var));
  const double excess_mean = mean - shift;
  if (excess_mean <= 0.0) return std::nullopt;

  ShiftedGammaFit fit;
  fit.shift = shift;
  fit.shape = excess_mean * excess_mean / var;
  fit.scale = var / excess_mean;
  return fit;
}

void DelayEstimator::add_sample(double delay_s) {
  samples_.add(delay_s);
  if (smoothed_.has_value()) {
    smoothed_ = (1.0 - alpha_) * *smoothed_ + alpha_ * delay_s;
  } else {
    smoothed_ = delay_s;
  }
}

void BandwidthEstimator::update(double achieved_bps, bool congestion) {
  if (congestion) {
    // The path cannot sustain the current estimate; back off, but never
    // below what it demonstrably achieved.
    estimate_ = std::max({options_.floor_bps, achieved_bps,
                          estimate_ * options_.multiplicative_decrease});
  } else {
    // Sustained: probe upward from the larger of estimate and achieved.
    estimate_ = std::max(estimate_, achieved_bps) +
                options_.additive_increase_bps;
  }
}

bool ChangeDetector::significant_change(const Snapshot& current) const {
  if (!last_.has_value()) return true;
  const Snapshot& base = *last_;
  if (base.bandwidth_bps.size() != current.bandwidth_bps.size() ||
      base.delay_s.size() != current.delay_s.size() ||
      base.loss.size() != current.loss.size()) {
    return true;
  }
  const auto moved = [&](double was, double now) {
    const double denom = std::max(std::abs(was), 1e-12);
    return std::abs(now - was) / denom > options_.relative_threshold;
  };
  for (std::size_t i = 0; i < base.bandwidth_bps.size(); ++i) {
    if (moved(base.bandwidth_bps[i], current.bandwidth_bps[i])) return true;
  }
  for (std::size_t i = 0; i < base.delay_s.size(); ++i) {
    if (moved(base.delay_s[i], current.delay_s[i])) return true;
  }
  for (std::size_t i = 0; i < base.loss.size(); ++i) {
    // Loss moves on an absolute scale: 0% -> 2% matters even though the
    // relative change is infinite.
    if (std::abs(current.loss[i] - base.loss[i]) >
        options_.absolute_loss_threshold) {
      return true;
    }
  }
  return false;
}

}  // namespace dmc::est
