#include "estimation/adaptive.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/planner.h"
#include "core/scheduler.h"
#include "protocol/receiver.h"
#include "protocol/sender.h"
#include "sim/simulator.h"

namespace dmc::est {

namespace {

// Per-path estimator bundle plus the RTT-to-one-way conversion.
class PathEstimators {
 public:
  PathEstimators(std::size_t num_paths, int ack_path,
                 const core::PathSet& initial,
                 const BandwidthEstimator::Options& bw_options,
                 double loss_memory_packets)
      : ack_path_(ack_path) {
    for (std::size_t i = 0; i < num_paths; ++i) {
      loss_.emplace_back(0.0, 0.0, loss_memory_packets);
      rtt_.emplace_back();
      BandwidthEstimator::Options opt = bw_options;
      opt.initial_bps = initial[i].bandwidth_bps;
      bandwidth_.emplace_back(opt);
      initial_delay_.push_back(initial[i].mean_delay_s());
    }
  }

  void on_rtt(int path, double rtt) {
    rtt_[static_cast<std::size_t>(path)].add_sample(rtt);
  }
  void on_loss(int path) {
    loss_[static_cast<std::size_t>(path)].on_loss();
    loss_[static_cast<std::size_t>(path)].on_sent();
    ++interval_loss_[static_cast<std::size_t>(path)];
    ++interval_resolved_[static_cast<std::size_t>(path)];
  }
  void on_spurious(int path) {
    loss_[static_cast<std::size_t>(path)].revert_loss();
    if (interval_loss_[static_cast<std::size_t>(path)] > 0) {
      --interval_loss_[static_cast<std::size_t>(path)];
    }
  }
  void on_ack(int path) {
    loss_[static_cast<std::size_t>(path)].on_sent();
    ++interval_resolved_[static_cast<std::size_t>(path)];
  }

  // One-way delay estimate: the ack path sees rtt = d_a (data) + d_a (ack),
  // every other path sees rtt = d_i + d_a.
  double one_way_delay(std::size_t i) const {
    const auto a = static_cast<std::size_t>(ack_path_);
    if (rtt_[a].count() == 0) return initial_delay_[i];
    const double d_ack = rtt_[a].smoothed() / 2.0;
    if (i == a) return d_ack;
    if (rtt_[i].count() == 0) return initial_delay_[i];
    return std::max(1e-6, rtt_[i].smoothed() - d_ack);
  }

  double loss_estimate(std::size_t i) const { return loss_[i].estimate(); }
  double bandwidth_estimate(std::size_t i) const {
    return bandwidth_[i].estimate();
  }

  // Periodic bandwidth update from the interval's resolved transmissions.
  void update_bandwidth(double interval_s, double message_bits) {
    for (std::size_t i = 0; i < bandwidth_.size(); ++i) {
      const double achieved =
          static_cast<double>(interval_resolved_[i]) * message_bits /
          interval_s;
      const double interval_loss_rate =
          interval_resolved_[i] > 0
              ? static_cast<double>(interval_loss_[i]) /
                    static_cast<double>(interval_resolved_[i])
              : 0.0;
      const double long_run = loss_estimate(i);
      const bool congestion =
          interval_loss_rate > std::max(2.0 * long_run, long_run + 0.05);
      bandwidth_[i].update(achieved, congestion);
      interval_loss_[i] = 0;
      interval_resolved_[i] = 0;
    }
  }

  void start_intervals(std::size_t n) {
    interval_loss_.assign(n, 0);
    interval_resolved_.assign(n, 0);
  }

 private:
  int ack_path_;
  std::vector<LossEstimator> loss_;
  std::vector<DelayEstimator> rtt_;
  std::vector<BandwidthEstimator> bandwidth_;
  std::vector<double> initial_delay_;
  std::vector<std::uint64_t> interval_loss_;
  std::vector<std::uint64_t> interval_resolved_;
};

int lowest_mean_delay(const std::vector<sim::PathConfig>& paths) {
  int best = 0;
  double best_delay = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    double d = paths[i].forward.prop_delay_s;
    if (paths[i].forward.extra_delay) d += paths[i].forward.extra_delay->mean();
    if (d < best_delay) {
      best_delay = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

AdaptiveResult run_adaptive_session(
    const std::vector<sim::PathConfig>& true_paths,
    const core::TrafficSpec& traffic, const AdaptiveOptions& options) {
  const std::size_t n = true_paths.size();
  if (options.initial_estimates.size() != n) {
    throw std::invalid_argument(
        "run_adaptive_session: initial estimates must cover every path");
  }

  sim::Simulator simulator(options.session.seed);
  sim::Network network(simulator, true_paths);
  proto::Trace trace;

  const int ack_path = options.session.ack_path >= 0
                           ? options.session.ack_path
                           : lowest_mean_delay(true_paths);

  PathEstimators estimators(n, ack_path, options.initial_estimates,
                            options.bandwidth, options.loss_memory_packets);
  estimators.start_intervals(n);

  // --- initial plan from the cold-start beliefs --------------------------
  core::PlanOptions plan_options;
  plan_options.model = options.model;
  core::Plan plan =
      core::plan_max_quality(options.initial_estimates, traffic, plan_options);
  if (!plan.feasible()) {
    throw std::invalid_argument("run_adaptive_session: initial plan infeasible");
  }

  // Converged-regime accounting: verdicts for messages generated in the
  // final quarter of the run, judged per sequence number so deliveries of
  // earlier messages cannot leak into the tail window.
  const std::uint64_t tail_first_seq = options.session.num_messages -
                                       options.session.num_messages / 4;
  std::uint64_t tail_on_time = 0;

  proto::ReceiverConfig receiver_config;
  receiver_config.lifetime_s = traffic.lifetime_s;
  receiver_config.ack_path = ack_path;
  receiver_config.ack_window_bits = options.session.ack_window_bits;
  receiver_config.max_ack_bytes = options.session.max_ack_bytes;
  receiver_config.ack_overhead_bytes = options.session.ack_overhead_bytes;
  receiver_config.ack_every = options.session.ack_every;
  receiver_config.verdict_hook = [&](std::uint64_t seq, bool on_time) {
    if (seq >= tail_first_seq && on_time) ++tail_on_time;
  };
  proto::DeadlineReceiver receiver(simulator, receiver_config, trace);

  proto::SenderConfig sender_config;
  sender_config.num_messages = options.session.num_messages;
  sender_config.message_bytes = options.session.message_bytes;
  sender_config.timeout_guard_s = options.session.timeout_guard_s;
  sender_config.fast_retransmit_dupacks =
      options.session.fast_retransmit_dupacks;
  proto::DeadlineSender sender(
      simulator, plan,
      core::make_scheduler(options.session.scheduler, plan.x(),
                           options.session.seed ^ 0x5eedULL),
      sender_config, trace);

  proto::SenderHooks hooks;
  hooks.on_rtt_sample = [&](int path, double rtt) {
    estimators.on_rtt(path, rtt);
  };
  hooks.on_loss_inferred = [&](int path) { estimators.on_loss(path); };
  hooks.on_spurious_loss = [&](int path) { estimators.on_spurious(path); };
  hooks.on_ack_for_path = [&](int path) { estimators.on_ack(path); };
  sender.set_hooks(std::move(hooks));

  receiver.set_ack_sender([&network](int path, sim::PooledPacket packet) {
    network.server_send(path, std::move(packet));
  });
  sender.set_data_sender([&network](int path, sim::PooledPacket packet) {
    network.client_send(path, std::move(packet));
  });
  network.set_server_receiver([&receiver](int path, sim::PooledPacket packet) {
    receiver.on_data(path, *packet);
  });
  network.set_client_receiver([&sender](int path, sim::PooledPacket packet) {
    sender.on_ack(path, *packet);
  });

  // --- periodic re-planning ----------------------------------------------
  AdaptiveResult result;
  ChangeDetector detector(options.change);
  const double message_bits =
      8.0 * static_cast<double>(options.session.message_bytes);
  const double run_length_s = static_cast<double>(options.session.num_messages) *
                              message_bits / traffic.rate_bps;

  std::function<void()> replan_tick = [&]() {
    if (options.probe_bandwidth) {
      estimators.update_bandwidth(options.replan_interval_s, message_bits);
    }

    // Current beliefs -> candidate path set.
    core::PathSet estimates;
    ChangeDetector::Snapshot snapshot;
    for (std::size_t i = 0; i < n; ++i) {
      core::PathSpec spec = options.initial_estimates[i];
      spec.bandwidth_bps = options.probe_bandwidth
                               ? estimators.bandwidth_estimate(i)
                               : options.initial_estimates[i].bandwidth_bps;
      spec.delay_s =
          estimators.one_way_delay(i) * options.delay_margin_factor;
      spec.delay_dist = nullptr;  // adaptive mode plans deterministically
      spec.loss_rate = std::min(0.99, estimators.loss_estimate(i));
      estimates.add(spec);
      snapshot.bandwidth_bps.push_back(spec.bandwidth_bps);
      snapshot.delay_s.push_back(spec.delay_s);
      snapshot.loss.push_back(spec.loss_rate);
    }

    ReplanEvent event;
    event.time_s = simulator.now();
    event.estimates = estimates;
    if (detector.significant_change(snapshot)) {
      core::Plan next = core::plan_max_quality(estimates, traffic, plan_options);
      if (next.feasible()) {
        event.replanned = true;
        event.planned_quality = next.quality();
        sender.replace_plan(
            next, core::make_scheduler(options.session.scheduler, next.x(),
                                       options.session.seed ^ 0xadadULL));
        detector.commit(std::move(snapshot));
        ++result.replans;
      }
    }
    result.timeline.push_back(std::move(event));

    if (simulator.now() < run_length_s) {
      simulator.in(options.replan_interval_s, replan_tick);
    }
  };
  simulator.in(options.replan_interval_s, replan_tick);

  for (const NetworkEvent& event : options.network_events) {
    simulator.at(event.time_s, [&network, apply = event.apply] {
      apply(network);
    });
  }

  sender.start();
  simulator.run();

  result.session.trace = trace;
  result.session.measured_quality = trace.quality();
  result.session.elapsed_s = simulator.now();
  result.session.events = simulator.events_executed();
  for (std::size_t i = 0; i < n; ++i) {
    result.session.forward_links.push_back(
        network.forward_link(static_cast<int>(i)).stats());
    result.session.reverse_links.push_back(
        network.reverse_link(static_cast<int>(i)).stats());
  }

  // Converged regime: quality over the messages generated in the final
  // quarter of the run (per-sequence accounting via the verdict hook).
  const std::uint64_t tail_generated =
      trace.generated > tail_first_seq ? trace.generated - tail_first_seq : 0;
  result.converged_quality =
      tail_generated > 0
          ? static_cast<double>(tail_on_time) /
                static_cast<double>(tail_generated)
          : trace.quality();
  return result;
}

}  // namespace dmc::est
