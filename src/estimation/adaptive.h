// Closed-loop operation: estimate path characteristics online, re-solve the
// LP when they move significantly, swap the plan into the running sender.
// This is the protocol sketched across Sections VIII-A and VIII-B: loss
// starts at 0% and is refined per loss; delay comes from RTT samples (the
// ack path's RTT halves into a one-way estimate, other paths subtract the
// ack leg); the LP re-solves only on significant change.
#pragma once

#include <cstdint>
#include <vector>

#include "core/path.h"
#include "estimation/estimators.h"
#include "protocol/session.h"
#include "sim/network.h"

namespace dmc::est {

struct NetworkEvent {
  double time_s = 0.0;
  std::function<void(sim::Network&)> apply;
};

struct AdaptiveOptions {
  // Initial beliefs fed to the first plan (the "cold start"): typically the
  // provisioned bandwidths with zero loss and a crude delay guess.
  core::PathSet initial_estimates;
  // Scheduled mid-run changes to the true network (path degradation,
  // recovery, ...). The controller only sees them through its estimators —
  // the "varying conditions" regime the paper leaves to future work.
  std::vector<NetworkEvent> network_events;
  double replan_interval_s = 0.5;
  // Effective window (in resolved transmissions) of the loss estimators;
  // 0 keeps the paper's cumulative lost/sent ratio, a finite window lets
  // the estimate fall again when a loss episode ends.
  double loss_memory_packets = 30000.0;
  // Safety factor applied to estimated delays when planning (the paper
  // plans with conservative delays in Experiment 1).
  double delay_margin_factor = 1.05;
  bool probe_bandwidth = false;  // AIMD probing vs trusting the estimate
  BandwidthEstimator::Options bandwidth;
  ChangeDetector::Options change;
  core::ModelOptions model;
  proto::SessionConfig session;
};

struct ReplanEvent {
  double time_s = 0.0;
  bool replanned = false;          // false = change detector said "stable"
  double planned_quality = 0.0;    // LP prediction at this point
  core::PathSet estimates;         // what the controller believed
};

struct AdaptiveResult {
  proto::SessionResult session;
  std::vector<ReplanEvent> timeline;
  int replans = 0;
  // Quality over the final quarter of the run — the converged regime.
  double converged_quality = 0.0;
};

// Runs a full adaptive session against the true network.
AdaptiveResult run_adaptive_session(
    const std::vector<sim::PathConfig>& true_paths,
    const core::TrafficSpec& traffic, const AdaptiveOptions& options);

}  // namespace dmc::est
