// Public façade of the library: paths + traffic in, an optimal sending plan
// out. A Plan bundles the LP solution x' with everything a sender needs to
// execute it: per-combination retransmission timeouts, the expected quality
// and cost, and the path-combination metadata.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "lp/simplex.h"

namespace dmc::core {

struct PlanOptions {
  ModelOptions model = {};
  lp::SimplexSolver::Options solver = {};
};

class Plan {
 public:
  Plan(std::shared_ptr<const Model> model, lp::Solution solution);

  bool feasible() const { return solution_.optimal(); }
  lp::SolveStatus status() const { return solution_.status; }
  std::int64_t lp_iterations() const { return solution_.iterations; }

  // The allocation x' over path combinations (Equation 13 vectorization).
  const std::vector<double>& x() const { return solution_.x; }

  // Expected communication quality Q (Equation 6) of this allocation.
  double quality() const { return metrics_.quality; }
  // Expected total cost per second C (Equation 7).
  double cost_per_s() const { return metrics_.cost_per_s; }
  // Expected bit rate S_i per model path (Equation 2).
  const std::vector<double>& send_rate_bps() const {
    return metrics_.send_rate_bps;
  }

  const Model& model() const { return *model_; }
  std::shared_ptr<const Model> model_ptr() const { return model_; }

  // Fraction of traffic assigned combination l; label(l) renders "x1,2".
  double weight(std::size_t l) const { return solution_.x.at(l); }
  std::string label(std::size_t l) const { return model_->combos().label(l); }

  // Nonzero entries, largest first — the paper's table rows.
  std::vector<std::pair<std::size_t, double>> nonzero_weights(
      double threshold = 1e-9) const;

  // Human-readable one-line solution, e.g. "x1,2=8/9-ish: 0.8889 ...".
  std::string summary() const;

 private:
  std::shared_ptr<const Model> model_;
  lp::Solution solution_;
  PlanMetrics metrics_;
};

// Maximize quality subject to bandwidth and cost caps (Equation 10).
Plan plan_max_quality(const PathSet& paths, const TrafficSpec& traffic,
                      const PlanOptions& options = {});

// Minimize cost subject to quality >= min_quality (Equation 20).
Plan plan_min_cost(const PathSet& paths, const TrafficSpec& traffic,
                   double min_quality, const PlanOptions& options = {});

// Quality achievable using only path `index` of `paths` (plus the
// blackhole): the single-path baseline of Figure 2. Acknowledgments travel
// on that same path, so d_min = d_index.
Plan plan_single_path(const PathSet& paths, std::size_t index,
                      const TrafficSpec& traffic,
                      const PlanOptions& options = {});

}  // namespace dmc::core
