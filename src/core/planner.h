// Public façade of the library: paths + traffic in, an optimal sending plan
// out. A Plan bundles the LP solution x' with everything a sender needs to
// execute it: per-combination retransmission timeouts, the expected quality
// and cost, and the path-combination metadata.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "lp/simplex.h"

namespace dmc::core {

struct PlanOptions {
  ModelOptions model = {};
  lp::SimplexSolver::Options solver = {};
};

// Measured cross-traffic on each real path, as seen by an online planner:
// other sessions' packets occupy link capacity and queue slots, so a session
// planned against the nominal path characteristics will overestimate what it
// can get. Folding the background load in derates bandwidth to the residual
// and adds an M/M/1-flavoured queueing-delay term (same shape as
// core::LoadResponse), so the LP plans against the capacity actually left.
struct CrossTraffic {
  // Background load per real path (bits/s), e.g. from
  // sim::UtilizationMeter::sample(). Must match the path count; missing
  // entries are treated as zero.
  std::vector<double> background_bps;
  // Extra queueing delay when background utilization reaches 50%; the term
  // grows like u / (1 - u), normalized so u = 0.5 contributes exactly this.
  double queue_delay_at_half_load_s = 0.0;
  double max_queue_delay_s = 0.2;  // cap (finite buffers drain eventually)
  // Floor on derated bandwidth: a fully occupied path keeps this much so the
  // path stays well-formed; the LP then routes around it naturally.
  double min_bandwidth_bps = 1.0;
};

// Path characteristics with `cross` folded in: bandwidth becomes the
// residual, delay gains the queueing term. Blackhole entries pass through.
PathSet apply_cross_traffic(const PathSet& paths, const CrossTraffic& cross);

class Plan {
 public:
  Plan(std::shared_ptr<const Model> model, lp::Solution solution);

  bool feasible() const { return solution_.optimal(); }
  lp::SolveStatus status() const { return solution_.status; }
  std::int64_t lp_iterations() const { return solution_.iterations; }

  // The allocation x' over path combinations (Equation 13 vectorization).
  const std::vector<double>& x() const { return solution_.x; }

  // Expected communication quality Q (Equation 6) of this allocation.
  double quality() const { return metrics_.quality; }
  // Expected total cost per second C (Equation 7).
  double cost_per_s() const { return metrics_.cost_per_s; }
  // Expected bit rate S_i per model path (Equation 2).
  const std::vector<double>& send_rate_bps() const {
    return metrics_.send_rate_bps;
  }

  const Model& model() const { return *model_; }
  std::shared_ptr<const Model> model_ptr() const { return model_; }

  // Fraction of traffic assigned combination l; label(l) renders "x1,2".
  double weight(std::size_t l) const { return solution_.x.at(l); }
  std::string label(std::size_t l) const { return model_->combos().label(l); }

  // Nonzero entries, largest first — the paper's table rows.
  std::vector<std::pair<std::size_t, double>> nonzero_weights(
      double threshold = 1e-9) const;

  // Human-readable one-line solution, e.g. "x1,2=8/9-ish: 0.8889 ...".
  std::string summary() const;

 private:
  std::shared_ptr<const Model> model_;
  lp::Solution solution_;
  PlanMetrics metrics_;
};

// Maximize quality subject to bandwidth and cost caps (Equation 10).
Plan plan_max_quality(const PathSet& paths, const TrafficSpec& traffic,
                      const PlanOptions& options = {});

// Contention-aware variant: plans on apply_cross_traffic(paths, cross), so
// the allocation respects the measured footprint of concurrent sessions.
Plan plan_max_quality(const PathSet& paths, const TrafficSpec& traffic,
                      const CrossTraffic& cross,
                      const PlanOptions& options = {});

// Minimize cost subject to quality >= min_quality (Equation 20).
Plan plan_min_cost(const PathSet& paths, const TrafficSpec& traffic,
                   double min_quality, const PlanOptions& options = {});

// Quality achievable using only path `index` of `paths` (plus the
// blackhole): the single-path baseline of Figure 2. Acknowledgments travel
// on that same path, so d_min = d_index.
Plan plan_single_path(const PathSet& paths, std::size_t index,
                      const TrafficSpec& traffic,
                      const PlanOptions& options = {});

}  // namespace dmc::core
