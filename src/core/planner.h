// Public façade of the library: paths + traffic in, an optimal sending plan
// out. A Plan bundles the LP solution x' with everything a sender needs to
// execute it: per-combination retransmission timeouts, the expected quality
// and cost, and the path-combination metadata.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "lp/incremental.h"
#include "lp/simplex.h"

namespace dmc::core {

struct PlanOptions {
  ModelOptions model = {};
  lp::SimplexSolver::Options solver = {};
};

// Measured cross-traffic on each real path, as seen by an online planner:
// other sessions' packets occupy link capacity and queue slots, so a session
// planned against the nominal path characteristics will overestimate what it
// can get. Folding the background load in derates bandwidth to the residual
// and adds an M/M/1-flavoured queueing-delay term (same shape as
// core::LoadResponse), so the LP plans against the capacity actually left.
struct CrossTraffic {
  // Background load per real path (bits/s), e.g. from
  // sim::UtilizationMeter::sample(). Must match the path count; missing
  // entries are treated as zero.
  std::vector<double> background_bps;
  // Extra queueing delay when background utilization reaches 50%; the term
  // grows like u / (1 - u), normalized so u = 0.5 contributes exactly this.
  double queue_delay_at_half_load_s = 0.0;
  double max_queue_delay_s = 0.2;  // cap (finite buffers drain eventually)
  // Floor on derated bandwidth: a fully occupied path keeps this much so the
  // path stays well-formed; the LP then routes around it naturally.
  double min_bandwidth_bps = 1.0;
};

// Path characteristics with `cross` folded in: bandwidth becomes the
// residual, delay gains the queueing term. Blackhole entries pass through.
PathSet apply_cross_traffic(const PathSet& paths, const CrossTraffic& cross);

class Plan {
 public:
  Plan(std::shared_ptr<const Model> model, lp::Solution solution);

  bool feasible() const { return solution_.optimal(); }
  lp::SolveStatus status() const { return solution_.status; }
  std::int64_t lp_iterations() const { return solution_.iterations; }

  // The allocation x' over path combinations (Equation 13 vectorization).
  const std::vector<double>& x() const { return solution_.x; }

  // Expected communication quality Q (Equation 6) of this allocation.
  double quality() const { return metrics_.quality; }
  // Expected total cost per second C (Equation 7).
  double cost_per_s() const { return metrics_.cost_per_s; }
  // Expected bit rate S_i per model path (Equation 2).
  const std::vector<double>& send_rate_bps() const {
    return metrics_.send_rate_bps;
  }

  const Model& model() const { return *model_; }
  std::shared_ptr<const Model> model_ptr() const { return model_; }

  // Fraction of traffic assigned combination l; label(l) renders "x1,2".
  double weight(std::size_t l) const { return solution_.x.at(l); }
  std::string label(std::size_t l) const { return model_->combos().label(l); }

  // Nonzero entries, largest first — the paper's table rows.
  std::vector<std::pair<std::size_t, double>> nonzero_weights(
      double threshold = 1e-9) const;

  // Human-readable one-line solution, e.g. "x1,2=8/9-ish: 0.8889 ...".
  std::string summary() const;

 private:
  std::shared_ptr<const Model> model_;
  lp::Solution solution_;
  PlanMetrics metrics_;
};

// Maximize quality subject to bandwidth and cost caps (Equation 10).
Plan plan_max_quality(const PathSet& paths, const TrafficSpec& traffic,
                      const PlanOptions& options = {});

// Contention-aware variant: plans on apply_cross_traffic(paths, cross), so
// the allocation respects the measured footprint of concurrent sessions.
Plan plan_max_quality(const PathSet& paths, const TrafficSpec& traffic,
                      const CrossTraffic& cross,
                      const PlanOptions& options = {});

// Minimize cost subject to quality >= min_quality (Equation 20).
Plan plan_min_cost(const PathSet& paths, const TrafficSpec& traffic,
                   double min_quality, const PlanOptions& options = {});

// Quality achievable using only path `index` of `paths` (plus the
// blackhole): the single-path baseline of Figure 2. Acknowledgments travel
// on that same path, so d_min = d_index.
Plan plan_single_path(const PathSet& paths, std::size_t index,
                      const TrafficSpec& traffic,
                      const PlanOptions& options = {});

// Residual-capacity delta for warm re-planning: the new capacity of each
// real path (bits/s), e.g. nominal bandwidth minus measured background from
// sim::UtilizationMeter. Everything else about the previous plan's problem
// (deadline, rate, cost cap, delays) is unchanged, which is what makes the
// re-solve a pure right-hand-side update.
struct ReplanDelta {
  std::vector<double> bandwidth_bps;  // one entry per real path
};

// Stateful planning front-end for the admission / re-planning hot path. A
// Planner owns an lp::IncrementalSolver plus the last solve's Model, and
// re-optimizes successive LPs from the previous optimal basis instead of
// running two simplex phases from scratch. Two layers of reuse:
//
//   * the Model cache: when consecutive calls differ only in bandwidths and
//     rate/cost cap (residual-capacity drift under admission churn), the
//     combination metrics are re-bound instead of recomputed;
//   * the LP basis: the rate-normalized LP (Model::quality_lp_normalized)
//     makes those same calls pure rhs updates, which the solver absorbs
//     with a few dual simplex pivots.
//
// One Planner serves one stream of related decisions — a server's admission
// pipeline, or one live session's re-plans. The free functions above remain
// the stateless one-shot API. With warm_start off every call solves cold
// through the same canonical pipeline, so toggling warm start changes how
// fast a plan is found, not (for a unique optimum) which plan.
class Planner {
 public:
  struct Options {
    PlanOptions plan;
    bool warm_start = true;
  };

  Planner() = default;
  explicit Planner(Options options);
  explicit Planner(PlanOptions plan_options, bool warm_start = true);

  // plan_max_quality, warm-capable.
  Plan plan(const PathSet& paths, const TrafficSpec& traffic);
  Plan plan(const PathSet& paths, const TrafficSpec& traffic,
            const CrossTraffic& cross);

  // Re-solves `previous`'s LP with new capacity caps (rhs-only delta).
  Plan replan(const Plan& previous, const ReplanDelta& delta);

  bool warm_start() const { return options_.warm_start; }
  const lp::IncrementalSolver::Stats& lp_stats() const {
    return solver_.stats();
  }
  // Zeroes the solve counters, keeping the warm state. A copied planner
  // (e.g. a session's re-plan snapshot of the admission planner) calls
  // this so summing per-planner stats never double-counts the original's.
  void reset_lp_stats() { solver_.reset_stats(); }

 private:
  Plan solve_model(std::shared_ptr<const Model> model);
  // True when the cached model's metrics and the solver's stored LP can
  // absorb (paths, traffic) as a pure rhs patch.
  bool delta_compatible(const PathSet& paths, const TrafficSpec& traffic) const;
  Plan plan_delta(const TrafficSpec& traffic, std::vector<double> bandwidth);

  Options options_;
  lp::IncrementalSolver solver_;
  std::shared_ptr<const Model> cached_;  // model behind solver_'s stored LP
};

}  // namespace dmc::core
