// Path and traffic descriptions — the inputs of Table I in the paper:
// n independent paths with bandwidth b_i, one-way delay d_i, erasure
// probability tau_i and per-bit cost c_i; an application rate lambda, a data
// lifetime delta, and a cost cap mu.
#pragma once

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "stats/distributions.h"

namespace dmc::core {

struct PathSpec {
  std::string name;
  double bandwidth_bps = 0.0;   // b_i
  double delay_s = 0.0;         // d_i (used when delay_dist is null)
  double loss_rate = 0.0;       // tau_i
  double cost_per_bit = 0.0;    // c_i
  // Optional random one-way delay D_i (Section VI-B). When set, it replaces
  // delay_s in the model; delay_s is ignored.
  stats::DelayDistributionPtr delay_dist = nullptr;

  // Expected one-way delay: E[d_i] (Equation 25) or the fixed delay.
  double mean_delay_s() const {
    return delay_dist ? delay_dist->mean() : delay_s;
  }

  // The delay as a distribution object (deterministic if no dist was given).
  stats::DelayDistributionPtr distribution() const {
    if (delay_dist) return delay_dist;
    return stats::make_deterministic(delay_s);
  }

  bool is_random() const { return delay_dist != nullptr; }

  bool is_blackhole() const {
    return loss_rate >= 1.0 && std::isinf(mean_delay_s());
  }

  void check() const {
    if (!is_blackhole() && bandwidth_bps <= 0.0) {
      throw std::invalid_argument("path '" + name + "': bandwidth must be > 0");
    }
    if (loss_rate < 0.0 || loss_rate > 1.0) {
      throw std::invalid_argument("path '" + name + "': loss not in [0,1]");
    }
    if (!delay_dist && delay_s < 0.0) {
      throw std::invalid_argument("path '" + name + "': negative delay");
    }
    if (cost_per_bit < 0.0) {
      throw std::invalid_argument("path '" + name + "': negative cost");
    }
  }
};

// The virtual "blackhole" path of Section V-C: sending along it discards the
// data (d = inf, tau = 1, c = 0). The paper sets b_0 = lambda, but taken
// literally that makes e.g. x_{0,0} = 1 infeasible (S_0 = 2 lambda by
// Equation 2) even though Table IV uses x_{0,0} = 7/9; the evident intent is
// that discarding is unconstrained, so we give the blackhole infinite
// bandwidth and omit its capacity row.
inline PathSpec blackhole_path() {
  PathSpec path;
  path.name = "blackhole";
  path.bandwidth_bps = std::numeric_limits<double>::infinity();
  path.delay_s = std::numeric_limits<double>::infinity();
  path.loss_rate = 1.0;
  path.cost_per_bit = 0.0;
  return path;
}

class PathSet {
 public:
  PathSet() = default;
  explicit PathSet(std::vector<PathSpec> paths) : paths_(std::move(paths)) {
    for (const PathSpec& p : paths_) p.check();
  }

  void add(PathSpec path) {
    path.check();
    paths_.push_back(std::move(path));
  }

  std::size_t size() const { return paths_.size(); }
  bool empty() const { return paths_.empty(); }
  const PathSpec& operator[](std::size_t i) const { return paths_.at(i); }
  auto begin() const { return paths_.begin(); }
  auto end() const { return paths_.end(); }

  // Index of the path with the smallest expected delay (Equation 25),
  // ignoring blackhole entries. Throws if there is no real path.
  std::size_t min_delay_index() const {
    std::size_t best = size();
    double best_delay = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < size(); ++i) {
      if (paths_[i].is_blackhole()) continue;
      const double d = paths_[i].mean_delay_s();
      if (d < best_delay) {
        best_delay = d;
        best = i;
      }
    }
    if (best == size()) {
      throw std::logic_error("PathSet: no non-blackhole path");
    }
    return best;
  }

  // d_min of Equation 1 (expected-value version for random delays).
  double min_delay() const {
    return paths_[min_delay_index()].mean_delay_s();
  }

  bool any_random() const {
    for (const PathSpec& p : paths_) {
      if (p.is_random()) return true;
    }
    return false;
  }

 private:
  std::vector<PathSpec> paths_;
};

// Application-side parameters (Table I).
struct TrafficSpec {
  double rate_bps = 0.0;     // lambda
  double lifetime_s = 0.0;   // delta
  double cost_cap_per_s = std::numeric_limits<double>::infinity();  // mu

  void check() const {
    if (rate_bps <= 0.0) {
      throw std::invalid_argument("traffic: rate must be > 0");
    }
    if (lifetime_s <= 0.0) {
      throw std::invalid_argument("traffic: lifetime must be > 0");
    }
    if (cost_cap_per_s < 0.0) {
      throw std::invalid_argument("traffic: negative cost cap");
    }
  }
};

}  // namespace dmc::core
