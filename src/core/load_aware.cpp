#include "core/load_aware.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmc::core {

namespace {

// Effective characteristics at utilization u in [0, 1].
PathSpec apply_load(const LoadAwarePath& path, double utilization) {
  const double u = std::clamp(utilization, 0.0, 0.999);
  PathSpec out = path.base;
  // u/(1-u) equals 1 at u = 0.5; scale so that point matches the knob.
  const double queue_delay = std::min(
      path.response.queue_delay_at_half_load_s * (u / (1.0 - u)),
      path.response.max_queue_delay_s);
  out.delay_s = path.base.delay_s + queue_delay;
  out.loss_rate = std::min(
      1.0, path.base.loss_rate + path.response.extra_loss_at_capacity * u * u);
  return out;
}

PathSet effective_set(const std::vector<LoadAwarePath>& paths,
                      const std::vector<double>& utilization) {
  PathSet out;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    out.add(apply_load(paths[i], utilization[i]));
  }
  return out;
}

// Utilization of each real path under a plan (S_i / b_i).
std::vector<double> utilizations(const Plan& plan) {
  const Model& model = plan.model();
  std::vector<double> out(model.real_paths().size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::size_t mi = model.model_index(i);
    const double b = model.model_paths()[mi].bandwidth_bps;
    out[i] = b > 0.0 ? plan.send_rate_bps()[mi] / b : 0.0;
  }
  return out;
}

}  // namespace

LoadAwareResult plan_load_aware(const std::vector<LoadAwarePath>& paths,
                                const TrafficSpec& traffic,
                                const LoadAwareOptions& options) {
  if (paths.empty()) {
    throw std::invalid_argument("plan_load_aware: no paths");
  }
  if (options.damping <= 0.0 || options.damping > 1.0) {
    throw std::invalid_argument("plan_load_aware: damping must be in (0,1]");
  }

  std::vector<double> u(paths.size(), 0.0);
  Plan plan = plan_max_quality(effective_set(paths, u), traffic, options.plan);
  const Plan naive = plan;  // zero-load plan, for the comparison below

  LoadAwareResult result{plan, effective_set(paths, u), u, 0, false, 0.0};
  if (!plan.feasible()) return result;

  std::vector<double> prev_x = plan.x();
  for (int round = 1; round <= options.max_rounds; ++round) {
    // Damped utilization update from the latest plan.
    const std::vector<double> target = utilizations(plan);
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] = (1.0 - options.damping) * u[i] + options.damping * target[i];
    }

    const PathSet effective = effective_set(paths, u);
    plan = plan_max_quality(effective, traffic, options.plan);
    result.rounds = round;
    if (!plan.feasible()) break;

    double delta = 0.0;
    for (std::size_t l = 0; l < prev_x.size(); ++l) {
      delta = std::max(delta, std::abs(plan.x()[l] - prev_x[l]));
    }
    prev_x = plan.x();
    if (delta <= options.convergence_x) {
      result.converged = true;
      result.plan = plan;
      result.effective_paths = effective;
      result.utilization = u;
      break;
    }
    result.plan = plan;
    result.effective_paths = effective;
    result.utilization = u;
  }

  // Judge the naive plan under the final effective characteristics: what
  // quality would its allocation really achieve once queues build up?
  if (naive.feasible()) {
    const Model effective_model(result.effective_paths, traffic,
                                options.plan.model);
    result.naive_quality = effective_model.evaluate(naive.x()).quality;
  }
  return result;
}

}  // namespace dmc::core
