// Section IX-A: when a path's latency and loss respond to how hard we use
// it, the LP's coefficients depend on the solution. The paper proposes to
// model latency/loss as functions of input bandwidth and re-solve; this
// module implements that as a damped fixed-point iteration:
//
//     solve LP -> utilizations -> effective delay/loss -> re-solve -> ...
//
// The load response is an M/M/1-flavoured queueing term (waiting time
// proportional to u/(1-u)) plus a loss ramp, both capped.
#pragma once

#include <vector>

#include "core/planner.h"

namespace dmc::core {

struct LoadResponse {
  // Extra delay added at 50% utilization; the delay term grows like
  // u / (1 - u), normalized so utilization 0.5 contributes exactly this.
  double queue_delay_at_half_load_s = 0.0;
  // Hard cap on the extra delay (a finite buffer drains eventually).
  double max_queue_delay_s = 0.2;
  // Extra loss as utilization approaches 1 (quadratic ramp: extra * u^2).
  double extra_loss_at_capacity = 0.0;
};

struct LoadAwarePath {
  PathSpec base = {};      // characteristics at zero load
  LoadResponse response = {};
};

struct LoadAwareOptions {
  int max_rounds = 25;
  double damping = 0.5;          // weight of the new parameters per round
  double convergence_x = 1e-4;   // max |x_new - x_old| to declare a fixpoint
  PlanOptions plan = {};
};

struct LoadAwareResult {
  Plan plan;                         // plan at the fixed point
  PathSet effective_paths;           // load-adjusted characteristics
  std::vector<double> utilization;   // per real path, at the fixed point
  int rounds = 0;
  bool converged = false;
  // Quality the *naive* plan (computed on zero-load characteristics) would
  // actually deliver under the load-adjusted characteristics; the gap to
  // plan.quality() is what the iteration buys.
  double naive_quality = 0.0;
};

LoadAwareResult plan_load_aware(const std::vector<LoadAwarePath>& paths,
                                const TrafficSpec& traffic,
                                const LoadAwareOptions& options = {});

}  // namespace dmc::core
