// Section IX-C: the model constrains *expected* bandwidth and cost. Over a
// finite window of N packets the realized usage fluctuates (which packets
// need retransmission is random), so a system that must not exceed a hard
// cap can compute the overshoot probability and tighten the bounds fed to
// the LP until the risk is acceptable.
//
// Per-packet load on a path is a small discrete random variable (it depends
// on the combination the packet was assigned and on which attempts fired);
// with N i.i.d.-scheduled packets the window usage is approximately normal,
// so overshoot probabilities come from a CLT bound.
#pragma once

#include <vector>

#include "core/model.h"
#include "core/planner.h"

namespace dmc::core {

struct UsageDistribution {
  double mean = 0.0;      // expected bits per packet on this path (x lambda-normalized share)
  double variance = 0.0;  // per-packet variance (bits^2)
};

struct OvershootReport {
  // Per model path: probability that the realized bit rate over the window
  // exceeds the path's bandwidth cap. Blackhole entries are 0.
  std::vector<double> bandwidth_overshoot;
  // Probability that the realized cost rate exceeds mu.
  double cost_overshoot = 0.0;
  // Window size used (packets).
  std::size_t window_packets = 0;
};

// Analyses a plan: for each path, the mean/variance of per-packet load in
// bits (enumerating attempt outcomes exactly; m <= 3 means <= 8 outcomes).
std::vector<UsageDistribution> per_path_usage(const Model& model,
                                              const std::vector<double>& x,
                                              double packet_bits);

// Overshoot probabilities for a window of `window_packets` packets under
// weighted-random scheduling (the conservative case; Algorithm 1 only
// reduces the variance).
OvershootReport compute_overshoot(const Model& model,
                                  const std::vector<double>& x,
                                  double packet_bits,
                                  std::size_t window_packets);

struct RiskAdjustedPlanResult {
  Plan plan;                   // final plan after cap tightening
  OvershootReport report;      // overshoot of the final plan
  int solve_rounds = 0;        // LP solves performed
  double shrink_factor = 1.0;  // caps were multiplied by this factor
};

// Re-solves with geometrically tightened bandwidth/cost caps until every
// overshoot probability is <= max_overshoot (or the shrink floor is hit).
// Implements the "adjust the values in q ... and re-solve" loop of IX-C.
RiskAdjustedPlanResult plan_with_risk_bound(const PathSet& paths,
                                            const TrafficSpec& traffic,
                                            double packet_bits,
                                            std::size_t window_packets,
                                            double max_overshoot,
                                            const PlanOptions& options = {});

}  // namespace dmc::core
