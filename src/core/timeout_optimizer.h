// Retransmission-timeout optimization for random delays (Equations 26/34).
//
// For data first sent on path i and retransmitted (if needed) on path j, the
// sender must pick the waiting time t_{i,j} that is simultaneously large
// enough for the acknowledgment (which needs d_i + d_min) to arrive, and
// small enough for the retransmission (which needs d_j more) to beat the
// deadline:
//
//     t_{i,j} = argmax_t  P(t + d_j <= delta) * P(d_i + d_min <= t).
//
// The objective can have a numerically flat maximum (the paper notes the
// solution "does not necessarily produce a unique solution"); the plateau
// policy controls which point of the flat region is returned.
#pragma once

#include "stats/distributions.h"

namespace dmc::core {

enum class PlateauPolicy {
  // Left edge of the flat maximum. With deterministic delays this recovers
  // Equation 4 exactly: t = d_i + d_min.
  leftmost,
  // Middle of the flat maximum: maximal margin against both failure modes.
  midpoint,
};

struct TimeoutOptions {
  int coarse_points = 4096;       // cap on the grid resolution of the scan
  int refine_iterations = 64;     // bisection steps on the plateau edges
  double plateau_tolerance = 1e-9;  // relative: counts as "at the maximum"
  PlateauPolicy plateau_policy = PlateauPolicy::leftmost;
  // Adaptive scan resolution: the grid step targets sigma_min /
  // scan_points_per_sigma, where sigma_min is the smaller standard
  // deviation of the two input distributions — a *continuous* objective
  // cannot vary faster than the CDFs it multiplies, so resolution beyond
  // that is wasted. The point count is clamped to [min_coarse_points,
  // coarse_points]; atomic inputs (deterministic, empirical — see
  // DelayDistribution::continuous), whose CDFs jump regardless of sigma,
  // keep the full coarse_points grid. Set to 0 to disable adaptivity. The
  // plateau
  // edges are refined by bisection on the exact CDFs either way, so the
  // scan grid only has to *find* the plateau, not resolve it.
  double scan_points_per_sigma = 64.0;
  int min_coarse_points = 256;
};

struct TimeoutChoice {
  double timeout = 0.0;            // t_{i,j}; +inf when retransmission is futile
  double objective = 0.0;          // max_t of the product above
  double p_ack_in_time = 0.0;      // P(d_i + d_min <= t)
  double p_retrans_in_time = 0.0;  // P(t + d_j <= delta)
  bool feasible = false;           // objective > 0
};

// ack_delay: distribution of d_i + d_min (see stats::sum_distribution).
// retrans_delay: distribution of d_j.
// deadline: delta (absolute budget from the moment of the first send).
TimeoutChoice optimize_timeout(const stats::DelayDistribution& ack_delay,
                               const stats::DelayDistribution& retrans_delay,
                               double deadline,
                               const TimeoutOptions& options = {});

}  // namespace dmc::core
