// Unit helpers. The library uses SI units internally: seconds for time,
// bits per second for rates, bits for data amounts. The paper's tables are
// stated in Mbps and milliseconds; these helpers keep call sites readable
// and conversion mistakes out of the arithmetic.
#pragma once

namespace dmc {

constexpr double kBitsPerByte = 8.0;

// Rates.
constexpr double bps(double v) { return v; }
constexpr double kbps(double v) { return v * 1e3; }
constexpr double mbps(double v) { return v * 1e6; }
constexpr double gbps(double v) { return v * 1e9; }

// Times.
constexpr double seconds(double v) { return v; }
constexpr double ms(double v) { return v * 1e-3; }
constexpr double us(double v) { return v * 1e-6; }

// Conversions back, for printing.
constexpr double to_mbps(double bits_per_second) { return bits_per_second / 1e6; }
constexpr double to_ms(double secs) { return secs * 1e3; }
constexpr double to_us(double secs) { return secs * 1e6; }

// Data sizes.
constexpr double bytes_to_bits(double n_bytes) { return n_bytes * kBitsPerByte; }

}  // namespace dmc
