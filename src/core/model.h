// The optimization model of Sections V and VI, generalized to an arbitrary
// number of transmissions m (the paper presents m = 2 "to avoid a cumbersome
// notation" and notes the generalization; a unit test verifies that m = 2
// reproduces the literal matrices of Equations 11-18).
//
// For a combination l with attempt sequence (i_0, ..., i_{m-1}):
//   * attempt k departs at D_k = sum_{u<k} t_{i_u} and arrives D_k + d_{i_k};
//   * it happens only if all previous attempts failed, which has probability
//     prefix_k = prod_{u<k} tau_{i_u} (deterministic delays) or
//     prod_{u<k} P(retrans_{i_u, i_{u+1}}) (random delays, Equation 27);
//   * delivery probability p_l sums prefix_k * P(arrival_k <= delta) *
//     (1 - tau_{i_k}) over attempts (Equations 12 / 28);
//   * expected load on path c is lambda * sum_{k: i_k = c} prefix_k
//     (Equations 15 / 29), and expected cost is lambda * sum_k prefix_k *
//     c_{i_k} (Equations 16 / 30).
#pragma once

#include <memory>
#include <vector>

#include "core/combination.h"
#include "core/path.h"
#include "core/timeout_optimizer.h"
#include "lp/problem.h"
#include "stats/convolution.h"

namespace dmc::core {

struct ModelOptions {
  // m: total transmissions per data unit (1 = no retransmission). The paper
  // envisions 2-3 in practice (Section VIII-B).
  int transmissions = 2;
  // Adds the virtual blackhole path (Section V-C) as model path 0 so the
  // optimum can drop data deliberately when lambda exceeds capacity.
  bool use_blackhole = true;
  // Force the random-delay machinery even if every path is deterministic
  // (used by tests to check the reduction).
  bool force_random = false;
  // Extra slack added to every deterministic retransmission timeout. The
  // model's feasibility checks account for it, so a guard keeps planned and
  // simulated behaviour consistent (Experiment 1 discussion).
  double timeout_guard_s = 0.0;
  TimeoutOptions timeout = {};
  // Grid policy for the numeric convolutions behind the ack-delay
  // distributions d_i + d_min (Equation 34). The defaults adapt the grid to
  // the input spread and convolve via FFT; see stats::ConvolutionOptions.
  stats::ConvolutionOptions convolution = {};
};

// Everything the LP needs to know about one path combination.
struct ComboMetrics {
  std::vector<std::size_t> attempts;   // model-path index per attempt
  double delivery_probability = 0.0;   // p_l
  // Expected traffic multiplier per model path: S contribution of this
  // combination to path c is lambda * x_l * expected_load[c].
  std::vector<double> expected_load;
  double cost_per_bit = 0.0;           // r_l = lambda * cost_per_bit
  // Retransmission timeout after attempt k (size m-1); +inf = never.
  std::vector<double> timeouts;
  // prefix_k = probability that attempt k fires (size m, prefix_0 = 1):
  // prod of tau (deterministic) or P(retrans) (random) over attempts < k.
  std::vector<double> stage_prefix;
};

struct PlanMetrics {
  double quality = 0.0;                 // Q = G / lambda (Equation 6)
  double cost_per_s = 0.0;              // C (Equation 7)
  std::vector<double> send_rate_bps;    // S_i per model path (Equation 2)
};

// Immutable model instance: paths + traffic -> combination metrics + LPs.
class Model {
 public:
  Model(PathSet real_paths, TrafficSpec traffic, ModelOptions options = {});

  // Model paths: index 0 is the blackhole when enabled, then the real paths
  // in their original order.
  const PathSet& model_paths() const { return model_paths_; }
  const PathSet& real_paths() const { return real_paths_; }
  const TrafficSpec& traffic() const { return traffic_; }
  const ModelOptions& options() const { return options_; }
  const CombinationSpace& combos() const { return combos_; }
  const std::vector<ComboMetrics>& metrics() const { return *metrics_; }

  bool has_blackhole() const { return options_.use_blackhole; }
  // Model index of a real path (identity + 1 when the blackhole is on).
  std::size_t model_index(std::size_t real_index) const {
    return real_index + (has_blackhole() ? 1 : 0);
  }

  double dmin() const { return dmin_; }                 // Equation 1 / 25
  std::size_t dmin_model_index() const { return dmin_model_index_; }

  bool is_random() const { return random_; }

  // Equation 10: maximize quality subject to bandwidth, cost, and sum-to-1.
  lp::Problem quality_lp() const;

  // Equation 10 with the bandwidth and cost rows divided by lambda: the
  // same feasible set and optimum (pure row scaling), but the coefficient
  // matrix becomes rate-independent — two sessions' LPs then differ only in
  // the right-hand side, which is what lets lp::IncrementalSolver reuse one
  // optimal basis across admission decisions (see core::Planner).
  lp::Problem quality_lp_normalized() const;

  // Cheap re-bind for warm-started re-planning: a copy of this model with
  // new per-real-path capacities and a new rate / cost cap, reusing the
  // combination metrics instead of recomputing them. Valid because the
  // metrics depend only on delays, losses, costs, and the lifetime — the
  // lifetime must therefore be unchanged (checked), as must the paths'
  // delay/loss/cost characteristics (the caller's contract).
  Model rebind(const TrafficSpec& traffic,
               const std::vector<double>& real_bandwidth_bps) const;

  // Equation 20: minimize cost subject to bandwidth, quality >= min_quality,
  // and sum-to-1. (The paper writes the quality bound's rhs as mu; the
  // consistent sign with Equation 22's negated coefficients is -mu, which is
  // what this builder emits.)
  lp::Problem cost_min_lp(double min_quality) const;

  // Q, C and per-path S for a given allocation x (Equations 2, 5-7).
  PlanMetrics evaluate(const std::vector<double>& x) const;

 private:
  void compute_deterministic_metrics(std::vector<ComboMetrics>& metrics) const;
  void compute_random_metrics(std::vector<ComboMetrics>& metrics) const;
  void add_shared_constraints(lp::Problem& problem) const;

  PathSet real_paths_;
  PathSet model_paths_;
  TrafficSpec traffic_;
  ModelOptions options_;
  CombinationSpace combos_;
  // Immutable once computed and shared between rebound copies (rebind), so
  // the re-planning hot path neither recomputes nor deep-copies the n^m
  // combination table.
  std::shared_ptr<const std::vector<ComboMetrics>> metrics_;
  double dmin_ = 0.0;
  std::size_t dmin_model_index_ = 0;
  bool random_ = false;
};

}  // namespace dmc::core
