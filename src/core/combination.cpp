#include "core/combination.h"

#include <stdexcept>

namespace dmc::core {

namespace {

std::size_t checked_power(std::size_t base, int exponent) {
  std::size_t result = 1;
  for (int i = 0; i < exponent; ++i) {
    if (base != 0 && result > static_cast<std::size_t>(-1) / base) {
      throw std::overflow_error("CombinationSpace: n^m overflows");
    }
    result *= base;
  }
  return result;
}

}  // namespace

CombinationSpace::CombinationSpace(std::size_t num_paths, int transmissions)
    : num_paths_(num_paths),
      transmissions_(transmissions),
      size_(checked_power(num_paths, transmissions)) {
  if (num_paths == 0) {
    throw std::invalid_argument("CombinationSpace: need at least one path");
  }
  if (transmissions < 1) {
    throw std::invalid_argument("CombinationSpace: need >= 1 transmission");
  }
}

std::size_t CombinationSpace::attempt_path(std::size_t l, int k) const {
  if (l >= size_) throw std::out_of_range("combination index");
  if (k < 0 || k >= transmissions_) throw std::out_of_range("attempt index");
  for (int step = 0; step < k; ++step) l /= num_paths_;
  return l % num_paths_;
}

std::vector<std::size_t> CombinationSpace::decode(std::size_t l) const {
  if (l >= size_) throw std::out_of_range("combination index");
  std::vector<std::size_t> attempts(static_cast<std::size_t>(transmissions_));
  for (int k = 0; k < transmissions_; ++k) {
    attempts[static_cast<std::size_t>(k)] = l % num_paths_;
    l /= num_paths_;
  }
  return attempts;
}

std::size_t CombinationSpace::encode(
    std::span<const std::size_t> attempts) const {
  if (attempts.size() != static_cast<std::size_t>(transmissions_)) {
    throw std::invalid_argument("encode: wrong number of attempts");
  }
  std::size_t l = 0;
  std::size_t weight = 1;
  for (std::size_t k = 0; k < attempts.size(); ++k) {
    if (attempts[k] >= num_paths_) {
      throw std::out_of_range("encode: path index");
    }
    l += attempts[k] * weight;
    weight *= num_paths_;
  }
  return l;
}

std::string CombinationSpace::label(std::size_t l) const {
  std::string out = "x";
  const auto attempts = decode(l);
  for (std::size_t k = 0; k < attempts.size(); ++k) {
    if (k > 0) out += ",";
    out += std::to_string(attempts[k]);
  }
  return out;
}

}  // namespace dmc::core
