#include "core/paper_model.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/convolution.h"

namespace dmc::core {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct Indices {
  std::size_t i;  // first-transmission path, Equation 13
  std::size_t j;  // retransmission path
};

Indices split(std::size_t l, std::size_t n) { return {l % n, l / n}; }

void check_inputs(const PathSet& model_paths, const TrafficSpec& traffic) {
  if (model_paths.empty()) {
    throw std::invalid_argument("paper model: empty path set");
  }
  traffic.check();
}

}  // namespace

PaperMatrices build_paper_quality(const PathSet& model_paths,
                                  const TrafficSpec& traffic) {
  check_inputs(model_paths, traffic);
  const std::size_t n = model_paths.size();
  const std::size_t vars = n * n;
  const double lambda = traffic.rate_bps;
  const double delta = traffic.lifetime_s;
  const double dmin = model_paths.min_delay();

  PaperMatrices m;
  m.sense = lp::Sense::maximize;
  m.p.resize(vars);
  m.a = lp::Matrix(n + 1, vars, 0.0);
  m.q.resize(n + 1);
  m.b.assign(vars, 1.0);

  for (std::size_t l = 0; l < vars; ++l) {
    const auto [i, j] = split(l, n);
    const double tau_i = model_paths[i].loss_rate;
    const double tau_j = model_paths[j].loss_rate;
    const double d_i = model_paths[i].delay_s;
    const double d_j = model_paths[j].delay_s;

    // Equation 12.
    if (d_i + dmin + d_j <= delta) {
      m.p[l] = 1.0 - tau_i * tau_j;
    } else if (d_i <= delta) {
      m.p[l] = 1.0 - tau_i;
    } else {
      m.p[l] = 0.0;
    }

    // Equation 15 (bandwidth rows 0 .. n-1).
    for (std::size_t k = 0; k < n; ++k) {
      double& a = m.a(k, l);
      if (i == k && j == k) {
        a = lambda + lambda * tau_i;
      } else if (i != k && j == k) {
        a = lambda * tau_i;
      } else if (j != k && i == k) {
        a = lambda;
      } else {
        a = 0.0;
      }
    }

    // Equation 16 (cost row r).
    m.a(n, l) = lambda * model_paths[i].cost_per_bit +
                lambda * tau_i * model_paths[j].cost_per_bit;
  }

  // Equation 17.
  for (std::size_t k = 0; k < n; ++k) m.q[k] = model_paths[k].bandwidth_bps;
  m.q[n] = traffic.cost_cap_per_s;
  return m;
}

PaperMatrices build_paper_cost(const PathSet& model_paths,
                               const TrafficSpec& traffic,
                               double min_quality) {
  check_inputs(model_paths, traffic);
  if (min_quality < 0.0 || min_quality > 1.0) {
    throw std::invalid_argument("paper cost model: min_quality not in [0,1]");
  }
  const std::size_t n = model_paths.size();
  const std::size_t vars = n * n;
  const double lambda = traffic.rate_bps;
  const double delta = traffic.lifetime_s;
  const double dmin = model_paths.min_delay();

  PaperMatrices m;
  m.sense = lp::Sense::minimize;
  m.p.resize(vars);
  m.a = lp::Matrix(n + 1, vars, 0.0);
  m.q.resize(n + 1);
  m.b.assign(vars, 1.0);

  for (std::size_t l = 0; l < vars; ++l) {
    const auto [i, j] = split(l, n);
    const double tau_i = model_paths[i].loss_rate;
    const double tau_j = model_paths[j].loss_rate;
    const double d_i = model_paths[i].delay_s;
    const double d_j = model_paths[j].delay_s;

    // Equation 21: the objective is now the cost.
    m.p[l] = lambda * model_paths[i].cost_per_bit +
             lambda * tau_i * model_paths[j].cost_per_bit;

    // Bandwidth rows are unchanged (Equation 15).
    for (std::size_t k = 0; k < n; ++k) {
      double& a = m.a(k, l);
      if (i == k && j == k) {
        a = lambda + lambda * tau_i;
      } else if (i != k && j == k) {
        a = lambda * tau_i;
      } else if (j != k && i == k) {
        a = lambda;
      } else {
        a = 0.0;
      }
    }

    // Equation 22: negated quality coefficients in the last row.
    if (d_i + dmin + d_j <= delta) {
      m.a(n, l) = tau_i * tau_j - 1.0;
    } else if (d_i <= delta) {
      m.a(n, l) = tau_i - 1.0;
    } else {
      m.a(n, l) = 0.0;
    }
  }

  for (std::size_t k = 0; k < n; ++k) m.q[k] = model_paths[k].bandwidth_bps;
  // Equation 23 writes mu here; with the negated coefficients of Equation 22
  // the consistent bound for "quality >= mu" is -mu.
  m.q[n] = -min_quality;
  return m;
}

PaperMatrices build_paper_random_quality(
    const PathSet& model_paths, const TrafficSpec& traffic,
    const std::vector<std::vector<double>>& timeouts,
    const stats::ConvolutionOptions& convolution) {
  check_inputs(model_paths, traffic);
  const std::size_t n = model_paths.size();
  if (timeouts.size() != n) {
    throw std::invalid_argument("paper random model: timeout table size");
  }
  const std::size_t vars = n * n;
  const double lambda = traffic.rate_bps;
  const double delta = traffic.lifetime_s;

  // Ack return path (Equation 25) and the d_i + d_min distributions.
  const std::size_t min_index = model_paths.min_delay_index();
  const stats::DelayDistributionPtr ack_path =
      model_paths[min_index].distribution();
  std::vector<stats::DelayDistributionPtr> delay(n);
  std::vector<stats::DelayDistributionPtr> ack_delay(n);
  for (std::size_t i = 0; i < n; ++i) {
    delay[i] = model_paths[i].distribution();
    ack_delay[i] = model_paths[i].is_blackhole()
                       ? stats::make_deterministic(kInfinity)
                       : stats::sum_distribution(delay[i], ack_path,
                                                 convolution);
  }

  PaperMatrices m;
  m.sense = lp::Sense::maximize;
  m.p.resize(vars);
  m.a = lp::Matrix(n + 1, vars, 0.0);
  m.q.resize(n + 1);
  m.b.assign(vars, 1.0);

  for (std::size_t l = 0; l < vars; ++l) {
    const auto [i, j] = split(l, n);
    if (timeouts[i].size() != n) {
      throw std::invalid_argument("paper random model: timeout table shape");
    }
    const double t = timeouts[i][j];
    const double tau_i = model_paths[i].loss_rate;
    const double tau_j = model_paths[j].loss_rate;

    // Equation 27. With t = +inf the ack always wins the race, so
    // P(retrans) degrades to tau_i (or to 1 from the blackhole, whose "ack"
    // never arrives).
    double p_ack_by_t;
    if (std::isinf(t)) {
      p_ack_by_t = model_paths[i].is_blackhole() ? 0.0 : 1.0;
    } else {
      p_ack_by_t = ack_delay[i]->cdf(t);
    }
    const double p_retrans = 1.0 - p_ack_by_t * (1.0 - tau_i);

    // Equation 28, in the corrected product form (see Model::
    // compute_random_metrics): the data fails only if both attempts fail
    // to arrive in time, and failure of the first attempt always triggers
    // the second. The paper's printed sum adds P(retrans) * P(in time),
    // which double-counts deliveries whose (spurious) retransmission also
    // arrives, and can exceed 1 for tight timeouts.
    const double first_success =
        model_paths[i].is_blackhole()
            ? 0.0
            : delay[i]->cdf(delta) * (1.0 - tau_i);
    const double second_success =
        (model_paths[j].is_blackhole() || std::isinf(t))
            ? 0.0
            : delay[j]->cdf(delta - t) * (1.0 - tau_j);
    m.p[l] = 1.0 - (1.0 - first_success) * (1.0 - second_success);

    // Equation 29.
    for (std::size_t k = 0; k < n; ++k) {
      double& a = m.a(k, l);
      if (i == k && j == k) {
        a = lambda + lambda * p_retrans;
      } else if (i != k && j == k) {
        a = lambda * p_retrans;
      } else if (j != k && i == k) {
        a = lambda;
      } else {
        a = 0.0;
      }
    }

    // Equation 30.
    m.a(n, l) = lambda * model_paths[i].cost_per_bit +
                lambda * p_retrans * model_paths[j].cost_per_bit;
  }

  for (std::size_t k = 0; k < n; ++k) m.q[k] = model_paths[k].bandwidth_bps;
  m.q[n] = traffic.cost_cap_per_s;
  return m;
}

lp::Problem to_problem(const PaperMatrices& matrices) {
  lp::Problem problem;
  problem.sense = matrices.sense;
  problem.objective = matrices.p;
  for (std::size_t r = 0; r < matrices.a.rows(); ++r) {
    if (std::isinf(matrices.q[r])) continue;  // unbounded row: drop
    std::vector<double> row(matrices.a.row(r).begin(),
                            matrices.a.row(r).end());
    problem.add_constraint(std::move(row), lp::Relation::less_equal,
                           matrices.q[r], "paper_row_" + std::to_string(r));
  }
  problem.add_constraint(matrices.b, lp::Relation::equal, 1.0, "sum_x");
  return problem;
}

}  // namespace dmc::core
