#include "core/risk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmc::core {

namespace {

// P(Z > z) for standard normal Z.
double normal_tail(double z) {
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

}  // namespace

std::vector<UsageDistribution> per_path_usage(const Model& model,
                                              const std::vector<double>& x,
                                              double packet_bits) {
  const auto& combos = model.combos();
  const auto& metrics = model.metrics();
  if (x.size() != combos.size()) {
    throw std::invalid_argument("per_path_usage: x dimension");
  }
  const std::size_t n = model.model_paths().size();

  // First and second moments of per-packet load (in packets) per path,
  // mixing over the combination choice with weights x.
  std::vector<double> mean(n, 0.0);
  std::vector<double> second(n, 0.0);

  for (std::size_t l = 0; l < combos.size(); ++l) {
    if (x[l] <= 0.0) continue;
    const ComboMetrics& combo = metrics[l];
    const int m = combos.transmissions();

    // A packet assigned to this combination uses exactly attempts 0..k with
    // probability prefix_k - prefix_{k+1} (attempt k fired, k+1 did not);
    // the terminal stage k = m-1 keeps the whole remaining prefix_{m-1}.
    // The model stored prefix_k = P(attempt k fires) in stage_prefix.
    for (int k = 0; k < m; ++k) {
      const double p_stop =
          combo.stage_prefix[static_cast<std::size_t>(k)] -
          (k + 1 < m ? combo.stage_prefix[static_cast<std::size_t>(k) + 1]
                     : 0.0);
      if (p_stop <= 0.0) continue;
      // Count attempts on each path for the realized prefix 0..k.
      std::vector<int> count(n, 0);
      for (int u = 0; u <= k; ++u) {
        ++count[combo.attempts[static_cast<std::size_t>(u)]];
      }
      for (std::size_t path = 0; path < n; ++path) {
        if (count[path] == 0) continue;
        const double c = static_cast<double>(count[path]);
        mean[path] += x[l] * p_stop * c;
        second[path] += x[l] * p_stop * c * c;
      }
    }
  }

  std::vector<UsageDistribution> out(n);
  for (std::size_t path = 0; path < n; ++path) {
    out[path].mean = mean[path] * packet_bits;
    out[path].variance =
        std::max(0.0, second[path] - mean[path] * mean[path]) * packet_bits *
        packet_bits;
  }
  return out;
}

OvershootReport compute_overshoot(const Model& model,
                                  const std::vector<double>& x,
                                  double packet_bits,
                                  std::size_t window_packets) {
  if (window_packets == 0) {
    throw std::invalid_argument("compute_overshoot: empty window");
  }
  const auto usage = per_path_usage(model, x, packet_bits);
  const double lambda = model.traffic().rate_bps;
  const double window_seconds =
      static_cast<double>(window_packets) * packet_bits / lambda;
  const double nd = static_cast<double>(window_packets);

  OvershootReport report;
  report.window_packets = window_packets;
  report.bandwidth_overshoot.assign(usage.size(), 0.0);
  for (std::size_t path = 0; path < usage.size(); ++path) {
    const double cap = model.model_paths()[path].bandwidth_bps;
    if (std::isinf(cap)) continue;  // blackhole
    const double cap_bits = cap * window_seconds;
    const double mu = nd * usage[path].mean;
    const double sigma = std::sqrt(nd * usage[path].variance);
    if (sigma <= 0.0) {
      report.bandwidth_overshoot[path] = mu > cap_bits ? 1.0 : 0.0;
    } else {
      report.bandwidth_overshoot[path] = normal_tail((cap_bits - mu) / sigma);
    }
  }

  // Cost: expected per-packet cost and a conservative variance bound using
  // the per-path second moments scaled by cost-per-bit.
  const double mu_cap = model.traffic().cost_cap_per_s;
  if (!std::isinf(mu_cap)) {
    double cost_mean = 0.0;
    double cost_var = 0.0;
    for (std::size_t path = 0; path < usage.size(); ++path) {
      const double c = model.model_paths()[path].cost_per_bit;
      cost_mean += c * usage[path].mean;
      cost_var += c * c * usage[path].variance;
    }
    const double cap_total = mu_cap * window_seconds;
    const double mu_total = nd * cost_mean;
    const double sigma = std::sqrt(nd * cost_var);
    report.cost_overshoot =
        sigma <= 0.0 ? (mu_total > cap_total ? 1.0 : 0.0)
                     : normal_tail((cap_total - mu_total) / sigma);
  }
  return report;
}

RiskAdjustedPlanResult plan_with_risk_bound(const PathSet& paths,
                                            const TrafficSpec& traffic,
                                            double packet_bits,
                                            std::size_t window_packets,
                                            double max_overshoot,
                                            const PlanOptions& options) {
  if (max_overshoot <= 0.0 || max_overshoot >= 1.0) {
    throw std::invalid_argument("plan_with_risk_bound: bound not in (0,1)");
  }

  double shrink = 1.0;
  constexpr double kStep = 0.97;
  constexpr double kFloor = 0.5;
  int rounds = 0;

  while (true) {
    // Tighten the caps fed to the LP; the true caps stay the yardstick.
    PathSet tightened;
    for (const PathSpec& p : paths) {
      PathSpec q = p;
      q.bandwidth_bps = p.bandwidth_bps * shrink;
      tightened.add(std::move(q));
    }
    TrafficSpec t = traffic;
    if (!std::isinf(t.cost_cap_per_s)) t.cost_cap_per_s *= shrink;

    Plan plan = plan_max_quality(tightened, t, options);
    ++rounds;
    if (!plan.feasible()) {
      return {std::move(plan), OvershootReport{}, rounds, shrink};
    }

    // Judge overshoot against the *true* caps.
    auto true_model = std::make_shared<const Model>(paths, traffic,
                                                    options.model);
    OvershootReport report =
        compute_overshoot(*true_model, plan.x(), packet_bits, window_packets);
    double worst = report.cost_overshoot;
    for (double v : report.bandwidth_overshoot) worst = std::max(worst, v);

    if (worst <= max_overshoot || shrink <= kFloor) {
      return {std::move(plan), std::move(report), rounds, shrink};
    }
    shrink *= kStep;
  }
}

}  // namespace dmc::core
