#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dmc::core {

namespace {

void check_weights(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("scheduler: empty weight vector");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w < -1e-9) {
      throw std::invalid_argument("scheduler: negative weight");
    }
    sum += std::max(w, 0.0);
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument("scheduler: weights must sum to 1");
  }
}

}  // namespace

// ------------------------------------------------------------- Algorithm 1

DeficitScheduler::DeficitScheduler(std::vector<double> weights)
    : weights_(std::move(weights)), assigned_(weights_.size(), 0) {
  check_weights(weights_);
  for (double& w : weights_) w = std::max(w, 0.0);
}

std::size_t DeficitScheduler::select() {
  std::size_t result = 0;
  if (total_ == 0) {
    // First packet: the combination with the highest weight.
    result = static_cast<std::size_t>(
        std::max_element(weights_.begin(), weights_.end()) - weights_.begin());
  } else {
    // argmin over assigned[l]/total - x'_l; ties prefer larger weight.
    double best = std::numeric_limits<double>::infinity();
    const double total = static_cast<double>(total_);
    for (std::size_t l = 0; l < weights_.size(); ++l) {
      const double deficit =
          static_cast<double>(assigned_[l]) / total - weights_[l];
      if (deficit < best - 1e-15 ||
          (deficit <= best + 1e-15 && weights_[l] > weights_[result])) {
        best = deficit;
        result = l;
      }
    }
  }
  ++assigned_[result];
  ++total_;
  return result;
}

double DeficitScheduler::max_deviation() const {
  if (total_ == 0) return 0.0;
  double worst = 0.0;
  const double total = static_cast<double>(total_);
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    worst = std::max(
        worst,
        std::abs(static_cast<double>(assigned_[l]) / total - weights_[l]));
  }
  return worst;
}

// --------------------------------------------------------- weighted random

WeightedRandomScheduler::WeightedRandomScheduler(std::vector<double> weights,
                                                 std::uint64_t seed)
    : rng_(seed) {
  check_weights(weights);
  cumulative_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t l = 0; l < weights.size(); ++l) {
    acc += std::max(weights[l], 0.0);
    cumulative_[l] = acc;
  }
  cumulative_.back() = 1.0;
}

std::size_t WeightedRandomScheduler::select() {
  const double u = rng_.uniform();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(cumulative_.size()) - 1));
}

// -------------------------------------------------------------- round robin

RoundRobinScheduler::RoundRobinScheduler(const std::vector<double>& weights,
                                         int resolution) {
  check_weights(weights);
  if (resolution < 1) {
    throw std::invalid_argument("RoundRobinScheduler: resolution < 1");
  }
  // Largest-remainder quantization of the weights into `resolution` slots.
  const auto n = weights.size();
  std::vector<int> slots(n, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  int used = 0;
  for (std::size_t l = 0; l < n; ++l) {
    const double ideal = std::max(weights[l], 0.0) * resolution;
    slots[l] = static_cast<int>(ideal);
    used += slots[l];
    remainders.emplace_back(ideal - slots[l], l);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; used < resolution && k < remainders.size(); ++k) {
    ++slots[remainders[k].second];
    ++used;
  }

  // Interleave: place each combination's copies at evenly spaced ideal
  // positions, then stable-sort by position.
  std::vector<std::pair<double, std::size_t>> placed;
  placed.reserve(static_cast<std::size_t>(resolution));
  for (std::size_t l = 0; l < n; ++l) {
    for (int k = 0; k < slots[l]; ++k) {
      placed.emplace_back((k + 0.5) / slots[l], l);
    }
  }
  std::stable_sort(placed.begin(), placed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  cycle_.reserve(placed.size());
  for (const auto& [pos, l] : placed) cycle_.push_back(l);
  if (cycle_.empty()) {
    throw std::logic_error("RoundRobinScheduler: empty cycle");
  }
}

std::size_t RoundRobinScheduler::select() {
  const std::size_t out = cycle_[position_];
  position_ = (position_ + 1) % cycle_.size();
  return out;
}

// ------------------------------------------------------------------ factory

std::unique_ptr<ComboScheduler> make_scheduler(SchedulerKind kind,
                                               const std::vector<double>& x,
                                               std::uint64_t seed) {
  switch (kind) {
    case SchedulerKind::deficit:
      return std::make_unique<DeficitScheduler>(x);
    case SchedulerKind::weighted_random:
      return std::make_unique<WeightedRandomScheduler>(x, seed);
    case SchedulerKind::round_robin:
      return std::make_unique<RoundRobinScheduler>(x);
  }
  throw std::invalid_argument("make_scheduler: unknown kind");
}

}  // namespace dmc::core
