#include "core/timeout_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace dmc::core {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

double objective_at(const stats::DelayDistribution& ack_delay,
                    const stats::DelayDistribution& retrans_delay,
                    double deadline, double t) {
  const double ack = ack_delay.cdf(t);
  if (ack <= 0.0) return 0.0;
  const double retrans = retrans_delay.cdf(deadline - t);
  return ack * retrans;
}

// Bisects for the point where the objective crosses `threshold` between a
// point below it (`outside`) and a point at/above it (`inside`).
double bisect_edge(const stats::DelayDistribution& ack_delay,
                   const stats::DelayDistribution& retrans_delay,
                   double deadline, double threshold, double outside,
                   double inside, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (outside + inside);
    if (objective_at(ack_delay, retrans_delay, deadline, mid) >= threshold) {
      inside = mid;
    } else {
      outside = mid;
    }
  }
  return inside;
}

}  // namespace

TimeoutChoice optimize_timeout(const stats::DelayDistribution& ack_delay,
                               const stats::DelayDistribution& retrans_delay,
                               double deadline,
                               const TimeoutOptions& options) {
  if (options.coarse_points < 8) {
    throw std::invalid_argument("optimize_timeout: coarse_points too small");
  }
  TimeoutChoice choice;
  choice.timeout = kInfinity;

  // The ack needs at least ack_delay.min_support(); the retransmission needs
  // at least retrans_delay.min_support() of budget after t. Outside
  // [lo, hi] the objective is identically zero.
  const double lo = ack_delay.min_support();
  const double hi = deadline - retrans_delay.min_support();
  if (!(hi > lo) || std::isinf(lo)) {
    return choice;  // infeasible: never retransmit (t = inf)
  }

  // Coarse scan. Evaluate on a uniform grid including both endpoints.
  const int n = options.coarse_points;
  const double step = (hi - lo) / static_cast<double>(n);
  double best_value = 0.0;
  int best_index = -1;
  std::vector<double> values(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k <= n; ++k) {
    const double t = lo + step * static_cast<double>(k);
    const double v = objective_at(ack_delay, retrans_delay, deadline, t);
    values[static_cast<std::size_t>(k)] = v;
    if (v > best_value) {
      best_value = v;
      best_index = k;
    }
  }
  if (best_index < 0 || best_value <= 0.0) {
    return choice;  // infeasible within numerical resolution
  }

  // Locate the flat region {t : g(t) >= (1 - tol) * max} around the best
  // grid point and refine its edges by bisection.
  const double threshold = best_value * (1.0 - options.plateau_tolerance);
  int left = best_index;
  while (left > 0 && values[static_cast<std::size_t>(left - 1)] >= threshold) {
    --left;
  }
  int right = best_index;
  while (right < n && values[static_cast<std::size_t>(right + 1)] >= threshold) {
    ++right;
  }

  double left_edge = lo + step * static_cast<double>(left);
  if (left > 0) {
    left_edge = bisect_edge(ack_delay, retrans_delay, deadline, threshold,
                            left_edge - step, left_edge,
                            options.refine_iterations);
  }
  double right_edge = lo + step * static_cast<double>(right);
  if (right < n) {
    right_edge = bisect_edge(ack_delay, retrans_delay, deadline, threshold,
                             right_edge + step, right_edge,
                             options.refine_iterations);
  }

  choice.timeout = options.plateau_policy == PlateauPolicy::leftmost
                       ? left_edge
                       : 0.5 * (left_edge + right_edge);
  choice.p_ack_in_time = ack_delay.cdf(choice.timeout);
  choice.p_retrans_in_time = retrans_delay.cdf(deadline - choice.timeout);
  choice.objective = choice.p_ack_in_time * choice.p_retrans_in_time;
  choice.feasible = choice.objective > 0.0;
  return choice;
}

}  // namespace dmc::core
