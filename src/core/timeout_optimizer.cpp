#include "core/timeout_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace dmc::core {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

double objective_at(const stats::DelayDistribution& ack_delay,
                    const stats::DelayDistribution& retrans_delay,
                    double deadline, double t) {
  const double ack = ack_delay.cdf(t);
  if (ack <= 0.0) return 0.0;
  const double retrans = retrans_delay.cdf(deadline - t);
  return ack * retrans;
}

// Bisects for the point where the objective crosses `threshold` between a
// point below it (`outside`) and a point at/above it (`inside`).
double bisect_edge(const stats::DelayDistribution& ack_delay,
                   const stats::DelayDistribution& retrans_delay,
                   double deadline, double threshold, double outside,
                   double inside, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (outside + inside);
    if (objective_at(ack_delay, retrans_delay, deadline, mid) >= threshold) {
      inside = mid;
    } else {
      outside = mid;
    }
  }
  return inside;
}

}  // namespace

namespace {

// Scan resolution: enough points that the grid step tracks the faster of
// the two CDFs (see TimeoutOptions::scan_points_per_sigma), clamped to
// [min_coarse_points, coarse_points]. Sigma is a smoothness proxy, so it
// only applies to continuous inputs: atomic distributions (empirical,
// deterministic) jump instantaneously no matter their spread, and a
// sigma-coarsened grid could step right over a narrow plateau between two
// far-apart atoms — those keep the full coarse grid.
int scan_points(const stats::DelayDistribution& ack_delay,
                const stats::DelayDistribution& retrans_delay, double lo,
                double hi, const TimeoutOptions& options) {
  if (options.scan_points_per_sigma <= 0.0) return options.coarse_points;
  if (!ack_delay.continuous() || !retrans_delay.continuous()) {
    return options.coarse_points;
  }
  const double sigma = stats::min_positive_sigma(ack_delay, retrans_delay);
  if (!std::isfinite(sigma)) return options.coarse_points;
  const double target =
      std::ceil((hi - lo) / sigma * options.scan_points_per_sigma);
  const int floor_points =
      std::min(options.min_coarse_points, options.coarse_points);
  if (target >= static_cast<double>(options.coarse_points)) {
    return options.coarse_points;
  }
  return std::max(floor_points, static_cast<int>(target));
}

}  // namespace

TimeoutChoice optimize_timeout(const stats::DelayDistribution& ack_delay,
                               const stats::DelayDistribution& retrans_delay,
                               double deadline,
                               const TimeoutOptions& options) {
  if (options.coarse_points < 8 || options.min_coarse_points < 8) {
    throw std::invalid_argument("optimize_timeout: coarse_points too small");
  }
  TimeoutChoice choice;
  choice.timeout = kInfinity;

  // The ack needs at least ack_delay.min_support(); the retransmission needs
  // at least retrans_delay.min_support() of budget after t. Outside
  // [lo, hi] the objective is identically zero.
  const double lo = ack_delay.min_support();
  const double hi = deadline - retrans_delay.min_support();
  if (!(hi > lo) || std::isinf(lo)) {
    return choice;  // infeasible: never retransmit (t = inf)
  }
  if (std::isinf(hi)) {
    // Infinite deadline: everything arrives in time, so retransmission
    // timing is moot — "wait forever" loses nothing, and a finite scan
    // grid over [lo, inf) would be built from NaNs.
    return choice;
  }

  // Coarse scan on a uniform grid including both endpoints. Both CDFs are
  // evaluated with one batched grid call each (no per-point virtual
  // dispatch; the gamma kernel amortizes its transcendentals), then the
  // objective at t_k = lo + k * step is ack[k] * retrans[n - k], since
  // deadline - t_k walks the retransmission grid backwards.
  const int n = scan_points(ack_delay, retrans_delay, lo, hi, options);
  const double step = (hi - lo) / static_cast<double>(n);
  std::vector<double> ack_values(static_cast<std::size_t>(n) + 1);
  std::vector<double> retrans_values(static_cast<std::size_t>(n) + 1);
  ack_delay.cdf_grid(lo, step, ack_values.size(), ack_values.data());
  retrans_delay.cdf_grid(deadline - hi, step, retrans_values.size(),
                         retrans_values.data());
  double best_value = 0.0;
  int best_index = -1;
  std::vector<double> values(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k <= n; ++k) {
    const double v = ack_values[static_cast<std::size_t>(k)] *
                     retrans_values[static_cast<std::size_t>(n - k)];
    values[static_cast<std::size_t>(k)] = v;
    if (v > best_value) {
      best_value = v;
      best_index = k;
    }
  }
  if (best_index < 0 || best_value <= 0.0) {
    return choice;  // infeasible within numerical resolution
  }

  // Locate the flat region {t : g(t) >= (1 - tol) * max} around the best
  // grid point and refine its edges by bisection.
  const double threshold = best_value * (1.0 - options.plateau_tolerance);
  int left = best_index;
  while (left > 0 && values[static_cast<std::size_t>(left - 1)] >= threshold) {
    --left;
  }
  int right = best_index;
  while (right < n && values[static_cast<std::size_t>(right + 1)] >= threshold) {
    ++right;
  }

  double left_edge = lo + step * static_cast<double>(left);
  if (left > 0) {
    left_edge = bisect_edge(ack_delay, retrans_delay, deadline, threshold,
                            left_edge - step, left_edge,
                            options.refine_iterations);
  }
  double right_edge = lo + step * static_cast<double>(right);
  if (right < n) {
    right_edge = bisect_edge(ack_delay, retrans_delay, deadline, threshold,
                             right_edge + step, right_edge,
                             options.refine_iterations);
  }

  choice.timeout = options.plateau_policy == PlateauPolicy::leftmost
                       ? left_edge
                       : 0.5 * (left_edge + right_edge);
  choice.p_ack_in_time = ack_delay.cdf(choice.timeout);
  choice.p_retrans_in_time = retrans_delay.cdf(deadline - choice.timeout);
  choice.objective = choice.p_ack_in_time * choice.p_retrans_in_time;
  choice.feasible = choice.objective > 0.0;
  return choice;
}

}  // namespace dmc::core
