// Literal transcription of the paper's matrices:
//   * Equations 11-18: quality-maximization (objective p, constraint matrix
//     A with bandwidth rows and the cost row r, bounds q, sum row B);
//   * Equations 20-23: cost-minimization variant;
//   * Equations 28-30: random-delay coefficients given a timeout table.
//
// These builders exist to cross-check the general m-transmission model in
// model.h at coefficient level (tests/test_paper_model.cpp) and to keep an
// executable record of the paper's exact notation. Production code should
// use core::Model, which subsumes them.
#pragma once

#include <vector>

#include "core/path.h"
#include "lp/matrix.h"
#include "lp/problem.h"
#include "stats/convolution.h"
#include "stats/distributions.h"

namespace dmc::core {

// The matrices of Equation 10 / 20. Layout follows the paper exactly:
// variables are vectorized with i = l mod n, j = floor(l / n) (Equation 13),
// A has one bandwidth row per model path followed by the r row, and q lists
// the bandwidth bounds followed by the last bound (mu, or -mu_quality for
// the cost variant; see DESIGN.md on the sign).
struct PaperMatrices {
  std::vector<double> p;   // objective, size n^2
  lp::Matrix a;            // (n + 1) x n^2
  std::vector<double> q;   // size n + 1
  std::vector<double> b;   // sum row, size n^2 (all ones)
  lp::Sense sense = lp::Sense::maximize;
  // Relation of the last A row (<= for cost-capped quality maximization;
  // the quality bound in the cost variant is also expressed as <= via the
  // negated coefficients of Equation 22).
};

// `model_paths` are the paths exactly as the model sees them, i.e. with the
// blackhole already inserted at index 0 if desired (Equation 19).
PaperMatrices build_paper_quality(const PathSet& model_paths,
                                  const TrafficSpec& traffic);

PaperMatrices build_paper_cost(const PathSet& model_paths,
                               const TrafficSpec& traffic,
                               double min_quality);

// Equations 28-30: same layout, but delivery/retransmission probabilities
// come from the delay distributions and the supplied timeout table
// t[i][j] = t_{i,j} (entries may be +inf for "never retransmit").
// `convolution` controls the grids behind the d_i + d_min distributions.
PaperMatrices build_paper_random_quality(
    const PathSet& model_paths, const TrafficSpec& traffic,
    const std::vector<std::vector<double>>& timeouts,
    const stats::ConvolutionOptions& convolution = {});

// Converts the matrices into a solver-ready problem. Rows whose bound is
// +inf (the blackhole's bandwidth row, or an absent cost cap) are dropped.
lp::Problem to_problem(const PaperMatrices& matrices);

}  // namespace dmc::core
