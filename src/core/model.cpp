#include "core/model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "stats/convolution.h"

namespace dmc::core {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

PathSet build_model_paths(const PathSet& real_paths, bool use_blackhole) {
  std::vector<PathSpec> paths;
  paths.reserve(real_paths.size() + 1);
  if (use_blackhole) paths.push_back(blackhole_path());
  for (const PathSpec& p : real_paths) paths.push_back(p);
  return PathSet(std::move(paths));
}

}  // namespace

Model::Model(PathSet real_paths, TrafficSpec traffic, ModelOptions options)
    : real_paths_(std::move(real_paths)),
      model_paths_(build_model_paths(real_paths_, options.use_blackhole)),
      traffic_(traffic),
      options_(options),
      combos_(model_paths_.size(), options.transmissions) {
  if (real_paths_.empty()) {
    throw std::invalid_argument("Model: need at least one real path");
  }
  for (const PathSpec& p : real_paths_) {
    if (p.is_blackhole()) {
      throw std::invalid_argument(
          "Model: blackhole is added automatically; pass real paths only");
    }
  }
  traffic_.check();
  if (options_.timeout_guard_s < 0.0) {
    throw std::invalid_argument("Model: negative timeout guard");
  }

  dmin_model_index_ = model_paths_.min_delay_index();
  dmin_ = model_paths_.min_delay();

  random_ = options_.force_random || model_paths_.any_random();
  std::vector<ComboMetrics> metrics(combos_.size());
  if (random_) {
    compute_random_metrics(metrics);
  } else {
    compute_deterministic_metrics(metrics);
  }
  metrics_ = std::make_shared<const std::vector<ComboMetrics>>(
      std::move(metrics));
}

void Model::compute_deterministic_metrics(
    std::vector<ComboMetrics>& metrics) const {
  const int m = options_.transmissions;
  const std::size_t n = model_paths_.size();
  const double delta = traffic_.lifetime_s;

  // Equation 4 (+ optional guard): timeout after a transmission on path i.
  std::vector<double> timeout_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    timeout_of[i] = model_paths_[i].delay_s + dmin_ + options_.timeout_guard_s;
  }

  for (std::size_t l = 0; l < combos_.size(); ++l) {
    ComboMetrics& combo = metrics[l];
    combo.attempts = combos_.decode(l);
    combo.expected_load.assign(n, 0.0);
    combo.timeouts.clear();

    double prefix = 1.0;     // probability all previous attempts failed
    double departure = 0.0;  // when this attempt is (re)transmitted
    for (int k = 0; k < m; ++k) {
      const std::size_t path = combo.attempts[static_cast<std::size_t>(k)];
      const PathSpec& spec = model_paths_[path];

      combo.stage_prefix.push_back(prefix);
      combo.expected_load[path] += prefix;
      combo.cost_per_bit += prefix * spec.cost_per_bit;

      const double arrival = departure + spec.delay_s;
      if (arrival <= delta) {
        combo.delivery_probability += prefix * (1.0 - spec.loss_rate);
      }

      if (k + 1 < m) {
        combo.timeouts.push_back(timeout_of[path]);
        departure += timeout_of[path];
      }
      prefix *= spec.loss_rate;
    }
  }
}

void Model::compute_random_metrics(
    std::vector<ComboMetrics>& metrics) const {
  const int m = options_.transmissions;
  const std::size_t n = model_paths_.size();
  const double delta = traffic_.lifetime_s;

  // Delay distribution per model path and the ack return path (Eq. 25).
  std::vector<stats::DelayDistributionPtr> delay(n);
  for (std::size_t i = 0; i < n; ++i) {
    delay[i] = model_paths_[i].distribution();
  }
  const stats::DelayDistributionPtr ack_path_delay = delay[dmin_model_index_];

  // CDF of d_i + d_min per path (the convolution in Equation 34), cached.
  std::vector<stats::DelayDistributionPtr> ack_delay(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (model_paths_[i].is_blackhole()) {
      ack_delay[i] = stats::make_deterministic(kInfinity);
    } else {
      ack_delay[i] = stats::sum_distribution(delay[i], ack_path_delay,
                                             options_.convolution);
    }
  }

  // Pairwise timeouts t_{i,j} (Equation 26/34) and retransmission
  // probabilities P(retrans_{i,j}) (Equation 27), cached per (i, j).
  // t_{i,j} depends only on the absolute deadline, so for m > 2 the same
  // pairwise table applies at every stage (one-step lookahead).
  std::vector<std::vector<TimeoutChoice>> timeout(n,
                                                  std::vector<TimeoutChoice>(n));
  std::vector<std::vector<double>> p_retrans(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const double tau_i = model_paths_[i].loss_rate;
    for (std::size_t j = 0; j < n; ++j) {
      if (model_paths_[j].is_blackhole()) {
        // "Retransmit onto the blackhole" = give up: never fires.
        timeout[i][j].timeout = kInfinity;
        timeout[i][j].feasible = false;
        timeout[i][j].p_ack_in_time = 1.0;  // wait forever: ack always beats t
        timeout[i][j].p_retrans_in_time = 0.0;
      } else {
        timeout[i][j] =
            optimize_timeout(*ack_delay[i], *delay[j], delta, options_.timeout);
      }
      // Equation 27 with t = the chosen timeout. For an infeasible pair the
      // timeout is +inf, so P(d_i + d_min <= t) -> 1 and P(retrans) = tau_i,
      // consistent with the deterministic model.
      const double p_ack = std::isinf(timeout[i][j].timeout)
                               ? (model_paths_[i].is_blackhole() ? 0.0 : 1.0)
                               : timeout[i][j].p_ack_in_time;
      p_retrans[i][j] = 1.0 - p_ack * (1.0 - tau_i);
    }
  }

  for (std::size_t l = 0; l < combos_.size(); ++l) {
    ComboMetrics& combo = metrics[l];
    combo.attempts = combos_.decode(l);
    combo.expected_load.assign(n, 0.0);
    combo.timeouts.clear();

    // Delivery accounting: the data misses its deadline only if *every*
    // attempt fails to arrive in time, and a failed attempt (lost, or
    // arriving past the deadline) never produces an acknowledgment before
    // the timer, so the next attempt always fires on failure. Hence
    //   p = 1 - prod_k (1 - (1 - tau_k) P(depart_k + d_k <= delta)).
    // The paper's Equation 28 instead adds P(retrans) * P(in time) on top
    // of the first attempt's term; because P(retrans) (Equation 27) also
    // counts *spurious* retransmissions (delivered, but the ack lost the
    // race with the timer), that sum double-counts and can exceed 1 when
    // timeouts are tight relative to the delay spread. The product form
    // here is exact under the model's independence assumptions and reduces
    // to Equation 12 for deterministic delays.
    //
    // Bandwidth and cost, by contrast, are *spent* on spurious
    // retransmissions, so the load prefix keeps the paper's Equation 27
    // probabilities exactly as in Equations 29-30.
    double load_prefix = 1.0;   // prod of P(retrans), Equation 27
    double failure = 1.0;       // prod of per-attempt failure probabilities
    double departure = 0.0;     // sum of previous timeouts
    for (int k = 0; k < m; ++k) {
      const std::size_t path = combo.attempts[static_cast<std::size_t>(k)];
      const PathSpec& spec = model_paths_[path];

      combo.stage_prefix.push_back(load_prefix);
      combo.expected_load[path] += load_prefix;
      combo.cost_per_bit += load_prefix * spec.cost_per_bit;

      if (!std::isinf(departure) && !spec.is_blackhole()) {
        const double p_arrive = delay[path]->cdf(delta - departure);
        failure *= 1.0 - (1.0 - spec.loss_rate) * p_arrive;
      }

      if (k + 1 < m) {
        const std::size_t next =
            combo.attempts[static_cast<std::size_t>(k + 1)];
        combo.timeouts.push_back(timeout[path][next].timeout);
        departure += timeout[path][next].timeout;
        load_prefix *= p_retrans[path][next];
      }
    }
    combo.delivery_probability = 1.0 - failure;
  }
}

void Model::add_shared_constraints(lp::Problem& problem) const {
  const std::size_t n = model_paths_.size();
  const double lambda = traffic_.rate_bps;

  // Bandwidth rows (Equations 2-3 / 14-15). The blackhole has infinite
  // bandwidth, so its row is omitted (see blackhole_path()).
  for (std::size_t path = 0; path < n; ++path) {
    const double cap = model_paths_[path].bandwidth_bps;
    if (std::isinf(cap)) continue;
    std::vector<double> row(combos_.size(), 0.0);
    for (std::size_t l = 0; l < combos_.size(); ++l) {
      row[l] = lambda * (*metrics_)[l].expected_load[path];
    }
    problem.add_constraint(std::move(row), lp::Relation::less_equal, cap,
                           "bandwidth[" + model_paths_[path].name + "]");
  }

  // Sum-to-1 row (Equations 8 / 18).
  problem.add_constraint(std::vector<double>(combos_.size(), 1.0),
                         lp::Relation::equal, 1.0, "sum_x");
}

lp::Problem Model::quality_lp() const {
  lp::Problem problem;
  problem.sense = lp::Sense::maximize;
  problem.objective.resize(combos_.size());
  for (std::size_t l = 0; l < combos_.size(); ++l) {
    problem.objective[l] = (*metrics_)[l].delivery_probability;
  }

  add_shared_constraints(problem);

  // Cost row (Equations 7 / 16), skipped when mu is unbounded.
  if (!std::isinf(traffic_.cost_cap_per_s)) {
    std::vector<double> row(combos_.size(), 0.0);
    for (std::size_t l = 0; l < combos_.size(); ++l) {
      row[l] = traffic_.rate_bps * (*metrics_)[l].cost_per_bit;
    }
    problem.add_constraint(std::move(row), lp::Relation::less_equal,
                           traffic_.cost_cap_per_s, "cost");
  }
  return problem;
}

lp::Problem Model::quality_lp_normalized() const {
  const std::size_t n = model_paths_.size();
  lp::Problem problem;
  problem.sense = lp::Sense::maximize;
  problem.objective.resize(combos_.size());
  for (std::size_t l = 0; l < combos_.size(); ++l) {
    problem.objective[l] = (*metrics_)[l].delivery_probability;
  }

  const double lambda = traffic_.rate_bps;
  for (std::size_t path = 0; path < n; ++path) {
    const double cap = model_paths_[path].bandwidth_bps;
    if (std::isinf(cap)) continue;
    std::vector<double> row(combos_.size(), 0.0);
    for (std::size_t l = 0; l < combos_.size(); ++l) {
      row[l] = (*metrics_)[l].expected_load[path];
    }
    problem.add_constraint(std::move(row), lp::Relation::less_equal,
                           cap / lambda,
                           "bandwidth[" + model_paths_[path].name + "]");
  }
  problem.add_constraint(std::vector<double>(combos_.size(), 1.0),
                         lp::Relation::equal, 1.0, "sum_x");
  if (!std::isinf(traffic_.cost_cap_per_s)) {
    std::vector<double> row(combos_.size(), 0.0);
    for (std::size_t l = 0; l < combos_.size(); ++l) {
      row[l] = (*metrics_)[l].cost_per_bit;
    }
    problem.add_constraint(std::move(row), lp::Relation::less_equal,
                           traffic_.cost_cap_per_s / lambda, "cost");
  }
  return problem;
}

Model Model::rebind(const TrafficSpec& traffic,
                    const std::vector<double>& real_bandwidth_bps) const {
  if (traffic.lifetime_s != traffic_.lifetime_s) {
    throw std::invalid_argument(
        "Model::rebind: lifetime changed; combination metrics would be stale");
  }
  traffic.check();
  if (real_bandwidth_bps.size() != real_paths_.size()) {
    throw std::invalid_argument(
        "Model::rebind: bandwidth count does not match path count");
  }
  Model copy = *this;
  std::vector<PathSpec> paths;
  paths.reserve(real_paths_.size());
  for (std::size_t i = 0; i < real_paths_.size(); ++i) {
    PathSpec path = real_paths_[i];
    path.bandwidth_bps = real_bandwidth_bps[i];
    paths.push_back(std::move(path));
  }
  copy.real_paths_ = PathSet(std::move(paths));  // re-checks bandwidth > 0
  copy.model_paths_ =
      build_model_paths(copy.real_paths_, copy.options_.use_blackhole);
  copy.traffic_ = traffic;
  return copy;
}

lp::Problem Model::cost_min_lp(double min_quality) const {
  if (min_quality < 0.0 || min_quality > 1.0) {
    throw std::invalid_argument("cost_min_lp: min_quality must be in [0,1]");
  }
  lp::Problem problem;
  problem.sense = lp::Sense::minimize;
  problem.objective.resize(combos_.size());
  for (std::size_t l = 0; l < combos_.size(); ++l) {
    problem.objective[l] = traffic_.rate_bps * (*metrics_)[l].cost_per_bit;
  }

  add_shared_constraints(problem);

  // Quality bound (Equations 21-23): sum p_l x_l >= min_quality.
  std::vector<double> row(combos_.size(), 0.0);
  for (std::size_t l = 0; l < combos_.size(); ++l) {
    row[l] = (*metrics_)[l].delivery_probability;
  }
  problem.add_constraint(std::move(row), lp::Relation::greater_equal,
                         min_quality, "quality");
  return problem;
}

PlanMetrics Model::evaluate(const std::vector<double>& x) const {
  if (x.size() != combos_.size()) {
    throw std::invalid_argument("evaluate: x has wrong dimension");
  }
  PlanMetrics out;
  out.send_rate_bps.assign(model_paths_.size(), 0.0);
  for (std::size_t l = 0; l < combos_.size(); ++l) {
    out.quality += (*metrics_)[l].delivery_probability * x[l];
    out.cost_per_s += traffic_.rate_bps * (*metrics_)[l].cost_per_bit * x[l];
    for (std::size_t path = 0; path < model_paths_.size(); ++path) {
      out.send_rate_bps[path] +=
          traffic_.rate_bps * (*metrics_)[l].expected_load[path] * x[l];
    }
  }
  return out;
}

}  // namespace dmc::core
