// Discretization of the LP solution into per-packet decisions.
//
// The fractional optimum x' must be turned into an integral packet-to-
// combination assignment. DeficitScheduler implements the paper's
// Algorithm 1: keep per-combination assignment counts and always pick the
// combination lagging furthest behind its ideal share. Two alternatives
// (weighted random and proportional round-robin) exist for the scheduler
// ablation bench.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "stats/rng.h"

namespace dmc::core {

class ComboScheduler {
 public:
  virtual ~ComboScheduler() = default;
  // Returns the combination index for the next packet.
  virtual std::size_t select() = 0;
};

// Algorithm 1. Deterministic; guarantees the realized distribution tracks
// x' with bounded deficit. Ties in the argmin are broken toward the larger
// target weight (the algorithm as printed would otherwise starve into
// zero-weight combinations when all deficits are equal), then toward the
// smaller index for determinism.
class DeficitScheduler final : public ComboScheduler {
 public:
  explicit DeficitScheduler(std::vector<double> weights);

  std::size_t select() override;

  const std::vector<std::int64_t>& assigned() const { return assigned_; }
  std::int64_t total() const { return total_; }
  const std::vector<double>& weights() const { return weights_; }

  // max_l |assigned[l]/total - x'_l| — the discretization error so far.
  double max_deviation() const;

 private:
  std::vector<double> weights_;
  std::vector<std::int64_t> assigned_;
  std::int64_t total_ = 0;
};

// I.i.d. sampling proportional to x'. Unbiased but with multinomial
// variance; the ablation shows what Algorithm 1's determinism buys.
class WeightedRandomScheduler final : public ComboScheduler {
 public:
  WeightedRandomScheduler(std::vector<double> weights, std::uint64_t seed);
  std::size_t select() override;

 private:
  std::vector<double> cumulative_;
  stats::Rng rng_;
};

// Fixed cyclic schedule built from an integer quantization of x' (largest-
// remainder method over `resolution` slots), then interleaved by walking
// each combination's ideal positions. Deterministic like Algorithm 1 but
// with a fixed period.
class RoundRobinScheduler final : public ComboScheduler {
 public:
  RoundRobinScheduler(const std::vector<double>& weights, int resolution = 128);
  std::size_t select() override;

  const std::vector<std::size_t>& cycle() const { return cycle_; }

 private:
  std::vector<std::size_t> cycle_;
  std::size_t position_ = 0;
};

// Factory used by benches/tests.
enum class SchedulerKind { deficit, weighted_random, round_robin };
std::unique_ptr<ComboScheduler> make_scheduler(SchedulerKind kind,
                                               const std::vector<double>& x,
                                               std::uint64_t seed = 1);

}  // namespace dmc::core
