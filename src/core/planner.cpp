#include "core/planner.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dmc::core {

Plan::Plan(std::shared_ptr<const Model> model, lp::Solution solution)
    : model_(std::move(model)), solution_(std::move(solution)) {
  if (!model_) throw std::invalid_argument("Plan: null model");
  if (solution_.optimal()) {
    metrics_ = model_->evaluate(solution_.x);
  } else {
    solution_.x.assign(model_->combos().size(), 0.0);
  }
}

std::vector<std::pair<std::size_t, double>> Plan::nonzero_weights(
    double threshold) const {
  std::vector<std::pair<std::size_t, double>> out;
  for (std::size_t l = 0; l < solution_.x.size(); ++l) {
    if (solution_.x[l] > threshold) out.emplace_back(l, solution_.x[l]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::string Plan::summary() const {
  std::ostringstream out;
  if (!feasible()) {
    out << "infeasible (" << lp::to_string(status()) << ")";
    return out.str();
  }
  bool first = true;
  for (const auto& [l, w] : nonzero_weights()) {
    if (!first) out << "  ";
    first = false;
    out << label(l) << "=" << w;
  }
  out << "  Q=" << quality();
  return out.str();
}

namespace {

Plan solve(std::shared_ptr<const Model> model, const lp::Problem& problem,
           const lp::SimplexSolver::Options& solver_options) {
  const lp::SimplexSolver solver(solver_options);
  return Plan(std::move(model), solver.solve(problem));
}

}  // namespace

Plan plan_max_quality(const PathSet& paths, const TrafficSpec& traffic,
                      const PlanOptions& options) {
  auto model = std::make_shared<const Model>(paths, traffic, options.model);
  return solve(model, model->quality_lp(), options.solver);
}

Plan plan_min_cost(const PathSet& paths, const TrafficSpec& traffic,
                   double min_quality, const PlanOptions& options) {
  auto model = std::make_shared<const Model>(paths, traffic, options.model);
  return solve(model, model->cost_min_lp(min_quality), options.solver);
}

Plan plan_single_path(const PathSet& paths, std::size_t index,
                      const TrafficSpec& traffic,
                      const PlanOptions& options) {
  if (index >= paths.size()) {
    throw std::out_of_range("plan_single_path: path index");
  }
  PathSet single;
  single.add(paths[index]);
  return plan_max_quality(single, traffic, options);
}

}  // namespace dmc::core
