#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dmc::core {

Plan::Plan(std::shared_ptr<const Model> model, lp::Solution solution)
    : model_(std::move(model)), solution_(std::move(solution)) {
  if (!model_) throw std::invalid_argument("Plan: null model");
  if (solution_.optimal()) {
    metrics_ = model_->evaluate(solution_.x);
  } else {
    solution_.x.assign(model_->combos().size(), 0.0);
  }
}

std::vector<std::pair<std::size_t, double>> Plan::nonzero_weights(
    double threshold) const {
  std::vector<std::pair<std::size_t, double>> out;
  for (std::size_t l = 0; l < solution_.x.size(); ++l) {
    if (solution_.x[l] > threshold) out.emplace_back(l, solution_.x[l]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::string Plan::summary() const {
  std::ostringstream out;
  if (!feasible()) {
    out << "infeasible (" << lp::to_string(status()) << ")";
    return out.str();
  }
  bool first = true;
  for (const auto& [l, w] : nonzero_weights()) {
    if (!first) out << "  ";
    first = false;
    out << label(l) << "=" << w;
  }
  out << "  Q=" << quality();
  return out.str();
}

namespace {

Plan solve(std::shared_ptr<const Model> model, const lp::Problem& problem,
           const lp::SimplexSolver::Options& solver_options) {
  const lp::SimplexSolver solver(solver_options);
  return Plan(std::move(model), solver.solve(problem));
}

}  // namespace

Plan plan_max_quality(const PathSet& paths, const TrafficSpec& traffic,
                      const PlanOptions& options) {
  auto model = std::make_shared<const Model>(paths, traffic, options.model);
  return solve(model, model->quality_lp(), options.solver);
}

PathSet apply_cross_traffic(const PathSet& paths, const CrossTraffic& cross) {
  if (cross.background_bps.size() > paths.size()) {
    throw std::invalid_argument(
        "apply_cross_traffic: more background entries than paths");
  }
  if (cross.min_bandwidth_bps <= 0.0) {
    throw std::invalid_argument(
        "apply_cross_traffic: min bandwidth must be > 0");
  }
  PathSet out;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    PathSpec path = paths[i];
    const double background =
        i < cross.background_bps.size() ? cross.background_bps[i] : 0.0;
    if (background < 0.0) {
      throw std::invalid_argument(
          "apply_cross_traffic: negative background load");
    }
    if (path.is_blackhole() || background == 0.0) {
      out.add(std::move(path));
      continue;
    }
    const double capacity = path.bandwidth_bps;
    path.bandwidth_bps =
        std::max(cross.min_bandwidth_bps, capacity - background);
    if (cross.queue_delay_at_half_load_s > 0.0) {
      // u / (1 - u), normalized to contribute exactly the configured value
      // at u = 0.5 and capped; saturation (u >= 1) pins the cap.
      const double u = std::min(background / capacity, 1.0);
      const double extra =
          u >= 1.0 ? cross.max_queue_delay_s
                   : std::min(cross.max_queue_delay_s,
                              cross.queue_delay_at_half_load_s * u / (1.0 - u));
      if (path.delay_dist) {
        path.delay_dist = stats::make_shifted(path.delay_dist, extra);
      } else {
        path.delay_s += extra;
      }
    }
    out.add(std::move(path));
  }
  return out;
}

Plan plan_max_quality(const PathSet& paths, const TrafficSpec& traffic,
                      const CrossTraffic& cross, const PlanOptions& options) {
  return plan_max_quality(apply_cross_traffic(paths, cross), traffic, options);
}

Plan plan_min_cost(const PathSet& paths, const TrafficSpec& traffic,
                   double min_quality, const PlanOptions& options) {
  auto model = std::make_shared<const Model>(paths, traffic, options.model);
  return solve(model, model->cost_min_lp(min_quality), options.solver);
}

namespace {

// A cached model's combination metrics stay valid when the new inputs
// differ only in bandwidth and rate / cost cap: metrics depend on delays,
// losses, per-bit costs, and the lifetime alone. Random-delay paths compare
// by distribution identity — apply_cross_traffic builds fresh shifted
// distributions when it inflates delays, so a delay change can never alias
// a cached model.
bool rebindable(const Model& model, const PathSet& paths,
                const TrafficSpec& traffic) {
  if (traffic.lifetime_s != model.traffic().lifetime_s) return false;
  const PathSet& base = model.real_paths();
  if (paths.size() != base.size()) return false;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const PathSpec& a = base[i];
    const PathSpec& b = paths[i];
    if (a.delay_dist != b.delay_dist) return false;
    if (!a.delay_dist && a.delay_s != b.delay_s) return false;
    if (a.loss_rate != b.loss_rate || a.cost_per_bit != b.cost_per_bit) {
      return false;
    }
  }
  return true;
}

// The bandwidth column of apply_cross_traffic — same derate rule, same
// argument checks — without materializing the derated PathSet. Bit-for-bit
// agreement with apply_cross_traffic is what keeps the warm fast path and
// the cold rebuild path planning against identical capacities.
std::vector<double> derated_bandwidth(const PathSet& paths,
                                      const CrossTraffic& cross) {
  if (cross.background_bps.size() > paths.size()) {
    throw std::invalid_argument(
        "apply_cross_traffic: more background entries than paths");
  }
  if (cross.min_bandwidth_bps <= 0.0) {
    throw std::invalid_argument(
        "apply_cross_traffic: min bandwidth must be > 0");
  }
  std::vector<double> out;
  out.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const double background =
        i < cross.background_bps.size() ? cross.background_bps[i] : 0.0;
    if (background < 0.0) {
      throw std::invalid_argument(
          "apply_cross_traffic: negative background load");
    }
    out.push_back(background == 0.0 || paths[i].is_blackhole()
                      ? paths[i].bandwidth_bps
                      : std::max(cross.min_bandwidth_bps,
                                 paths[i].bandwidth_bps - background));
  }
  return out;
}

}  // namespace

Planner::Planner(Options options) : options_(std::move(options)) {
  lp::IncrementalSolver::Options solver_options;
  solver_options.simplex = options_.plan.solver;
  solver_ = lp::IncrementalSolver(solver_options);
}

Planner::Planner(PlanOptions plan_options, bool warm_start)
    : Planner(Options{std::move(plan_options), warm_start}) {}

Plan Planner::solve_model(std::shared_ptr<const Model> model) {
  lp::Problem problem = model->quality_lp_normalized();
  lp::Solution solution = options_.warm_start ? solver_.resolve(problem)
                                              : solver_.solve(problem);
  cached_ = model;
  return Plan(std::move(model), std::move(solution));
}

bool Planner::delta_compatible(const PathSet& paths,
                               const TrafficSpec& traffic) const {
  if (!options_.warm_start || !cached_) return false;
  if (!rebindable(*cached_, paths, traffic)) return false;
  // The stored LP's row layout must survive: a cost row appears exactly
  // when the cost cap is finite, and every real path must own a (finite)
  // bandwidth row for the row <-> path index mapping to hold.
  if (std::isinf(traffic.cost_cap_per_s) !=
      std::isinf(cached_->traffic().cost_cap_per_s)) {
    return false;
  }
  const std::size_t expected_rows =
      paths.size() + 1 + (std::isinf(traffic.cost_cap_per_s) ? 0 : 1);
  if (solver_.problem().num_constraints() != expected_rows ||
      solver_.problem().num_variables() != cached_->combos().size()) {
    return false;
  }
  for (const PathSpec& path : paths) {
    if (!std::isfinite(path.bandwidth_bps)) return false;
  }
  return true;
}

Plan Planner::plan_delta(const TrafficSpec& traffic,
                         std::vector<double> bandwidth) {
  // Hot path: the cached metrics and the solver's stored LP carry over;
  // new capacities and rate are a pure rhs patch (objective == delivery
  // probabilities, untouched by rate and bandwidth).
  auto model =
      std::make_shared<const Model>(cached_->rebind(traffic, bandwidth));
  const double lambda = traffic.rate_bps;
  lp::ProblemDelta delta;
  delta.rhs.reserve(bandwidth.size() + 1);
  for (std::size_t i = 0; i < bandwidth.size(); ++i) {
    delta.rhs.push_back({i, bandwidth[i] / lambda});
  }
  if (!std::isinf(traffic.cost_cap_per_s)) {
    delta.rhs.push_back(
        {bandwidth.size() + 1, traffic.cost_cap_per_s / lambda});
  }
  lp::Solution solution = solver_.resolve(delta);
  cached_ = model;
  return Plan(std::move(model), std::move(solution));
}

Plan Planner::plan(const PathSet& paths, const TrafficSpec& traffic) {
  if (delta_compatible(paths, traffic)) {
    std::vector<double> bandwidth;
    bandwidth.reserve(paths.size());
    for (const PathSpec& path : paths) {
      bandwidth.push_back(path.bandwidth_bps);
    }
    return plan_delta(traffic, std::move(bandwidth));
  }
  std::shared_ptr<const Model> model;
  if (options_.warm_start && cached_ && rebindable(*cached_, paths, traffic)) {
    std::vector<double> bandwidth;
    bandwidth.reserve(paths.size());
    for (const PathSpec& path : paths) {
      bandwidth.push_back(path.bandwidth_bps);
    }
    model = std::make_shared<const Model>(cached_->rebind(traffic, bandwidth));
  } else {
    model = std::make_shared<const Model>(paths, traffic, options_.plan.model);
  }
  return solve_model(std::move(model));
}

Plan Planner::plan(const PathSet& paths, const TrafficSpec& traffic,
                   const CrossTraffic& cross) {
  // Without queueing-delay inflation the cross traffic only derates
  // bandwidth, so the derated PathSet never needs to exist on the hot path.
  if (cross.queue_delay_at_half_load_s == 0.0 &&
      delta_compatible(paths, traffic)) {
    return plan_delta(traffic, derated_bandwidth(paths, cross));
  }
  return plan(apply_cross_traffic(paths, cross), traffic);
}

Plan Planner::replan(const Plan& previous, const ReplanDelta& delta) {
  const Model& base = previous.model();
  if (delta.bandwidth_bps.size() != base.real_paths().size()) {
    throw std::invalid_argument(
        "ReplanDelta: bandwidth count does not match the plan's path count");
  }
  auto model = std::make_shared<const Model>(
      base.rebind(base.traffic(), delta.bandwidth_bps));
  // Fast path: the solver still holds this plan's LP, so the new capacities
  // are a pure rhs delta — no problem rebuild, a few dual pivots. The row
  // mapping (bandwidth row i == real path i) assumes every real path has a
  // finite capacity row; an infinite-bandwidth path drops its row, so that
  // (unusual) shape takes the generic path below.
  bool finite_caps = true;
  for (const PathSpec& path : base.real_paths()) {
    finite_caps = finite_caps && std::isfinite(path.bandwidth_bps);
  }
  for (const double cap : delta.bandwidth_bps) {
    finite_caps = finite_caps && std::isfinite(cap);
  }
  if (finite_caps && options_.warm_start && solver_.has_basis() &&
      cached_ == previous.model_ptr()) {
    const double lambda = base.traffic().rate_bps;
    lp::ProblemDelta lp_delta;
    lp_delta.rhs.reserve(delta.bandwidth_bps.size());
    for (std::size_t i = 0; i < delta.bandwidth_bps.size(); ++i) {
      lp_delta.rhs.push_back({i, delta.bandwidth_bps[i] / lambda});
    }
    lp::Solution solution = solver_.resolve(lp_delta);
    cached_ = model;
    return Plan(std::move(model), std::move(solution));
  }
  return solve_model(std::move(model));
}

Plan plan_single_path(const PathSet& paths, std::size_t index,
                      const TrafficSpec& traffic,
                      const PlanOptions& options) {
  if (index >= paths.size()) {
    throw std::out_of_range("plan_single_path: path index");
  }
  PathSet single;
  single.add(paths[index]);
  return plan_max_quality(single, traffic, options);
}

}  // namespace dmc::core
