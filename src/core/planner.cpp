#include "core/planner.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dmc::core {

Plan::Plan(std::shared_ptr<const Model> model, lp::Solution solution)
    : model_(std::move(model)), solution_(std::move(solution)) {
  if (!model_) throw std::invalid_argument("Plan: null model");
  if (solution_.optimal()) {
    metrics_ = model_->evaluate(solution_.x);
  } else {
    solution_.x.assign(model_->combos().size(), 0.0);
  }
}

std::vector<std::pair<std::size_t, double>> Plan::nonzero_weights(
    double threshold) const {
  std::vector<std::pair<std::size_t, double>> out;
  for (std::size_t l = 0; l < solution_.x.size(); ++l) {
    if (solution_.x[l] > threshold) out.emplace_back(l, solution_.x[l]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::string Plan::summary() const {
  std::ostringstream out;
  if (!feasible()) {
    out << "infeasible (" << lp::to_string(status()) << ")";
    return out.str();
  }
  bool first = true;
  for (const auto& [l, w] : nonzero_weights()) {
    if (!first) out << "  ";
    first = false;
    out << label(l) << "=" << w;
  }
  out << "  Q=" << quality();
  return out.str();
}

namespace {

Plan solve(std::shared_ptr<const Model> model, const lp::Problem& problem,
           const lp::SimplexSolver::Options& solver_options) {
  const lp::SimplexSolver solver(solver_options);
  return Plan(std::move(model), solver.solve(problem));
}

}  // namespace

Plan plan_max_quality(const PathSet& paths, const TrafficSpec& traffic,
                      const PlanOptions& options) {
  auto model = std::make_shared<const Model>(paths, traffic, options.model);
  return solve(model, model->quality_lp(), options.solver);
}

PathSet apply_cross_traffic(const PathSet& paths, const CrossTraffic& cross) {
  if (cross.background_bps.size() > paths.size()) {
    throw std::invalid_argument(
        "apply_cross_traffic: more background entries than paths");
  }
  if (cross.min_bandwidth_bps <= 0.0) {
    throw std::invalid_argument(
        "apply_cross_traffic: min bandwidth must be > 0");
  }
  PathSet out;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    PathSpec path = paths[i];
    const double background =
        i < cross.background_bps.size() ? cross.background_bps[i] : 0.0;
    if (background < 0.0) {
      throw std::invalid_argument(
          "apply_cross_traffic: negative background load");
    }
    if (path.is_blackhole() || background == 0.0) {
      out.add(std::move(path));
      continue;
    }
    const double capacity = path.bandwidth_bps;
    path.bandwidth_bps =
        std::max(cross.min_bandwidth_bps, capacity - background);
    if (cross.queue_delay_at_half_load_s > 0.0) {
      // u / (1 - u), normalized to contribute exactly the configured value
      // at u = 0.5 and capped; saturation (u >= 1) pins the cap.
      const double u = std::min(background / capacity, 1.0);
      const double extra =
          u >= 1.0 ? cross.max_queue_delay_s
                   : std::min(cross.max_queue_delay_s,
                              cross.queue_delay_at_half_load_s * u / (1.0 - u));
      if (path.delay_dist) {
        path.delay_dist = stats::make_shifted(path.delay_dist, extra);
      } else {
        path.delay_s += extra;
      }
    }
    out.add(std::move(path));
  }
  return out;
}

Plan plan_max_quality(const PathSet& paths, const TrafficSpec& traffic,
                      const CrossTraffic& cross, const PlanOptions& options) {
  return plan_max_quality(apply_cross_traffic(paths, cross), traffic, options);
}

Plan plan_min_cost(const PathSet& paths, const TrafficSpec& traffic,
                   double min_quality, const PlanOptions& options) {
  auto model = std::make_shared<const Model>(paths, traffic, options.model);
  return solve(model, model->cost_min_lp(min_quality), options.solver);
}

Plan plan_single_path(const PathSet& paths, std::size_t index,
                      const TrafficSpec& traffic,
                      const PlanOptions& options) {
  if (index >= paths.size()) {
    throw std::out_of_range("plan_single_path: path index");
  }
  PathSet single;
  single.add(paths[index]);
  return plan_max_quality(single, traffic, options);
}

}  // namespace dmc::core
