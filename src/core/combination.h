// Path combinations and their vectorization.
//
// The paper's decision variable is a matrix x where x_{i,j} is the fraction
// of traffic first sent on path i and, if needed, retransmitted on path j;
// it is vectorized into x' with i = l mod n, j = floor(l / n) (Equation 13).
// This class generalizes that indexing to m transmissions: attempt k of
// combination l uses path (l / n^k) mod n, so m = 2 reproduces Equation 13
// exactly.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dmc::core {

class CombinationSpace {
 public:
  // num_paths = n (model paths, including the blackhole when enabled),
  // transmissions = m >= 1 (initial transmission plus m-1 retransmissions).
  CombinationSpace(std::size_t num_paths, int transmissions);

  std::size_t num_paths() const { return num_paths_; }
  int transmissions() const { return transmissions_; }
  std::size_t size() const { return size_; }  // n^m

  // Path index used by attempt k (0-based) of combination l.
  std::size_t attempt_path(std::size_t l, int k) const;

  // Full attempt sequence (i_0, ..., i_{m-1}) of combination l.
  std::vector<std::size_t> decode(std::size_t l) const;

  std::size_t encode(std::span<const std::size_t> attempts) const;

  // Display label in the paper's notation, e.g. "x1,2".
  std::string label(std::size_t l) const;

 private:
  std::size_t num_paths_;
  int transmissions_;
  std::size_t size_;
};

}  // namespace dmc::core
