#include "lint/lint.h"

#include <algorithm>
#include <tuple>
#include <array>
#include <cctype>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/format.h"

namespace dmc::lint {
namespace {

// ------------------------------------------------------------------ lexer ---

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  std::string_view text;  // view into FileInput::text
  int line = 0;
  TokKind kind = TokKind::kPunct;
};

struct StringLit {
  std::string_view content;  // raw bytes between the quotes (escapes kept)
  int line = 0;
};

struct Annotation {
  int line = 0;              // line the comment appears on
  int target_line = 0;       // line the allow() applies to
  std::vector<std::string> rules;
  std::vector<bool> used;    // parallel to rules
};

// Lexed view of one file: the token stream (comments, literals and
// preprocessor directives removed), the string literals, and the allow
// annotations found in comments.
struct LexedFile {
  const FileInput* input = nullptr;
  std::vector<Token> tokens;
  std::vector<StringLit> strings;
  std::vector<Annotation> annotations;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Parses "dmc-lint: allow(rule-a, rule-b) justification..." out of a comment
// body. The marker must open the comment (only whitespace before it), so
// prose that merely *mentions* the syntax never becomes an annotation; text
// after the closing paren is the encouraged per-entry justification.
bool parse_allow(std::string_view comment, std::vector<std::string>* rules) {
  std::size_t marker = 0;
  while (marker < comment.size() &&
         (comment[marker] == ' ' || comment[marker] == '\t')) {
    ++marker;
  }
  if (comment.substr(marker, 9) != "dmc-lint:") return false;
  std::size_t pos = comment.find("allow(", marker + 9);
  if (pos == std::string_view::npos) return false;
  pos += 6;
  const std::size_t close = comment.find(')', pos);
  if (close == std::string_view::npos) return false;
  std::string_view list = comment.substr(pos, close - pos);
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string_view::npos) comma = list.size();
    std::string_view item = list.substr(start, comma - start);
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (!item.empty()) rules->emplace_back(item);
    if (comma == list.size()) break;
    start = comma + 1;
  }
  return !rules->empty();
}

// Tokenizes one translation unit. Line-oriented enough to know whether an
// annotation comment shares its line with code; otherwise a plain
// state-machine scan. Raw strings, line splices and preprocessor directives
// are handled so banned identifiers inside them can never fire.
LexedFile lex(const FileInput& input) {
  LexedFile out;
  out.input = &input;
  const std::string& s = input.text;
  const std::size_t n = s.size();
  std::size_t i = 0;
  int line = 1;
  bool line_has_token = false;     // code token seen on the current line
  int pending_annotation = -1;     // index into out.annotations awaiting code

  auto note_comment = [&](std::string_view body, int comment_line,
                          bool code_before) {
    std::vector<std::string> rules;
    if (!parse_allow(body, &rules)) return;
    Annotation ann;
    ann.line = comment_line;
    ann.rules = std::move(rules);
    ann.used.assign(ann.rules.size(), false);
    if (code_before) {
      ann.target_line = comment_line;
      out.annotations.push_back(std::move(ann));
    } else {
      // Standalone comment: applies to the next line that carries code; the
      // target is patched when that token arrives.
      ann.target_line = 0;
      out.annotations.push_back(std::move(ann));
      pending_annotation = static_cast<int>(out.annotations.size()) - 1;
    }
  };

  auto newline = [&] {
    ++line;
    line_has_token = false;
  };

  // First code on its line: resolves any standalone annotation waiting for a
  // target. Called for tokens and string literals alike.
  auto mark_code = [&] {
    if (line_has_token) return;
    line_has_token = true;
    if (pending_annotation >= 0) {
      out.annotations[static_cast<std::size_t>(pending_annotation)]
          .target_line = line;
      pending_annotation = -1;
    }
  };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line splice.
    if (c == '\\' && i + 1 < n && (s[i + 1] == '\n' || s[i + 1] == '\r')) {
      i += (s[i + 1] == '\r' && i + 2 < n && s[i + 2] == '\n') ? 3 : 2;
      newline();
      continue;
    }
    // Preprocessor directive: only when '#' opens the line's code; consume
    // through (spliced) end of line. Comments inside are still honored for
    // annotations, strings inside are ignored.
    if (c == '#' && !line_has_token) {
      while (i < n) {
        if (s[i] == '\n') break;
        if (s[i] == '\\' && i + 1 < n && s[i + 1] == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (s[i] == '/' && i + 1 < n && s[i + 1] == '/') {
          // e.g. `#include <x>  // dmc-lint: allow(...)` — not supported on
          // directives; skip to end of line.
          while (i < n && s[i] != '\n') ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && s[i] != '\n') ++i;
      note_comment(std::string_view(s).substr(start, i - start), line,
                   line_has_token);
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const std::size_t start = i + 2;
      const int comment_line = line;
      const bool code_before = line_has_token;
      i += 2;
      while (i + 1 < n && !(s[i] == '*' && s[i + 1] == '/')) {
        if (s[i] == '\n') ++line;
        ++i;
      }
      const std::size_t end = std::min(i, n);
      i = std::min(i + 2, n);
      note_comment(std::string_view(s).substr(start, end - start),
                   comment_line, code_before);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"' &&
        (i == 0 || !ident_char(s[i - 1]))) {
      std::size_t d = i + 2;
      while (d < n && s[d] != '(') ++d;
      const std::string closer =
          ")" + std::string(s.substr(i + 2, d - (i + 2))) + "\"";
      const std::size_t body = d + 1;
      const std::size_t end = s.find(closer, body);
      const std::size_t stop = end == std::string::npos ? n : end;
      out.strings.push_back(
          {std::string_view(s).substr(body, stop - body), line});
      mark_code();
      for (std::size_t k = i; k < stop; ++k) {
        if (s[k] == '\n') ++line;
      }
      i = end == std::string::npos ? n : end + closer.size();
      continue;
    }
    // String / char literal (escape-aware; newlines inside are ill-formed in
    // C++ so the line counter can ignore them).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t body = i + 1;
      mark_code();
      ++i;
      while (i < n && s[i] != quote) {
        if (s[i] == '\\' && i + 1 < n) ++i;
        if (s[i] == '\n') ++line;  // tolerate malformed input
        ++i;
      }
      if (quote == '"') {
        out.strings.push_back(
            {std::string_view(s).substr(body, i - body), line});
      }
      i = std::min(i + 1, n);
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(s[i])) ++i;
      out.tokens.push_back({std::string_view(s).substr(start, i - start),
                            line, TokKind::kIdent});
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // pp-number: good enough to keep `1e5f`, `0x1p-3`, `1'000` atomic.
      const std::size_t start = i;
      ++i;
      while (i < n) {
        const char d = s[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (s[i - 1] == 'e' || s[i - 1] == 'E' || s[i - 1] == 'p' ||
                    s[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.tokens.push_back({std::string_view(s).substr(start, i - start),
                            line, TokKind::kNumber});
    } else {
      // Punctuation; '::' is merged so scope patterns are one token.
      std::size_t len = 1;
      if (c == ':' && i + 1 < n && s[i + 1] == ':') len = 2;
      out.tokens.push_back(
          {std::string_view(s).substr(i, len), line, TokKind::kPunct});
      i += len;
    }
    mark_code();
  }
  return out;
}

// ---------------------------------------------------------------- scoping ---

std::string slashed(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

// alloc-* rules enforce the PR-6 zero-alloc contract, which covers the
// simulator core and the protocol layer only.
bool in_alloc_scope(std::string_view path) {
  const std::string p = slashed(path);
  return p.find("src/sim/") != std::string::npos ||
         p.find("src/protocol/") != std::string::npos;
}

// ------------------------------------------------------------ rule engine ---

struct Engine {
  const Options* options = nullptr;
  std::vector<LexedFile> files;
  // Identifiers declared (anywhere in the scanned set) with an
  // unordered_{map,set} type, including through local `using` aliases.
  std::set<std::string, std::less<>> unordered_names;
  std::vector<Finding> findings;
  std::size_t suppressed = 0;

  // Emits unless an annotation covering (file, line) allows `rule`.
  void emit(LexedFile& f, int line, std::string_view rule,
            std::string message) {
    for (Annotation& ann : f.annotations) {
      if (ann.target_line != line) continue;
      for (std::size_t r = 0; r < ann.rules.size(); ++r) {
        if (ann.rules[r] == rule) {
          ann.used[r] = true;
          ++suppressed;
          return;
        }
      }
    }
    findings.push_back(
        {f.input->path, line, std::string(rule), std::move(message)});
  }

  // ---- declaration collection (pass 1) ----

  // After an `unordered_map` / `unordered_set` / alias token at `i`, skips a
  // balanced template argument list and returns the declared identifier, or
  // empty when the construct is not a declaration (e.g. `::iterator`).
  static std::string_view declared_name(const std::vector<Token>& t,
                                        std::size_t i) {
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") {
      int depth = 0;
      while (j < t.size()) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") {
          if (--depth == 0) {
            ++j;
            break;
          }
        }
        if (t[j].text == ";") return {};  // comparison, not a template list
        ++j;
      }
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent) return t[j].text;
    return {};
  }

  void collect_unordered_decls(const LexedFile& f) {
    const auto& t = f.tokens;
    std::set<std::string_view> aliases;
    auto is_unordered = [&](std::string_view text) {
      return text == "unordered_map" || text == "unordered_set" ||
             text == "unordered_multimap" || text == "unordered_multiset" ||
             aliases.count(text) > 0;
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
      // `using Alias = ... unordered_map<...> ... ;`
      if (t[i].text == "using" && i + 2 < t.size() &&
          t[i + 1].kind == TokKind::kIdent && t[i + 2].text == "=") {
        for (std::size_t j = i + 3; j < t.size() && t[j].text != ";"; ++j) {
          if (is_unordered(t[j].text)) {
            aliases.insert(t[i + 1].text);
            break;
          }
        }
        continue;
      }
      if (!is_unordered(t[i].text) || t[i].kind != TokKind::kIdent) continue;
      const std::string_view name = declared_name(t, i);
      if (!name.empty()) unordered_names.insert(std::string(name));
    }
  }

  // ---- per-file rules (pass 2) ----

  void determinism_rules(LexedFile& f) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const std::string_view id = t[i].text;
      const bool call = i + 1 < t.size() && t[i + 1].text == "(";
      const bool member =
          i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
      if ((id == "rand" || id == "srand") && call && !member) {
        emit(f, t[i].line, "det-rand",
             "C rand()/srand() is non-deterministic across libcs; use the "
             "seeded stats::Rng streams");
      } else if (id == "random_device") {
        emit(f, t[i].line, "det-random-device",
             "std::random_device draws hardware entropy; seed stats::Rng "
             "deterministically instead");
      } else if (id == "system_clock" || id == "high_resolution_clock" ||
                 id == "steady_clock") {
        emit(f, t[i].line, "det-wallclock",
             "wallclock reads are non-deterministic; only "
             "wallclock-telemetry paths may read " +
                 std::string(id) + " (annotate them)");
      } else if (id == "getenv" && call && !member) {
        emit(f, t[i].line, "det-getenv",
             "getenv() makes results depend on the host environment; "
             "annotate overrides that never change simulated results");
      }
    }
    // Range-for over an identifier declared (anywhere in the scan) as an
    // unordered container: iteration order is implementation-defined, so
    // anything it feeds (exports, fingerprints, admission order) goes
    // non-deterministic.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].text == "for" && t[i + 1].text == "(") {
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
          if (t[j].text == "(") ++depth;
          if (t[j].text == ")" && --depth == 0) {
            close = j;
            break;
          }
          if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
        }
        if (colon == 0 || close == 0) continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (t[j].kind == TokKind::kIdent &&
              unordered_names.count(t[j].text) > 0) {
            emit(f, t[i].line, "det-unordered-iter",
                 "range-for over unordered container '" +
                     std::string(t[j].text) +
                     "': iteration order is non-deterministic; sort keys "
                     "first or annotate");
            break;
          }
        }
      }
      // Explicit iterator entry points on tracked names.
      if (t[i].kind == TokKind::kIdent && unordered_names.count(t[i].text) &&
          i + 3 < t.size() && t[i + 1].text == "." &&
          (t[i + 2].text == "begin" || t[i + 2].text == "cbegin") &&
          t[i + 3].text == "(") {
        emit(f, t[i].line, "det-unordered-iter",
             "iterating unordered container '" + std::string(t[i].text) +
                 "' via begin(): order is non-deterministic; sort keys "
                 "first or annotate");
      }
    }
  }

  void alloc_rules(LexedFile& f) {
    if (!in_alloc_scope(f.input->path)) return;
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const std::string_view id = t[i].text;
      const bool std_qualified = i >= 2 && t[i - 1].text == "::" &&
                                 t[i - 2].text == "std";
      if (id == "function" &&
          (std_qualified || (i + 1 < t.size() && t[i + 1].text == "<"))) {
        emit(f, t[i].line, "alloc-function",
             "std::function type-erases with heap storage; hot paths use "
             "inline-callback slots (annotate setup-only hooks)");
      } else if (id == "shared_ptr" || id == "make_shared" ||
                 id == "weak_ptr") {
        emit(f, t[i].line, "alloc-shared-ptr",
             "shared_ptr control blocks allocate and refcount; the "
             "sim/protocol core owns via pools and values");
      } else if (id == "new") {
        // Placement new (`new (addr) T`) constructs without allocating and
        // is the sanctioned pool idiom — next token '(' skips. A real
        // allocation call spelled `::operator new(...)` still fires via the
        // preceding `operator` keyword.
        const bool placement = i + 1 < t.size() && t[i + 1].text == "(" &&
                               !(i > 0 && t[i - 1].text == "operator");
        if (!placement) {
          emit(f, t[i].line, "alloc-new",
               "bare new in the zero-alloc core; allocate through the pool "
               "arenas (annotate cold-path growth sites)");
        }
      }
    }
  }

  // Extracts dotted "dmc.….vN" schema ids from a string literal body.
  static std::vector<std::string> schema_ids(std::string_view text) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while ((pos = text.find("dmc.", pos)) != std::string_view::npos) {
      if (pos > 0 && (ident_char(text[pos - 1]) || text[pos - 1] == '.')) {
        ++pos;
        continue;
      }
      std::size_t end = pos;
      while (end < text.size() &&
             (ident_char(text[end]) || text[end] == '.')) {
        ++end;
      }
      std::string_view token = text.substr(pos, end - pos);
      while (!token.empty() && token.back() == '.') token.remove_suffix(1);
      // Versioned schema: last dotted component is v<digits>.
      const std::size_t dot = token.rfind('.');
      if (dot != std::string_view::npos && dot + 1 < token.size() &&
          token[dot + 1] == 'v') {
        bool digits = dot + 2 < token.size();
        for (std::size_t k = dot + 2; k < token.size(); ++k) {
          digits = digits && std::isdigit(static_cast<unsigned char>(
                                 token[k])) != 0;
        }
        if (digits) out.emplace_back(token);
      }
      pos = end;
    }
    return out;
  }

  void export_rules(LexedFile& f) {
    bool exports_schema = false;
    for (const StringLit& lit : f.strings) {
      for (const std::string& id : schema_ids(lit.content)) {
        exports_schema = true;
        if (options->readme_text.find(id) == std::string::npos) {
          emit(f, lit.line, "export-schema-doc",
               "schema string \"" + id +
                   "\" is not documented in the README schema table");
        }
      }
    }
    if (!exports_schema) return;
    // Inside schema-exporting translation units, std::to_string is banned:
    // for floats it is locale-dependent and not round-trip safe (the
    // fingerprint contract needs hexfloat / to_chars), and the lexer cannot
    // prove an argument is integral.
    const auto& t = f.tokens;
    for (std::size_t i = 2; i < t.size(); ++i) {
      if (t[i].text == "to_string" && t[i - 1].text == "::" &&
          t[i - 2].text == "std") {
        emit(f, t[i].line, "export-float",
             "std::to_string in a schema-export unit: locale-dependent and "
             "lossy for floats; use util::to_decimal / std::to_chars / "
             "hexfloat");
      }
    }
  }

  void unused_allow_rule(const LexedFile& f) {
    static const std::set<std::string_view> known = [] {
      std::set<std::string_view> k;
      for (const auto& [id, desc] : rule_catalog()) k.insert(id);
      return k;
    }();
    for (const Annotation& ann : f.annotations) {
      for (std::size_t r = 0; r < ann.rules.size(); ++r) {
        if (known.count(ann.rules[r]) == 0) {
          findings.push_back({f.input->path, ann.line, "unused-allow",
                              "allow(" + ann.rules[r] +
                                  ") names an unknown rule"});
        } else if (!ann.used[r]) {
          findings.push_back({f.input->path, ann.line, "unused-allow",
                              "allow(" + ann.rules[r] +
                                  ") suppressed nothing; remove it"});
        }
      }
    }
  }
};

}  // namespace

Report run(const std::vector<FileInput>& files, const Options& options) {
  Engine engine;
  engine.options = &options;
  engine.files.reserve(files.size());
  for (const FileInput& input : files) {
    engine.files.push_back(lex(input));
    engine.collect_unordered_decls(engine.files.back());
  }
  for (LexedFile& f : engine.files) {
    engine.determinism_rules(f);
    engine.alloc_rules(f);
    engine.export_rules(f);
  }
  if (options.check_unused_allow) {
    for (const LexedFile& f : engine.files) engine.unused_allow_rule(f);
  }
  std::sort(engine.findings.begin(), engine.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  Report report;
  report.findings = std::move(engine.findings);
  report.files_scanned = files.size();
  report.suppressed = engine.suppressed;
  return report;
}

std::vector<std::pair<std::string_view, std::string_view>> rule_catalog() {
  return {
      {"det-rand", "C rand()/srand(): non-deterministic across libcs"},
      {"det-random-device", "std::random_device: hardware entropy seed"},
      {"det-wallclock",
       "system/high_resolution/steady_clock outside telemetry paths"},
      {"det-getenv", "getenv-derived behavior without an annotation"},
      {"det-unordered-iter",
       "iteration over unordered containers (order feeds exports)"},
      {"alloc-function",
       "std::function in the zero-alloc sim/protocol core"},
      {"alloc-shared-ptr",
       "shared_ptr/make_shared/weak_ptr in the zero-alloc core"},
      {"alloc-new", "bare non-placement new in the zero-alloc core"},
      {"export-schema-doc",
       "\"dmc.*.vN\" schema string missing from the README table"},
      {"export-float",
       "std::to_string in a schema-export unit (not float-safe)"},
      {"unused-allow", "allow() annotation that suppressed nothing"},
  };
}

std::string to_json(const Report& report, double elapsed_ms) {
  auto escape = [](std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          out += c;
      }
    }
    return out;
  };
  auto decimal = [](double value) {
    char buffer[32];
    const auto [ptr, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    return ec == std::errc() ? std::string(buffer, ptr) : std::string("null");
  };
  std::string out = "{\"schema\":\"dmc.lint.v1\"";
  out += ",\"files\":" + util::to_decimal(report.files_scanned);
  out += ",\"suppressed\":" + util::to_decimal(report.suppressed);
  if (elapsed_ms >= 0) out += ",\"elapsed_ms\":" + decimal(elapsed_ms);
  out += ",\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i > 0) out += ",";
    out += "{\"file\":\"" + escape(f.path) + "\"";
    out += ",\"line\":" + util::to_decimal(f.line);
    out += ",\"rule\":\"" + escape(f.rule) + "\"";
    out += ",\"message\":\"" + escape(f.message) + "\"}";
  }
  out += "]}";
  return out;
}

std::vector<std::string> default_targets(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const char* dir : {"src", "tools", "tests", "bench"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      const std::string rel =
          fs::relative(entry.path(), fs::path(root)).generic_string();
      // The fixture corpus exists to violate the rules.
      if (rel.find("tests/lint_fixtures/") != std::string::npos) continue;
      out.push_back(rel);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace dmc::lint
