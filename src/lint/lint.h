// dmc_lint: a lexer-level determinism & concurrency static analyzer for this
// repository's contract set. It tokenizes C++ sources (comments, string
// literals and preprocessor directives stripped from the token stream) and
// matches per-rule token patterns, so it needs no compiler front-end and
// scans the whole tree in milliseconds.
//
// Rule families (catalog + rationale in README "Correctness tooling"):
//   determinism  det-rand, det-random-device, det-wallclock, det-getenv,
//                det-unordered-iter
//   allocation   alloc-function, alloc-shared-ptr, alloc-new
//                (scoped to src/sim + src/protocol per the PR-6 zero-alloc
//                contract)
//   export       export-schema-doc, export-float
//   hygiene      unused-allow (an allow annotation that suppressed nothing)
//
// Suppression: `// dmc-lint: allow(rule-a, rule-b)` on the offending line, or
// on its own line to cover the next line with code. Every annotation must
// suppress at least one finding or `unused-allow` fires, so the allowlist
// can never rot.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace dmc::lint {

// One diagnostic: `path` is reported exactly as the caller spelled it (rule
// scoping also keys off this spelling, e.g. "src/sim/" enables alloc-*).
struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

// A source file to scan. The analyzer never touches the filesystem: the CLI
// and the tests both load content themselves, which also lets tests place
// fixture content on any virtual path to exercise rule scoping.
struct FileInput {
  std::string path;
  std::string text;
};

struct Options {
  // README.md content; every "dmc.*.vN" schema string literal found in the
  // scanned sources must appear verbatim in it (export-schema-doc).
  std::string readme_text;
  // Report allow annotations that suppressed nothing (unused-allow).
  bool check_unused_allow = true;
};

struct Report {
  std::vector<Finding> findings;  // sorted by (path, line, rule)
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  // findings silenced by allow annotations
};

// Scans `files` and returns all findings. Deterministic: output depends only
// on (files, options), never on scan order or the host environment.
Report run(const std::vector<FileInput>& files, const Options& options);

// Machine-readable report, schema "dmc.lint.v1" (documented in README):
// {"schema":"dmc.lint.v1","files":N,"suppressed":N,"elapsed_ms":E,
//  "findings":[{"file":...,"line":N,"rule":...,"message":...},...]}
// elapsed_ms is wallclock telemetry supplied by the caller (< 0 omits it);
// everything else is deterministic.
std::string to_json(const Report& report, double elapsed_ms);

// The rule catalog as (id, one-line description) pairs, for --list-rules and
// the README table; stable order (families grouped).
std::vector<std::pair<std::string_view, std::string_view>> rule_catalog();

// Collects the repository sources a default scan covers: *.h / *.cpp under
// src/, tools/, tests/, bench/ relative to `root`, skipping
// tests/lint_fixtures/ (intentional violations). Sorted for determinism.
std::vector<std::string> default_targets(const std::string& root);

// Reads a whole file; throws std::runtime_error on I/O failure.
std::string read_file(const std::string& path);

}  // namespace dmc::lint
