// Workload generation for the online session server: sessions arrive over
// time (Poisson or trace-driven) with per-session draws of data rate, size,
// deadline tightness, and utility — the staggered multi-user regime the
// ROADMAP's north star describes and the paper's one-shot evaluation never
// reaches. All draws come from one seeded stream, so a workload is a pure
// function of its options.
#pragma once

#include <cstdint>
#include <vector>

#include "core/path.h"

namespace dmc::server {

// One session wanting admission: when it arrives, what it wants to send,
// and how valuable it is.
struct SessionRequest {
  std::uint64_t id = 0;         // arrival index (dense, from 0)
  double arrival_s = 0.0;       // absolute simulation time
  core::TrafficSpec traffic;    // lambda / delta / cost cap of this session
  std::uint64_t num_messages = 0;  // session size (messages of message_bytes)
  double utility = 1.0;         // weight for value-aware policies
};

struct WorkloadOptions {
  int count = 100;                   // number of arrivals
  double arrivals_per_s = 10.0;      // Poisson intensity
  std::uint64_t seed = 1;

  // Per-session parameter draws: value ~ U[mean * (1 - jitter),
  // mean * (1 + jitter)]. Zero jitter makes the dimension deterministic.
  double mean_rate_bps = 20e6;       // lambda draw
  double rate_jitter = 0.5;
  double mean_lifetime_s = 0.8;      // delta draw (deadline tightness)
  double lifetime_jitter = 0.25;
  double mean_messages = 400;        // session size draw
  double messages_jitter = 0.5;
  double mean_utility = 1.0;
  double utility_jitter = 0.0;

  void check() const;
};

// Poisson arrivals: exponential inter-arrival gaps at `arrivals_per_s`.
std::vector<SessionRequest> poisson_arrivals(const WorkloadOptions& options);

// Trace-driven arrivals: explicit arrival instants (sorted ascending, >= 0),
// per-session parameters drawn exactly as in poisson_arrivals. `count` is
// ignored; the trace length wins.
std::vector<SessionRequest> trace_arrivals(const std::vector<double>& times,
                                           const WorkloadOptions& options);

}  // namespace dmc::server
