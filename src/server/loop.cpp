#include "server/loop.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/units.h"
#include "obs/export.h"
#include "stats/rng.h"

namespace dmc::server::detail {

namespace {

// Expected offered rate per *real* path of a plan, retransmission load
// included (Equation 2 evaluated at the plan's allocation).
std::vector<double> real_path_rates(const core::Plan& plan) {
  const core::Model& model = plan.model();
  const std::vector<double>& s = plan.send_rate_bps();
  std::vector<double> rates(model.real_paths().size(), 0.0);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    rates[i] = s.at(model.model_index(i));
  }
  return rates;
}

}  // namespace

void compute_outcome_rates(ServerOutcome& outcome, std::size_t message_bytes) {
  std::uint64_t generated = 0;
  std::uint64_t on_time = 0;
  double wait_sum = 0.0;
  for (const SessionRecord& record : outcome.sessions) {
    if (record.fate != RequestFate::admitted &&
        record.fate != RequestFate::queued_admitted) {
      continue;
    }
    generated += record.trace.generated;
    on_time += record.trace.on_time;
    wait_sum += record.queue_wait_s;
  }
  outcome.admission_rate =
      outcome.arrivals > 0 ? static_cast<double>(outcome.admitted) /
                                 static_cast<double>(outcome.arrivals)
                           : 0.0;
  outcome.deadline_miss_rate =
      generated > 0
          ? 1.0 - static_cast<double>(on_time) / static_cast<double>(generated)
          : 0.0;
  outcome.goodput_bps =
      outcome.elapsed_s > 0.0
          ? static_cast<double>(on_time) *
                bytes_to_bits(static_cast<double>(message_bytes)) /
                outcome.elapsed_s
          : 0.0;
  outcome.mean_queue_wait_s =
      outcome.admitted > 0
          ? wait_sum / static_cast<double>(outcome.admitted)
          : 0.0;
}

ServerLoop::ServerLoop(const ServerConfig& config,
                       const std::vector<SessionRequest>& requests,
                       const LoopEnv& env)
    : config_(config),
      requests_(requests),
      registry_(config.collect_metrics ? std::make_shared<obs::MetricRegistry>()
                                       : nullptr),
      recorder_(config.collect_trace || config.collect_forensics
                    ? std::make_shared<obs::TraceRecorder>(env.trace_capacity)
                    : nullptr),
      simulator_(env.sim_seed, dmc::obs::Hub{registry_.get(), recorder_.get()}),
      network_(simulator_,
               proto::to_sim_paths(config.true_paths, config.bandwidth_headroom,
                                   config.queue_capacity)),
      host_(simulator_, network_),
      meter_(network_, config.utilization_window_s),
      policy_(make_policy(config.policy)),
      planner_(
          core::Planner::Options{config.plan_options, config.warm_start}),
      defer_forensics_(env.defer_forensics) {
  if (recorder_ != nullptr) {
    server_track_ = recorder_->track("server");
    lp_track_ = recorder_->track("lp solver");
    events_track_ = recorder_->track("events");
  }
  if (registry_ != nullptr) {
    lp_wall_hist_ = &registry_->histogram(
        "dmc_lp_solve_wall_seconds",
        "Wall-clock time of admission/re-plan LP solve batches (seconds)",
        obs::HistogramOptions{1e-7, 10.0, 8}, /*wallclock=*/true);
    queue_wait_hist_ = &registry_->histogram(
        "dmc_server_queue_wait_seconds",
        "Admission delay of admitted sessions (seconds)",
        obs::HistogramOptions{1e-4, 1e3, 4});
    event_depth_hist_ = &registry_->histogram(
        "dmc_sim_event_queue_depth",
        "Pending simulator events, sampled at arrivals and departures",
        obs::HistogramOptions{1.0, 1e7, 2});
  }
}

void ServerLoop::prime() {
  outcome_.sessions.resize(requests_.size());
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    outcome_.sessions[i].request_id = requests_[i].id;
    outcome_.sessions[i].arrival_s = requests_[i].arrival_s;
    simulator_.at(requests_[i].arrival_s, [this, i] { handle_arrival(i); });
  }
}

void ServerLoop::handle_arrival(std::size_t i) {
  sample_event_depth();
  apply_decision(i, decide_instrumented(requests_[i]), /*from_queue=*/false);
}

// --- observability helpers; every one is a no-op branch when the matching
// collector is disabled.

// policy_->decide with LP solve accounting: wall-clock batch timing plus
// warm/cold solve trace events derived from the shared planner's stats
// delta (the feasibility-lp policy solves through context().planner).
Decision ServerLoop::decide_instrumented(const SessionRequest& request) {
  const lp::IncrementalSolver::Stats before = planner_.lp_stats();
  Decision decision = [&] {
    obs::ScopedTimer timer(lp_wall_hist_);
    return policy_->decide(request, context());
  }();
  record_lp_delta(before, planner_.lp_stats());
  return decision;
}

void ServerLoop::record_lp_delta(const lp::IncrementalSolver::Stats& before,
                                 const lp::IncrementalSolver::Stats& after) {
  if (recorder_ == nullptr) return;
  if (after.warm_solves > before.warm_solves) {
    recorder_->record(obs::Ev::lp_warm_solve, simulator_.now(), lp_track_, 0,
                      0,
                      static_cast<float>(after.warm_pivots -
                                         before.warm_pivots));
  }
  if (after.cold_solves > before.cold_solves) {
    recorder_->record(
        obs::Ev::lp_cold_solve, simulator_.now(), lp_track_, 0, 0,
        static_cast<float>(after.cold_solves - before.cold_solves));
  }
}

void ServerLoop::sample_event_depth() {
  if (registry_ == nullptr && recorder_ == nullptr) return;
  const double depth = static_cast<double>(simulator_.events_pending());
  if (event_depth_hist_ != nullptr) event_depth_hist_->record(depth);
  if (recorder_ != nullptr) {
    recorder_->record(obs::Ev::event_queue_depth, simulator_.now(),
                      events_track_, 0, 0, static_cast<float>(depth));
  }
}

// Measured load of this loop's own sessions per path. The meter reports the
// footprint of the last sampling window, which may still contain traffic of
// sessions that have since departed — so it is capped by the summed planned
// rates of sessions the window could have measured ("settled"). Sessions
// admitted at or after the window closed cannot show up in the measurement
// yet and are accounted at their planned rates on top; sessions admitted
// mid-window count as measured (their partial footprint may understate them
// for one window, never double-count them).
std::vector<double> ServerLoop::local_load() {
  const sim::ResidualSummary usage =
      meter_.residual_summary(simulator_.now());
  std::vector<double> settled(usage.paths.size(), 0.0);
  std::vector<double> fresh(usage.paths.size(), 0.0);
  for (const auto& [id, session] : live_) {
    std::vector<double>& bucket =
        session.admitted_at_s >= usage.window_end_s ? fresh : settled;
    for (std::size_t p = 0; p < bucket.size(); ++p) {
      bucket[p] += session.planned_rate_bps[p];
    }
  }
  std::vector<double> load(usage.paths.size(), 0.0);
  for (std::size_t p = 0; p < load.size(); ++p) {
    load[p] = std::min(usage.paths[p].footprint_bps, settled[p]) + fresh[p];
  }
  return load;
}

// Background the admission LP plans against: own measured/planned blend
// plus the other shards' reported footprints (standalone: remote is empty).
std::vector<double> ServerLoop::background() {
  std::vector<double> load = local_load();
  const std::size_t shared = std::min(load.size(), remote_.load_bps.size());
  for (std::size_t p = 0; p < shared; ++p) {
    load[p] += remote_.load_bps[p];
  }
  return load;
}

void ServerLoop::reconcile(LoadSummary remote) {
  remote_ = std::move(remote);
  retry_queued();
}

LoadSummary ServerLoop::summary() {
  LoadSummary own;
  own.load_bps = local_load();
  own.in_flight = static_cast<int>(live_.size());
  for (const auto& [id, session] : live_) {
    own.admitted_rate_bps += session.rate_bps;
  }
  return own;
}

AdmissionContext ServerLoop::context() {
  AdmissionContext context;
  context.nominal_paths = &config_.planning_paths;
  context.background_bps = background();
  context.residual_bps.resize(context.background_bps.size());
  for (std::size_t p = 0; p < context.residual_bps.size(); ++p) {
    const double rate =
        network_.forward_link(static_cast<int>(p)).config().rate_bps;
    context.residual_bps[p] =
        std::max(0.0, rate - context.background_bps[p]);
  }
  context.in_flight = static_cast<int>(live_.size()) + remote_.in_flight;
  context.admitted_rate_bps = remote_.admitted_rate_bps;
  for (const auto& [id, session] : live_) {
    context.admitted_rate_bps += session.rate_bps;
  }
  context.plan_options = config_.plan_options;
  context.min_quality = config_.min_quality;
  context.cross_model = config_.cross_model;
  context.planner = &planner_;
  return context;
}

// Returns true when the request left the pending state (admitted or
// rejected); false keeps it queued.
bool ServerLoop::apply_decision(std::size_t i, Decision decision,
                                bool from_queue) {
  SessionRecord& record = outcome_.sessions[i];
  // A queue verdict with nothing running anywhere means the request cannot
  // clear the bar even on an idle network; neither a departure nor a
  // reconciliation barrier will ever change that. Remote sessions count:
  // their departure frees shared capacity at the next barrier.
  if (decision.verdict == Verdict::queue && live_.empty() &&
      remote_.in_flight == 0) {
    decision.verdict = Verdict::reject;
  }
  switch (decision.verdict) {
    case Verdict::admit:
      start_session(i, std::move(*decision.plan), decision.predicted_quality,
                    from_queue);
      return true;
    case Verdict::reject:
      record.fate = RequestFate::rejected;
      record.predicted_quality = decision.predicted_quality;
      ++outcome_.rejected;
      if (recorder_ != nullptr) {
        recorder_->record(obs::Ev::session_reject, simulator_.now(),
                          server_track_,
                          static_cast<std::uint32_t>(requests_[i].id));
      }
      return true;
    case Verdict::queue:
      if (!from_queue) {
        if (recorder_ != nullptr) {
          recorder_->record(obs::Ev::session_queue, simulator_.now(),
                            server_track_,
                            static_cast<std::uint32_t>(requests_[i].id));
        }
        pending_.push_back(Pending{i, simulator_.now()});
        simulator_.at(simulator_.now() + config_.max_queue_wait_s,
                      [this, i] { expire_if_pending(i); });
      }
      return false;
  }
  return true;
}

void ServerLoop::start_session(std::size_t i, core::Plan plan,
                               double predicted_quality, bool from_queue) {
  const SessionRequest& request = requests_[i];
  proto::SessionConfig session_config = config_.session;
  session_config.num_messages = request.num_messages;
  session_config.seed = stats::mix_seed(config_.seed, request.id + 1);

  LiveSession live;
  live.request_index = i;
  live.admitted_at_s = simulator_.now();
  live.rate_bps = request.traffic.rate_bps;
  live.planned_quality = plan.quality();
  const auto planned_quality = static_cast<float>(live.planned_quality);
  live.planned_rate_bps = real_path_rates(plan);
  live.planner = planner_;  // snapshot: basis of this session's LP
  // The snapshot copies the admission planner's counters too; zero them
  // so the per-session stats summed into outcome_.lp count only this
  // session's re-plan solves.
  live.planner.reset_lp_stats();

  const std::uint32_t id = host_.start_session(
      proto::SessionSpec{std::move(plan), session_config, 0.0},
      [this](std::uint32_t session_id) { on_departure(session_id); });
  live_.emplace(id, std::move(live));

  SessionRecord& record = outcome_.sessions[i];
  record.fate =
      from_queue ? RequestFate::queued_admitted : RequestFate::admitted;
  record.predicted_quality = predicted_quality;
  record.admitted_at_s = simulator_.now();
  record.queue_wait_s = simulator_.now() - request.arrival_s;
  ++outcome_.admitted;

  if (queue_wait_hist_ != nullptr) {
    queue_wait_hist_->record(record.queue_wait_s);
  }
  if (recorder_ != nullptr) {
    // value = the installed plan's own quality claim: the forensics
    // cascade reads it to tell deliberate admission optimism (plan
    // budgeted for misses) from planner misestimates.
    recorder_->record(obs::Ev::session_admit, simulator_.now(),
                      recorder_->session_track(id),
                      static_cast<std::uint32_t>(request.id),
                      static_cast<std::uint8_t>(from_queue ? 1 : 0),
                      planned_quality);
  }
}

void ServerLoop::on_departure(std::uint32_t id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;  // stopped by other means already
  SessionRecord& record = outcome_.sessions[it->second.request_index];
  const proto::SessionResult result = host_.stop_session(id);
  record.trace = result.trace;
  record.measured_quality = result.measured_quality;
  record.completed_at_s = simulator_.now();
  record.replans = it->second.replans;
  outcome_.lp += it->second.planner.lp_stats();
  if (recorder_ != nullptr) {
    // Span events carry their start time: the whole session renders as one
    // Chrome trace "complete" slice from admission to departure.
    recorder_->record(
        obs::Ev::session_span, it->second.admitted_at_s,
        recorder_->session_track(id),
        static_cast<std::uint32_t>(record.request_id), 0,
        static_cast<float>(simulator_.now() - it->second.admitted_at_s));
  }
  live_.erase(it);
  sample_event_depth();

  // Freed capacity: first give waiting requests a chance, then let the
  // surviving sessions re-plan onto the larger residual.
  retry_queued();
  if (config_.replan_on_departure) replan_live();
}

void ServerLoop::retry_queued() {
  std::vector<Pending> still_pending;
  still_pending.reserve(pending_.size());
  for (const Pending& pending : pending_) {
    const Decision decision =
        decide_instrumented(requests_[pending.request_index]);
    if (!apply_decision(pending.request_index, decision,
                        /*from_queue=*/true)) {
      still_pending.push_back(pending);
    }
  }
  pending_ = std::move(still_pending);
}

void ServerLoop::expire_if_pending(std::size_t i) {
  const auto it = std::find_if(
      pending_.begin(), pending_.end(),
      [i](const Pending& pending) { return pending.request_index == i; });
  if (it == pending_.end()) return;  // admitted or rejected meanwhile
  pending_.erase(it);
  outcome_.sessions[i].fate = RequestFate::expired;
  ++outcome_.expired;
  if (recorder_ != nullptr) {
    recorder_->record(obs::Ev::session_expire, simulator_.now(),
                      server_track_,
                      static_cast<std::uint32_t>(requests_[i].id));
  }
}

void ServerLoop::replan_live() {
  for (auto& [id, session] : live_) {
    // Only sessions that had to compromise can gain from freed capacity.
    if (session.planned_quality >= 1.0 - 1e-9) continue;
    core::CrossTraffic cross = config_.cross_model;
    cross.background_bps = background();
    // Exclude the session's own footprint from its background estimate.
    for (std::size_t p = 0; p < cross.background_bps.size(); ++p) {
      cross.background_bps[p] = std::max(
          0.0, cross.background_bps[p] - session.planned_rate_bps[p]);
    }
    // The planner absorbs the freed capacity as a pure rhs delta when
    // the cross model only derates bandwidth (no delay inflation), and
    // rebuilds — still warm-starting — otherwise.
    const lp::IncrementalSolver::Stats before = session.planner.lp_stats();
    core::Plan plan = [&] {
      obs::ScopedTimer timer(lp_wall_hist_);
      return session.planner.plan(config_.planning_paths,
                                  requests_[session.request_index].traffic,
                                  cross);
    }();
    record_lp_delta(before, session.planner.lp_stats());
    if (!plan.feasible() ||
        plan.quality() <= session.planned_quality + 1e-6) {
      continue;
    }
    session.planned_quality = plan.quality();
    session.planned_rate_bps = real_path_rates(plan);
    ++session.replans;
    ++outcome_.replans;
    if (recorder_ != nullptr) {
      recorder_->record(
          obs::Ev::replan, simulator_.now(), recorder_->session_track(id),
          static_cast<std::uint32_t>(requests_[session.request_index].id),
          static_cast<std::uint8_t>(std::min(session.replans, 255)),
          static_cast<float>(session.planned_quality));
    }
    host_.replace_plan(id, std::move(plan));
  }
}

ServerOutcome ServerLoop::finish() {
  outcome_.arrivals = requests_.size();
  outcome_.elapsed_s = simulator_.now();
  outcome_.events = simulator_.events_executed();
  outcome_.orphans = host_.orphans();
  outcome_.lp += planner_.lp_stats();
  for (const auto& [id, session] : live_) {
    outcome_.lp += session.planner.lp_stats();
  }

  compute_outcome_rates(outcome_, config_.session.message_bytes);

  outcome_.conserved = true;
  for (std::size_t p = 0; p < network_.num_paths(); ++p) {
    const sim::LinkStats& forward =
        network_.forward_link(static_cast<int>(p)).stats();
    const sim::LinkStats& reverse =
        network_.reverse_link(static_cast<int>(p)).stats();
    outcome_.conserved = outcome_.conserved && forward.conserved() &&
                         reverse.conserved() && forward.in_flight == 0 &&
                         reverse.in_flight == 0;
    outcome_.forward_links.push_back(forward);
    outcome_.reverse_links.push_back(reverse);
  }

  publish_metrics();

  if (config_.collect_forensics && !defer_forensics_ &&
      recorder_ != nullptr) {
    outcome_.forensics = obs::analyze(*recorder_, config_.forensics);
  }
  return std::move(outcome_);
}

// Publishes run-level aggregates into the registry (so the exporters and
// the run footer read from one source of truth) and snapshots the
// deterministic subset into outcome_.obs.
void ServerLoop::publish_metrics() {
  outcome_.metrics = registry_;
  outcome_.trace_events = recorder_;
  if (registry_ == nullptr) return;

  const auto set = [this](std::string_view name, std::string_view help,
                          std::uint64_t value) {
    registry_->counter(name, help).set(value);
  };
  set("dmc_server_arrivals_total", "Session requests offered",
      outcome_.arrivals);
  set("dmc_server_admitted_total", "Sessions admitted (incl. after queuing)",
      outcome_.admitted);
  set("dmc_server_rejected_total", "Requests rejected at arrival",
      outcome_.rejected);
  set("dmc_server_expired_total", "Queued requests whose patience ran out",
      outcome_.expired);
  set("dmc_server_replans_total", "Departure-triggered session re-plans",
      outcome_.replans);

  set("dmc_lp_warm_solves_total", "LP solves served from a stored basis",
      outcome_.lp.warm_solves);
  set("dmc_lp_cold_solves_total", "LP solves from scratch",
      outcome_.lp.cold_solves);
  set("dmc_lp_warm_pivots_total", "Simplex pivots across warm re-solves",
      outcome_.lp.warm_pivots);
  set("dmc_lp_fallbacks_total", "Warm starts abandoned for a cold solve",
      outcome_.lp.fallbacks);

  proto::Trace proto_totals;
  for (const SessionRecord& record : outcome_.sessions) {
    if (record.fate != RequestFate::admitted &&
        record.fate != RequestFate::queued_admitted) {
      continue;
    }
    const proto::Trace& t = record.trace;
    proto_totals.generated += t.generated;
    proto_totals.assigned_blackhole += t.assigned_blackhole;
    proto_totals.transmissions += t.transmissions;
    proto_totals.retransmissions += t.retransmissions;
    proto_totals.fast_retransmissions += t.fast_retransmissions;
    proto_totals.on_time += t.on_time;
    proto_totals.late += t.late;
    proto_totals.duplicates += t.duplicates;
    proto_totals.gave_up += t.gave_up;
  }
  set("dmc_proto_generated_total", "Messages produced by admitted sessions",
      proto_totals.generated);
  set("dmc_proto_on_time_total", "Messages first-delivered within deadline",
      proto_totals.on_time);
  set("dmc_proto_late_total", "Messages first-delivered past the deadline",
      proto_totals.late);
  set("dmc_proto_gave_up_total", "Messages abandoned after max attempts",
      proto_totals.gave_up);
  set("dmc_proto_blackholed_total", "Messages assigned to the blackhole",
      proto_totals.assigned_blackhole);
  set("dmc_proto_transmissions_total", "Data packets handed to links",
      proto_totals.transmissions);
  set("dmc_proto_retransmissions_total", "Transmissions with attempt > 0",
      proto_totals.retransmissions);
  set("dmc_proto_fast_retransmissions_total",
      "Retransmissions triggered by dup-acks",
      proto_totals.fast_retransmissions);
  set("dmc_proto_duplicates_total", "Repeat arrivals at receivers",
      proto_totals.duplicates);

  sim::LinkStats link_totals;
  for (const std::vector<sim::LinkStats>* side :
       {&outcome_.forward_links, &outcome_.reverse_links}) {
    for (const sim::LinkStats& link : *side) {
      link_totals.offered += link.offered;
      link_totals.delivered += link.delivered;
      link_totals.queue_drops += link.queue_drops;
      link_totals.loss_drops += link.loss_drops;
    }
  }
  set("dmc_link_offered_total", "Packets handed to link send()",
      link_totals.offered);
  set("dmc_link_delivered_total", "Packets delivered by links",
      link_totals.delivered);
  set("dmc_link_queue_drops_total", "Packets dropped at full link queues",
      link_totals.queue_drops);
  set("dmc_link_loss_drops_total", "Packets lost to random erasure",
      link_totals.loss_drops);

  if (recorder_ != nullptr) {
    set("dmc_trace_events_recorded_total",
        "Trace events recorded, overwritten ones included",
        recorder_->recorded());
    set("dmc_trace_events_dropped_total",
        "Trace events lost to ring wraparound", recorder_->dropped());
  }

  set(obs::kRunEventsTotal, "Simulator events executed", outcome_.events);
  registry_->gauge(obs::kRunSimSeconds, "Simulated run duration (seconds)")
      .set(outcome_.elapsed_s);
  registry_
      ->gauge(obs::kRunWallSeconds, "Wall-clock run duration (seconds)",
              /*wallclock=*/true)
      // dmc-lint: allow(det-wallclock) feeds a wallclock-flagged gauge
      .set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start_)
               .count());

  outcome_.obs = obs::Snapshot::from(*registry_);
}

}  // namespace dmc::server::detail
