#include "server/server.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "server/loop.h"

namespace dmc::server {

void ServerConfig::check() const {
  if (planning_paths.empty() || true_paths.empty()) {
    throw std::invalid_argument("ServerConfig: need at least one path");
  }
  if (planning_paths.size() != true_paths.size()) {
    throw std::invalid_argument(
        "ServerConfig: planning and true path counts disagree");
  }
  if (min_quality < 0.0 || min_quality > 1.0) {
    throw std::invalid_argument("ServerConfig: min_quality not in [0,1]");
  }
  if (max_queue_wait_s < 0.0) {
    throw std::invalid_argument("ServerConfig: negative queue patience");
  }
  if (utilization_window_s < 0.0) {
    throw std::invalid_argument("ServerConfig: negative utilization window");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument(
        "ServerConfig: queue_capacity must be positive (links need room "
        "for at least one queued packet)");
  }
  if (shards == 0) {
    throw std::invalid_argument(
        "ServerConfig: shards must be positive (1 = single worker)");
  }
  if (shard_slices == 0) {
    throw std::invalid_argument(
        "ServerConfig: shard_slices must be positive");
  }
  if (!(reconcile_interval_s > 0.0) || !std::isfinite(reconcile_interval_s)) {
    throw std::invalid_argument(
        "ServerConfig: reconcile_interval_s must be positive and finite");
  }
  if ((collect_trace || collect_forensics) && trace_capacity < shard_slices) {
    // The sharded server splits the ring across slices; every slice must
    // end up with a non-empty ring or TraceRecorder construction throws
    // mid-run with a far less actionable message.
    throw std::invalid_argument(
        "ServerConfig: trace_capacity must be >= shard_slices (the ring is "
        "split per logical shard)");
  }
  if (collect_forensics) forensics.check();
}

const char* to_string(RequestFate fate) {
  switch (fate) {
    case RequestFate::rejected:
      return "rejected";
    case RequestFate::expired:
      return "expired";
    case RequestFate::admitted:
      return "admitted";
    case RequestFate::queued_admitted:
      return "queued-admitted";
  }
  return "unknown";
}

SessionServer::SessionServer(ServerConfig config)
    : config_(std::move(config)) {
  config_.check();
  // Fail fast on a bad policy spec instead of at the first arrival.
  make_policy(config_.policy);
}

ServerOutcome SessionServer::run(const std::vector<SessionRequest>& requests) {
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].arrival_s < 0.0) {
      throw std::invalid_argument("SessionServer: negative arrival time");
    }
    if (i > 0 && requests[i].arrival_s < requests[i - 1].arrival_s) {
      throw std::invalid_argument(
          "SessionServer: arrivals must be sorted by time");
    }
    if (requests[i].num_messages == 0) {
      throw std::invalid_argument("SessionServer: zero-message session");
    }
  }
  detail::LoopEnv env;
  env.sim_seed = config_.seed;
  env.trace_capacity = config_.trace_capacity;
  detail::ServerLoop loop(config_, requests, env);
  loop.prime();
  loop.run();
  return loop.finish();
}

ServerOutcome run_server(const ServerConfig& config,
                         const WorkloadOptions& workload) {
  SessionServer server(config);
  return server.run(poisson_arrivals(workload));
}

}  // namespace dmc::server
