#include "server/sharded_server.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/analysis.h"
#include "obs/export.h"
#include "server/loop.h"
#include "stats/rng.h"

namespace dmc::server {

namespace {

// Domain separator for the per-slice simulator seed streams: keeps them
// disjoint from the per-session streams (mix_seed(seed, id + 1)) and from
// the classic server's network stream (config.seed itself).
constexpr std::uint64_t kSliceSimDomain = 0x5A4DC0DE;
// Domain separator for the request -> slice hash.
constexpr std::uint64_t kSliceHashDomain = 0x51CE;

std::size_t slice_of(std::uint64_t request_id, std::size_t slices) {
  return static_cast<std::size_t>(stats::mix_seed(request_id,
                                                  kSliceHashDomain) %
                                  slices);
}

// Runs fn(0..n-1) across up to `workers` threads, claiming indices from an
// atomic counter. The first exception wins and is rethrown on the caller
// thread after everyone joined. Work distribution can vary between runs —
// every fn(i) touches only slice-local state, so results cannot.
void run_parallel(std::size_t workers, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) threads.emplace_back(drain);
  drain();
  for (std::thread& thread : threads) thread.join();
  if (error) std::rethrow_exception(error);
}

// Remaps one slice's track table into the merged global namespace:
// "session L" becomes "session L*S+k" (unique across slices, and still the
// name format the forensics analyzer joins on), link tracks keep their
// "link " prefix (and any "/rev" suffix) with the slice folded into the
// link name, everything else gets a plain "s<k>/" prefix.
std::string merged_track_name(const std::string& local, std::size_t slice,
                              std::size_t slices) {
  constexpr std::string_view kSession = "session ";
  constexpr std::string_view kLink = "link ";
  if (local.rfind(kSession, 0) == 0) {
    const std::uint64_t local_id =
        std::stoull(local.substr(kSession.size()));
    return std::string(kSession) +
           std::to_string(local_id * slices + slice);
  }
  if (local.rfind(kLink, 0) == 0) {
    return std::string(kLink) + "s" + std::to_string(slice) + "/" +
           local.substr(kLink.size());
  }
  return "s" + std::to_string(slice) + "/" + local;
}

bool is_link_event(obs::Ev type) {
  return type == obs::Ev::link_tx || type == obs::Ev::link_queue_drop ||
         type == obs::Ev::link_loss_drop || type == obs::Ev::link_deliver;
}

// Concatenates the per-slice traces in slice order into one global trace.
// Session/link tracks are remapped into disjoint namespaces and the
// session-id join key carried in link events' value field is rewritten to
// the global session id, so the forensics analyzer sees one coherent trace.
// Events stay slice-major (time-sorted within a slice only); the analyzer
// keys its state per session/track and its windows by event time, neither
// of which needs a globally sorted stream.
obs::TraceData merge_traces(const std::vector<ServerOutcome>& outcomes,
                            std::size_t slices) {
  obs::TraceData merged;
  std::size_t total_events = 0;
  for (const ServerOutcome& outcome : outcomes) {
    if (outcome.trace_events != nullptr) {
      total_events += outcome.trace_events->size();
      merged.dropped += outcome.trace_events->dropped();
    }
  }
  merged.events.reserve(total_events);

  // One shared saturation track in case the merged table outgrows the
  // uint16 track id space; events landing there lose per-track attribution
  // but are never silently dropped.
  std::uint16_t overflow_track = obs::TraceRecorder::kNoTrack;
  const auto add_track = [&](std::string name) -> std::uint16_t {
    if (merged.tracks.size() >= obs::TraceRecorder::kNoTrack) {
      if (overflow_track == obs::TraceRecorder::kNoTrack) {
        overflow_track =
            static_cast<std::uint16_t>(merged.tracks.size() - 1);
        merged.tracks.back() = "track overflow";
      }
      return overflow_track;
    }
    merged.tracks.push_back(std::move(name));
    return static_cast<std::uint16_t>(merged.tracks.size() - 1);
  };

  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    const std::shared_ptr<const obs::TraceRecorder>& recorder =
        outcomes[k].trace_events;
    if (recorder == nullptr) continue;
    const std::vector<std::string>& local_tracks = recorder->track_names();
    std::vector<std::uint16_t> track_map(local_tracks.size(), 0);
    for (std::size_t t = 0; t < local_tracks.size(); ++t) {
      track_map[t] = add_track(merged_track_name(local_tracks[t], k, slices));
    }
    for (std::size_t i = 0; i < recorder->size(); ++i) {
      obs::TraceEvent event = recorder->event(i);
      if (event.track < track_map.size()) {
        event.track = track_map[event.track];
      }
      if (is_link_event(event.type)) {
        // value carries the owning (slice-local) session id; rewrite it to
        // the merged id so it joins against the remapped session tracks.
        // Exact through float for ids below 2^24 — same contract as the
        // single-loop recorder.
        const auto local_id = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(event.value));
        event.value = static_cast<float>(local_id * slices + k);
      }
      merged.events.push_back(event);
    }
  }
  return merged;
}

void merge_links(std::vector<sim::LinkStats>& into,
                 const std::vector<sim::LinkStats>& from) {
  if (into.size() < from.size()) into.resize(from.size());
  for (std::size_t p = 0; p < from.size(); ++p) {
    into[p].offered += from[p].offered;
    into[p].queue_drops += from[p].queue_drops;
    into[p].loss_drops += from[p].loss_drops;
    into[p].delivered += from[p].delivered;
    into[p].bytes_sent += from[p].bytes_sent;
    into[p].busy_time_s += from[p].busy_time_s;
    into[p].max_queue_depth =
        std::max(into[p].max_queue_depth, from[p].max_queue_depth);
    into[p].in_flight += from[p].in_flight;
  }
}

}  // namespace

ShardedSessionServer::ShardedSessionServer(ServerConfig config)
    : config_(std::move(config)) {
  config_.check();
  // Fail fast on a bad policy spec instead of at the first arrival.
  make_policy(config_.policy);
}

ServerOutcome ShardedSessionServer::run(
    const std::vector<SessionRequest>& requests) {
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].arrival_s < 0.0) {
      throw std::invalid_argument(
          "ShardedSessionServer: negative arrival time");
    }
    if (i > 0 && requests[i].arrival_s < requests[i - 1].arrival_s) {
      throw std::invalid_argument(
          "ShardedSessionServer: arrivals must be sorted by time");
    }
    if (requests[i].num_messages == 0) {
      throw std::invalid_argument(
          "ShardedSessionServer: zero-message session");
    }
  }

  const std::size_t slices = config_.shard_slices;

  // Fixed partition by stable id hash: which slice owns a request depends
  // on nothing but the request id and shard_slices. Original (sorted) order
  // is preserved within each slice.
  std::vector<std::vector<SessionRequest>> slice_requests(slices);
  std::vector<std::vector<std::size_t>> global_index(slices);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::size_t k = slice_of(requests[i].id, slices);
    slice_requests[k].push_back(requests[i]);
    global_index[k].push_back(i);
  }

  const bool tracing = config_.collect_trace || config_.collect_forensics;
  std::vector<std::unique_ptr<detail::ServerLoop>> loops;
  loops.reserve(slices);
  for (std::size_t k = 0; k < slices; ++k) {
    detail::LoopEnv env;
    env.sim_seed = stats::mix_seed(
        stats::mix_seed(config_.seed, kSliceSimDomain), k);
    // check() guarantees trace_capacity >= shard_slices, so every slice
    // gets a non-empty ring.
    env.trace_capacity = tracing ? config_.trace_capacity / slices : 0;
    env.defer_forensics = true;
    loops.push_back(std::make_unique<detail::ServerLoop>(
        config_, slice_requests[k], env));
    loops.back()->prime();
  }

  // Epoch lockstep: every slice runs its events up to the barrier time,
  // then the slices exchange load summaries — each sees the fixed-order
  // total minus its own contribution, held constant until the next barrier
  // (bounded staleness of one epoch). Thread assignment is free to vary;
  // barrier times and summary contents are not.
  const auto drained = [&] {
    for (const auto& loop : loops) {
      if (!loop->drained()) return false;
    }
    return true;
  };
  double barrier_t = 0.0;
  std::vector<detail::LoadSummary> summaries(slices);
  while (!drained()) {
    barrier_t += config_.reconcile_interval_s;
    run_parallel(config_.shards, slices,
                 [&](std::size_t k) { loops[k]->run_until(barrier_t); });
    for (std::size_t k = 0; k < slices; ++k) {
      summaries[k] = loops[k]->summary();
    }
    detail::LoadSummary total;
    for (const detail::LoadSummary& summary : summaries) {
      if (total.load_bps.size() < summary.load_bps.size()) {
        total.load_bps.resize(summary.load_bps.size(), 0.0);
      }
      for (std::size_t p = 0; p < summary.load_bps.size(); ++p) {
        total.load_bps[p] += summary.load_bps[p];
      }
      total.admitted_rate_bps += summary.admitted_rate_bps;
      total.in_flight += summary.in_flight;
    }
    for (std::size_t k = 0; k < slices; ++k) {
      detail::LoadSummary remote = total;
      for (std::size_t p = 0; p < summaries[k].load_bps.size(); ++p) {
        remote.load_bps[p] -= summaries[k].load_bps[p];
      }
      remote.admitted_rate_bps -= summaries[k].admitted_rate_bps;
      remote.in_flight -= summaries[k].in_flight;
      loops[k]->reconcile(std::move(remote));
    }
  }

  std::vector<ServerOutcome> outcomes(slices);
  run_parallel(config_.shards, slices,
               [&](std::size_t k) { outcomes[k] = loops[k]->finish(); });

  // Deterministic merge, slice-major in fixed slice order everywhere.
  ServerOutcome merged;
  merged.sessions.resize(requests.size());
  merged.arrivals = requests.size();
  for (std::size_t k = 0; k < slices; ++k) {
    ServerOutcome& outcome = outcomes[k];
    for (std::size_t i = 0; i < outcome.sessions.size(); ++i) {
      merged.sessions[global_index[k][i]] = std::move(outcome.sessions[i]);
    }
    merged.admitted += outcome.admitted;
    merged.rejected += outcome.rejected;
    merged.expired += outcome.expired;
    merged.replans += outcome.replans;
    merged.events += outcome.events;
    merged.elapsed_s = std::max(merged.elapsed_s, outcome.elapsed_s);
    merged.lp += outcome.lp;
    merged.orphans.data_packets += outcome.orphans.data_packets;
    merged.orphans.ack_packets += outcome.orphans.ack_packets;
    merge_links(merged.forward_links, outcome.forward_links);
    merge_links(merged.reverse_links, outcome.reverse_links);
  }
  merged.conserved = true;
  for (const ServerOutcome& outcome : outcomes) {
    merged.conserved = merged.conserved && outcome.conserved;
  }
  detail::compute_outcome_rates(merged, config_.session.message_bytes);

  if (config_.collect_metrics) {
    std::vector<obs::Snapshot> snapshots;
    snapshots.reserve(slices);
    for (const ServerOutcome& outcome : outcomes) {
      snapshots.push_back(outcome.obs);
    }
    merged.obs = obs::merge_snapshots(snapshots);
    // Per-shard visibility on top of the merged totals: how the work and
    // the admissions split across the logical shards.
    for (std::size_t k = 0; k < slices; ++k) {
      const std::string prefix = "dmc_shard" + std::to_string(k) + "_";
      merged.obs.counters.emplace_back(prefix + "arrivals_total",
                                       outcomes[k].arrivals);
      merged.obs.counters.emplace_back(prefix + "admitted_total",
                                       outcomes[k].admitted);
      merged.obs.counters.emplace_back(prefix + "events_total",
                                       outcomes[k].events);
    }
  }

  if (tracing) {
    obs::TraceData trace = merge_traces(outcomes, slices);
    if (config_.collect_forensics) {
      merged.forensics = obs::analyze(trace, config_.forensics);
    }
    merged.trace_data =
        std::make_shared<const obs::TraceData>(std::move(trace));
  }

  merged.shards = slices;
  return merged;
}

ServerOutcome run_sharded_server(const ServerConfig& config,
                                 const WorkloadOptions& workload) {
  ShardedSessionServer server(config);
  return server.run(poisson_arrivals(workload));
}

}  // namespace dmc::server
