// Admission control for the online session server. Each arriving session is
// judged against the *residual* capacity of the shared network — link
// bandwidth minus the measured footprint of in-flight sessions — in the
// spirit of DDCCast's residual-capacity feasibility gate and Ahani et al.'s
// joint admission/routing of deadline flows. Three policies ship for
// comparison:
//
//   always-admit    the PR-2 status quo: plan blind on nominal paths, admit
//                   everything (the baseline the feasibility gate beats).
//   feasibility-lp  solve the paper's LP against residual capacity; admit
//                   iff the predicted quality clears min_quality, else queue
//                   for retry when capacity frees up.
//   threshold[:f]   capacity bookkeeping only, no LP: admit while the sum of
//                   admitted session rates stays below fraction f (default
//                   0.9) of total nominal forward capacity; reject above.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/planner.h"
#include "server/arrivals.h"

namespace dmc::server {

// What the policy may look at when deciding. Residual/background come from
// sim::UtilizationMeter, i.e. they are measurements, not bookkeeping.
struct AdmissionContext {
  const core::PathSet* nominal_paths = nullptr;  // zero-load characteristics
  std::vector<double> residual_bps;    // measured residual per path
  std::vector<double> background_bps;  // measured cross-traffic per path
  int in_flight = 0;                   // live sessions right now
  double admitted_rate_bps = 0.0;      // sum of live sessions' lambda
  core::PlanOptions plan_options;
  double min_quality = 0.9;            // feasibility bar for LP policies
  core::CrossTraffic cross_model;      // how background folds into planning
  // Optional warm-started planner shared across this server's decisions.
  // Successive feasibility-lp decisions differ only in residual capacity
  // (and per-request rate/deadline), so the LP policies re-solve from the
  // previous optimal basis through it instead of solving cold every time.
  // Null keeps the stateless plan_max_quality path.
  core::Planner* planner = nullptr;
};

enum class Verdict {
  admit,   // start now, with Decision::plan
  queue,   // not now — retry on the next departure (until patience runs out)
  reject,  // never
};

struct Decision {
  Verdict verdict = Verdict::reject;
  std::optional<core::Plan> plan;  // required when verdict == admit
  double predicted_quality = 0.0;  // plan quality the decision was based on
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual const std::string& name() const = 0;
  virtual Decision decide(const SessionRequest& request,
                          const AdmissionContext& context) = 0;
};

// Parses a policy spec: "always-admit", "feasibility-lp", "threshold" or
// "threshold:<fraction>". Throws std::invalid_argument on anything else.
std::unique_ptr<AdmissionPolicy> make_policy(const std::string& spec);

}  // namespace dmc::server
