#include "server/admission.h"

#include <stdexcept>
#include <utility>

#include "util/parse.h"

namespace dmc::server {

namespace {

const core::PathSet& nominal(const AdmissionContext& context) {
  if (context.nominal_paths == nullptr) {
    throw std::invalid_argument("AdmissionContext: null nominal paths");
  }
  return *context.nominal_paths;
}

// The PR-2 status quo as a policy: plan blind against the nominal paths and
// admit unconditionally, however oversubscribed the network already is.
class AlwaysAdmit final : public AdmissionPolicy {
 public:
  const std::string& name() const override { return name_; }

  Decision decide(const SessionRequest& request,
                  const AdmissionContext& context) override {
    Decision decision;
    decision.plan = core::plan_max_quality(nominal(context), request.traffic,
                                           context.plan_options);
    decision.predicted_quality = decision.plan->quality();
    decision.verdict =
        decision.plan->feasible() ? Verdict::admit : Verdict::reject;
    return decision;
  }

 private:
  std::string name_ = "always-admit";
};

// The paper's LP solved against residual capacity: admit only sessions whose
// predicted quality clears the bar, so every admitted session is expected to
// meet its deadline profile even under the current cross-traffic.
class FeasibilityLp final : public AdmissionPolicy {
 public:
  const std::string& name() const override { return name_; }

  Decision decide(const SessionRequest& request,
                  const AdmissionContext& context) override {
    core::CrossTraffic cross = context.cross_model;
    cross.background_bps = context.background_bps;
    Decision decision;
    decision.plan =
        context.planner != nullptr
            ? context.planner->plan(nominal(context), request.traffic, cross)
            : core::plan_max_quality(nominal(context), request.traffic, cross,
                                     context.plan_options);
    decision.predicted_quality = decision.plan->quality();
    if (!decision.plan->feasible()) {
      decision.verdict = Verdict::reject;
    } else if (decision.predicted_quality + 1e-12 >= context.min_quality) {
      decision.verdict = Verdict::admit;
    } else {
      // Not enough residual capacity right now; capacity frees up on
      // departures, so wait rather than walk away.
      decision.verdict = Verdict::queue;
      decision.plan.reset();
    }
    return decision;
  }

 private:
  std::string name_ = "feasibility-lp";
};

// Pure bookkeeping baseline: no LP at admission time (the session still gets
// a blind nominal plan when admitted), just a cap on the sum of admitted
// rates as a fraction of total nominal forward capacity.
class RateThreshold final : public AdmissionPolicy {
 public:
  explicit RateThreshold(double fraction)
      : fraction_(fraction), name_("threshold:" + exp_format(fraction)) {
    if (fraction <= 0.0 || fraction > 1.0) {
      throw std::invalid_argument(
          "threshold policy: fraction must be in (0, 1]");
    }
  }

  const std::string& name() const override { return name_; }

  Decision decide(const SessionRequest& request,
                  const AdmissionContext& context) override {
    double capacity = 0.0;
    for (const core::PathSpec& path : nominal(context)) {
      if (!path.is_blackhole()) capacity += path.bandwidth_bps;
    }
    Decision decision;
    if (context.admitted_rate_bps + request.traffic.rate_bps >
        fraction_ * capacity) {
      decision.verdict = Verdict::reject;
      return decision;
    }
    decision.plan = core::plan_max_quality(nominal(context), request.traffic,
                                           context.plan_options);
    decision.predicted_quality = decision.plan->quality();
    decision.verdict =
        decision.plan->feasible() ? Verdict::admit : Verdict::reject;
    return decision;
  }

 private:
  // Shortest clean rendering for the policy name ("threshold:0.9").
  static std::string exp_format(double value) {
    std::string text = std::to_string(value);
    while (!text.empty() && text.back() == '0') text.pop_back();
    if (!text.empty() && text.back() == '.') text.pop_back();
    return text;
  }

  double fraction_ = 0.9;
  std::string name_;
};

}  // namespace

std::unique_ptr<AdmissionPolicy> make_policy(const std::string& spec) {
  if (spec == "always-admit") return std::make_unique<AlwaysAdmit>();
  if (spec == "feasibility-lp") return std::make_unique<FeasibilityLp>();
  if (spec == "threshold") return std::make_unique<RateThreshold>(0.9);
  if (spec.rfind("threshold:", 0) == 0) {
    const double fraction = util::parse_positive<double>(
        "threshold policy fraction", spec.substr(10));
    return std::make_unique<RateThreshold>(fraction);
  }
  throw std::invalid_argument(
      "unknown admission policy '" + spec +
      "' (expected always-admit, feasibility-lp, threshold[:fraction])");
}

}  // namespace dmc::server
