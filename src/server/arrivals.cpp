#include "server/arrivals.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/rng.h"

namespace dmc::server {

namespace {

void check_jitter(const char* name, double jitter) {
  if (jitter < 0.0 || jitter >= 1.0) {
    throw std::invalid_argument(std::string("WorkloadOptions: ") + name +
                                " must be in [0, 1)");
  }
}

double draw(stats::Rng& rng, double mean, double jitter) {
  if (jitter == 0.0) return mean;
  return rng.uniform(mean * (1.0 - jitter), mean * (1.0 + jitter));
}

// Per-session parameter draws, shared by both arrival shapes so a Poisson
// workload and a trace replay of its arrival instants draw identically.
SessionRequest draw_request(stats::Rng& rng, std::uint64_t id,
                            double arrival_s, const WorkloadOptions& options) {
  SessionRequest request;
  request.id = id;
  request.arrival_s = arrival_s;
  request.traffic.rate_bps = draw(rng, options.mean_rate_bps,
                                  options.rate_jitter);
  request.traffic.lifetime_s =
      draw(rng, options.mean_lifetime_s, options.lifetime_jitter);
  request.num_messages = static_cast<std::uint64_t>(std::max(
      1.0, std::round(draw(rng, options.mean_messages,
                           options.messages_jitter))));
  request.utility = draw(rng, options.mean_utility, options.utility_jitter);
  request.traffic.check();
  return request;
}

}  // namespace

void WorkloadOptions::check() const {
  if (count < 1) {
    throw std::invalid_argument("WorkloadOptions: count must be >= 1");
  }
  if (arrivals_per_s <= 0.0) {
    throw std::invalid_argument(
        "WorkloadOptions: arrival rate must be > 0");
  }
  if (mean_rate_bps <= 0.0 || mean_lifetime_s <= 0.0 || mean_messages < 1.0) {
    throw std::invalid_argument("WorkloadOptions: means must be positive");
  }
  check_jitter("rate_jitter", rate_jitter);
  check_jitter("lifetime_jitter", lifetime_jitter);
  check_jitter("messages_jitter", messages_jitter);
  check_jitter("utility_jitter", utility_jitter);
}

std::vector<SessionRequest> poisson_arrivals(const WorkloadOptions& options) {
  options.check();
  stats::Rng rng(options.seed);
  std::vector<SessionRequest> requests;
  requests.reserve(static_cast<std::size_t>(options.count));
  double t = 0.0;
  for (int i = 0; i < options.count; ++i) {
    t += rng.exponential(1.0 / options.arrivals_per_s);
    requests.push_back(
        draw_request(rng, static_cast<std::uint64_t>(i), t, options));
  }
  return requests;
}

std::vector<SessionRequest> trace_arrivals(const std::vector<double>& times,
                                           const WorkloadOptions& options) {
  WorkloadOptions checked = options;
  checked.count = std::max<int>(1, static_cast<int>(times.size()));
  checked.check();
  if (times.empty()) {
    throw std::invalid_argument("trace_arrivals: empty trace");
  }
  if (!std::is_sorted(times.begin(), times.end())) {
    throw std::invalid_argument("trace_arrivals: times must be ascending");
  }
  if (times.front() < 0.0) {
    throw std::invalid_argument("trace_arrivals: negative arrival time");
  }
  stats::Rng rng(options.seed);
  std::vector<SessionRequest> requests;
  requests.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    requests.push_back(draw_request(rng, i, times[i], options));
  }
  return requests;
}

}  // namespace dmc::server
