// The online session server: an event-driven loop that admits, plans, runs,
// and tears down sessions at runtime over one shared sim::Network. This is
// the control layer between the paper's offline single-session optimization
// and the ROADMAP's multi-user north star:
//
//   arrivals -> admission (LP vs residual) -> planner -> network
//      |             |                           ^
//      |             +-- queue (patience) -------+
//      +-- reject                  ^
//          departures -> retry queued + re-plan live sessions
//
// Each arrival is judged against the *measured* residual capacity of the
// shared links (sim::UtilizationMeter); admitted sessions get plans with the
// measured cross-traffic folded into the LP inputs (core::CrossTraffic), and
// on every departure the freed capacity triggers queued-request retries and
// contention-aware re-planning of degraded live sessions.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/path.h"
#include "core/planner.h"
#include "obs/analysis.h"
#include "obs/export.h"
#include "protocol/session.h"
#include "protocol/session_host.h"
#include "server/admission.h"
#include "server/arrivals.h"
#include "sim/link.h"

namespace dmc::server {

struct ServerConfig {
  core::PathSet planning_paths;  // nominal (zero-load) characteristics
  core::PathSet true_paths;      // simulated truth (may differ, Experiment 3)
  std::string policy = "feasibility-lp";
  double min_quality = 0.9;        // feasibility bar for LP admission
  double max_queue_wait_s = 2.0;   // patience of a queued request
  bool replan_on_departure = true;
  // Warm-started LP re-solves (core::Planner / lp::IncrementalSolver): the
  // admission pipeline shares one planner across feasibility-lp decisions
  // and each live session re-plans from its previous optimal basis. Off
  // solves every LP cold through the same canonical pipeline — same plans
  // (for unique optima), measurably slower control plane.
  bool warm_start = true;
  core::CrossTraffic cross_model;  // how measured load folds into planning
  core::PlanOptions plan_options;
  proto::SessionConfig session;    // protocol knobs (seed/messages per-session)
  std::uint64_t seed = 1;          // network seed + per-session stream base
  double bandwidth_headroom = 1.0;
  std::size_t queue_capacity = 100;

  // Sharded execution (server::ShardedSessionServer; the classic
  // SessionServer ignores all three). The workload is partitioned into
  // `shard_slices` *logical* shards by stable request-id hash — a fixed
  // partition that does not depend on `shards`, so results are bit-identical
  // at any worker count. `shards` only sets how many OS threads execute the
  // slices each epoch (mirrors the fleet's --threads semantics). Every slice
  // owns a full-capacity network replica, its own UtilizationMeter and
  // planner warm-start state; packet-level contention *between* slices is
  // not simulated — instead slices exchange load summaries every
  // `reconcile_interval_s` of simulated time and fold the other slices'
  // footprints into admission as background traffic (bounded staleness of
  // at most one epoch). queue_capacity stays per-replica (each slice's links
  // buffer that many packets); trace_capacity is split evenly across slices,
  // hence check() requires trace_capacity >= shard_slices when tracing.
  std::size_t shards = 1;
  std::size_t shard_slices = 16;
  double reconcile_interval_s = 0.25;

  // Minimum utilization-meter window: admission events closer together than
  // this reuse the previous measurement instead of trusting a micro-window.
  double utilization_window_s = 0.01;

  // Observability (src/obs). `collect_metrics` allocates a MetricRegistry up
  // front: per-message delay/lateness histograms, LP solve wall-clock
  // timers, admission counters, and the dmc_run_* footer metrics —
  // snapshotted into ServerOutcome::obs as the deterministic dmc.obs.v1
  // block. `collect_trace` preallocates a TraceRecorder ring of
  // `trace_capacity` events (drop-counted flight recorder) capturing
  // session admit/reject/expire spans, packet tx/retx/ack/deliver/late,
  // re-plans, LP warm/cold solves, and link/event-queue depth samples.
  // Either one enabled leaves every simulation result bit-identical to a
  // run with both disabled — the determinism contract test_server pins.
  bool collect_metrics = false;
  bool collect_trace = false;
  std::size_t trace_capacity = std::size_t{1} << 20;
  // `collect_forensics` runs the deadline-miss analyzer (obs/analysis) over
  // the trace ring after the run and fills ServerOutcome::forensics; it
  // implies a trace ring even when collect_trace is off. Tunables (window
  // width, SLO target, cascade thresholds) live in `forensics`.
  bool collect_forensics = false;
  obs::AnalysisOptions forensics;

  void check() const;
};

enum class RequestFate {
  rejected,         // turned away at arrival
  expired,          // queued but patience ran out before capacity freed
  admitted,         // started at arrival time
  queued_admitted,  // queued first, admitted on a later departure
};

const char* to_string(RequestFate fate);

// One row per request, in request order.
struct SessionRecord {
  std::uint64_t request_id = 0;
  double arrival_s = 0.0;
  RequestFate fate = RequestFate::rejected;
  double predicted_quality = 0.0;  // LP prediction behind the decision
  double queue_wait_s = 0.0;       // admission delay (0 when direct)
  double admitted_at_s = std::numeric_limits<double>::quiet_NaN();
  double completed_at_s = std::numeric_limits<double>::quiet_NaN();
  int replans = 0;                 // times this session was re-planned
  proto::Trace trace;              // admitted sessions only
  double measured_quality = 0.0;   // on_time / generated
};

struct ServerOutcome {
  std::vector<SessionRecord> sessions;  // request order
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;  // includes queued_admitted
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  double admission_rate = 0.0;      // admitted / arrivals
  // 1 - sum(on_time) / sum(generated) over admitted sessions: the fraction
  // of accepted traffic that missed its deadline (blackhole-dropped and
  // given-up messages count as misses, as they should).
  double deadline_miss_rate = 0.0;
  double goodput_bps = 0.0;         // on-time payload bits / elapsed
  double mean_queue_wait_s = 0.0;   // over admitted sessions
  std::uint64_t replans = 0;
  double elapsed_s = 0.0;
  std::uint64_t events = 0;
  // LP solver work behind every admission decision and re-plan, summed over
  // the shared admission planner and all per-session re-planners. With
  // warm_start off, warm_solves stays 0 and every solve counts as cold.
  lp::IncrementalSolver::Stats lp;
  proto::OrphanStats orphans;       // packets that outlived their session
  std::vector<sim::LinkStats> forward_links;
  std::vector<sim::LinkStats> reverse_links;
  // Shared-link packet conservation held at drain (teardown leaked nothing):
  // offered == queue_drops + loss_drops + delivered and in_flight == 0 on
  // every link.
  bool conserved = false;
  // Deterministic metric snapshot (empty unless collect_metrics): the
  // dmc.obs.v1 block the fleet result layer embeds.
  obs::Snapshot obs;
  // Live exporter handles (null unless the matching collect_* flag was set):
  // `metrics` feeds obs::write_prometheus / print_run_footer (wall-clock
  // metrics included), `trace_events` feeds obs::write_chrome_trace.
  std::shared_ptr<const obs::MetricRegistry> metrics;
  std::shared_ptr<const obs::TraceRecorder> trace_events;
  // Deadline-miss forensics report (engaged only when collect_forensics):
  // root-cause attribution, windowed SLO series, per-session summaries —
  // a pure function of the trace, so byte-identical across reruns.
  std::optional<obs::AnalysisReport> forensics;
  // Sharded runs only: the merged trace (session/link tracks remapped into
  // one global namespace) that `forensics` above was computed from; feeds
  // obs::write_chrome_trace(std::ostream&, const obs::TraceData&). Null for
  // classic runs — use `trace_events` there.
  std::shared_ptr<const obs::TraceData> trace_data;
  // Logical shard count behind this outcome: ServerConfig::shard_slices for
  // sharded runs, 0 for the classic single-loop server. Deliberately *not*
  // the worker-thread count, which never affects results.
  std::uint64_t shards = 0;
};

class SessionServer {
 public:
  explicit SessionServer(ServerConfig config);

  // Runs the whole workload to completion (arrivals must be sorted by
  // arrival_s ascending) and returns per-request records plus aggregates.
  // Deterministic for fixed (config, requests).
  ServerOutcome run(const std::vector<SessionRequest>& requests);

  const ServerConfig& config() const { return config_; }

 private:
  ServerConfig config_;
};

// Convenience: generate the workload and run it in one call.
ServerOutcome run_server(const ServerConfig& config,
                         const WorkloadOptions& workload);

}  // namespace dmc::server
