// One logical session server sharded across worker threads — the scale step
// between the single-threaded server::SessionServer event loop and the
// ROADMAP's "10k+ arrivals/s, ~1M sessions per run" target.
//
// Execution model (see ServerConfig's sharding fields for the knobs):
//
//   requests --id hash--> slice 0 | slice 1 | ... | slice S-1   (S fixed)
//                            |        |               |
//                         ServerLoop per slice: own simulator, own
//                         network replica, own meter + planner state
//                            |        |               |
//                         epoch barrier every reconcile_interval_s:
//                         exchange LoadSummary, fold the other slices'
//                         footprints into admission as background load
//                            |        |               |
//                         deterministic merge in slice order
//                            v
//                         one ServerOutcome (+ merged obs snapshot,
//                         merged trace, one forensics report)
//
// Determinism contract: the partition into `shard_slices` logical shards and
// every per-slice seed stream are functions of (config, requests) only —
// `shards` picks how many OS threads execute the slices and can never change
// a single output byte. Results differ from the classic SessionServer (one
// global event loop vs. S loosely-coupled ones), but are bit-identical
// across worker counts and reruns.
#pragma once

#include <vector>

#include "server/arrivals.h"
#include "server/server.h"

namespace dmc::server {

class ShardedSessionServer {
 public:
  // Throws std::invalid_argument on a config that fails check() or names an
  // unknown admission policy.
  explicit ShardedSessionServer(ServerConfig config);

  // Runs the whole workload to completion (arrivals sorted by arrival_s
  // ascending) and returns the merged outcome. Deterministic for fixed
  // (config, requests) at any config.shards value; outcome.shards records
  // config.shard_slices.
  ServerOutcome run(const std::vector<SessionRequest>& requests);

  const ServerConfig& config() const { return config_; }

 private:
  ServerConfig config_;
};

// Convenience: generate the workload and run it in one call.
ServerOutcome run_sharded_server(const ServerConfig& config,
                                 const WorkloadOptions& workload);

}  // namespace dmc::server
