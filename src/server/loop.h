// Internal event-loop engine behind server::SessionServer and
// server::ShardedSessionServer: one simulator, one network replica, the
// incremental session host, the utilization meter, and the admission state
// machine wired together by simulator events.
//
// The standalone server drives it with prime() + run() + finish(). The
// sharded server drives one loop per logical shard in epoch lockstep —
// prime(), then run_until(epoch end) / summary() / reconcile()
// rounds until drained(), then finish() — so shard-local admission sees the
// other shards' planned footprints with at most one reconciliation epoch of
// staleness.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/planner.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "protocol/session_host.h"
#include "server/admission.h"
#include "server/server.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/utilization.h"

namespace dmc::server::detail {

// Per-loop knobs that differ between the standalone server and one logical
// shard of a sharded run.
struct LoopEnv {
  // Simulator (network) stream. The standalone server passes config.seed;
  // shard k gets an independent mix_seed lane. Per-session protocol streams
  // always derive from config.seed and the *global* request id, so a
  // session's own randomness does not depend on which shard runs it.
  std::uint64_t sim_seed = 0;
  // Trace-ring events for this loop (the sharded server splits
  // config.trace_capacity across its shards).
  std::size_t trace_capacity = 0;
  // Leave ServerOutcome::forensics empty even when config.collect_forensics
  // is set: the sharded server analyzes one merged trace instead of every
  // per-shard ring.
  bool defer_forensics = false;
};

// What one shard reports at a reconciliation barrier: its live sessions'
// planned per-path footprint (measurement-capped, same blend admission
// uses locally) plus the admitted-rate/in-flight totals the threshold
// policy consumes.
struct LoadSummary {
  std::vector<double> load_bps;  // per real path
  double admitted_rate_bps = 0.0;
  int in_flight = 0;
};

class ServerLoop {
 public:
  // `requests` must outlive the loop; arrival times sorted ascending.
  ServerLoop(const ServerConfig& config,
             const std::vector<SessionRequest>& requests, const LoopEnv& env);

  // Schedules every arrival event. Call once, before any run call.
  void prime();

  // Runs to completion (standalone mode).
  void run() { simulator_.run(); }

  // Runs every event with time <= t, then advances the clock to t
  // (epoch-lockstep mode).
  void run_until(double t) { simulator_.run_until(t); }

  bool drained() const { return simulator_.events_pending() == 0; }
  double now() const { return simulator_.now(); }

  // Samples the utilization meter at the current time and reports this
  // loop's own load; called at reconciliation barriers.
  LoadSummary summary();

  // Installs the summed load of every *other* shard, held fixed until the
  // next barrier, then retries queued requests against it — a drop in
  // remote load is this loop's only signal that shared capacity freed
  // without a local departure. Admission, queued-request retries and
  // re-planning all see the remote load as additional background traffic.
  void reconcile(LoadSummary remote);

  // Finalizes counters/rates/links/metrics and moves the outcome out.
  ServerOutcome finish();

 private:
  struct Pending {
    std::size_t request_index = 0;
    double queued_at_s = 0.0;
  };

  // Bookkeeping for one admitted, still-running session.
  struct LiveSession {
    std::size_t request_index = 0;
    double admitted_at_s = 0.0;
    double rate_bps = 0.0;  // application lambda
    double planned_quality = 0.0;
    std::vector<double> planned_rate_bps;  // per real path, incl. retransmits
    int replans = 0;
    // Warm re-solve state for this session's re-plans: seeded from the
    // admission planner (whose stored basis is exactly this session's LP
    // when the feasibility-lp policy just solved it), then advanced by every
    // departure-triggered re-plan.
    core::Planner planner;
  };

  void handle_arrival(std::size_t i);
  Decision decide_instrumented(const SessionRequest& request);
  void record_lp_delta(const lp::IncrementalSolver::Stats& before,
                       const lp::IncrementalSolver::Stats& after);
  void sample_event_depth();
  std::vector<double> local_load();
  std::vector<double> background();
  AdmissionContext context();
  bool apply_decision(std::size_t i, Decision decision, bool from_queue);
  void start_session(std::size_t i, core::Plan plan, double predicted_quality,
                     bool from_queue);
  void on_departure(std::uint32_t id);
  void retry_queued();
  void expire_if_pending(std::size_t i);
  void replan_live();
  void publish_metrics();

  const ServerConfig& config_;
  const std::vector<SessionRequest>& requests_;
  // Observability collectors (null when the matching collect_* flag is off).
  // Declared before simulator_: its constructor captures both pointers in
  // the hub, and shared ownership lets ServerOutcome hand them to exporters
  // after the loop is gone.
  std::shared_ptr<obs::MetricRegistry> registry_;
  std::shared_ptr<obs::TraceRecorder> recorder_;
  sim::Simulator simulator_;
  sim::Network network_;
  proto::SessionHost host_;
  sim::UtilizationMeter meter_;
  std::unique_ptr<AdmissionPolicy> policy_;
  // Shared warm-start state across admission decisions; per-session re-plan
  // state lives in LiveSession::planner.
  core::Planner planner_;
  ServerOutcome outcome_;
  // Host session id -> bookkeeping; std::map so every sweep over the live
  // set (re-planning, background attribution) runs in deterministic order.
  std::map<std::uint32_t, LiveSession> live_;
  std::vector<Pending> pending_;  // FIFO retry order
  // Other shards' load as of the last reconciliation barrier; empty vectors
  // in standalone mode.
  LoadSummary remote_;
  bool defer_forensics_ = false;

  // Tracks and registry handles resolved once in the constructor.
  std::uint16_t server_track_ = 0;
  std::uint16_t lp_track_ = 0;
  std::uint16_t events_track_ = 0;
  obs::Histogram* lp_wall_hist_ = nullptr;  // wallclock: export-excluded
  obs::Histogram* queue_wait_hist_ = nullptr;
  obs::Histogram* event_depth_hist_ = nullptr;
  // dmc-lint: allow(det-wallclock) run-footer telemetry, export-excluded
  std::chrono::steady_clock::time_point wall_start_ =
      // dmc-lint: allow(det-wallclock) run-footer telemetry, export-excluded
      std::chrono::steady_clock::now();
};

// Shared finalize-rate math, also used by the sharded merge. Recomputes
// admission_rate / deadline_miss_rate / goodput_bps / mean_queue_wait_s
// from outcome.sessions with explicit zero-denominator guards: a run with
// zero arrivals (or zero admitted / zero generated messages / zero elapsed
// time) yields exact 0.0 for every rate — never NaN or Inf — so JSON
// output stays well-defined (the zero-arrival regression tests pin this).
void compute_outcome_rates(ServerOutcome& outcome, std::size_t message_bytes);

}  // namespace dmc::server::detail
