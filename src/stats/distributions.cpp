#include "stats/distributions.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "stats/gamma_math.h"

namespace dmc::stats {

namespace {

// Shared [0, 1] bounds check for the closed-interval quantile contract
// documented on DelayDistribution::quantile.
void check_quantile_p(double p) {
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::domain_error("quantile: p must be in [0,1]");
  }
}

}  // namespace

// ------------------------------------------------------------ base default

bool DelayDistribution::check_grid_args(double dt, std::size_t n,
                                        const double* out) {
  if (!(dt > 0.0)) throw std::domain_error("cdf_grid: dt must be > 0");
  if (n == 0) return false;
  if (out == nullptr) throw std::invalid_argument("cdf_grid: null buffer");
  return true;
}

void DelayDistribution::cdf_grid(double t0, double dt, std::size_t n,
                                 double* out) const {
  if (!check_grid_args(dt, n, out)) return;
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = cdf(t0 + static_cast<double>(k) * dt);
  }
}

// ---------------------------------------------------------------- constant

DeterministicDelay::DeterministicDelay(double value) : value_(value) {
  if (!(value >= 0.0) && !std::isinf(value)) {
    throw std::invalid_argument("DeterministicDelay: value must be >= 0");
  }
}

double DeterministicDelay::cdf(double x) const {
  return x >= value_ ? 1.0 : 0.0;
}

void DeterministicDelay::cdf_grid(double t0, double dt, std::size_t n,
                                  double* out) const {
  if (!check_grid_args(dt, n, out)) return;
  // Step function: 0 strictly before the atom, 1 from it on. Negated
  // comparison so a NaN grid point lands in the 0 branch exactly like
  // cdf(NaN).
  std::size_t k = 0;
  while (k < n && !(t0 + static_cast<double>(k) * dt >= value_)) {
    out[k++] = 0.0;
  }
  while (k < n) out[k++] = 1.0;
}

double DeterministicDelay::pdf(double) const { return 0.0; }

double DeterministicDelay::quantile(double p) const {
  check_quantile_p(p);
  return value_;
}

double DeterministicDelay::sample(Rng&) const { return value_; }

std::string DeterministicDelay::describe() const {
  std::ostringstream out;
  out << "Deterministic(" << value_ << "s)";
  return out.str();
}

// ------------------------------------------------------------ shifted gamma

ShiftedGammaDelay::ShiftedGammaDelay(double shift, double shape, double scale)
    : shift_(shift), shape_(shape), scale_(scale) {
  if (shift < 0.0) {
    throw std::invalid_argument("ShiftedGammaDelay: shift must be >= 0");
  }
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument(
        "ShiftedGammaDelay: shape and scale must be > 0");
  }
}

double ShiftedGammaDelay::cdf(double x) const {
  if (x <= shift_) return 0.0;
  return regularized_gamma_p(shape_, (x - shift_) / scale_);
}

void ShiftedGammaDelay::cdf_grid(double t0, double dt, std::size_t n,
                                 double* out) const {
  gamma_cdf_grid(shape_, scale_, shift_, t0, dt, n, out);
}

double ShiftedGammaDelay::pdf(double x) const {
  if (x < shift_) return 0.0;
  return gamma_pdf(shape_, scale_, x - shift_);
}

double ShiftedGammaDelay::quantile(double p) const {
  check_quantile_p(p);
  if (p == 0.0) return shift_;
  // Unbounded upper tail: the least upper bound of the support.
  if (p == 1.0) return std::numeric_limits<double>::infinity();
  return shift_ + scale_ * inverse_regularized_gamma_p(shape_, p);
}

double ShiftedGammaDelay::sample(Rng& rng) const {
  return shift_ + rng.gamma(shape_, scale_);
}

std::string ShiftedGammaDelay::describe() const {
  std::ostringstream out;
  out << "ShiftedGamma(shift=" << shift_ << ", shape=" << shape_
      << ", scale=" << scale_ << ")";
  return out.str();
}

// ---------------------------------------------------------------- uniform

UniformDelay::UniformDelay(double lo, double hi) : lo_(lo), hi_(hi) {
  if (lo < 0.0 || hi < lo) {
    throw std::invalid_argument("UniformDelay: need 0 <= lo <= hi");
  }
}

double UniformDelay::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformDelay::pdf(double x) const {
  if (x < lo_ || x > hi_ || hi_ == lo_) return 0.0;
  return 1.0 / (hi_ - lo_);
}

double UniformDelay::quantile(double p) const {
  check_quantile_p(p);
  return lo_ + p * (hi_ - lo_);
}

double UniformDelay::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

std::string UniformDelay::describe() const {
  std::ostringstream out;
  out << "Uniform(" << lo_ << ", " << hi_ << ")";
  return out.str();
}

// --------------------------------------------------------------- empirical

EmpiricalDelay::EmpiricalDelay(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  if (sorted_.empty()) {
    throw std::invalid_argument("EmpiricalDelay: need at least one sample");
  }
  std::sort(sorted_.begin(), sorted_.end());
  if (sorted_.front() < 0.0) {
    throw std::invalid_argument("EmpiricalDelay: samples must be >= 0");
  }
  mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
          static_cast<double>(sorted_.size());
  double m2 = 0.0;
  for (double v : sorted_) m2 += (v - mean_) * (v - mean_);
  variance_ = m2 / static_cast<double>(sorted_.size());
}

double EmpiricalDelay::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

void EmpiricalDelay::cdf_grid(double t0, double dt, std::size_t n,
                              double* out) const {
  if (!check_grid_args(dt, n, out)) return;
  // One merge pass over the sorted samples: O(n + samples) instead of a
  // binary search per grid point.
  const double inv = 1.0 / static_cast<double>(sorted_.size());
  std::size_t rank = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double x = t0 + static_cast<double>(k) * dt;
    while (rank < sorted_.size() && sorted_[rank] <= x) ++rank;
    out[k] = static_cast<double>(rank) * inv;
  }
}

double EmpiricalDelay::pdf(double) const { return 0.0; }

double EmpiricalDelay::quantile(double p) const {
  check_quantile_p(p);
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_.size()));
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

double EmpiricalDelay::sample(Rng& rng) const {
  return sorted_[rng.integer(sorted_.size())];
}

std::string EmpiricalDelay::describe() const {
  std::ostringstream out;
  out << "Empirical(n=" << sorted_.size() << ", mean=" << mean_ << ")";
  return out.str();
}

// ----------------------------------------------------------------- shifted

ShiftedDelay::ShiftedDelay(DelayDistributionPtr base, double delta)
    : base_(std::move(base)), delta_(delta) {
  if (!base_) throw std::invalid_argument("ShiftedDelay: null base");
  if (base_->min_support() + delta < 0.0) {
    throw std::invalid_argument("ShiftedDelay: support would become negative");
  }
}

std::string ShiftedDelay::describe() const {
  std::ostringstream out;
  out << base_->describe() << " + " << delta_;
  return out.str();
}

// ----------------------------------------------------------------- helpers

double min_positive_sigma(const DelayDistribution& a,
                          const DelayDistribution& b) {
  double sigma = std::numeric_limits<double>::infinity();
  for (const DelayDistribution* d : {&a, &b}) {
    const double variance = d->variance();
    if (variance > 0.0 && std::isfinite(variance)) {
      sigma = std::min(sigma, std::sqrt(variance));
    }
  }
  return sigma;
}

// --------------------------------------------------------------- factories

DelayDistributionPtr make_deterministic(double value) {
  return std::make_shared<DeterministicDelay>(value);
}

DelayDistributionPtr make_shifted_gamma(double shift, double shape,
                                        double scale) {
  return std::make_shared<ShiftedGammaDelay>(shift, shape, scale);
}

DelayDistributionPtr make_uniform(double lo, double hi) {
  return std::make_shared<UniformDelay>(lo, hi);
}

DelayDistributionPtr make_empirical(std::vector<double> samples) {
  return std::make_shared<EmpiricalDelay>(std::move(samples));
}

DelayDistributionPtr make_shifted(DelayDistributionPtr base, double delta) {
  return std::make_shared<ShiftedDelay>(std::move(base), delta);
}

}  // namespace dmc::stats
