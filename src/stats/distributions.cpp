#include "stats/distributions.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "stats/gamma_math.h"

namespace dmc::stats {

// ---------------------------------------------------------------- constant

DeterministicDelay::DeterministicDelay(double value) : value_(value) {
  if (!(value >= 0.0) && !std::isinf(value)) {
    throw std::invalid_argument("DeterministicDelay: value must be >= 0");
  }
}

double DeterministicDelay::cdf(double x) const {
  return x >= value_ ? 1.0 : 0.0;
}

double DeterministicDelay::pdf(double) const { return 0.0; }

double DeterministicDelay::quantile(double p) const {
  if (p < 0.0 || p >= 1.0) {
    throw std::domain_error("quantile: p must be in [0,1)");
  }
  return value_;
}

double DeterministicDelay::sample(Rng&) const { return value_; }

std::string DeterministicDelay::describe() const {
  std::ostringstream out;
  out << "Deterministic(" << value_ << "s)";
  return out.str();
}

// ------------------------------------------------------------ shifted gamma

ShiftedGammaDelay::ShiftedGammaDelay(double shift, double shape, double scale)
    : shift_(shift), shape_(shape), scale_(scale) {
  if (shift < 0.0) {
    throw std::invalid_argument("ShiftedGammaDelay: shift must be >= 0");
  }
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument(
        "ShiftedGammaDelay: shape and scale must be > 0");
  }
}

double ShiftedGammaDelay::cdf(double x) const {
  if (x <= shift_) return 0.0;
  return regularized_gamma_p(shape_, (x - shift_) / scale_);
}

double ShiftedGammaDelay::pdf(double x) const {
  if (x < shift_) return 0.0;
  return gamma_pdf(shape_, scale_, x - shift_);
}

double ShiftedGammaDelay::quantile(double p) const {
  if (p < 0.0 || p >= 1.0) {
    throw std::domain_error("quantile: p must be in [0,1)");
  }
  if (p == 0.0) return shift_;
  return shift_ + scale_ * inverse_regularized_gamma_p(shape_, p);
}

double ShiftedGammaDelay::sample(Rng& rng) const {
  return shift_ + rng.gamma(shape_, scale_);
}

std::string ShiftedGammaDelay::describe() const {
  std::ostringstream out;
  out << "ShiftedGamma(shift=" << shift_ << ", shape=" << shape_
      << ", scale=" << scale_ << ")";
  return out.str();
}

// ---------------------------------------------------------------- uniform

UniformDelay::UniformDelay(double lo, double hi) : lo_(lo), hi_(hi) {
  if (lo < 0.0 || hi < lo) {
    throw std::invalid_argument("UniformDelay: need 0 <= lo <= hi");
  }
}

double UniformDelay::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformDelay::pdf(double x) const {
  if (x < lo_ || x > hi_ || hi_ == lo_) return 0.0;
  return 1.0 / (hi_ - lo_);
}

double UniformDelay::quantile(double p) const {
  if (p < 0.0 || p >= 1.0) {
    throw std::domain_error("quantile: p must be in [0,1)");
  }
  return lo_ + p * (hi_ - lo_);
}

double UniformDelay::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

std::string UniformDelay::describe() const {
  std::ostringstream out;
  out << "Uniform(" << lo_ << ", " << hi_ << ")";
  return out.str();
}

// --------------------------------------------------------------- empirical

EmpiricalDelay::EmpiricalDelay(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  if (sorted_.empty()) {
    throw std::invalid_argument("EmpiricalDelay: need at least one sample");
  }
  std::sort(sorted_.begin(), sorted_.end());
  if (sorted_.front() < 0.0) {
    throw std::invalid_argument("EmpiricalDelay: samples must be >= 0");
  }
  mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
          static_cast<double>(sorted_.size());
  double m2 = 0.0;
  for (double v : sorted_) m2 += (v - mean_) * (v - mean_);
  variance_ = m2 / static_cast<double>(sorted_.size());
}

double EmpiricalDelay::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDelay::pdf(double) const { return 0.0; }

double EmpiricalDelay::quantile(double p) const {
  if (p < 0.0 || p >= 1.0) {
    throw std::domain_error("quantile: p must be in [0,1)");
  }
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_.size()));
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

double EmpiricalDelay::sample(Rng& rng) const {
  return sorted_[rng.integer(sorted_.size())];
}

std::string EmpiricalDelay::describe() const {
  std::ostringstream out;
  out << "Empirical(n=" << sorted_.size() << ", mean=" << mean_ << ")";
  return out.str();
}

// ----------------------------------------------------------------- shifted

ShiftedDelay::ShiftedDelay(DelayDistributionPtr base, double delta)
    : base_(std::move(base)), delta_(delta) {
  if (!base_) throw std::invalid_argument("ShiftedDelay: null base");
  if (base_->min_support() + delta < 0.0) {
    throw std::invalid_argument("ShiftedDelay: support would become negative");
  }
}

std::string ShiftedDelay::describe() const {
  std::ostringstream out;
  out << base_->describe() << " + " << delta_;
  return out.str();
}

// --------------------------------------------------------------- factories

DelayDistributionPtr make_deterministic(double value) {
  return std::make_shared<DeterministicDelay>(value);
}

DelayDistributionPtr make_shifted_gamma(double shift, double shape,
                                        double scale) {
  return std::make_shared<ShiftedGammaDelay>(shift, shape, scale);
}

DelayDistributionPtr make_uniform(double lo, double hi) {
  return std::make_shared<UniformDelay>(lo, hi);
}

DelayDistributionPtr make_empirical(std::vector<double> samples) {
  return std::make_shared<EmpiricalDelay>(std::move(samples));
}

DelayDistributionPtr make_shifted(DelayDistributionPtr base, double delta) {
  return std::make_shared<ShiftedDelay>(std::move(base), delta);
}

}  // namespace dmc::stats
