#include "stats/convolution.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "stats/fft.h"

namespace dmc::stats {

GriddedDistribution::GriddedDistribution(double lo, double step,
                                         std::vector<double> cdf_values)
    : lo_(lo), step_(step), cdf_(std::move(cdf_values)) {
  if (cdf_.size() < 2) {
    throw std::invalid_argument("GriddedDistribution: need >= 2 grid points");
  }
  if (step <= 0.0) {
    throw std::invalid_argument("GriddedDistribution: step must be > 0");
  }
  // Clamp to [0, 1], enforce monotonicity, pin the last point to 1 so the
  // tabulated CDF is a genuine distribution function.
  double prev = 0.0;
  for (double& v : cdf_) {
    v = std::clamp(v, 0.0, 1.0);
    v = std::max(v, prev);
    prev = v;
  }
  cdf_.back() = 1.0;

  // Moments by midpoint rule over the implied density. Mass at or below the
  // first grid point (cdf_[0] > 0) is an atom at lo_ — e.g. a discretized
  // point mass sitting on the support edge — and counts toward the moments
  // like any other mass.
  double mean = cdf_[0] * lo_;
  double second = cdf_[0] * lo_ * lo_;
  for (std::size_t k = 1; k < cdf_.size(); ++k) {
    const double mass = cdf_[k] - cdf_[k - 1];
    const double mid = lo_ + (static_cast<double>(k) - 0.5) * step_;
    mean += mass * mid;
    second += mass * mid * mid;
  }
  mean_ = mean;
  variance_ = std::max(0.0, second - mean * mean);
}

double GriddedDistribution::cdf_at(double x) const {
  // Negated comparison so NaN lands in the 0 branch; together with the
  // bound check below, nothing non-finite ever reaches the integer cast
  // (casting NaN or a huge double to size_t is UB).
  if (!(x >= lo_)) return 0.0;
  const double pos = (x - lo_) / step_;
  if (pos >= static_cast<double>(cdf_.size() - 1)) return 1.0;
  const auto k = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(k);
  return cdf_[k] + frac * (cdf_[k + 1] - cdf_[k]);
}

double GriddedDistribution::cdf(double x) const { return cdf_at(x); }

void GriddedDistribution::cdf_grid(double t0, double dt, std::size_t n,
                                   double* out) const {
  if (!check_grid_args(dt, n, out)) return;
  // Non-virtual interpolation sweep; cdf_at inlines into the loop.
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = cdf_at(t0 + static_cast<double>(k) * dt);
  }
}

double GriddedDistribution::pdf(double x) const {
  const double hi = upper_support();
  if (x < lo_ || x > hi) return 0.0;
  // Central difference in the interior; within half a step of a support
  // edge the window is clamped to one-sided so it never reads the flat
  // extension beyond the table (which biased edge densities low).
  const double a = std::max(x - 0.5 * step_, lo_);
  const double b = std::min(x + 0.5 * step_, hi);
  if (!(b > a)) return 0.0;
  return (cdf(b) - cdf(a)) / (b - a);
}

double GriddedDistribution::quantile(double p) const {
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::domain_error("quantile: p must be in [0,1]");
  }
  // Generalized inverse inf{x : cdf(x) >= p}: p at or below the atom at lo_
  // lands on lo_; p == 1 lands on the first grid point that reaches 1 (the
  // least upper bound of the support, since the table is pinned to end at
  // 1).
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), p);
  const auto k = static_cast<std::size_t>(it - cdf_.begin());
  if (k == 0) return lo_;
  const double c0 = cdf_[k - 1];
  const double c1 = cdf_[k];
  const double frac = (c1 > c0) ? (p - c0) / (c1 - c0) : 0.0;
  return lo_ + (static_cast<double>(k - 1) + frac) * step_;
}

double GriddedDistribution::sample(Rng& rng) const {
  return quantile(rng.uniform());
}

std::string GriddedDistribution::describe() const {
  std::ostringstream out;
  out << "Gridded(lo=" << lo_ << ", step=" << step_ << ", n=" << cdf_.size()
      << ")";
  return out.str();
}

namespace {

const DeterministicDelay* as_deterministic(const DelayDistributionPtr& d) {
  return dynamic_cast<const DeterministicDelay*>(d.get());
}

const ShiftedGammaDelay* as_shifted_gamma(const DelayDistributionPtr& d) {
  return dynamic_cast<const ShiftedGammaDelay*>(d.get());
}

// Probability masses of `d` binned onto a uniform grid: mass[k] covers
// (lo + k step, lo + (k+1) step], evaluated with one batched CDF call.
// Mass at the support edge lo itself (an atom) lands in cell 0, and the
// upper tail truncated at hi is folded into the last cell, so the masses
// always sum to 1.
std::vector<double> discretize(const DelayDistribution& d, double lo,
                               double hi, double step) {
  const auto cells = static_cast<std::size_t>(
                         std::ceil(std::max(0.0, hi - lo) / step)) +
                     1;
  std::vector<double> cdf(cells);
  d.cdf_grid(lo + step, step, cells, cdf.data());
  std::vector<double> mass(cells);
  double prev = 0.0;  // P(X < lo) = 0 at the exact support start
  for (std::size_t k = 0; k < cells; ++k) {
    mass[k] = std::max(0.0, cdf[k] - prev);
    prev = cdf[k];
  }
  mass.back() += std::max(0.0, 1.0 - prev);
  return mass;
}

// Grid resolution policy: fixed `step` unless `adaptive`, in which case the
// step tracks the narrower input's spread. Sigma is a smoothness proxy, so
// adaptivity only applies when both inputs are continuous — an atomic
// input's CDF jumps regardless of its spread, and two far-apart atoms
// would read as a huge sigma and a needlessly coarse grid (the same guard
// core::optimize_timeout's scan applies). Always coarsened as needed to
// respect max_points over the combined support width.
double pick_step(const DelayDistribution& a, const DelayDistribution& b,
                 double width, const ConvolutionOptions& options) {
  double step = options.step;
  if (options.adaptive && options.points_per_sigma > 0.0 && a.continuous() &&
      b.continuous()) {
    const double sigma = min_positive_sigma(a, b);
    if (std::isfinite(sigma)) {
      step = std::clamp(sigma / options.points_per_sigma, options.min_step,
                        options.max_step);
    }
  }
  if (width / step > static_cast<double>(options.max_points)) {
    step = width / static_cast<double>(options.max_points);
  }
  return step;
}

DelayDistributionPtr numeric_sum(const DelayDistributionPtr& a,
                                 const DelayDistributionPtr& b,
                                 const ConvolutionOptions& options) {
  if (options.step <= 0.0 || options.min_step <= 0.0 ||
      options.max_step < options.min_step) {
    throw std::invalid_argument("sum_distribution: bad grid step options");
  }
  if (options.max_points < 2) {
    throw std::invalid_argument("sum_distribution: max_points too small");
  }
  const double a_lo = a->quantile(0.0);
  const double a_hi = a->quantile(1.0 - options.tail);
  const double b_lo = b->quantile(0.0);
  const double b_hi = b->quantile(1.0 - options.tail);
  const double width = (a_hi + b_hi) - (a_lo + b_lo);
  if (!std::isfinite(width)) {
    throw std::invalid_argument(
        "sum_distribution: input support is not finite");
  }

  const double step = pick_step(*a, *b, width, options);
  const std::vector<double> mass_a = discretize(*a, a_lo, a_hi, step);
  const std::vector<double> mass_b = discretize(*b, b_lo, b_hi, step);

  // The FFT wins once the direct sum's n * m work dwarfs the transform
  // setup; below that the direct sum is cheaper and exact to the last bit.
  constexpr std::size_t kDirectCrossover = 1 << 14;
  bool use_fft = options.method == ConvolutionMethod::fft;
  if (options.method == ConvolutionMethod::automatic) {
    use_fft = mass_a.size() * mass_b.size() > kDirectCrossover;
  }
  const std::vector<double> conv = use_fft ? fft_convolve(mass_a, mass_b)
                                           : direct_convolve(mass_a, mass_b);

  // conv[k] is the mass whose cell midpoints sum to lo + (k+1) * step. The
  // CDF at grid point j counts every mass strictly below it plus *half* of
  // the mass sitting exactly on it: sampling the discrete CDF mid-jump is
  // what keeps the scheme second-order accurate in the step (full
  // inclusion would evaluate the underlying CDF half a cell to the right —
  // a first-order bias). One node past the last mass closes the grid at 1.
  const double lo = a_lo + b_lo;
  std::vector<double> cdf(conv.size() + 2);
  cdf[0] = 0.0;
  double acc = 0.0;
  for (std::size_t k = 0; k < conv.size(); ++k) {
    const double mass = std::max(0.0, conv[k]);  // clamp FFT roundoff
    cdf[k + 1] = acc + 0.5 * mass;
    acc += mass;
  }
  cdf[conv.size() + 1] = acc;
  return std::make_shared<GriddedDistribution>(lo, step, std::move(cdf));
}

}  // namespace

DelayDistributionPtr numeric_sum_distribution(
    const DelayDistributionPtr& a, const DelayDistributionPtr& b,
    const ConvolutionOptions& options) {
  if (!a || !b) throw std::invalid_argument("sum_distribution: null input");
  // Deterministic inputs have zero-width grids; shifting is exact.
  if (const auto* da = as_deterministic(a)) {
    if (const auto* db = as_deterministic(b)) {
      return make_deterministic(da->value() + db->value());
    }
    return make_shifted(b, da->value());
  }
  if (const auto* db = as_deterministic(b)) {
    return make_shifted(a, db->value());
  }
  return numeric_sum(a, b, options);
}

DelayDistributionPtr sum_distribution(const DelayDistributionPtr& a,
                                      const DelayDistributionPtr& b,
                                      const ConvolutionOptions& options) {
  if (!a || !b) throw std::invalid_argument("sum_distribution: null input");

  // Gamma + Gamma with a common scale: shapes add, shifts add.
  const auto* ga = as_shifted_gamma(a);
  const auto* gb = as_shifted_gamma(b);
  if (ga != nullptr && gb != nullptr && ga->scale() == gb->scale()) {
    return make_shifted_gamma(ga->shift() + gb->shift(),
                              ga->shape() + gb->shape(), ga->scale());
  }

  return numeric_sum_distribution(a, b, options);
}

}  // namespace dmc::stats
