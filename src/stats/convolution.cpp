#include "stats/convolution.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dmc::stats {

GriddedDistribution::GriddedDistribution(double lo, double step,
                                         std::vector<double> cdf_values)
    : lo_(lo), step_(step), cdf_(std::move(cdf_values)) {
  if (cdf_.size() < 2) {
    throw std::invalid_argument("GriddedDistribution: need >= 2 grid points");
  }
  if (step <= 0.0) {
    throw std::invalid_argument("GriddedDistribution: step must be > 0");
  }
  // Clamp to [0, 1], enforce monotonicity, pin the last point to 1 so the
  // tabulated CDF is a genuine distribution function.
  double prev = 0.0;
  for (double& v : cdf_) {
    v = std::clamp(v, 0.0, 1.0);
    v = std::max(v, prev);
    prev = v;
  }
  cdf_.back() = 1.0;

  // Moments by midpoint rule over the implied density.
  double mean = 0.0;
  double second = 0.0;
  for (std::size_t k = 1; k < cdf_.size(); ++k) {
    const double mass = cdf_[k] - cdf_[k - 1];
    const double mid = lo_ + (static_cast<double>(k) - 0.5) * step_;
    mean += mass * mid;
    second += mass * mid * mid;
  }
  mean_ = mean;
  variance_ = std::max(0.0, second - mean * mean);
}

double GriddedDistribution::cdf(double x) const {
  if (x <= lo_) return 0.0;
  const double pos = (x - lo_) / step_;
  const auto k = static_cast<std::size_t>(pos);
  if (k + 1 >= cdf_.size()) return 1.0;
  const double frac = pos - static_cast<double>(k);
  return cdf_[k] + frac * (cdf_[k + 1] - cdf_[k]);
}

double GriddedDistribution::pdf(double x) const {
  if (x <= lo_ || x >= lo_ + step_ * static_cast<double>(cdf_.size() - 1)) {
    return 0.0;
  }
  const double h = step_;
  return (cdf(x + 0.5 * h) - cdf(x - 0.5 * h)) / h;
}

double GriddedDistribution::quantile(double p) const {
  if (p < 0.0 || p >= 1.0) {
    throw std::domain_error("quantile: p must be in [0,1)");
  }
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), p);
  const auto k = static_cast<std::size_t>(it - cdf_.begin());
  if (k == 0) return lo_;
  const double c0 = cdf_[k - 1];
  const double c1 = cdf_[k];
  const double frac = (c1 > c0) ? (p - c0) / (c1 - c0) : 0.0;
  return lo_ + (static_cast<double>(k - 1) + frac) * step_;
}

double GriddedDistribution::sample(Rng& rng) const {
  return quantile(rng.uniform());
}

std::string GriddedDistribution::describe() const {
  std::ostringstream out;
  out << "Gridded(lo=" << lo_ << ", step=" << step_ << ", n=" << cdf_.size()
      << ")";
  return out.str();
}

namespace {

const DeterministicDelay* as_deterministic(const DelayDistributionPtr& d) {
  return dynamic_cast<const DeterministicDelay*>(d.get());
}

const ShiftedGammaDelay* as_shifted_gamma(const DelayDistributionPtr& d) {
  return dynamic_cast<const ShiftedGammaDelay*>(d.get());
}

// Numeric convolution: discretize B into probability masses per grid cell,
// then F_{A+B}(t) = sum_cells mass_b(s) * F_A(t - s).
DelayDistributionPtr numeric_sum(const DelayDistributionPtr& a,
                                 const DelayDistributionPtr& b,
                                 const ConvolutionOptions& options) {
  const double a_lo = a->quantile(0.0);
  const double a_hi = a->quantile(1.0 - options.tail);
  const double b_lo = b->quantile(0.0);
  const double b_hi = b->quantile(1.0 - options.tail);

  double step = options.step;
  const double width = (a_hi + b_hi) - (a_lo + b_lo);
  if (width / step > static_cast<double>(options.max_points)) {
    step = width / static_cast<double>(options.max_points);
  }

  const auto b_cells = static_cast<std::size_t>(
      std::ceil((b_hi - b_lo) / step)) + 1;
  std::vector<double> b_mass(b_cells);
  std::vector<double> b_mid(b_cells);
  double prev_cdf = 0.0;
  for (std::size_t k = 0; k < b_cells; ++k) {
    const double right = b_lo + (static_cast<double>(k) + 1.0) * step;
    const double c = b->cdf(right);
    b_mass[k] = c - prev_cdf;
    b_mid[k] = right - 0.5 * step;
    prev_cdf = c;
  }
  // Fold any truncated upper-tail mass into the last cell.
  b_mass[b_cells - 1] += 1.0 - prev_cdf;

  const double lo = a_lo + b_lo;
  const auto n = static_cast<std::size_t>(
      std::ceil(((a_hi + b_hi) - lo) / step)) + 2;
  std::vector<double> cdf(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = lo + static_cast<double>(i) * step;
    double acc = 0.0;
    for (std::size_t k = 0; k < b_cells; ++k) {
      if (b_mass[k] == 0.0) continue;
      acc += b_mass[k] * a->cdf(t - b_mid[k]);
    }
    cdf[i] = acc;
  }
  return std::make_shared<GriddedDistribution>(lo, step, std::move(cdf));
}

}  // namespace

DelayDistributionPtr sum_distribution(const DelayDistributionPtr& a,
                                      const DelayDistributionPtr& b,
                                      const ConvolutionOptions& options) {
  if (!a || !b) throw std::invalid_argument("sum_distribution: null input");

  // Deterministic + anything: a pure shift.
  if (const auto* da = as_deterministic(a)) {
    if (const auto* db = as_deterministic(b)) {
      return make_deterministic(da->value() + db->value());
    }
    return make_shifted(b, da->value());
  }
  if (const auto* db = as_deterministic(b)) {
    return make_shifted(a, db->value());
  }

  // Gamma + Gamma with a common scale: shapes add, shifts add.
  const auto* ga = as_shifted_gamma(a);
  const auto* gb = as_shifted_gamma(b);
  if (ga != nullptr && gb != nullptr && ga->scale() == gb->scale()) {
    return make_shifted_gamma(ga->shift() + gb->shift(),
                              ga->shape() + gb->shape(), ga->scale());
  }

  return numeric_sum(a, b, options);
}

}  // namespace dmc::stats
