// Streaming descriptive statistics (Welford) plus a sample store for
// percentiles; used by estimators and by experiment reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace dmc::stats {

// Constant-memory running mean / variance / extrema.
class StreamingSummary {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  void reset() { *this = StreamingSummary{}; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Keeps all samples; provides exact quantiles. Fine for the sample counts
// this library works with (<= a few hundred thousand doubles).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    summary_.add(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  double mean() const { return summary_.mean(); }
  double stddev() const { return summary_.stddev(); }
  double variance() const { return summary_.variance(); }
  double min() const { return summary_.min(); }
  double max() const { return summary_.max(); }

  // Exact sample quantile (nearest-rank), p in [0, 1].
  double quantile(double p) {
    if (samples_.empty()) {
      throw std::logic_error("SampleSet::quantile on empty set");
    }
    if (p < 0.0 || p > 1.0) {
      throw std::domain_error("quantile: p must be in [0,1]");
    }
    ensure_sorted();
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(rank, samples_.size() - 1)];
  }

  const std::vector<double>& samples() const { return samples_; }
  std::vector<double> take_samples() && { return std::move(samples_); }

 private:
  void ensure_sorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  StreamingSummary summary_;
  bool sorted_ = false;
};

}  // namespace dmc::stats
