#include "stats/gamma_math.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dmc::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

// Series representation: P(a, x) = e^{-x} x^a / Gamma(a) * sum_k x^k /
// (a (a+1) ... (a+k)). Converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for Q(a, x); converges quickly for x > a + 1.
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (a <= 0.0) throw std::domain_error("regularized_gamma_p: a must be > 0");
  if (x < 0.0) throw std::domain_error("regularized_gamma_p: x must be >= 0");
  if (x == 0.0) return 0.0;
  if (std::isinf(x)) return 1.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  if (a <= 0.0) throw std::domain_error("regularized_gamma_q: a must be > 0");
  if (x < 0.0) throw std::domain_error("regularized_gamma_q: x must be >= 0");
  if (x == 0.0) return 1.0;
  if (std::isinf(x)) return 0.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double inverse_regularized_gamma_p(double a, double p) {
  if (p < 0.0 || p >= 1.0) {
    throw std::domain_error("inverse_regularized_gamma_p: p must be in [0,1)");
  }
  if (p == 0.0) return 0.0;

  // Bracket the root, then bisect with a few Newton refinements. The scale
  // of the distribution is ~a, so expanding from there is cheap.
  double hi = a + 1.0;
  while (regularized_gamma_p(a, hi) < p) {
    hi *= 2.0;
    if (hi > 1e12) return hi;  // p astronomically close to 1
  }
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (regularized_gamma_p(a, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-13 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double gamma_pdf(double a, double scale, double x) {
  if (a <= 0.0 || scale <= 0.0) {
    throw std::domain_error("gamma_pdf: shape and scale must be > 0");
  }
  if (x < 0.0) return 0.0;
  if (x == 0.0) return a < 1.0 ? std::numeric_limits<double>::infinity()
                               : (a == 1.0 ? 1.0 / scale : 0.0);
  const double z = x / scale;
  return std::exp((a - 1.0) * std::log(z) - z - std::lgamma(a)) / scale;
}

}  // namespace dmc::stats
