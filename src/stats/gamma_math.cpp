#include "stats/gamma_math.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace dmc::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

// The shared prefactor of both representations below:
//   w = exp(-x + a * log x - lgamma(a)) = x^a e^{-x} / Gamma(a).
// `log_gamma_a` is lgamma(a), hoisted by the batched kernels so a whole
// grid pays it once.
double gamma_prefactor(double a, double x, double log_gamma_a) {
  return std::exp(-x + a * std::log(x) - log_gamma_a);
}

// Series representation: P(a, x) = w * sum_k x^k / (a (a+1) ... (a+k)).
// Converges quickly for x < a + 1.
double gamma_p_series(double a, double x, double prefactor) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * prefactor;
}

// Lentz continued fraction for Q(a, x) = w * cf; converges quickly for
// x > a + 1.
double gamma_q_continued_fraction(double a, double x, double prefactor) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h * prefactor;
}

// P(a, x) for x > 0 finite, given the precomputed prefactor.
double gamma_p_from_prefactor(double a, double x, double prefactor) {
  if (x < a + 1.0) return gamma_p_series(a, x, prefactor);
  return 1.0 - gamma_q_continued_fraction(a, x, prefactor);
}

void check_gamma_domain(double a, double x, const char* name) {
  if (a <= 0.0) {
    throw std::domain_error(std::string(name) + ": a must be > 0");
  }
  if (x < 0.0) {
    throw std::domain_error(std::string(name) + ": x must be >= 0");
  }
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  check_gamma_domain(a, x, "regularized_gamma_p");
  if (x == 0.0) return 0.0;
  if (std::isinf(x)) return 1.0;
  return gamma_p_from_prefactor(a, x, gamma_prefactor(a, x, std::lgamma(a)));
}

double regularized_gamma_q(double a, double x) {
  check_gamma_domain(a, x, "regularized_gamma_q");
  if (x == 0.0) return 1.0;
  if (std::isinf(x)) return 0.0;
  const double prefactor = gamma_prefactor(a, x, std::lgamma(a));
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x, prefactor);
  return gamma_q_continued_fraction(a, x, prefactor);
}

double inverse_regularized_gamma_p(double a, double p) {
  if (p < 0.0 || p >= 1.0) {
    throw std::domain_error("inverse_regularized_gamma_p: p must be in [0,1)");
  }
  if (p == 0.0) return 0.0;

  // Bracket the root, then bisect with a few Newton refinements. The scale
  // of the distribution is ~a, so expanding from there is cheap.
  double hi = a + 1.0;
  while (regularized_gamma_p(a, hi) < p) {
    hi *= 2.0;
    if (hi > 1e12) return hi;  // p astronomically close to 1
  }
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (regularized_gamma_p(a, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-13 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double gamma_pdf(double a, double scale, double x) {
  if (a <= 0.0 || scale <= 0.0) {
    throw std::domain_error("gamma_pdf: shape and scale must be > 0");
  }
  if (x < 0.0) return 0.0;
  if (x == 0.0) return a < 1.0 ? std::numeric_limits<double>::infinity()
                               : (a == 1.0 ? 1.0 / scale : 0.0);
  const double z = x / scale;
  return std::exp((a - 1.0) * std::log(z) - z - std::lgamma(a)) / scale;
}

void regularized_gamma_p_batch(double a, const double* x, double* out,
                               std::size_t n) {
  if (a <= 0.0) {
    throw std::domain_error("regularized_gamma_p_batch: a must be > 0");
  }
  if (n == 0) return;
  if (x == nullptr || out == nullptr) {
    throw std::invalid_argument("regularized_gamma_p_batch: null buffer");
  }
  const double log_gamma_a = std::lgamma(a);
  for (std::size_t k = 0; k < n; ++k) {
    const double xk = x[k];
    if (xk < 0.0) {
      throw std::domain_error("regularized_gamma_p_batch: x must be >= 0");
    }
    if (xk == 0.0) {
      out[k] = 0.0;
    } else if (std::isinf(xk)) {
      out[k] = 1.0;
    } else {
      out[k] =
          gamma_p_from_prefactor(a, xk, gamma_prefactor(a, xk, log_gamma_a));
    }
  }
}

void gamma_cdf_grid(double shape, double scale, double shift, double t0,
                    double dt, std::size_t n, double* out) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::domain_error("gamma_cdf_grid: shape and scale must be > 0");
  }
  if (!(dt > 0.0)) {
    throw std::domain_error("gamma_cdf_grid: dt must be > 0");
  }
  if (n == 0) return;
  if (out == nullptr) {
    throw std::invalid_argument("gamma_cdf_grid: null buffer");
  }

  // Points at or below the shift carry zero CDF; find the first one above.
  std::size_t first = 0;
  while (first < n && !(t0 + static_cast<double>(first) * dt > shift)) {
    out[first++] = 0.0;
  }
  if (first == n) return;

  const double log_gamma_a = std::lgamma(shape);

  // Chunked evaluation: z and the transcendental prefactor w = x^a e^{-x} /
  // Gamma(a) are produced in contiguous fixed-size passes (stack buffers, no
  // data-dependent branches), leaving only the short series / continued-
  // fraction refinement per point.
  constexpr std::size_t kChunk = 256;
  double z[kChunk];
  double w[kChunk];
  for (std::size_t base = first; base < n; base += kChunk) {
    const std::size_t count = std::min(kChunk, n - base);
    for (std::size_t i = 0; i < count; ++i) {
      const double t = t0 + static_cast<double>(base + i) * dt;
      z[i] = (t - shift) / scale;
    }
    for (std::size_t i = 0; i < count; ++i) {
      w[i] = std::exp(-z[i] + shape * std::log(z[i]) - log_gamma_a);
    }
    for (std::size_t i = 0; i < count; ++i) {
      // z can only be +inf here (the sub-shift prefix was peeled off), and
      // the scalar cdf() contract says P(a, inf) = 1; the prefactor w is
      // NaN there, so bypass the series / continued fraction.
      out[base + i] =
          std::isinf(z[i]) ? 1.0 : gamma_p_from_prefactor(shape, z[i], w[i]);
    }
  }
}

}  // namespace dmc::stats
