// Radix-2 FFT built from scratch (no dependency beyond <complex>), sized for
// the distribution kernels in stats/convolution.cpp: convolving two
// probability-mass vectors of n and m cells costs O((n + m) log (n + m))
// here versus the O(n * m) of the direct sum, which is what turns the
// retransmission-timeout convolutions (Equation 34) from milliseconds into
// microseconds.
//
// The real-input convolution packs both sequences into one complex
// transform (a in the real lane, b in the imaginary lane), so a full linear
// convolution costs two FFTs instead of three.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmc::stats {

// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

// A reusable transform plan: twiddle factors and the bit-reversal
// permutation are computed once per size and shared by the forward and
// inverse passes of one convolution.
class Fft {
 public:
  // n must be a power of two, n >= 2.
  explicit Fft(std::size_t n);

  std::size_t size() const { return n_; }

  // In-place decimation-in-time transforms over data[0..n).
  void forward(std::complex<double>* data) const { transform(data, false); }
  // Inverse transform, including the 1/n normalization.
  void inverse(std::complex<double>* data) const { transform(data, true); }

 private:
  void transform(std::complex<double>* data, bool inverse) const;

  std::size_t n_;
  std::vector<std::complex<double>> twiddle_;  // e^{-2 pi i k / n}, k < n/2
  std::vector<std::uint32_t> bitrev_;
};

// Linear convolution of two real sequences: out[k] = sum_i a[i] * b[k - i],
// with out.size() == a.size() + b.size() - 1. Computed by zero-padded FFT;
// roundoff is ~1e-15 relative to sum|a| * sum|b| (callers convolving
// probability masses clamp stray negatives when prefix-summing to a CDF).
// Either input empty yields an empty result. Plans are cached per size
// (thread-safe), so repeated convolutions at similar grid sizes skip the
// twiddle-table setup.
std::vector<double> fft_convolve(const std::vector<double>& a,
                                 const std::vector<double>& b);

// Reference O(n * m) direct convolution with the same contract; used for
// small inputs (where FFT setup dominates) and as the differential-test
// oracle for the FFT path.
std::vector<double> direct_convolve(const std::vector<double>& a,
                                    const std::vector<double>& b);

}  // namespace dmc::stats
