// Distribution of the sum of two independent delays, needed by the
// retransmission-timeout optimization (Equation 34): the acknowledgment for
// a transmission on path i arrives after d_i + d_min, whose CDF is the
// convolution F_{X_i} * f_{X_min}.
//
// Exact closed forms are used where they exist (deterministic shifts, two
// gammas with a common scale); everything else falls back to a dense grid.
#pragma once

#include <vector>

#include "stats/distributions.h"

namespace dmc::stats {

// A distribution tabulated as a CDF on a uniform grid. Implements the full
// DelayDistribution interface: cdf by linear interpolation, pdf by central
// difference, quantile by inverse interpolation, sampling by inverse-CDF.
class GriddedDistribution final : public DelayDistribution {
 public:
  // cdf_values[k] = P(X <= lo + k * step); must be nondecreasing, start
  // near 0 and end near 1 (it is clamped and renormalized internally).
  GriddedDistribution(double lo, double step, std::vector<double> cdf_values);

  double cdf(double x) const override;
  double pdf(double x) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double min_support() const override { return lo_; }
  std::string describe() const override;

  double grid_step() const { return step_; }
  std::size_t grid_size() const { return cdf_.size(); }

 private:
  double lo_;
  double step_;
  std::vector<double> cdf_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

struct ConvolutionOptions {
  // Grid resolution for the numeric fallback. 0.25 ms resolves the paper's
  // millisecond-scale timeouts with sub-ms error.
  double step = 0.25e-3;
  // Support is truncated to [quantile(tail), quantile(1 - tail)] per input.
  double tail = 1e-9;
  // Hard cap on grid points to bound memory for very wide supports.
  std::size_t max_points = 1 << 20;
};

// Distribution of A + B for independent A, B.
DelayDistributionPtr sum_distribution(const DelayDistributionPtr& a,
                                      const DelayDistributionPtr& b,
                                      const ConvolutionOptions& options = {});

}  // namespace dmc::stats
