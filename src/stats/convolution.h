// Distribution of the sum of two independent delays, needed by the
// retransmission-timeout optimization (Equation 34): the acknowledgment for
// a transmission on path i arrives after d_i + d_min, whose CDF is the
// convolution F_{X_i} * f_{X_min}.
//
// Exact closed forms are used where they exist (deterministic shifts, two
// gammas with a common scale); everything else falls back to a gridded
// numeric convolution. The numeric path discretizes both inputs to
// probability-mass vectors (batched CDF kernels, see
// DelayDistribution::cdf_grid), convolves the masses — via the radix-2 FFT
// in stats/fft.h for anything beyond toy sizes — and prefix-sums back to a
// CDF: O((n + m) log (n + m)) instead of the O(n * m) direct sum.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/distributions.h"

namespace dmc::stats {

// A distribution tabulated as a CDF on a uniform grid. Implements the full
// DelayDistribution interface: cdf by linear interpolation, pdf by central
// difference (one-sided within half a step of either support edge),
// quantile by inverse interpolation, sampling by inverse-CDF. Mass at or
// below the first grid point (cdf_values[0] > 0) is a genuine atom at lo:
// it is included in the moments and reported by cdf(lo).
class GriddedDistribution final : public DelayDistribution {
 public:
  // cdf_values[k] = P(X <= lo + k * step); must be nondecreasing, start
  // near 0 and end near 1 (it is clamped and renormalized internally).
  GriddedDistribution(double lo, double step, std::vector<double> cdf_values);

  double cdf(double x) const override;
  void cdf_grid(double t0, double dt, std::size_t n,
                double* out) const override;
  double pdf(double x) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double min_support() const override { return lo_; }
  // The interpolated CDF is continuous everywhere except a possible atom
  // at lo (cdf_values[0] > 0); sigma-based grid heuristics must not treat
  // a table carrying that atom as smooth.
  bool continuous() const override { return cdf_.front() == 0.0; }
  std::string describe() const override;

  double grid_step() const { return step_; }
  std::size_t grid_size() const { return cdf_.size(); }
  // Last grid point (the least upper bound of the tabulated support).
  double upper_support() const {
    return lo_ + step_ * static_cast<double>(cdf_.size() - 1);
  }

 private:
  // The single interpolation body behind cdf() and the cdf_grid() sweep.
  double cdf_at(double x) const;

  double lo_;
  double step_;
  std::vector<double> cdf_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

// How the numeric fallback convolves the two mass vectors.
enum class ConvolutionMethod {
  // FFT beyond a small crossover size, direct below it (the FFT's setup
  // costs more than a tiny direct sum).
  automatic,
  // Always the O(n * m) direct sum (reference / differential testing).
  direct,
  // Always the O((n + m) log (n + m)) FFT path.
  fft,
};

struct ConvolutionOptions {
  // Fixed grid resolution used when `adaptive` is off, and the fallback
  // when neither input has positive variance to scale from. 0.25 ms
  // resolves the paper's millisecond-scale timeouts with sub-ms error.
  double step = 0.25e-3;
  // Adaptive resolution: scale the grid step to the narrower input's
  // spread, step = clamp(sigma_min / points_per_sigma, min_step, max_step),
  // where sigma_min is the smallest positive standard deviation among the
  // inputs. Narrow distributions get the fine grid they need; wide ones
  // stop paying for resolution they cannot use. Applies only when both
  // inputs are continuous (see DelayDistribution::continuous) — sigma says
  // nothing about how fast an atomic CDF jumps, so atomic inputs keep the
  // fixed `step`.
  bool adaptive = true;
  double points_per_sigma = 64.0;
  double min_step = 1e-6;   // 1 us floor (deterministic-spike inputs)
  double max_step = 2e-3;   // 2 ms cap (wide supports)
  // Support is truncated to [quantile(0), quantile(1 - tail)] per input;
  // the truncated upper-tail mass is folded into the last cell.
  double tail = 1e-9;
  // Hard cap on grid points to bound memory for very wide supports (the
  // step is coarsened to fit).
  std::size_t max_points = 1 << 20;
  ConvolutionMethod method = ConvolutionMethod::automatic;
};

// Distribution of A + B for independent A, B. Uses exact closed forms where
// they exist (deterministic shifts; same-scale gammas) and the gridded
// numeric convolution below otherwise.
DelayDistributionPtr sum_distribution(const DelayDistributionPtr& a,
                                      const DelayDistributionPtr& b,
                                      const ConvolutionOptions& options = {});

// The gridded numeric convolution itself, bypassing the closed-form
// shortcuts (except that deterministic inputs still reduce to exact shifts:
// a zero-width grid has nothing to discretize). Exposed so differential
// tests can pit it — with any ConvolutionMethod — against the closed forms.
DelayDistributionPtr numeric_sum_distribution(
    const DelayDistributionPtr& a, const DelayDistributionPtr& b,
    const ConvolutionOptions& options = {});

}  // namespace dmc::stats
