// Deterministic random-number generation. Every stochastic component in the
// library takes an explicit seed so that experiments are reproducible
// run-to-run (DESIGN.md, "Determinism").
#pragma once

#include <cstdint>
#include <random>

namespace dmc::stats {

// splitmix64 finalizer over (base, lane): derives an independent seed per
// job / session / replicate so sibling runs never share an RNG stream and
// adding a lane never perturbs another lane's draws. (fleet::mix_seed is an
// alias of this; the server's per-session streams use it directly.)
inline std::uint64_t mix_seed(std::uint64_t base, std::uint64_t lane) {
  // splitmix64 finalizer (Steele et al.); the golden-gamma increment keeps
  // lane 0 distinct from the raw base.
  std::uint64_t z = base + (lane + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Thin wrapper over a 64-bit Mersenne Twister with the handful of draw
// shapes the library needs. Copyable; copies continue the same stream
// independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  double uniform() { return uniform_(engine_); }  // [0, 1)

  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Gamma variate with shape alpha and *scale* theta (mean alpha * theta).
  double gamma(double alpha, double scale) {
    std::gamma_distribution<double> dist(alpha, scale);
    return dist(engine_);
  }

  double exponential(double mean) {
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
  }

  std::uint64_t integer(std::uint64_t bound) {  // [0, bound)
    std::uniform_int_distribution<std::uint64_t> dist(0, bound - 1);
    return dist(engine_);
  }

  // Derives an independent child stream; used to give each simulated link
  // its own stream so adding a link never perturbs another link's draws.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace dmc::stats
