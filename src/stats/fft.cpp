#include "stats/fft.h"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace dmc::stats {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Per-size plan cache so repeated convolutions (every model build / re-plan
// convolves at similar grid sizes) pay the twiddle table and bit-reversal
// permutation once. Plans are immutable after construction and never
// evicted — only power-of-two sizes exist, so the cache stays tiny — which
// makes the returned reference safe to use outside the lock.
const Fft& plan_for(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::unique_ptr<const Fft>> cache;
  const std::lock_guard<std::mutex> lock(mutex);
  std::unique_ptr<const Fft>& slot = cache[n];
  if (!slot) slot = std::make_unique<const Fft>(n);
  return *slot;
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Fft::Fft(std::size_t n) : n_(n) {
  if (n < 2 || !is_pow2(n)) {
    throw std::invalid_argument("Fft: size must be a power of two >= 2");
  }
  // Twiddle table from sincos directly (rather than accumulating products),
  // so spectral error stays at machine precision for every size.
  twiddle_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = -kTwoPi * static_cast<double>(k) /
                         static_cast<double>(n);
    twiddle_[k] = std::complex<double>(std::cos(angle), std::sin(angle));
  }
  bitrev_.resize(n);
  bitrev_[0] = 0;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = static_cast<std::uint32_t>(j);
  }
}

void Fft::transform(std::complex<double>* data, bool inverse) const {
  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies in explicit real/imaginary arithmetic: std::complex
  // operator* routes through the NaN-recovering __muldc3 helper, which is
  // several times slower than the four multiplies actually needed here.
  const double conj_sign = inverse ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t stride = n_ / len;
    for (std::size_t block = 0; block < n_; block += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const std::complex<double> tw = twiddle_[k * stride];
        const double wr = tw.real();
        const double wi = conj_sign * tw.imag();
        std::complex<double>& lo = data[block + k];
        std::complex<double>& hi = data[block + k + half];
        const double vr = hi.real() * wr - hi.imag() * wi;
        const double vi = hi.real() * wi + hi.imag() * wr;
        const double ur = lo.real();
        const double ui = lo.imag();
        lo = std::complex<double>(ur + vr, ui + vi);
        hi = std::complex<double>(ur - vr, ui - vi);
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      data[i] = std::complex<double>(data[i].real() * scale,
                                     data[i].imag() * scale);
    }
  }
}

std::vector<double> fft_convolve(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_n = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(std::max<std::size_t>(out_n, 2));

  // Pack a into the real lane and b into the imaginary lane: for real
  // inputs one transform yields both spectra, via
  //   A(k) = (F(k) + conj F(n-k)) / 2,   B(k) = -i (F(k) - conj F(n-k)) / 2.
  std::vector<std::complex<double>> buf(n);
  for (std::size_t i = 0; i < a.size(); ++i) buf[i].real(a[i]);
  for (std::size_t i = 0; i < b.size(); ++i) buf[i].imag(b[i]);

  const Fft& fft = plan_for(n);
  fft.forward(buf.data());

  const std::size_t mask = n - 1;
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const std::size_t km = (n - k) & mask;
    const std::complex<double> x = buf[k];
    const std::complex<double> y = buf[km];
    // A = (x + conj y) / 2, B = -i (x - conj y) / 2, C = A * B, in explicit
    // real arithmetic (see the note in transform()).
    const double ar = 0.5 * (x.real() + y.real());
    const double ai = 0.5 * (x.imag() - y.imag());
    const double br = 0.5 * (x.imag() + y.imag());
    const double bi = -0.5 * (x.real() - y.real());
    const double cr = ar * br - ai * bi;
    const double ci = ar * bi + ai * br;
    buf[k] = std::complex<double>(cr, ci);
    // a * b is real, so its spectrum is conjugate-symmetric.
    if (km != k) buf[km] = std::complex<double>(cr, -ci);
  }

  fft.inverse(buf.data());

  std::vector<double> out(out_n);
  for (std::size_t i = 0; i < out_n; ++i) out[i] = buf[i].real();
  return out;
}

std::vector<double> direct_convolve(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += ai * b[j];
    }
  }
  return out;
}

}  // namespace dmc::stats
