// Delay distributions for the random-delay extension of the model
// (Section VI-B). A path's one-way delay d_i is a random variable d_i ~ D_i;
// the paper uses a shifted gamma distribution (Equations 24 and 31), and
// Section VIII-A also suggests discretizing recorded samples, which the
// Empirical distribution implements.
//
// Note on parameter conventions: the paper states E[d_i] = eta_i + alpha_i *
// beta_i and Var[d_i] = alpha_i * beta_i^2, which makes beta a *scale*
// parameter, while its Equation 31 writes gamma(alpha, beta x) (a rate
// convention). The stated moments are the physically sensible reading for
// Table V (E[d_1] = 400 + 10*4 = 440 ms), so this library uses the scale
// convention throughout.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace dmc::stats {

// Interface for a nonnegative-support random delay. All times in seconds.
class DelayDistribution {
 public:
  virtual ~DelayDistribution() = default;

  // P(delay <= x).
  virtual double cdf(double x) const = 0;
  // Density at x; step distributions return 0 away from their atoms.
  virtual double pdf(double x) const = 0;
  virtual double mean() const = 0;
  virtual double variance() const = 0;
  // Smallest x with cdf(x) >= p, for p in [0, 1).
  virtual double quantile(double p) const = 0;
  virtual double sample(Rng& rng) const = 0;
  // Infimum of the support (the location/shift parameter for shifted
  // families); useful for bracketing numeric searches.
  virtual double min_support() const = 0;
  virtual std::string describe() const = 0;
};

using DelayDistributionPtr = std::shared_ptr<const DelayDistribution>;

// A constant delay; reduces the random-delay model to the fixed-delay model
// of Section V.
class DeterministicDelay final : public DelayDistribution {
 public:
  explicit DeterministicDelay(double value);
  double cdf(double x) const override;
  double pdf(double x) const override;
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double min_support() const override { return value_; }
  std::string describe() const override;

  double value() const { return value_; }

 private:
  double value_;
};

// d = shift + X, X ~ Gamma(shape alpha, scale theta). The paper's Table V
// model with eta = shift, alpha_i = alpha, beta_i = theta.
class ShiftedGammaDelay final : public DelayDistribution {
 public:
  ShiftedGammaDelay(double shift, double shape, double scale);
  double cdf(double x) const override;
  double pdf(double x) const override;
  double mean() const override { return shift_ + shape_ * scale_; }
  double variance() const override { return shape_ * scale_ * scale_; }
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double min_support() const override { return shift_; }
  std::string describe() const override;

  double shift() const { return shift_; }
  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shift_;
  double shape_;
  double scale_;
};

// Uniform delay on [lo, hi]; handy in tests and for modelling jitter with
// hard bounds.
class UniformDelay final : public DelayDistribution {
 public:
  UniformDelay(double lo, double hi);
  double cdf(double x) const override;
  double pdf(double x) const override;
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double min_support() const override { return lo_; }
  std::string describe() const override;

 private:
  double lo_;
  double hi_;
};

// Distribution of recorded delay samples (Section VIII-A's discretized
// alternative to fitting a parametric family). CDF is the right-continuous
// empirical step function; sampling is bootstrap resampling.
class EmpiricalDelay final : public DelayDistribution {
 public:
  explicit EmpiricalDelay(std::vector<double> samples);
  double cdf(double x) const override;
  double pdf(double x) const override;  // always 0 (atoms), by convention
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double min_support() const override { return sorted_.front(); }
  std::string describe() const override;

  std::size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

// base shifted right by delta: d = delta + X.
class ShiftedDelay final : public DelayDistribution {
 public:
  ShiftedDelay(DelayDistributionPtr base, double delta);
  double cdf(double x) const override { return base_->cdf(x - delta_); }
  double pdf(double x) const override { return base_->pdf(x - delta_); }
  double mean() const override { return base_->mean() + delta_; }
  double variance() const override { return base_->variance(); }
  double quantile(double p) const override {
    return base_->quantile(p) + delta_;
  }
  double sample(Rng& rng) const override { return base_->sample(rng) + delta_; }
  double min_support() const override { return base_->min_support() + delta_; }
  std::string describe() const override;

 private:
  DelayDistributionPtr base_;
  double delta_;
};

// Convenience factories.
DelayDistributionPtr make_deterministic(double value);
DelayDistributionPtr make_shifted_gamma(double shift, double shape,
                                        double scale);
DelayDistributionPtr make_uniform(double lo, double hi);
DelayDistributionPtr make_empirical(std::vector<double> samples);
DelayDistributionPtr make_shifted(DelayDistributionPtr base, double delta);

}  // namespace dmc::stats
