// Delay distributions for the random-delay extension of the model
// (Section VI-B). A path's one-way delay d_i is a random variable d_i ~ D_i;
// the paper uses a shifted gamma distribution (Equations 24 and 31), and
// Section VIII-A also suggests discretizing recorded samples, which the
// Empirical distribution implements.
//
// Note on parameter conventions: the paper states E[d_i] = eta_i + alpha_i *
// beta_i and Var[d_i] = alpha_i * beta_i^2, which makes beta a *scale*
// parameter, while its Equation 31 writes gamma(alpha, beta x) (a rate
// convention). The stated moments are the physically sensible reading for
// Table V (E[d_1] = 400 + 10*4 = 440 ms), so this library uses the scale
// convention throughout.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace dmc::stats {

// Interface for a nonnegative-support random delay. All times in seconds.
class DelayDistribution {
 public:
  virtual ~DelayDistribution() = default;

  // P(delay <= x).
  virtual double cdf(double x) const = 0;
  // Batched CDF on a uniform grid: out[k] = cdf(t0 + k * dt) for k in
  // [0, n), dt > 0. Semantically identical to calling cdf() per point; the
  // default implementation does exactly that. Overridden where a whole grid
  // is much cheaper than n virtual point calls — the shifted gamma routes
  // through the batched kernel in gamma_math (one lgamma per grid), the
  // gridded distribution through a linear interpolation sweep, the
  // empirical distribution through a single merge pass. This is the API the
  // convolution and timeout-scan hot paths are built on.
  virtual void cdf_grid(double t0, double dt, std::size_t n,
                        double* out) const;
  // Density at x; step distributions return 0 away from their atoms.
  virtual double pdf(double x) const = 0;
  virtual double mean() const = 0;
  virtual double variance() const = 0;
  // Generalized inverse: the smallest x with cdf(x) >= p. Uniform contract
  // across every implementation: p must lie in the closed interval [0, 1]
  // (anything else throws std::domain_error); quantile(0) is the lower
  // support bound (== min_support()); quantile(1) is the least upper bound
  // of the support, +infinity for distributions with unbounded tails (e.g.
  // the shifted gamma). For p strictly between, atoms make the result land
  // exactly on the atom carrying p.
  virtual double quantile(double p) const = 0;
  virtual double sample(Rng& rng) const = 0;
  // Infimum of the support (the location/shift parameter for shifted
  // families); useful for bracketing numeric searches.
  virtual double min_support() const = 0;
  // Whether the CDF is continuous (carries no atoms). Atomic distributions
  // (deterministic, empirical) jump instantaneously, so grid heuristics
  // that scale resolution to the standard deviation — a smoothness proxy —
  // must not trust sigma for them (see core::optimize_timeout's scan).
  virtual bool continuous() const { return true; }
  virtual std::string describe() const = 0;

 protected:
  // Shared precondition check for cdf_grid implementations: throws
  // std::domain_error on dt <= 0 and std::invalid_argument on a null
  // buffer; returns false when n == 0 (an empty grid is a no-op).
  static bool check_grid_args(double dt, std::size_t n, const double* out);
};

using DelayDistributionPtr = std::shared_ptr<const DelayDistribution>;

// A constant delay; reduces the random-delay model to the fixed-delay model
// of Section V.
class DeterministicDelay final : public DelayDistribution {
 public:
  explicit DeterministicDelay(double value);
  double cdf(double x) const override;
  void cdf_grid(double t0, double dt, std::size_t n,
                double* out) const override;
  double pdf(double x) const override;
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double min_support() const override { return value_; }
  bool continuous() const override { return false; }  // one atom
  std::string describe() const override;

  double value() const { return value_; }

 private:
  double value_;
};

// d = shift + X, X ~ Gamma(shape alpha, scale theta). The paper's Table V
// model with eta = shift, alpha_i = alpha, beta_i = theta.
class ShiftedGammaDelay final : public DelayDistribution {
 public:
  ShiftedGammaDelay(double shift, double shape, double scale);
  double cdf(double x) const override;
  void cdf_grid(double t0, double dt, std::size_t n,
                double* out) const override;
  double pdf(double x) const override;
  double mean() const override { return shift_ + shape_ * scale_; }
  double variance() const override { return shape_ * scale_ * scale_; }
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double min_support() const override { return shift_; }
  std::string describe() const override;

  double shift() const { return shift_; }
  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shift_;
  double shape_;
  double scale_;
};

// Uniform delay on [lo, hi]; handy in tests and for modelling jitter with
// hard bounds.
class UniformDelay final : public DelayDistribution {
 public:
  UniformDelay(double lo, double hi);
  double cdf(double x) const override;
  double pdf(double x) const override;
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double min_support() const override { return lo_; }
  std::string describe() const override;

 private:
  double lo_;
  double hi_;
};

// Distribution of recorded delay samples (Section VIII-A's discretized
// alternative to fitting a parametric family). CDF is the right-continuous
// empirical step function; sampling is bootstrap resampling.
class EmpiricalDelay final : public DelayDistribution {
 public:
  explicit EmpiricalDelay(std::vector<double> samples);
  double cdf(double x) const override;
  void cdf_grid(double t0, double dt, std::size_t n,
                double* out) const override;
  double pdf(double x) const override;  // always 0 (atoms), by convention
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double min_support() const override { return sorted_.front(); }
  bool continuous() const override { return false; }  // atoms at samples
  std::string describe() const override;

  std::size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

// base shifted right by delta: d = delta + X.
class ShiftedDelay final : public DelayDistribution {
 public:
  ShiftedDelay(DelayDistributionPtr base, double delta);
  double cdf(double x) const override { return base_->cdf(x - delta_); }
  void cdf_grid(double t0, double dt, std::size_t n,
                double* out) const override {
    base_->cdf_grid(t0 - delta_, dt, n, out);
  }
  double pdf(double x) const override { return base_->pdf(x - delta_); }
  double mean() const override { return base_->mean() + delta_; }
  double variance() const override { return base_->variance(); }
  double quantile(double p) const override {
    return base_->quantile(p) + delta_;
  }
  double sample(Rng& rng) const override { return base_->sample(rng) + delta_; }
  double min_support() const override { return base_->min_support() + delta_; }
  bool continuous() const override { return base_->continuous(); }
  std::string describe() const override;

 private:
  DelayDistributionPtr base_;
  double delta_;
};

// Smallest positive finite standard deviation among {a, b}, or +infinity
// when neither input has one (both deterministic / degenerate). The shared
// yardstick for sigma-scaled grid policies: the numeric convolution's
// adaptive step and the timeout optimizer's scan resolution.
double min_positive_sigma(const DelayDistribution& a,
                          const DelayDistribution& b);

// Convenience factories.
DelayDistributionPtr make_deterministic(double value);
DelayDistributionPtr make_shifted_gamma(double shift, double shape,
                                        double scale);
DelayDistributionPtr make_uniform(double lo, double hi);
DelayDistributionPtr make_empirical(std::vector<double> samples);
DelayDistributionPtr make_shifted(DelayDistributionPtr base, double delta);

}  // namespace dmc::stats
