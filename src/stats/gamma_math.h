// Gamma-function machinery needed by the shifted-gamma delay model
// (Equations 31-33 of the paper): the regularized lower incomplete gamma
// function P(a, x) = gamma(a, x) / Gamma(a) and its inverse.
//
// Implemented from scratch (series expansion for x < a + 1, continued
// fraction otherwise) so the library has no dependency beyond the standard
// library's lgamma.
//
// Besides the scalar entry points there are batched kernels: evaluating a
// whole grid of CDF points per call amortizes lgamma (one call per batch
// instead of one per point) and splits the transcendental work (log, exp)
// into tight contiguous loops the compiler can vectorize, which is what the
// convolution and timeout-scan hot paths need (see stats/convolution.cpp
// and core/timeout_optimizer.cpp).
#pragma once

#include <cstddef>

namespace dmc::stats {

// Regularized lower incomplete gamma function P(a, x), a > 0, x >= 0.
// P(a, 0) = 0 and P(a, inf) = 1. Accuracy ~1e-12 over the range used here.
double regularized_gamma_p(double a, double x);

// Complement Q(a, x) = 1 - P(a, x), computed directly to preserve precision
// in the upper tail.
double regularized_gamma_q(double a, double x);

// Inverse of P(a, .): returns x such that P(a, x) = p, for p in [0, 1).
// Used for quantiles of gamma-distributed delays.
double inverse_regularized_gamma_p(double a, double p);

// Gamma density with shape a and scale theta evaluated at x >= 0.
double gamma_pdf(double a, double scale, double x);

// Batched P(a, .): out[k] = regularized_gamma_p(a, x[k]) for k in [0, n),
// matching the scalar function's values and domain checks (a > 0, every
// x[k] >= 0) but paying lgamma(a) once for the whole batch.
void regularized_gamma_p_batch(double a, const double* x, double* out,
                               std::size_t n);

// Shifted-gamma CDF on a uniform grid:
//   out[k] = P(shape, (t0 + k * dt - shift) / scale)   for k in [0, n),
// with out[k] = 0 where the grid point is at or below the shift. Requires
// shape > 0, scale > 0, dt > 0. This is the kernel behind
// ShiftedGammaDelay::cdf_grid: one lgamma per call, then chunked
// vectorization-friendly passes for the grid points, logs, and
// exponentials, with only the short data-dependent series / continued-
// fraction tails left scalar.
void gamma_cdf_grid(double shape, double scale, double shift, double t0,
                    double dt, std::size_t n, double* out);

}  // namespace dmc::stats
