// Gamma-function machinery needed by the shifted-gamma delay model
// (Equations 31-33 of the paper): the regularized lower incomplete gamma
// function P(a, x) = gamma(a, x) / Gamma(a) and its inverse.
//
// Implemented from scratch (series expansion for x < a + 1, continued
// fraction otherwise) so the library has no dependency beyond the standard
// library's lgamma.
#pragma once

namespace dmc::stats {

// Regularized lower incomplete gamma function P(a, x), a > 0, x >= 0.
// P(a, 0) = 0 and P(a, inf) = 1. Accuracy ~1e-12 over the range used here.
double regularized_gamma_p(double a, double x);

// Complement Q(a, x) = 1 - P(a, x), computed directly to preserve precision
// in the upper tail.
double regularized_gamma_q(double a, double x);

// Inverse of P(a, .): returns x such that P(a, x) = p, for p in [0, 1).
// Used for quantiles of gamma-distributed delays.
double inverse_regularized_gamma_p(double a, double p);

// Gamma density with shape a and scale theta evaluated at x >= 0.
double gamma_pdf(double a, double scale, double x);

}  // namespace dmc::stats
