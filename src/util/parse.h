// Hardened text -> number parsing shared by environment overrides
// (DMC_MESSAGES, DMC_THREADS) and CLI flags: the whole string must parse,
// overflow and trailing junk are errors — never a silent misparse.
#pragma once

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace dmc::util {

// Parses the entire `text` as a T; `context` names the flag or environment
// variable in error messages.
template <typename T>
T parse_number(const std::string& context, std::string_view text) {
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument(context + " is out of range: '" +
                                std::string(text) + "'");
  }
  if (ec != std::errc() || ptr != end) {
    throw std::invalid_argument(context + ": invalid number '" +
                                std::string(text) + "'");
  }
  if constexpr (std::is_floating_point_v<T>) {
    // from_chars accepts "nan"/"inf"; neither is a usable quantity here.
    if (!std::isfinite(value)) {
      throw std::invalid_argument(context + " must be finite, got '" +
                                  std::string(text) + "'");
    }
  }
  return value;
}

// parse_number, additionally requiring a strictly positive value — for
// counts and rates that must be > 0 (rejects zero and signed negatives).
template <typename T>
T parse_positive(const std::string& context, std::string_view text) {
  const T value = parse_number<T>(context, text);
  if (!(value > T{})) {
    throw std::invalid_argument(context + " must be positive, got '" +
                                std::string(text) + "'");
  }
  return value;
}

// Splits a comma-separated CLI list, skipping empty segments; `context`
// names the flag in the error thrown when nothing remains.
inline std::vector<std::string> split_list(const std::string& context,
                                           std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? text.size()
                                                            : comma;
    if (end > start) out.emplace_back(text.substr(start, end - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (out.empty()) {
    throw std::invalid_argument(context + ": empty list");
  }
  return out;
}

}  // namespace dmc::util
