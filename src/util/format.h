// Locale-independent number -> text helpers for the schema-export paths
// (dmc.obs.v1 / dmc.fleet.result.v1 / dmc.obs.analysis.v1 / dmc.lint.v1).
// std::to_string is banned there by dmc_lint's export-float rule: for
// floating-point it is locale-dependent and not round-trip safe, and a
// lexer-level linter cannot prove an argument integral — so integral
// serialization routes through these std::to_chars wrappers instead.
#pragma once

#include <charconv>
#include <string>
#include <type_traits>

namespace dmc::util {

// Decimal rendering of any integer type; never touches the locale.
template <typename T>
std::string to_decimal(T value) {
  static_assert(std::is_integral_v<T>,
                "to_decimal is for integers; floats use format_double / "
                "to_chars directly");
  char buffer[24];  // fits INT64_MIN and UINT64_MAX
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  (void)ec;  // cannot fail: the buffer covers every 64-bit value
  return std::string(buffer, ptr);
}

}  // namespace dmc::util
