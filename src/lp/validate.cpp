#include "lp/validate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmc::lp {

ValidationReport validate(const Problem& problem,
                          const std::vector<double>& x) {
  if (x.size() != problem.num_variables()) {
    throw std::invalid_argument("validate: x has wrong dimension");
  }
  ValidationReport report;
  report.min_variable = 0.0;
  for (double v : x) report.min_variable = std::min(report.min_variable, v);

  for (std::size_t j = 0; j < x.size(); ++j) {
    report.objective_value += problem.objective[j] * x[j];
  }

  std::size_t index = 0;
  for (const Constraint& c : problem.constraints) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) lhs += c.coefficients[j] * x[j];
    double violation = 0.0;
    switch (c.relation) {
      case Relation::less_equal: violation = lhs - c.rhs; break;
      case Relation::greater_equal: violation = c.rhs - lhs; break;
      case Relation::equal: violation = std::abs(lhs - c.rhs); break;
    }
    if (violation > report.max_violation) {
      report.max_violation = violation;
      report.worst_constraint =
          c.name.empty() ? ("row " + std::to_string(index)) : c.name;
    }
    ++index;
  }
  report.feasible = report.ok(1e-6);
  return report;
}

}  // namespace dmc::lp
