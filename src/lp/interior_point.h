// Primal-dual interior-point LP solver (Mehrotra predictor-corrector).
//
// Section VIII-B of the paper discusses solving the multipath LP with
// interior-point methods (Karmarkar's O(n^{3.5} L)); this implementation
// provides an independent second solver used to cross-validate the simplex
// (tests/test_interior_point.cpp) and to compare solver families in the
// Figure 4 bench.
//
// Scope: optimized for the small dense problems this library produces.
// Infeasible and unbounded instances are detected by divergence direction
// rather than via a homogeneous self-dual embedding: a primal ray (iterate
// norm exploding while Ax - b stays relatively satisfied and the objective
// heads to -inf) reports `unbounded`, a diverging dual objective b.y (the
// shape of a dual ray) reports `infeasible`, and anything less clear-cut —
// including residual blow-ups on rank-deficient data — honestly stays
// `iteration_limit`. That is a heuristic certificate, not a proof; the
// simplex solver remains the authority on status, and
// tests/test_solver_differential.cpp holds the two to agreement on
// randomized instances (treating `iteration_limit` as an abstention).
#pragma once

#include "lp/problem.h"
#include "lp/simplex.h"  // for Solution / SolveStatus

namespace dmc::lp {

class InteriorPointSolver {
 public:
  struct Options {
    int max_iterations = 100;
    double tolerance = 1e-9;          // relative residual + gap target
    double step_fraction = 0.995;     // fraction-to-boundary rule
    double divergence_threshold = 1e10;  // residual blow-up -> infeasible
  };

  InteriorPointSolver() = default;
  explicit InteriorPointSolver(Options options) : options_(options) {}

  Solution solve(const Problem& problem) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dmc::lp
