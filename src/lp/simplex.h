// Two-phase primal simplex solver for small dense linear programs.
//
// This replaces the CGAL LP solver used in the paper's evaluation
// (Section VII-A). The deadline-multipath LPs are tiny and dense
// (n^m variables, n+2 rows), so a dense tableau with Dantzig pricing and a
// Bland's-rule anti-cycling fallback is both simple and fast.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/problem.h"

namespace dmc::lp {

enum class SolveStatus { optimal, infeasible, unbounded, iteration_limit };

std::string to_string(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::iteration_limit;
  std::vector<double> x;          // primal values, empty unless optimal
  double objective_value = 0.0;   // c . x in the problem's own sense
  std::int64_t iterations = 0;    // total pivots across both phases

  // Final basis: one column index per constraint row, in the canonical
  // computational-form layout [structural | slack/surplus | artificial]
  // that lp::ComputationalForm::build reproduces. Filled on optimal solves
  // only; this is what seeds lp::IncrementalSolver's warm re-solves.
  std::vector<std::size_t> basis;

  bool optimal() const { return status == SolveStatus::optimal; }
};

class SimplexSolver {
 public:
  struct Options {
    double epsilon = 1e-9;           // pivot / feasibility tolerance
    std::int64_t max_iterations = 200000;
    // After this many consecutive degenerate pivots the solver switches from
    // Dantzig pricing to Bland's rule, which guarantees termination.
    std::int64_t degenerate_switch = 64;
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_(options) {}

  Solution solve(const Problem& problem) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dmc::lp
