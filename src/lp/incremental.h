// Warm-started LP re-solve engine for the admission / re-planning hot path.
//
// The online server solves the paper's LP thousands of times per run, and
// successive instances differ only in a handful of right-hand sides
// (residual capacity drift as sessions join and leave) or objective entries
// (a new session's deadline profile). IncrementalSolver keeps the optimal
// basis and its factorization from the previous solve and re-optimizes from
// there with dual simplex pivots (rhs changed: the basis stays dual
// feasible) or primal simplex pivots (objective changed: the basis stays
// primal feasible) instead of solving two phases from scratch — the
// standard re-optimization play of revised simplex codes, which
// arXiv:1905.04719 and arXiv:2310.19077 lean on to make deadline LPs viable
// online.
//
// Any delta the stored basis cannot absorb — a removed basic column, a row
// whose rhs changed sign (the auxiliary-column layout re-shuffles), a
// singular basis after coefficient edits, cycling, or a basis that is
// neither primal nor dual feasible after a combined change — falls back to
// a cold two-phase SimplexSolver solve, whose reported basis then re-seeds
// the warm state. Correctness therefore never depends on the warm path;
// tests/test_warm_start.cpp and tests/test_solver_differential.cpp assert
// warm == cold on status and objective across randomized delta sequences.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/basis.h"
#include "lp/problem.h"
#include "lp/simplex.h"

namespace dmc::lp {

// A targeted change to the previously solved problem. Entries not listed
// keep their old values. Application order: rhs and objective edits first
// (indices into the pre-delta problem), then column removals (pre-delta
// indices, duplicates ignored), then new columns appended at the end.
struct ProblemDelta {
  std::vector<std::pair<std::size_t, double>> rhs;        // row -> new b
  std::vector<std::pair<std::size_t, double>> objective;  // col -> new c
  std::vector<std::size_t> removed_columns;  // pre-delta column indices
  struct NewColumn {
    double objective = 0.0;
    std::vector<double> coefficients;  // one per constraint row
  };
  std::vector<NewColumn> added_columns;

  bool empty() const {
    return rhs.empty() && objective.empty() && removed_columns.empty() &&
           added_columns.empty();
  }
};

class IncrementalSolver {
 public:
  struct Options {
    SimplexSolver::Options simplex = {};  // tolerances + cold-solve limits
    // Warm pivots before giving up on the basis and solving cold. Warm
    // re-solves on this library's LPs take a handful of pivots; a hundred
    // means the delta was not incremental after all.
    std::int64_t max_warm_iterations = 1000;
    // Product-form eta vectors accumulated before refactorizing the basis.
    std::size_t refactor_interval = 24;
    // After this many consecutive degenerate pivots the warm loops switch
    // to Bland's rule (termination guarantee), as the cold solver does.
    std::int64_t degenerate_switch = 64;
  };

  struct Stats {
    std::uint64_t cold_solves = 0;  // two-phase solves (first + fallbacks)
    std::uint64_t warm_solves = 0;  // re-solves served from the stored basis
    std::uint64_t warm_pivots = 0;  // pivots across all warm re-solves
    std::uint64_t fallbacks = 0;    // warm attempts that went cold

    Stats& operator+=(const Stats& other) {
      cold_solves += other.cold_solves;
      warm_solves += other.warm_solves;
      warm_pivots += other.warm_pivots;
      fallbacks += other.fallbacks;
      return *this;
    }
  };

  IncrementalSolver() = default;
  explicit IncrementalSolver(Options options) : options_(options) {}

  // Cold solve: two-phase simplex, stores the problem and (when optimal)
  // the final basis as the warm-start state for subsequent re-solves.
  Solution solve(const Problem& problem);

  // Re-solve after replacing the problem wholesale. Warm-starts from the
  // stored basis when the new problem has the same shape (variable count,
  // row count, relations, rhs signs); otherwise solves cold.
  Solution resolve(const Problem& problem);

  // Re-solve after a targeted delta to the stored problem.
  Solution resolve(const ProblemDelta& delta);

  bool has_basis() const { return !basis_.empty(); }
  void reset();
  // Zeroes the counters without touching the warm state — for snapshots
  // that inherit a basis but must account their own solves only.
  void reset_stats() { stats_ = Stats{}; }

  // The problem the stored state describes (post-delta).
  const Problem& problem() const { return problem_; }
  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  Solution cold_solve();
  // Attempts a warm re-solve from basis_; returns false when the caller
  // should fall back to a cold solve (and counts the fallback).
  bool warm_solve(Solution& solution);
  // Deterministic vertex selection on the optimal face. Alternate optima
  // are real in the multipath LPs (several combinations can tie on
  // delivery probability), and which optimal vertex a simplex run lands on
  // depends on its pivot history — a cold two-phase run and a warm dual
  // re-solve would disagree. Both paths therefore finish by minimizing a
  // fixed secondary objective (the column index) over the zero-reduced-cost
  // face, whose optimum is unique for generic data; together with the
  // shared extraction below this makes "warm start on" and "warm start off"
  // return bit-identical plans (the server determinism contract).
  void refine_vertex(const ComputationalForm& form,
                     BasisFactorization& factorization);
  // Sorts basis_, refactorizes it fresh, and recomputes x, the objective,
  // and the basis of `solution` — the shared final step that makes any two
  // paths ending on the same basis return bit-identical solutions. False
  // when the (sorted) basis unexpectedly fails to factorize.
  bool canonical_extract(const ComputationalForm& form,
                         BasisFactorization& factorization,
                         Solution& solution);

  // Returns the cached computational form of problem_, rebuilding it only
  // when a structural change invalidated it. Rhs/objective deltas patch the
  // cache in place — the hot-path resolve then skips the O(rows * cols)
  // lowering entirely.
  const ComputationalForm& ensure_form();

  Options options_;
  Problem problem_;
  std::vector<std::size_t> basis_;
  ComputationalForm form_;
  bool form_valid_ = false;
  Stats stats_;
};

}  // namespace dmc::lp
