// Computational standard form and basis factorization for the revised
// simplex re-solve engine (lp::IncrementalSolver).
//
// ComputationalForm lowers a general Problem into
//     minimize  cost . z   subject to  A z = b,  z >= 0
// with the exact column layout the dense tableau solver (lp/simplex.cpp)
// uses internally: [structural | slack/surplus | artificial], slack and
// artificial columns assigned row by row after normalizing every row to a
// non-negative right-hand side. Matching layouts is what lets a basis
// reported by a cold SimplexSolver run seed a warm re-solve here.
//
// BasisFactorization holds a dense LU factorization (partial pivoting) of
// the current basis matrix B plus a product-form eta file, so successive
// pivots update the factorization in O(m^2) instead of refactorizing. The
// deadline-multipath LPs have m = n_paths + 2 rows, so everything stays
// dense and small by design (see lp/matrix.h).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "lp/problem.h"

namespace dmc::lp {

struct ComputationalForm {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::size_t rows = 0;
  std::size_t structural = 0;        // == problem.num_variables()
  std::size_t artificial_begin = 0;  // first artificial column
  std::size_t cols = 0;              // total columns, artificials included

  // Column-major constraint matrix (rows * cols) and scaled rhs (>= 0).
  std::vector<double> matrix;
  std::vector<double> b;
  // b[r] == rhs_factor[r] * constraint[r].rhs: lets a cached form absorb a
  // rhs-only delta by patching b in place instead of rebuilding the matrix.
  std::vector<double> rhs_factor;
  // Phase-2 cost: sense-folded objective over structural columns, zero on
  // slack/surplus/artificial columns (minimization internally).
  std::vector<double> cost;

  // Per-row layout bookkeeping, used to decide whether a stored basis is
  // still interpretable after the problem changed: a row that flips sign
  // (rhs crossed zero) or changes relation re-assigns its auxiliary
  // columns, which invalidates every stored column index.
  std::vector<Relation> relation;           // post-normalization relation
  std::vector<bool> flipped;                // row multiplied by -1
  std::vector<std::size_t> slack_of_row;    // kNone when the row has none
  std::vector<std::size_t> artificial_of_row;  // kNone when none

  double sense_factor = 1.0;  // +1 minimize, -1 maximize

  static ComputationalForm build(const Problem& problem);

  std::span<const double> column(std::size_t j) const {
    return {matrix.data() + j * rows, rows};
  }
};

// Dense LU factorization of the basis matrix with product-form updates.
class BasisFactorization {
 public:
  // Factorizes B = [form.column(basis[0]) ... form.column(basis[m-1])].
  // Clears the eta file. Returns false when B is numerically singular.
  bool factorize(const ComputationalForm& form,
                 const std::vector<std::size_t>& basis);

  // x := B^{-1} x (forward transformation).
  void ftran(std::vector<double>& x) const;
  // y := B^{-T} y (backward transformation).
  void btran(std::vector<double>& y) const;

  // Replaces basis position `pos` by a column whose ftran image is `w`
  // (w = B^{-1} a_entering). Returns false when the pivot element is too
  // small for a stable product-form update — refactorize then.
  bool update(std::size_t pos, const std::vector<double>& w);

  std::size_t eta_count() const { return etas_.size(); }
  std::size_t rows() const { return rows_; }

 private:
  struct Eta {
    std::size_t pos = 0;
    std::vector<double> w;  // B^{-1} a_entering at update time
  };

  std::size_t rows_ = 0;
  std::vector<double> lu_;          // row-major packed L\U of P B
  std::vector<std::size_t> perm_;   // row permutation: (P B)[k] = B[perm[k]]
  std::vector<Eta> etas_;
};

}  // namespace dmc::lp
