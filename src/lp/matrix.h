// Minimal dense row-major matrix used by the simplex tableau and by the
// paper-faithful model builders. Deliberately small: the LPs in this library
// have n^m variables and n+2 rows, so no sparse machinery is warranted.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace dmc::lp {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[index(r, c)];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[index(r, c)];
  }

  std::span<double> row(std::size_t r) {
    check_row(r);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    check_row(r);
    return {data_.data() + r * cols_, cols_};
  }

  // row(r) += factor * row(src). The simplex pivot primitive.
  void add_scaled_row(std::size_t r, std::size_t src, double factor) {
    check_row(r);
    check_row(src);
    double* dst = data_.data() + r * cols_;
    const double* from = data_.data() + src * cols_;
    for (std::size_t c = 0; c < cols_; ++c) dst[c] += factor * from[c];
  }

  void scale_row(std::size_t r, double factor) {
    for (double& v : row(r)) v *= factor;
  }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t index(std::size_t r, std::size_t c) const {
    check_row(r);
    if (c >= cols_) throw std::out_of_range("matrix column " + std::to_string(c));
    return r * cols_ + c;
  }
  void check_row(std::size_t r) const {
    if (r >= rows_) throw std::out_of_range("matrix row " + std::to_string(r));
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace dmc::lp
