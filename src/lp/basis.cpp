#include "lp/basis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmc::lp {

ComputationalForm ComputationalForm::build(const Problem& problem) {
  ComputationalForm form;
  form.rows = problem.num_constraints();
  form.structural = problem.num_variables();
  form.sense_factor = problem.sense == Sense::maximize ? -1.0 : 1.0;

  // First pass: normalize every row to rhs >= 0 (flipping the relation when
  // the row is multiplied by -1) and count auxiliary columns. This mirrors
  // the dense tableau construction in lp/simplex.cpp exactly; the shared
  // layout is what makes SimplexSolver's reported basis usable here.
  form.relation.reserve(form.rows);
  form.flipped.reserve(form.rows);
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (const Constraint& c : problem.constraints) {
    Relation relation = c.relation;
    const bool flip = c.rhs < 0.0;
    if (flip) {
      if (relation == Relation::less_equal) {
        relation = Relation::greater_equal;
      } else if (relation == Relation::greater_equal) {
        relation = Relation::less_equal;
      }
    }
    if (relation == Relation::less_equal) {
      num_slack += 1;
    } else if (relation == Relation::greater_equal) {
      num_slack += 1;  // surplus
      num_artificial += 1;
    } else {
      num_artificial += 1;
    }
    form.relation.push_back(relation);
    form.flipped.push_back(flip);
  }

  const std::size_t slack_begin = form.structural;
  form.artificial_begin = slack_begin + num_slack;
  form.cols = form.artificial_begin + num_artificial;
  form.matrix.assign(form.rows * form.cols, 0.0);
  form.b.assign(form.rows, 0.0);
  form.rhs_factor.assign(form.rows, 1.0);
  form.cost.assign(form.cols, 0.0);
  form.slack_of_row.assign(form.rows, kNone);
  form.artificial_of_row.assign(form.rows, kNone);

  for (std::size_t j = 0; j < form.structural; ++j) {
    form.cost[j] = form.sense_factor * problem.objective[j];
  }

  std::size_t next_slack = slack_begin;
  std::size_t next_artificial = form.artificial_begin;
  for (std::size_t r = 0; r < form.rows; ++r) {
    const Constraint& c = problem.constraints[r];
    // Row equilibration, same rule as the tableau solver: divide by the
    // largest structural coefficient so mixed-magnitude rows (O(1e8)
    // bandwidth next to O(1) probability) stay numerically sane.
    double row_scale = 0.0;
    for (double v : c.coefficients) {
      row_scale = std::max(row_scale, std::abs(v));
    }
    // A vacuous all-zero row (e.g. the cost row when every path is free)
    // normalizes by its rhs instead, so a huge cap cannot dominate the
    // b-scale the warm solver derives its feasibility tolerance from.
    if (row_scale <= 0.0) row_scale = std::max(1.0, std::abs(c.rhs));
    const double factor = (form.flipped[r] ? -1.0 : 1.0) / row_scale;
    for (std::size_t j = 0; j < form.structural; ++j) {
      form.matrix[j * form.rows + r] = factor * c.coefficients[j];
    }
    form.b[r] = factor * c.rhs;
    form.rhs_factor[r] = factor;

    if (form.relation[r] == Relation::less_equal) {
      form.slack_of_row[r] = next_slack;
      form.matrix[next_slack * form.rows + r] = 1.0;
      ++next_slack;
    } else if (form.relation[r] == Relation::greater_equal) {
      form.slack_of_row[r] = next_slack;
      form.matrix[next_slack * form.rows + r] = -1.0;  // surplus
      ++next_slack;
      form.artificial_of_row[r] = next_artificial;
      form.matrix[next_artificial * form.rows + r] = 1.0;
      ++next_artificial;
    } else {
      form.artificial_of_row[r] = next_artificial;
      form.matrix[next_artificial * form.rows + r] = 1.0;
      ++next_artificial;
    }
  }
  return form;
}

bool BasisFactorization::factorize(const ComputationalForm& form,
                                   const std::vector<std::size_t>& basis) {
  rows_ = form.rows;
  etas_.clear();
  if (basis.size() != rows_) return false;

  // Gather B row-major, then Doolittle LU with partial pivoting in place.
  lu_.assign(rows_ * rows_, 0.0);
  for (std::size_t k = 0; k < rows_; ++k) {
    if (basis[k] >= form.cols) return false;
    const std::span<const double> col = form.column(basis[k]);
    for (std::size_t r = 0; r < rows_; ++r) lu_[r * rows_ + k] = col[r];
  }
  perm_.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) perm_[r] = r;

  for (std::size_t k = 0; k < rows_; ++k) {
    std::size_t pivot = k;
    double best = std::abs(lu_[perm_[k] * rows_ + k]);
    for (std::size_t r = k + 1; r < rows_; ++r) {
      const double v = std::abs(lu_[perm_[r] * rows_ + k]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) return false;  // numerically singular basis
    std::swap(perm_[k], perm_[pivot]);
    const double diag = lu_[perm_[k] * rows_ + k];
    for (std::size_t r = k + 1; r < rows_; ++r) {
      double& mult = lu_[perm_[r] * rows_ + k];
      mult /= diag;
      if (mult == 0.0) continue;
      for (std::size_t j = k + 1; j < rows_; ++j) {
        lu_[perm_[r] * rows_ + j] -= mult * lu_[perm_[k] * rows_ + j];
      }
    }
  }
  return true;
}

void BasisFactorization::ftran(std::vector<double>& x) const {
  // Solve (P B) z = P x with L U z, then apply the eta file in order:
  // B_k = B E_1 ... E_k, so B_k^{-1} = E_k^{-1} ... E_1^{-1} B^{-1}.
  std::vector<double> y(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double v = x[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) v -= lu_[perm_[i] * rows_ + j] * y[j];
    y[i] = v;
  }
  for (std::size_t i = rows_; i-- > 0;) {
    double v = y[i];
    for (std::size_t j = i + 1; j < rows_; ++j) {
      v -= lu_[perm_[i] * rows_ + j] * x[j];
    }
    x[i] = v / lu_[perm_[i] * rows_ + i];
  }
  for (const Eta& eta : etas_) {
    const double pivot_value = x[eta.pos] / eta.w[eta.pos];
    for (std::size_t i = 0; i < rows_; ++i) {
      x[i] -= eta.w[i] * pivot_value;
    }
    x[eta.pos] = pivot_value;
  }
}

void BasisFactorization::btran(std::vector<double>& y) const {
  // (B E_1 ... E_k)^T v = y: peel eta transposes in reverse, then solve
  // U^T L^T (P v) = y.
  for (std::size_t e = etas_.size(); e-- > 0;) {
    const Eta& eta = etas_[e];
    double v = y[eta.pos];
    for (std::size_t i = 0; i < rows_; ++i) {
      if (i != eta.pos) v -= eta.w[i] * y[i];
    }
    y[eta.pos] = v / eta.w[eta.pos];
  }
  std::vector<double> z(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double v = y[i];
    for (std::size_t j = 0; j < i; ++j) v -= lu_[perm_[j] * rows_ + i] * z[j];
    z[i] = v / lu_[perm_[i] * rows_ + i];
  }
  std::vector<double> w(rows_);
  for (std::size_t i = rows_; i-- > 0;) {
    double v = z[i];
    for (std::size_t j = i + 1; j < rows_; ++j) {
      v -= lu_[perm_[j] * rows_ + i] * w[j];
    }
    w[i] = v;
  }
  for (std::size_t i = 0; i < rows_; ++i) y[perm_[i]] = w[i];
}

bool BasisFactorization::update(std::size_t pos, const std::vector<double>& w) {
  if (pos >= rows_ || w.size() != rows_) return false;
  // Product-form safety: a tiny pivot in the eta column makes every later
  // ftran/btran amplify error; signal the caller to refactorize instead.
  double scale = 0.0;
  for (double v : w) scale = std::max(scale, std::abs(v));
  if (std::abs(w[pos]) < 1e-9 * std::max(1.0, scale)) return false;
  etas_.push_back(Eta{pos, w});
  return true;
}

}  // namespace dmc::lp
