// Solution validation: independent feasibility / objective checks used by
// tests and by callers that want to distrust the solver (Core Guidelines
// P.7: catch run-time errors early).
#pragma once

#include <string>
#include <vector>

#include "lp/problem.h"

namespace dmc::lp {

struct ValidationReport {
  bool feasible = false;
  double max_violation = 0.0;     // worst constraint violation
  double min_variable = 0.0;      // most negative variable value
  double objective_value = 0.0;   // c . x
  std::string worst_constraint;   // name/index of worst violated row

  bool ok(double tolerance) const {
    return max_violation <= tolerance && min_variable >= -tolerance;
  }
};

// Checks x against the constraint system of `problem`.
ValidationReport validate(const Problem& problem, const std::vector<double>& x);

}  // namespace dmc::lp
