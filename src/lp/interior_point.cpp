#include "lp/interior_point.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "lp/matrix.h"

namespace dmc::lp {

namespace {

// Standard-form container: min c.x  s.t.  Ax = b, x >= 0.
struct StandardForm {
  Matrix a;                // m x n
  std::vector<double> b;   // m
  std::vector<double> c;   // n
  std::size_t structural;  // first `structural` variables map back to x
  double sense_factor;     // +1 min, -1 max (applied to c)
};

// Converts the general problem: <= rows gain a slack, >= rows a surplus.
StandardForm to_standard_form(const Problem& problem) {
  const std::size_t n0 = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  std::size_t extra = 0;
  for (const Constraint& c : problem.constraints) {
    if (c.relation != Relation::equal) ++extra;
  }

  StandardForm sf;
  sf.structural = n0;
  sf.sense_factor = problem.sense == Sense::minimize ? 1.0 : -1.0;
  sf.a = Matrix(m, n0 + extra, 0.0);
  sf.b.resize(m);
  sf.c.assign(n0 + extra, 0.0);
  for (std::size_t j = 0; j < n0; ++j) {
    sf.c[j] = sf.sense_factor * problem.objective[j];
  }

  std::size_t next_extra = n0;
  for (std::size_t r = 0; r < m; ++r) {
    const Constraint& row = problem.constraints[r];
    // Row equilibration: the multipath LPs mix O(1e8) bandwidth rows with
    // O(1) probability rows, which wrecks the normal-equation conditioning.
    // Scaling a row and its rhs leaves the solution unchanged (the slack
    // variable absorbs the row's scale).
    double row_scale = 0.0;
    for (double v : row.coefficients) row_scale = std::max(row_scale, std::abs(v));
    // An all-zero row has nothing to equilibrate; dividing by a 1e-30 floor
    // would blow its rhs up to ~1e30 and trip the divergence check on the
    // first iteration (found by tests/test_solver_differential.cpp).
    if (row_scale <= 0.0) row_scale = 1.0;
    for (std::size_t j = 0; j < n0; ++j) {
      sf.a(r, j) = row.coefficients[j] / row_scale;
    }
    sf.b[r] = row.rhs / row_scale;
    if (row.relation == Relation::less_equal) {
      sf.a(r, next_extra++) = 1.0;
    } else if (row.relation == Relation::greater_equal) {
      sf.a(r, next_extra++) = -1.0;
    }
  }

  // Objective scaling (value is recomputed from the original coefficients
  // by the caller, so this only conditions the iterations).
  double c_scale = 0.0;
  for (double v : sf.c) c_scale = std::max(c_scale, std::abs(v));
  if (c_scale > 0.0) {
    for (double& v : sf.c) v /= c_scale;
  }
  return sf;
}

// Dense symmetric positive-definite solve via Cholesky; adds diagonal
// regularization and retries if the factorization stalls (near-degenerate
// iterates late in the solve).
bool cholesky_solve(Matrix m, std::vector<double> rhs,
                    std::vector<double>& out) {
  const std::size_t n = m.rows();
  for (int attempt = 0; attempt < 3; ++attempt) {
    Matrix l = m;
    bool ok = true;
    for (std::size_t k = 0; k < n && ok; ++k) {
      double diag = l(k, k);
      for (std::size_t j = 0; j < k; ++j) diag -= l(k, j) * l(k, j);
      if (diag <= 0.0 || !std::isfinite(diag)) {
        ok = false;
        break;
      }
      const double root = std::sqrt(diag);
      l(k, k) = root;
      for (std::size_t i = k + 1; i < n; ++i) {
        double v = l(i, k);
        for (std::size_t j = 0; j < k; ++j) v -= l(i, j) * l(k, j);
        l(i, k) = v / root;
      }
    }
    if (!ok) {
      // Regularize and retry.
      double scale = 0.0;
      for (std::size_t k = 0; k < n; ++k) scale = std::max(scale, m(k, k));
      const double bump = std::max(scale, 1.0) * 1e-12 *
                          std::pow(10.0, 3.0 * (attempt + 1));
      for (std::size_t k = 0; k < n; ++k) m(k, k) += bump;
      continue;
    }
    // Forward then backward substitution.
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      double v = rhs[i];
      for (std::size_t j = 0; j < i; ++j) v -= l(i, j) * y[j];
      y[i] = v / l(i, i);
    }
    out.assign(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
      double v = y[i];
      for (std::size_t j = i + 1; j < n; ++j) v -= l(j, i) * out[j];
      out[i] = v / l(i, i);
    }
    return true;
  }
  return false;
}

double norm_inf(const std::vector<double>& v) {
  double out = 0.0;
  for (double x : v) out = std::max(out, std::abs(x));
  return out;
}

}  // namespace

Solution InteriorPointSolver::solve(const Problem& problem) const {
  Solution solution;
  const StandardForm sf = to_standard_form(problem);
  const std::size_t m = sf.a.rows();
  const std::size_t n = sf.a.cols();
  if (m == 0 || n == 0) {
    solution.status = SolveStatus::infeasible;
    return solution;
  }

  // Initial strictly positive point, scaled to the data magnitude.
  double data_scale = 1.0;
  for (double v : sf.b) data_scale = std::max(data_scale, std::abs(v));
  for (double v : sf.c) data_scale = std::max(data_scale, std::abs(v));
  std::vector<double> x(n, data_scale);
  std::vector<double> s(n, data_scale);
  std::vector<double> y(m, 0.0);

  std::vector<double> rb(m), rc(n), dx(n), ds(n), dy(m);
  std::vector<double> dx_aff(n), ds_aff(n);

  const auto compute_residuals = [&] {
    // rb = Ax - b ; rc = A'y + s - c.
    for (std::size_t i = 0; i < m; ++i) {
      double v = -sf.b[i];
      for (std::size_t j = 0; j < n; ++j) v += sf.a(i, j) * x[j];
      rb[i] = v;
    }
    for (std::size_t j = 0; j < n; ++j) {
      double v = s[j] - sf.c[j];
      for (std::size_t i = 0; i < m; ++i) v += sf.a(i, j) * y[i];
      rc[j] = v;
    }
  };

  // Solves the Newton normal equations for a given complementarity target:
  //   (A D A') dy = -rb - A D (rc - s + target ./ x)
  //   dx = D (A' dy + rc - s + target ./ x)     with D = diag(x ./ s)
  //   ds = -s + target ./ x - (s ./ x) dx
  const auto newton_step = [&](const std::vector<double>& target,
                               std::vector<double>& out_dx,
                               std::vector<double>& out_dy,
                               std::vector<double>& out_ds) -> bool {
    std::vector<double> d(n);
    std::vector<double> g(n);  // rc - s + target ./ x
    for (std::size_t j = 0; j < n; ++j) {
      d[j] = x[j] / s[j];
      g[j] = rc[j] - s[j] + target[j] / x[j];
    }
    Matrix normal(m, m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t k = i; k < m; ++k) {
        double v = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          v += sf.a(i, j) * d[j] * sf.a(k, j);
        }
        normal(i, k) = v;
        normal(k, i) = v;
      }
    }
    std::vector<double> rhs(m);
    for (std::size_t i = 0; i < m; ++i) {
      double v = -rb[i];
      for (std::size_t j = 0; j < n; ++j) v -= sf.a(i, j) * d[j] * g[j];
      rhs[i] = v;
    }
    if (!cholesky_solve(std::move(normal), std::move(rhs), out_dy)) {
      return false;
    }
    for (std::size_t j = 0; j < n; ++j) {
      double aty = 0.0;
      for (std::size_t i = 0; i < m; ++i) aty += sf.a(i, j) * out_dy[i];
      out_dx[j] = d[j] * (aty + g[j]);
      out_ds[j] = -s[j] + target[j] / x[j] - (s[j] / x[j]) * out_dx[j];
    }
    return true;
  };

  const auto max_step = [&](const std::vector<double>& v,
                            const std::vector<double>& dv) {
    double alpha = 1.0;
    for (std::size_t j = 0; j < v.size(); ++j) {
      if (dv[j] < 0.0) alpha = std::min(alpha, -v[j] / dv[j]);
    }
    return alpha;
  };

  // Classifies a diverging or stalled iterate. A primal ray — x growing
  // without bound while Ax - b stays (relatively) satisfied and the
  // minimization objective heads to -inf — certifies an unbounded problem;
  // residual blow-up without that signature is (dual-ray) infeasibility.
  // This is what lets the solver differential suite assert status agreement
  // with the simplex solver on unbounded instances.
  // Caveat: a problem can carry a negative-cost recession ray *and* be
  // infeasible (the classic "infeasible or unbounded" ambiguity commercial
  // codes report as a combined status); this signature then reads
  // `unbounded` where the simplex proof says `infeasible`. The differential
  // suite accepts exactly that one-sided disagreement.
  const auto primal_ray = [&] {
    const double norm_x = norm_inf(x);
    if (norm_x <= 1e6 * (1.0 + data_scale)) return false;
    if (norm_inf(rb) >= 1e-5 * (1.0 + norm_x)) return false;
    double cx = 0.0;
    for (std::size_t j = 0; j < n; ++j) cx += sf.c[j] * x[j];
    return cx < -1e-6 * norm_x;
  };
  // A diverging *dual objective* b.y is the shape of a dual ray, i.e. an
  // infeasibility certificate. The dual objective (not just |y|) matters:
  // on rank-deficient but consistent rows — duplicated constraints with
  // equal rhs — y drifts unboundedly along null(A^T) with b.y pinned, and
  // that drift must not read as infeasibility.
  const auto dual_ray = [&] {
    double by = 0.0;
    for (std::size_t i = 0; i < m; ++i) by += sf.b[i] * y[i];
    return by > 1e4 * (1.0 + data_scale);
  };

  for (int iteration = 0; iteration < options_.max_iterations; ++iteration) {
    compute_residuals();
    double mu = 0.0;
    for (std::size_t j = 0; j < n; ++j) mu += x[j] * s[j];
    mu /= static_cast<double>(n);

    // Catch a primal ray while the iterate is still numerically clean: on
    // unbounded problems x explodes and mu goes non-finite within a few
    // more steps, after which no signature survives to classify.
    if (primal_ray()) {
      solution.status = SolveStatus::unbounded;
      solution.iterations = iteration;
      return solution;
    }

    const double scale = 1.0 + data_scale;
    if (norm_inf(rb) / scale < options_.tolerance &&
        norm_inf(rc) / scale < options_.tolerance &&
        mu / scale < options_.tolerance) {
      solution.status = SolveStatus::optimal;
      solution.x.assign(problem.num_variables(), 0.0);
      for (std::size_t j = 0; j < sf.structural; ++j) {
        solution.x[j] = std::max(0.0, x[j]);
      }
      double value = 0.0;
      for (std::size_t j = 0; j < problem.num_variables(); ++j) {
        value += problem.objective[j] * solution.x[j];
      }
      solution.objective_value = value;
      solution.iterations = iteration;
      return solution;
    }
    if (norm_inf(rb) > options_.divergence_threshold ||
        norm_inf(rc) > options_.divergence_threshold ||
        !std::isfinite(mu)) {
      // Same honesty as the post-loop classifier: a blow-up is only called
      // infeasible when the dual iterate diverges with it (a dual-ray
      // shape); a numerical explosion on rank-deficient data abstains.
      if (primal_ray()) {
        solution.status = SolveStatus::unbounded;
      } else if (dual_ray()) {
        solution.status = SolveStatus::infeasible;
      } else {
        solution.status = SolveStatus::iteration_limit;
      }
      solution.iterations = iteration;
      return solution;
    }

    // Predictor (affine scaling, sigma = 0).
    std::vector<double> target(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) target[j] = 0.0;
    if (!newton_step(target, dx_aff, dy, ds_aff)) {
      solution.status = SolveStatus::iteration_limit;
      solution.iterations = iteration;
      return solution;
    }
    const double alpha_p_aff = max_step(x, dx_aff);
    const double alpha_d_aff = max_step(s, ds_aff);
    double mu_aff = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      mu_aff += (x[j] + alpha_p_aff * dx_aff[j]) *
                (s[j] + alpha_d_aff * ds_aff[j]);
    }
    mu_aff /= static_cast<double>(n);
    const double sigma = std::pow(mu_aff / mu, 3.0);

    // Corrector with Mehrotra's second-order term.
    for (std::size_t j = 0; j < n; ++j) {
      target[j] = sigma * mu - dx_aff[j] * ds_aff[j];
    }
    if (!newton_step(target, dx, dy, ds)) {
      solution.status = SolveStatus::iteration_limit;
      solution.iterations = iteration;
      return solution;
    }

    const double alpha_p = options_.step_fraction * max_step(x, dx);
    const double alpha_d = options_.step_fraction * max_step(s, ds);
    for (std::size_t j = 0; j < n; ++j) {
      x[j] += alpha_p * dx[j];
      s[j] += alpha_d * ds[j];
    }
    for (std::size_t i = 0; i < m; ++i) y[i] += alpha_d * dy[i];
    ++solution.iterations;
  }

  // Out of iterations: classify what the iterate stalled against. A primal
  // ray is unbounded. A persistent primal residual with complementarity
  // already converged *and* a diverging dual objective (see dual_ray) is
  // infeasibility. Anything less clear-cut honestly stays iteration_limit —
  // the differential suite treats that as an abstention, not a verdict.
  compute_residuals();
  double mu = 0.0;
  for (std::size_t j = 0; j < n; ++j) mu += x[j] * s[j];
  mu /= static_cast<double>(n);
  if (primal_ray()) {
    solution.status = SolveStatus::unbounded;
  } else if (std::isfinite(mu) && mu < 1e-6 * (1.0 + data_scale) &&
             norm_inf(rb) > 1e-5 * (1.0 + norm_inf(x)) && dual_ray()) {
    solution.status = SolveStatus::infeasible;
  } else {
    solution.status = SolveStatus::iteration_limit;
  }
  return solution;
}

}  // namespace dmc::lp
