#include "lp/incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace dmc::lp {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

void check_problem(const Problem& problem) {
  for (const Constraint& c : problem.constraints) {
    if (c.coefficients.size() != problem.num_variables()) {
      throw std::invalid_argument("malformed problem: constraint '" + c.name +
                                  "' width mismatch");
    }
  }
}

// Same shape = the stored basis indices still mean the same columns: equal
// variable/row counts, equal relations, and no rhs sign change (a flip
// re-assigns the slack/surplus/artificial layout).
bool same_shape(const Problem& a, const Problem& b) {
  if (a.num_variables() != b.num_variables() ||
      a.num_constraints() != b.num_constraints() || a.sense != b.sense) {
    return false;
  }
  for (std::size_t r = 0; r < a.num_constraints(); ++r) {
    if (a.constraints[r].relation != b.constraints[r].relation) return false;
    if ((a.constraints[r].rhs < 0.0) != (b.constraints[r].rhs < 0.0)) {
      return false;
    }
  }
  return true;
}

}  // namespace

void IncrementalSolver::reset() {
  problem_ = Problem{};
  basis_.clear();
  form_valid_ = false;
}

const ComputationalForm& IncrementalSolver::ensure_form() {
  if (!form_valid_) {
    form_ = ComputationalForm::build(problem_);
    form_valid_ = true;
  }
  return form_;
}

Solution IncrementalSolver::solve(const Problem& problem) {
  check_problem(problem);
  problem_ = problem;
  form_valid_ = false;
  return cold_solve();
}

Solution IncrementalSolver::cold_solve() {
  ++stats_.cold_solves;
  const SimplexSolver solver(options_.simplex);
  Solution solution = solver.solve(problem_);
  basis_ = solution.optimal() ? solution.basis : std::vector<std::size_t>{};
  if (solution.optimal()) {
    const ComputationalForm& form = ensure_form();
    BasisFactorization factorization;
    if (basis_.size() == form.rows && factorization.factorize(form, basis_)) {
      refine_vertex(form, factorization);
      if (!canonical_extract(form, factorization, solution)) {
        // Keep the tableau's solution; drop the warm state rather than seed
        // re-solves from a basis the factorization rejected.
        basis_ = solution.basis;
      }
    }
  }
  return solution;
}

void IncrementalSolver::refine_vertex(const ComputationalForm& form,
                                      BasisFactorization& factorization) {
  const std::size_t m = form.rows;
  const double eps = options_.simplex.epsilon;
  double c_scale = 1.0;
  for (std::size_t j = 0; j < form.structural; ++j) {
    c_scale = std::max(c_scale, std::abs(form.cost[j]));
  }
  const double face_tol = 1e-7 * c_scale;
  // Secondary objective: minimize sum_j j * z_j over the optimal face —
  // push mass toward low column indices. Tolerance scaled to its range.
  const double secondary_tol = 1e-7 * static_cast<double>(form.cols);

  std::vector<bool> is_basic(form.cols, false);
  for (const std::size_t j : basis_) is_basic[j] = true;

  std::vector<double> xb(m), y(m), y2(m);
  const std::int64_t max_pivots = 32 + 4 * static_cast<std::int64_t>(m);
  for (std::int64_t iteration = 0; iteration < max_pivots; ++iteration) {
    xb = form.b;
    factorization.ftran(xb);
    for (std::size_t r = 0; r < m; ++r) y[r] = form.cost[basis_[r]];
    factorization.btran(y);
    for (std::size_t r = 0; r < m; ++r) {
      y2[r] = static_cast<double>(basis_[r]);
    }
    factorization.btran(y2);

    std::size_t entering = kNone;
    double best_d2 = -secondary_tol;
    for (std::size_t j = 0; j < form.artificial_begin; ++j) {
      if (is_basic[j]) continue;
      const std::span<const double> col = form.column(j);
      double d = form.cost[j];
      for (std::size_t r = 0; r < m; ++r) d -= y[r] * col[r];
      if (d > face_tol) continue;  // entering would leave the optimal face
      double d2 = static_cast<double>(j);
      for (std::size_t r = 0; r < m; ++r) d2 -= y2[r] * col[r];
      if (d2 < best_d2) {
        best_d2 = d2;
        entering = j;
      }
    }
    if (entering == kNone) return;  // canonical vertex reached

    std::vector<double> w(form.column(entering).begin(),
                          form.column(entering).end());
    factorization.ftran(w);
    std::size_t leaving = kNone;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      if (w[r] <= eps) continue;
      const double ratio = xb[r] / w[r];
      if (ratio < best_ratio - eps ||
          (ratio < best_ratio + eps &&
           (leaving == kNone || basis_[r] < basis_[leaving]))) {
        best_ratio = ratio;
        leaving = r;
      }
    }
    if (leaving == kNone) return;  // face ray: keep the current vertex
    is_basic[basis_[leaving]] = false;
    is_basic[entering] = true;
    basis_[leaving] = entering;
    if (!factorization.update(leaving, w) ||
        factorization.eta_count() >= options_.refactor_interval) {
      if (!factorization.factorize(form, basis_)) return;
    }
  }
}

bool IncrementalSolver::canonical_extract(const ComputationalForm& form,
                                          BasisFactorization& factorization,
                                          Solution& solution) {
  // Bit-identical extraction regardless of pivot history: the row order of
  // the basis is bookkeeping (permuting it permutes B's columns and x_B
  // together), but it steers the LU elimination order and therefore the
  // last-ulp rounding of x. Sorting the basis and refactorizing fresh gives
  // every path to the same basis the same arithmetic. A pivot-free re-solve
  // already holds exactly that factorization (sorted basis, no etas), so it
  // skips the redundant refactorization.
  const bool fresh = std::is_sorted(basis_.begin(), basis_.end()) &&
                     factorization.eta_count() == 0;
  std::sort(basis_.begin(), basis_.end());
  if (!fresh && !factorization.factorize(form, basis_)) return false;
  std::vector<double> xb = form.b;
  factorization.ftran(xb);
  solution.basis = basis_;
  solution.x.assign(problem_.num_variables(), 0.0);
  for (std::size_t r = 0; r < form.rows; ++r) {
    if (basis_[r] < form.structural) solution.x[basis_[r]] = xb[r];
  }
  double value = 0.0;
  for (std::size_t j = 0; j < problem_.num_variables(); ++j) {
    value += problem_.objective[j] * solution.x[j];
  }
  solution.objective_value = value;
  return true;
}

Solution IncrementalSolver::resolve(const Problem& problem) {
  check_problem(problem);
  const bool compatible = has_basis() && same_shape(problem_, problem);
  problem_ = problem;
  form_valid_ = false;
  if (!compatible) {
    if (has_basis()) ++stats_.fallbacks;
    return cold_solve();
  }
  Solution solution;
  if (!warm_solve(solution)) {
    ++stats_.fallbacks;
    return cold_solve();
  }
  return solution;
}

Solution IncrementalSolver::resolve(const ProblemDelta& delta) {
  const bool had_basis = has_basis();
  const std::size_t rows = problem_.num_constraints();
  const std::size_t old_vars = problem_.num_variables();

  // Validate the whole delta before touching anything: a throw must not
  // leave the stored problem (or its cached form) half-mutated.
  for (const auto& [row, rhs] : delta.rhs) {
    (void)rhs;
    if (row >= rows) {
      throw std::invalid_argument("ProblemDelta: rhs row out of range");
    }
  }
  for (const auto& [col, value] : delta.objective) {
    (void)value;
    if (col >= old_vars) {
      throw std::invalid_argument(
          "ProblemDelta: objective column out of range");
    }
  }
  for (const std::size_t col : delta.removed_columns) {
    if (col >= old_vars) {
      throw std::invalid_argument("ProblemDelta: removed column out of range");
    }
  }
  for (const ProblemDelta::NewColumn& column : delta.added_columns) {
    if (column.coefficients.size() != rows) {
      throw std::invalid_argument("ProblemDelta: new column height mismatch");
    }
  }

  for (const auto& [row, rhs] : delta.rhs) {
    if ((problem_.constraints[row].rhs < 0.0) != (rhs < 0.0)) {
      // A sign change re-assigns the row's slack/surplus/artificial layout:
      // the stored basis and cached form no longer describe these columns.
      basis_.clear();
      form_valid_ = false;
    }
    problem_.constraints[row].rhs = rhs;
    if (form_valid_) form_.b[row] = form_.rhs_factor[row] * rhs;
  }
  for (const auto& [col, value] : delta.objective) {
    problem_.objective[col] = value;
    if (form_valid_) form_.cost[col] = form_.sense_factor * value;
  }
  if (!delta.removed_columns.empty() || !delta.added_columns.empty()) {
    form_valid_ = false;
  }

  // Removals: descending unique order so earlier erasures do not shift the
  // later indices; the basis is remapped (or invalidated) alongside.
  std::vector<std::size_t> removed = delta.removed_columns;
  std::sort(removed.begin(), removed.end(), std::greater<>());
  removed.erase(std::unique(removed.begin(), removed.end()), removed.end());
  for (const std::size_t col : removed) {
    problem_.objective.erase(problem_.objective.begin() +
                             static_cast<std::ptrdiff_t>(col));
    for (Constraint& c : problem_.constraints) {
      c.coefficients.erase(c.coefficients.begin() +
                           static_cast<std::ptrdiff_t>(col));
    }
  }
  for (const ProblemDelta::NewColumn& column : delta.added_columns) {
    problem_.objective.push_back(column.objective);
    for (std::size_t r = 0; r < rows; ++r) {
      problem_.constraints[r].coefficients.push_back(column.coefficients[r]);
    }
  }

  // Remap the stored basis into the post-delta column numbering. Removing a
  // *basic* column leaves no valid basis — that is the forced cold path.
  if (has_basis() && (!removed.empty() || !delta.added_columns.empty())) {
    const std::size_t new_vars = problem_.num_variables();
    bool valid = true;
    for (std::size_t& entry : basis_) {
      if (entry < old_vars) {
        std::size_t shift = 0;
        for (const std::size_t col : removed) {
          if (col == entry) {
            valid = false;
            break;
          }
          if (col < entry) ++shift;
        }
        if (!valid) break;
        entry -= shift;
      } else {
        entry = entry - old_vars + new_vars;  // slack/surplus/artificial
      }
    }
    if (!valid) basis_.clear();
  }

  if (!has_basis()) {
    if (had_basis) ++stats_.fallbacks;  // basis invalidated by the delta
    return cold_solve();
  }
  Solution solution;
  if (!warm_solve(solution)) {
    ++stats_.fallbacks;
    return cold_solve();
  }
  return solution;
}

bool IncrementalSolver::warm_solve(Solution& solution) {
  const ComputationalForm& form = ensure_form();
  const std::size_t m = form.rows;
  if (basis_.size() != m || m == 0) return false;
  {
    std::vector<std::size_t> sorted = basis_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.back() >= form.cols ||
        std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return false;
    }
  }

  BasisFactorization factorization;
  if (!factorization.factorize(form, basis_)) return false;

  const double eps = options_.simplex.epsilon;
  double b_scale = 1.0;
  for (const double v : form.b) b_scale = std::max(b_scale, std::abs(v));
  double c_scale = 1.0;
  for (std::size_t j = 0; j < form.structural; ++j) {
    c_scale = std::max(c_scale, std::abs(form.cost[j]));
  }
  const double feas_tol = 1e-7 * b_scale;
  const double dual_tol = 1e-7 * c_scale;

  std::vector<bool> is_basic(form.cols, false);
  for (const std::size_t j : basis_) is_basic[j] = true;

  std::vector<double> xb, y, d(form.artificial_begin, 0.0);
  const auto refresh = [&] {
    xb = form.b;
    factorization.ftran(xb);
    y.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) y[r] = form.cost[basis_[r]];
    factorization.btran(y);
    for (std::size_t j = 0; j < form.artificial_begin; ++j) {
      if (is_basic[j]) {
        d[j] = 0.0;
        continue;
      }
      double v = form.cost[j];
      const std::span<const double> col = form.column(j);
      for (std::size_t r = 0; r < m; ++r) v -= y[r] * col[r];
      d[j] = v;
    }
  };
  const auto primal_feasible = [&] {
    for (const double v : xb) {
      if (v < -feas_tol) return false;
    }
    return true;
  };
  const auto dual_feasible = [&] {
    for (std::size_t j = 0; j < form.artificial_begin; ++j) {
      if (!is_basic[j] && d[j] < -dual_tol) return false;
    }
    return true;
  };
  // Applies a pivot (basis position `row` <- column `entering`, with
  // `w` = B^{-1} a_entering) and keeps the factorization fresh.
  const auto pivot = [&](std::size_t row, std::size_t entering,
                         const std::vector<double>& w) {
    is_basic[basis_[row]] = false;
    is_basic[entering] = true;
    basis_[row] = entering;
    if (!factorization.update(row, w) ||
        factorization.eta_count() >= options_.refactor_interval) {
      if (!factorization.factorize(form, basis_)) return false;
    }
    return true;
  };

  refresh();
  std::int64_t pivots = 0;
  std::int64_t degenerate_streak = 0;
  bool use_bland = false;
  const auto count_pivot = [&](bool degenerate) {
    ++pivots;
    if (degenerate) {
      if (++degenerate_streak >= options_.degenerate_switch) use_bland = true;
    } else {
      degenerate_streak = 0;
      use_bland = false;
    }
    return pivots < options_.max_warm_iterations;
  };

  bool primal_ok = primal_feasible();
  bool dual_ok = dual_feasible();

  if (dual_ok && !primal_ok) {
    // Rhs moved (capacity drift): the basis kept dual feasibility, so dual
    // simplex walks back to primal feasibility.
    while (!primal_ok) {
      std::size_t leaving = kNone;
      double most_negative = -feas_tol;
      for (std::size_t r = 0; r < m; ++r) {
        if (use_bland) {
          // Anti-cycling flavour: smallest basis index among infeasible rows.
          if (xb[r] < -feas_tol &&
              (leaving == kNone || basis_[r] < basis_[leaving])) {
            leaving = r;
          }
        } else if (xb[r] < most_negative) {
          most_negative = xb[r];
          leaving = r;
        }
      }
      if (leaving == kNone) break;  // feasible after all (tolerance edge)

      std::vector<double> rho(m, 0.0);
      rho[leaving] = 1.0;
      factorization.btran(rho);
      std::size_t entering = kNone;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < form.artificial_begin; ++j) {
        if (is_basic[j]) continue;
        const std::span<const double> col = form.column(j);
        double alpha = 0.0;
        for (std::size_t r = 0; r < m; ++r) alpha += rho[r] * col[r];
        if (alpha >= -eps) continue;  // cannot repair the negative basic
        const double ratio = d[j] / -alpha;
        if (ratio < best_ratio - eps ||
            (ratio < best_ratio + eps && (entering == kNone || j < entering))) {
          best_ratio = ratio;
          entering = j;
        }
      }
      if (entering == kNone) {
        // The violated row cannot be repaired by any real column: the
        // updated problem is (primal) infeasible.
        solution.status = SolveStatus::infeasible;
        solution.iterations = pivots;
        ++stats_.warm_solves;
        stats_.warm_pivots += static_cast<std::uint64_t>(pivots);
        return true;
      }
      std::vector<double> w(form.column(entering).begin(),
                            form.column(entering).end());
      factorization.ftran(w);
      if (std::abs(w[leaving]) <= eps) return false;  // unstable pivot
      const bool degenerate = d[entering] <= dual_tol;
      if (!pivot(leaving, entering, w)) return false;
      if (!count_pivot(degenerate)) return false;
      refresh();
      primal_ok = primal_feasible();
    }
    dual_ok = dual_feasible();
  }

  if (primal_ok && !dual_ok) {
    // Objective moved (new columns, new deadline profile): the basis kept
    // primal feasibility, so primal phase-2 pivots restore optimality.
    while (true) {
      std::size_t entering = kNone;
      double most_negative = -dual_tol;
      for (std::size_t j = 0; j < form.artificial_begin; ++j) {
        if (is_basic[j] || d[j] >= -dual_tol) continue;
        if (use_bland) {
          entering = j;
          break;
        }
        if (d[j] < most_negative) {
          most_negative = d[j];
          entering = j;
        }
      }
      if (entering == kNone) break;  // optimal

      std::vector<double> w(form.column(entering).begin(),
                            form.column(entering).end());
      factorization.ftran(w);
      std::size_t leaving = kNone;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m; ++r) {
        if (w[r] <= eps) continue;
        const double ratio = xb[r] / w[r];
        if (ratio < best_ratio - eps ||
            (ratio < best_ratio + eps &&
             (leaving == kNone || basis_[r] < basis_[leaving]))) {
          best_ratio = ratio;
          leaving = r;
        }
      }
      if (leaving == kNone) {
        solution.status = SolveStatus::unbounded;
        solution.iterations = pivots;
        ++stats_.warm_solves;
        stats_.warm_pivots += static_cast<std::uint64_t>(pivots);
        return true;
      }
      const bool degenerate = xb[leaving] <= feas_tol;
      if (!pivot(leaving, entering, w)) return false;
      if (!count_pivot(degenerate)) return false;
      refresh();
    }
    primal_ok = primal_feasible();
    dual_ok = true;
  }

  if (!primal_ok || !dual_ok) return false;  // combined change: solve cold

  // An artificial still basic at a positive level means the re-optimized
  // point violates its original constraint — phase-1 territory, go cold.
  for (std::size_t r = 0; r < m; ++r) {
    if (basis_[r] >= form.artificial_begin && xb[r] > feas_tol) return false;
  }

  refine_vertex(form, factorization);
  if (!canonical_extract(form, factorization, solution)) return false;
  solution.status = SolveStatus::optimal;
  solution.iterations = pivots;
  ++stats_.warm_solves;
  stats_.warm_pivots += static_cast<std::uint64_t>(pivots);
  return true;
}

}  // namespace dmc::lp
