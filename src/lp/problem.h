// Linear-program description shared by the solver and the model builders.
//
// The canonical form accepted here is
//     optimize   c . x
//     subject to a_k . x  (<= | = | >=)  b_k     for every constraint k
//                x >= 0
// which is exactly the shape of Equation 10 / Equation 20 in the paper
// (maximize p'x s.t. Ax <= q, Bx = 1, x >= 0).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dmc::lp {

enum class Sense { maximize, minimize };

enum class Relation { less_equal, equal, greater_equal };

struct Constraint {
  std::vector<double> coefficients;
  Relation relation = Relation::less_equal;
  double rhs = 0.0;
  std::string name;  // optional, used in diagnostics
};

struct Problem {
  Sense sense = Sense::maximize;
  std::vector<double> objective;
  std::vector<Constraint> constraints;

  std::size_t num_variables() const { return objective.size(); }
  std::size_t num_constraints() const { return constraints.size(); }

  // Appends a constraint, checking that its width matches the objective.
  void add_constraint(std::vector<double> coefficients, Relation relation,
                      double rhs, std::string name = {}) {
    if (coefficients.size() != objective.size()) {
      throw std::invalid_argument(
          "constraint width " + std::to_string(coefficients.size()) +
          " does not match variable count " + std::to_string(objective.size()));
    }
    constraints.push_back(
        Constraint{std::move(coefficients), relation, rhs, std::move(name)});
  }
};

// Human-readable rendering, intended for test failures and debugging.
std::string to_string(const Problem& problem);

}  // namespace dmc::lp
