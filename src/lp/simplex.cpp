#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "lp/matrix.h"

namespace dmc::lp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::optimal: return "optimal";
    case SolveStatus::infeasible: return "infeasible";
    case SolveStatus::unbounded: return "unbounded";
    case SolveStatus::iteration_limit: return "iteration_limit";
  }
  return "unknown";
}

std::string to_string(const Problem& problem) {
  std::ostringstream out;
  out << (problem.sense == Sense::maximize ? "maximize" : "minimize") << " [";
  for (std::size_t j = 0; j < problem.objective.size(); ++j) {
    if (j > 0) out << ", ";
    out << problem.objective[j];
  }
  out << "]\n";
  for (const Constraint& c : problem.constraints) {
    out << "  [";
    for (std::size_t j = 0; j < c.coefficients.size(); ++j) {
      if (j > 0) out << ", ";
      out << c.coefficients[j];
    }
    const char* rel = c.relation == Relation::less_equal      ? "<="
                      : c.relation == Relation::greater_equal ? ">="
                                                              : "=";
    out << "] " << rel << " " << c.rhs;
    if (!c.name.empty()) out << "   (" << c.name << ")";
    out << "\n";
  }
  return out.str();
}

namespace {

// Internal solver state. The tableau holds one row per constraint plus a
// trailing objective row; columns are [structural | slack/surplus |
// artificial | rhs]. All constraints are normalized to have rhs >= 0 before
// slack variables are attached, so the phase-1 basis is the artificial /
// slack identity.
class Tableau {
 public:
  Tableau(const Problem& problem, const SimplexSolver::Options& options)
      : options_(options), num_structural_(problem.num_variables()) {
    build(problem);
  }

  Solution run(const Problem& problem) {
    Solution solution;
    if (!phase1(solution)) return solution;
    if (!phase2(solution)) return solution;

    solution.status = SolveStatus::optimal;
    solution.basis = basis_;
    solution.x.assign(num_structural_, 0.0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      const std::size_t var = basis_[r];
      if (var < num_structural_) solution.x[var] = rhs(r);
    }
    double value = 0.0;
    for (std::size_t j = 0; j < num_structural_; ++j) {
      value += problem.objective[j] * solution.x[j];
    }
    solution.objective_value = value;
    return solution;
  }

 private:
  void build(const Problem& problem) {
    num_rows_ = problem.num_constraints();

    // Count auxiliary columns. Constraints are normalized so rhs >= 0 first;
    // normalization flips the relation when it multiplies a row by -1.
    struct RowPlan {
      Relation relation;
      double sign;  // +1 or -1 applied to coefficients and rhs
    };
    std::vector<RowPlan> plans;
    plans.reserve(num_rows_);
    std::size_t num_slack = 0;
    std::size_t num_artificial = 0;
    for (const Constraint& c : problem.constraints) {
      RowPlan plan{c.relation, 1.0};
      if (c.rhs < 0.0) {
        plan.sign = -1.0;
        if (c.relation == Relation::less_equal) {
          plan.relation = Relation::greater_equal;
        } else if (c.relation == Relation::greater_equal) {
          plan.relation = Relation::less_equal;
        }
      }
      if (plan.relation == Relation::less_equal) {
        num_slack += 1;  // slack enters the initial basis
      } else if (plan.relation == Relation::greater_equal) {
        num_slack += 1;  // surplus
        num_artificial += 1;
      } else {
        num_artificial += 1;
      }
      plans.push_back(plan);
    }

    slack_begin_ = num_structural_;
    artificial_begin_ = slack_begin_ + num_slack;
    num_cols_ = artificial_begin_ + num_artificial;  // + rhs appended below
    tab_ = Matrix(num_rows_ + 1, num_cols_ + 1, 0.0);
    basis_.assign(num_rows_, 0);

    std::size_t next_slack = slack_begin_;
    std::size_t next_artificial = artificial_begin_;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      const Constraint& c = problem.constraints[r];
      const RowPlan& plan = plans[r];
      // Row equilibration: the multipath LPs mix O(1e8) bandwidth rows with
      // O(1) probability rows; dividing each row (and its rhs) by its
      // largest coefficient leaves the structural solution unchanged (the
      // slack absorbs the scale) and keeps the tableau numerically sane.
      double row_scale = 0.0;
      for (double v : c.coefficients) {
        row_scale = std::max(row_scale, std::abs(v));
      }
      if (row_scale <= 0.0) row_scale = 1.0;
      for (std::size_t j = 0; j < num_structural_; ++j) {
        tab_(r, j) = plan.sign * c.coefficients[j] / row_scale;
      }
      tab_(r, num_cols_) = plan.sign * c.rhs / row_scale;

      if (plan.relation == Relation::less_equal) {
        tab_(r, next_slack) = 1.0;
        basis_[r] = next_slack;
        ++next_slack;
      } else if (plan.relation == Relation::greater_equal) {
        tab_(r, next_slack) = -1.0;  // surplus
        ++next_slack;
        tab_(r, next_artificial) = 1.0;
        basis_[r] = next_artificial;
        ++next_artificial;
      } else {
        tab_(r, next_artificial) = 1.0;
        basis_[r] = next_artificial;
        ++next_artificial;
      }
    }
  }

  double rhs(std::size_t r) const { return tab_(r, num_cols_); }
  std::size_t objective_row() const { return num_rows_; }

  // Installs the reduced-cost row for minimizing `cost` (indexed over all
  // columns; absent entries are zero). Row := -cost, then add cost[basic] *
  // constraint row for every basic variable with a nonzero cost, which makes
  // every basic reduced cost exactly zero.
  void install_objective(const std::vector<double>& cost) {
    for (std::size_t j = 0; j <= num_cols_; ++j) tab_(objective_row(), j) = 0.0;
    for (std::size_t j = 0; j < cost.size(); ++j) {
      tab_(objective_row(), j) = -cost[j];
    }
    for (std::size_t r = 0; r < num_rows_; ++r) {
      const std::size_t var = basis_[r];
      if (var < cost.size() && cost[var] != 0.0) {
        tab_.add_scaled_row(objective_row(), r, cost[var]);
      }
    }
  }

  // Runs pivots until no entering column remains. `allowed` limits which
  // columns may enter (phase 2 excludes artificials). Returns false on
  // unbounded or iteration limit, filling `solution.status`.
  bool optimize(Solution& solution, std::size_t allowed_cols) {
    std::int64_t degenerate_streak = 0;
    bool use_bland = false;
    while (true) {
      if (solution.iterations >= options_.max_iterations) {
        solution.status = SolveStatus::iteration_limit;
        return false;
      }
      const std::size_t entering = pick_entering(allowed_cols, use_bland);
      if (entering == kNone) return true;  // optimal for this phase

      const std::size_t leaving = pick_leaving(entering);
      if (leaving == kNone) {
        solution.status = SolveStatus::unbounded;
        return false;
      }

      const bool degenerate = rhs(leaving) <= options_.epsilon;
      pivot(leaving, entering);
      ++solution.iterations;
      if (degenerate) {
        if (++degenerate_streak >= options_.degenerate_switch) use_bland = true;
      } else {
        degenerate_streak = 0;
        use_bland = false;
      }
    }
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // The objective row stores z_j - c_j for the minimization problem; a
  // positive entry means the column improves the objective.
  std::size_t pick_entering(std::size_t allowed_cols, bool use_bland) const {
    const auto row = tab_.row(objective_row());
    if (use_bland) {
      for (std::size_t j = 0; j < allowed_cols; ++j) {
        if (row[j] > options_.epsilon) return j;
      }
      return kNone;
    }
    std::size_t best = kNone;
    double best_value = options_.epsilon;
    for (std::size_t j = 0; j < allowed_cols; ++j) {
      if (row[j] > best_value) {
        best_value = row[j];
        best = j;
      }
    }
    return best;
  }

  std::size_t pick_leaving(std::size_t entering) const {
    std::size_t best = kNone;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < num_rows_; ++r) {
      const double a = tab_(r, entering);
      if (a <= options_.epsilon) continue;
      const double ratio = rhs(r) / a;
      // Ties broken by smallest basis index (lexicographic flavour) to help
      // avoid cycling even under Dantzig pricing.
      if (ratio < best_ratio - options_.epsilon ||
          (ratio < best_ratio + options_.epsilon &&
           (best == kNone || basis_[r] < basis_[best]))) {
        best_ratio = ratio;
        best = r;
      }
    }
    return best;
  }

  void pivot(std::size_t row, std::size_t col) {
    tab_.scale_row(row, 1.0 / tab_(row, col));
    for (std::size_t r = 0; r <= num_rows_; ++r) {
      if (r == row) continue;
      const double factor = tab_(r, col);
      if (factor != 0.0) tab_.add_scaled_row(r, row, -factor);
    }
    basis_[row] = col;
  }

  bool phase1(Solution& solution) {
    if (artificial_begin_ == num_cols_) return true;  // no artificials needed

    std::vector<double> cost(num_cols_, 0.0);
    for (std::size_t j = artificial_begin_; j < num_cols_; ++j) cost[j] = 1.0;
    install_objective(cost);
    if (!optimize(solution, num_cols_)) return false;

    // Sum of artificials is -objective_row_rhs (row stores z - c relative to
    // a minimization started at 0). Recompute directly for robustness.
    double artificial_sum = 0.0;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] >= artificial_begin_) artificial_sum += rhs(r);
    }
    if (artificial_sum > 1e-7) {
      solution.status = SolveStatus::infeasible;
      return false;
    }

    // Drive any remaining (zero-valued) artificials out of the basis so that
    // phase 2 never reactivates them.
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] < artificial_begin_) continue;
      std::size_t col = kNone;
      for (std::size_t j = 0; j < artificial_begin_; ++j) {
        if (std::abs(tab_(r, j)) > options_.epsilon) {
          col = j;
          break;
        }
      }
      if (col != kNone) {
        pivot(r, col);
        ++solution.iterations;
      }
      // If the row is all zeros over the real columns the constraint was
      // redundant; a zero-valued basic artificial is then harmless because
      // artificial columns are excluded from entering in phase 2.
    }
    return true;
  }

  bool phase2(Solution& solution) {
    // Internally always minimize; flip the sign for maximization problems.
    std::vector<double> cost(num_cols_, 0.0);
    for (std::size_t j = 0; j < num_structural_; ++j) {
      cost[j] = sense_factor_ * original_objective_[j];
    }
    install_objective(cost);
    return optimize(solution, artificial_begin_);
  }

 public:
  void set_objective(const std::vector<double>& objective, Sense sense) {
    original_objective_ = objective;
    sense_factor_ = (sense == Sense::maximize) ? -1.0 : 1.0;
  }

 private:
  SimplexSolver::Options options_;
  std::size_t num_structural_ = 0;
  std::size_t slack_begin_ = 0;
  std::size_t artificial_begin_ = 0;
  std::size_t num_cols_ = 0;  // not counting the rhs column
  std::size_t num_rows_ = 0;
  Matrix tab_;
  std::vector<std::size_t> basis_;
  std::vector<double> original_objective_;
  double sense_factor_ = 1.0;
};

}  // namespace

Solution SimplexSolver::solve(const Problem& problem) const {
  for (const Constraint& c : problem.constraints) {
    if (c.coefficients.size() != problem.num_variables()) {
      throw std::invalid_argument("malformed problem: constraint '" + c.name +
                                  "' width mismatch");
    }
  }
  Tableau tableau(problem, options_);
  tableau.set_objective(problem.objective, problem.sense);
  return tableau.run(problem);
}

}  // namespace dmc::lp
