#include "sim/link.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/units.h"
#include "obs/trace_recorder.h"

namespace dmc::sim {

Link::Link(Simulator& simulator, LinkConfig config, std::string name)
    : simulator_(simulator),
      config_(std::move(config)),
      name_(std::move(name)),
      rng_(simulator.rng().fork()) {
  if (config_.rate_bps <= 0.0) {
    throw std::invalid_argument("Link '" + name_ + "': rate must be > 0");
  }
  if (config_.prop_delay_s < 0.0) {
    throw std::invalid_argument("Link '" + name_ + "': negative delay");
  }
  if (config_.loss_rate < 0.0 || config_.loss_rate > 1.0) {
    throw std::invalid_argument("Link '" + name_ + "': loss not in [0,1]");
  }
}

std::uint16_t Link::obs_track() {
  if (obs_track_ == obs::TraceRecorder::kNoTrack) {
    obs_track_ = simulator_.obs().trace->link_track(name_);
  }
  return obs_track_;
}

void Link::send(PooledPacket packet) {
  ++stats_.offered;
  obs::TraceRecorder* tr = simulator_.obs().trace;
  if (queue_depth_ >= config_.queue_capacity) {
    ++stats_.queue_drops;
    if (tr != nullptr) {
      // Link events carry the owning session in `value` so the forensics
      // engine can join per-link evidence back to per-session messages
      // (per-session sequence numbers alone are ambiguous across sessions).
      tr->record(obs::Ev::link_queue_drop, simulator_.now(), obs_track(),
                 static_cast<std::uint32_t>(packet->seq), 0,
                 static_cast<float>(packet->session));
    }
    return;  // handle dies here; packet returns to the pool
  }
  if (tr != nullptr) {
    const auto track = obs_track();
    tr->record(obs::Ev::link_tx, simulator_.now(), track,
               static_cast<std::uint32_t>(packet->seq), 0,
               static_cast<float>(packet->session));
    tr->record(obs::Ev::link_queue_depth, simulator_.now(), track, 0, 0,
               static_cast<float>(queue_depth_ + 1));
  }
  ++queue_depth_;
  ++stats_.in_flight;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_depth_);

  const double serialization =
      bytes_to_bits(static_cast<double>(packet->size_bytes)) / config_.rate_bps;
  const Time start = std::max(simulator_.now(), free_at_);
  const Time departure = start + serialization;
  free_at_ = departure;
  stats_.busy_time_s += serialization;
  stats_.bytes_sent += static_cast<double>(packet->size_bytes);

  simulator_.at(departure, [this, p = std::move(packet)]() mutable {
    depart(std::move(p));
  });
}

bool Link::draw_loss() {
  if (!config_.burst_loss.has_value()) {
    return rng_.bernoulli(config_.loss_rate);
  }
  const BurstLoss& burst = *config_.burst_loss;
  if (in_bad_state_) {
    if (rng_.bernoulli(burst.p_exit_bad)) in_bad_state_ = false;
  } else {
    if (rng_.bernoulli(burst.p_enter_bad)) in_bad_state_ = true;
  }
  return rng_.bernoulli(in_bad_state_ ? burst.loss_bad : config_.loss_rate);
}

void Link::set_loss_rate(double loss_rate) {
  if (loss_rate < 0.0 || loss_rate > 1.0) {
    throw std::invalid_argument("set_loss_rate: not in [0,1]");
  }
  config_.loss_rate = loss_rate;
}

void Link::set_prop_delay(double delay_s) {
  if (delay_s < 0.0) throw std::invalid_argument("set_prop_delay: negative");
  config_.prop_delay_s = delay_s;
}

void Link::set_rate(double rate_bps) {
  if (rate_bps <= 0.0) throw std::invalid_argument("set_rate: must be > 0");
  config_.rate_bps = rate_bps;
}

void Link::depart(PooledPacket packet) {
  --queue_depth_;
  if (draw_loss()) {
    ++stats_.loss_drops;
    --stats_.in_flight;
    if (obs::TraceRecorder* tr = simulator_.obs().trace) {
      tr->record(obs::Ev::link_loss_drop, simulator_.now(), obs_track(),
                 static_cast<std::uint32_t>(packet->seq), 0,
                 static_cast<float>(packet->session));
    }
    return;  // erased in transit; handle returns the packet to the pool
  }
  double delay = config_.prop_delay_s;
  if (config_.extra_delay) delay += config_.extra_delay->sample(rng_);
  Time arrival = simulator_.now() + delay;
  if (config_.preserve_order) {
    arrival = std::max(arrival, last_arrival_);
    last_arrival_ = arrival;
  }
  simulator_.at(arrival, [this, p = std::move(packet)]() mutable {
    ++stats_.delivered;
    --stats_.in_flight;
    if (obs::TraceRecorder* tr = simulator_.obs().trace) {
      tr->record(obs::Ev::link_deliver, simulator_.now(), obs_track(),
                 static_cast<std::uint32_t>(p->seq), 0,
                 static_cast<float>(p->session));
    }
    if (receiver_) receiver_(std::move(p));
  });
}

double Link::utilization() const {
  const Time elapsed = simulator_.now();
  return elapsed > 0.0 ? stats_.busy_time_s / elapsed : 0.0;
}

}  // namespace dmc::sim
