// Unidirectional point-to-point link: finite transmission rate
// (serialization delay), fixed propagation delay, optional random extra
// delay (the shifted-gamma jitter of Experiment 2), Bernoulli packet
// erasure, and a finite drop-tail queue. Queueing delay therefore *emerges*
// when a link runs near capacity, which is the effect Experiment 1 guards
// against with conservative delay estimates.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sim/packet.h"
#include "sim/simulator.h"
#include "stats/distributions.h"

namespace dmc::sim {

// Two-state Markov (Gilbert-Elliott) burst-loss model. The chain steps once
// per packet; in the bad state packets are lost with `loss_bad`, in the good
// state with the link's base loss_rate. The stationary loss rate is
//   pi_bad = p_enter_bad / (p_enter_bad + p_exit_bad)
//   loss   = (1 - pi_bad) * loss_rate + pi_bad * loss_bad,
// so bursts can be added while holding the average fixed — the correlated-
// loss regime of Section IX-B / Bolot [31].
struct BurstLoss {
  double p_enter_bad = 0.0;  // P(good -> bad) per packet
  double p_exit_bad = 1.0;   // P(bad -> good) per packet
  double loss_bad = 1.0;     // erasure probability while in the bad state
};

struct LinkConfig {
  double rate_bps = 0.0;        // transmission (serialization) rate, > 0
  double prop_delay_s = 0.0;    // fixed one-way propagation delay
  double loss_rate = 0.0;       // i.i.d. packet erasure probability
  // Optional correlated-loss overlay; when set, loss_rate applies in the
  // good state and BurstLoss governs the bad state.
  std::optional<BurstLoss> burst_loss = std::nullopt;
  std::size_t queue_capacity = 100;  // packets awaiting transmission
  // Optional per-packet random delay added on top of prop_delay_s; models
  // d = eta + X with prop_delay_s = eta and extra_delay = X (Section VI-B).
  stats::DelayDistributionPtr extra_delay = nullptr;
  // Real single-route paths are FIFO: delay jitter comes from queueing and
  // never reorders packets. When true (default), a sampled arrival time is
  // clamped to be no earlier than the previous packet's arrival, preserving
  // the paper's "per-path packet re-ordering is a relatively unlikely
  // event" assumption (Section VIII-D). Set false to model multi-route
  // paths that genuinely reorder.
  bool preserve_order = true;
};

struct LinkStats {
  std::uint64_t offered = 0;       // packets handed to send()
  std::uint64_t queue_drops = 0;   // dropped: queue full
  std::uint64_t loss_drops = 0;    // dropped: Bernoulli erasure
  std::uint64_t delivered = 0;     // handed to the receiver callback
  double bytes_sent = 0.0;
  double busy_time_s = 0.0;        // total serialization time
  std::size_t max_queue_depth = 0;

  // Conservation invariant used by the session-teardown regression tests:
  // every accepted packet is eventually delivered or dropped, never lost to
  // bookkeeping. `in_flight` is the gauge of accepted-but-unresolved packets
  // (queued or propagating), so at any instant
  //   offered == queue_drops + loss_drops + delivered + in_flight
  // and in_flight == 0 once the simulator drains.
  std::uint64_t in_flight = 0;
  bool conserved() const {
    return offered == queue_drops + loss_drops + delivered + in_flight;
  }
};

class Link {
 public:
  // dmc-lint: allow(alloc-function) installed once at wiring time
  using Receiver = std::function<void(PooledPacket)>;

  Link(Simulator& simulator, LinkConfig config, std::string name);

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  // Hands a packet to the link. Drops silently (recorded in stats) when the
  // queue is full, like a drop-tail router queue; dropped packets return to
  // the pool as the handle dies.
  void send(PooledPacket packet);

  const LinkConfig& config() const { return config_; }
  const LinkStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  std::size_t queue_depth() const { return queue_depth_; }

  // Mean utilization so far: busy time / elapsed time.
  double utilization() const;

  // Live reconfiguration (time-varying conditions; the adaptive controller
  // is expected to notice through its estimators, not through these).
  void set_loss_rate(double loss_rate);
  void set_prop_delay(double delay_s);
  void set_rate(double rate_bps);

 private:
  void depart(PooledPacket packet);
  bool draw_loss();
  // Resolves (and caches) this link's trace track; allocation happens on
  // the first traced event only.
  std::uint16_t obs_track();

  Simulator& simulator_;
  LinkConfig config_;
  std::string name_;
  Receiver receiver_;
  LinkStats stats_;
  stats::Rng rng_;          // per-link stream (loss + jitter draws)
  Time free_at_ = 0.0;      // when the transmitter finishes its backlog
  Time last_arrival_ = 0.0; // FIFO clamp for jittered arrivals
  std::size_t queue_depth_ = 0;
  bool in_bad_state_ = false;  // Gilbert-Elliott state
  std::uint16_t obs_track_ = 0xFFFF;  // lazily resolved trace track
};

}  // namespace dmc::sim
