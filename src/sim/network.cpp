#include "sim/network.h"

#include <stdexcept>
#include <utility>

namespace dmc::sim {

PathConfig symmetric_path(LinkConfig both_directions, std::string name) {
  PathConfig path;
  path.forward = both_directions;
  path.reverse = std::move(both_directions);
  path.name = std::move(name);
  return path;
}

Network::Network(Simulator& simulator, std::vector<PathConfig> paths) {
  if (paths.empty()) {
    throw std::invalid_argument("Network: need at least one path");
  }
  forward_.reserve(paths.size());
  reverse_.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::string base =
        paths[i].name.empty() ? ("path" + std::to_string(i)) : paths[i].name;
    forward_.push_back(std::make_unique<Link>(
        simulator, std::move(paths[i].forward), base + "/fwd"));
    reverse_.push_back(std::make_unique<Link>(
        simulator, std::move(paths[i].reverse), base + "/rev"));
  }
}

void Network::set_server_receiver(Receiver receiver) {
  for (std::size_t i = 0; i < forward_.size(); ++i) {
    forward_[i]->set_receiver(
        [receiver, path = static_cast<int>(i)](PooledPacket packet) {
          receiver(path, std::move(packet));
        });
  }
}

void Network::set_client_receiver(Receiver receiver) {
  for (std::size_t i = 0; i < reverse_.size(); ++i) {
    reverse_[i]->set_receiver(
        [receiver, path = static_cast<int>(i)](PooledPacket packet) {
          receiver(path, std::move(packet));
        });
  }
}

void Network::client_send(int path, PooledPacket packet) {
  packet->path = path;
  forward_.at(path)->send(std::move(packet));
}

void Network::server_send(int path, PooledPacket packet) {
  packet->path = path;
  reverse_.at(path)->send(std::move(packet));
}

}  // namespace dmc::sim
