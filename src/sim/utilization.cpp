#include "sim/utilization.h"

#include <algorithm>

namespace dmc::sim {

UtilizationMeter::UtilizationMeter(const Network& network, double min_window_s)
    : network_(network), min_window_s_(min_window_s) {
  const std::size_t n = network.num_paths();
  last_busy_s_.assign(n, 0.0);
  last_usage_.assign(n, PathUsage{});
  for (std::size_t i = 0; i < n; ++i) {
    last_usage_[i].residual_bps =
        network.forward_link(static_cast<int>(i)).config().rate_bps;
  }
}

std::vector<PathUsage> UtilizationMeter::sample(double now) {
  const double window = now - last_time_;
  if (window <= 0.0 || window < min_window_s_) return last_usage_;
  for (std::size_t i = 0; i < last_busy_s_.size(); ++i) {
    const Link& link = network_.forward_link(static_cast<int>(i));
    const double busy = link.stats().busy_time_s;
    PathUsage usage;
    usage.utilization = (busy - last_busy_s_[i]) / window;
    usage.footprint_bps = usage.utilization * link.config().rate_bps;
    usage.residual_bps =
        std::max(0.0, link.config().rate_bps - usage.footprint_bps);
    last_busy_s_[i] = busy;
    last_usage_[i] = usage;
  }
  window_start_ = last_time_;
  last_time_ = now;
  return last_usage_;
}

ResidualSummary UtilizationMeter::residual_summary(double now) {
  ResidualSummary summary;
  summary.paths = sample(now);
  summary.window_end_s = window_end();
  return summary;
}

}  // namespace dmc::sim
