// Windowed per-link utilization accounting for online admission control.
// The admission controller needs the *measured* footprint of in-flight
// sessions, not the cumulative since-t=0 average that Link::utilization()
// reports: a link that was idle for the first hour and is saturated now must
// read as saturated. The meter samples each link's cumulative busy-time
// counter and reports utilization over the interval since the previous
// sample, i.e. the footprint of whatever traffic is in flight right now.
#pragma once

#include <vector>

#include "sim/network.h"

namespace dmc::sim {

// Usage of one path's forward (data) link over the last sampling window.
struct PathUsage {
  // Fraction of the window the transmitter was busy. Can exceed 1: the link
  // books serialization time when a packet is *accepted*, so a burst that
  // fills the queue charges its whole backlog to the window it arrived in —
  // exactly the conservative reading an admission controller wants.
  double utilization = 0.0;
  double footprint_bps = 0.0;  // utilization * link rate
  double residual_bps = 0.0;   // link rate minus footprint, clamped >= 0
};

// One meter reading packaged for export: the per-path usage of the last
// window plus the instant that window closed. This is the unit the sharded
// server's reconciliation pass exchanges between shards — each shard samples
// its own replica's meter and publishes the result at every barrier.
struct ResidualSummary {
  std::vector<PathUsage> paths;
  // Traffic injected at or after this instant cannot be in the reading yet;
  // consumers use it to tell measured sessions from just-admitted ones.
  double window_end_s = 0.0;
};

class UtilizationMeter {
 public:
  // `min_window_s` guards against meaningless micro-windows: a sample less
  // than this after the previous one returns the previous reading instead of
  // measuring an interval too short to contain representative traffic.
  explicit UtilizationMeter(const Network& network, double min_window_s = 0.0);

  // Advances the window to `now` and returns per-path forward-link usage.
  // The first call measures from t = 0. A too-short window (below
  // min_window_s, including two samples at the same instant) returns the
  // previous reading instead of dividing by zero.
  std::vector<PathUsage> sample(double now);

  // sample(now) plus the closing instant, bundled for export.
  ResidualSummary residual_summary(double now);

  // The most recent reading without advancing the window.
  const std::vector<PathUsage>& last() const { return last_usage_; }

  // Start/end instants of the interval behind last(): traffic injected
  // after window_end() cannot be in the reading yet, which is how the
  // admission loop tells measured sessions from just-admitted ones.
  double window_start() const { return window_start_; }
  double window_end() const { return last_time_; }

 private:
  const Network& network_;
  double min_window_s_ = 0.0;
  double window_start_ = 0.0;
  double last_time_ = 0.0;
  std::vector<double> last_busy_s_;     // per path: cumulative busy time
  std::vector<PathUsage> last_usage_;
};

}  // namespace dmc::sim
