// Simulated packets. Mirrors the paper's Experiment setup: each data
// message is 1024 bytes including an application header with a creation
// timestamp and a sequence number; acknowledgments carry the encoded ack
// frame (protocol/ack.h) whose byte size determines their transmission time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace dmc::sim {

// 1024 bytes per message as in Section VII-A, header included.
inline constexpr std::size_t kDefaultMessageBytes = 1024;

struct Packet {
  // --- On-the-wire fields -------------------------------------------------
  std::uint64_t seq = 0;      // application sequence number
  Time created_at = 0.0;      // application-header timestamp
  std::uint8_t attempt = 0;   // which (re)transmission this is, 0-based
  bool is_ack = false;
  std::vector<std::uint8_t> ack_payload;  // encoded AckFrame when is_ack
  std::size_t size_bytes = kDefaultMessageBytes;

  // --- Simulation/tracing metadata (not transmitted) ----------------------
  int path = -1;               // path index the packet rides
  std::uint32_t session = 0;   // owning session in multi-session runs
  Time sent_at = 0.0;          // when the sender handed it to the link
};

}  // namespace dmc::sim
