// Simulated packets. Mirrors the paper's Experiment setup: each data
// message is 1024 bytes including an application header with a creation
// timestamp and a sequence number; acknowledgments carry the encoded ack
// frame (protocol/ack.h) whose byte size determines their transmission time.
//
// Packets are pool-backed: a PacketPool (owned by the Simulator) hands out
// PooledPacket handles over arena-resident Packet objects linked through an
// intrusive free list. Packets are pinned — neither copyable nor movable —
// and circulate through Link/Network by handle, so the steady-state data
// path performs no per-packet heap traffic. The ack payload is an inline
// buffer sized for the default ack frame, with a heap overflow (retained
// across pool reuse) for oversized frames.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/event_queue.h"

namespace dmc::sim {

// 1024 bytes per message as in Section VII-A, header included.
inline constexpr std::size_t kDefaultMessageBytes = 1024;

class PacketPool;
class PooledPacket;

// Byte buffer for encoded ack frames: frames up to kInlineBytes (the default
// 64-byte ack cap) live inline in the packet; larger ones use a heap buffer
// whose capacity survives release/acquire cycles, so even oversized-ack
// workloads stop allocating once every pooled packet has grown its buffer.
class AckPayload {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  AckPayload() = default;
  ~AckPayload() { delete[] overflow_; }
  AckPayload(const AckPayload&) = delete;
  AckPayload& operator=(const AckPayload&) = delete;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  void clear() { size_ = 0; }

  // Sets the payload length and returns the buffer to write it into.
  std::uint8_t* resize(std::size_t n) {
    if (n > kInlineBytes && n > overflow_cap_) grow(n);
    size_ = static_cast<std::uint32_t>(n);
    return data();
  }

  std::uint8_t* data() {
    return size_ <= kInlineBytes ? inline_ : overflow_;
  }
  const std::uint8_t* data() const {
    return size_ <= kInlineBytes ? inline_ : overflow_;
  }

  std::span<const std::uint8_t> view() const { return {data(), size_}; }

  void assign(std::span<const std::uint8_t> bytes) {
    std::uint8_t* dst = resize(bytes.size());
    for (std::size_t i = 0; i < bytes.size(); ++i) dst[i] = bytes[i];
  }

 private:
  void grow(std::size_t n) {
    delete[] overflow_;
    // dmc-lint: allow(alloc-new) oversized-ack escape hatch, cold path
    overflow_ = new std::uint8_t[n];
    overflow_cap_ = static_cast<std::uint32_t>(n);
  }

  std::uint32_t size_ = 0;
  std::uint32_t overflow_cap_ = 0;
  std::uint8_t* overflow_ = nullptr;
  std::uint8_t inline_[kInlineBytes];
};

struct Packet {
  Packet() = default;
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  // --- On-the-wire fields -------------------------------------------------
  std::uint64_t seq = 0;      // application sequence number
  Time created_at = 0.0;      // application-header timestamp
  std::uint8_t attempt = 0;   // which (re)transmission this is, 0-based
  bool is_ack = false;
  AckPayload ack_payload;     // encoded AckFrame when is_ack
  std::size_t size_bytes = kDefaultMessageBytes;

  // --- Simulation/tracing metadata (not transmitted) ----------------------
  int path = -1;               // path index the packet rides
  std::uint32_t session = 0;   // owning session in multi-session runs
  Time sent_at = 0.0;          // when the sender handed it to the link

 private:
  friend class PacketPool;
  friend class PooledPacket;
  PacketPool* pool_ = nullptr;   // owning pool, set once at arena creation
  Packet* next_free_ = nullptr;  // intrusive free list link
};

// Arena of pinned Packet objects with an intrusive free list. acquire()
// reuses a released packet when one exists and only touches the heap to
// grow the arena (amortised; stops once the in-flight population peaks).
class PacketPool {
 public:
  static constexpr std::size_t kChunkPackets = 256;

  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Acquires a packet reset to default field values. Defined after
  // PooledPacket, which it returns by value.
  PooledPacket acquire();

  std::size_t allocated() const { return chunks_.size() * kChunkPackets; }
  std::size_t in_use() const { return in_use_; }

 private:
  friend class PooledPacket;

  void release(Packet* p) {
    p->next_free_ = free_;
    free_ = p;
    --in_use_;
  }

  Packet* take();
  void grow();

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  Packet* free_ = nullptr;
  std::size_t in_use_ = 0;
};

// Move-only RAII handle over a pool packet: releases the packet back to its
// pool when destroyed. Word-sized, so it travels through event captures and
// receiver callbacks for free.
class PooledPacket {
 public:
  PooledPacket() = default;
  explicit PooledPacket(Packet* p) : p_(p) {}
  ~PooledPacket() { reset(); }

  PooledPacket(const PooledPacket&) = delete;
  PooledPacket& operator=(const PooledPacket&) = delete;
  PooledPacket(PooledPacket&& other) noexcept : p_(other.p_) {
    other.p_ = nullptr;
  }
  PooledPacket& operator=(PooledPacket&& other) noexcept {
    if (this != &other) {
      reset();
      p_ = other.p_;
      other.p_ = nullptr;
    }
    return *this;
  }

  explicit operator bool() const { return p_ != nullptr; }
  Packet* get() const { return p_; }
  Packet* operator->() const { return p_; }
  Packet& operator*() const { return *p_; }

  void reset() {
    if (p_ != nullptr) {
      p_->pool_->release(p_);
      p_ = nullptr;
    }
  }

 private:
  Packet* p_ = nullptr;
};

inline Packet* PacketPool::take() {
  if (free_ == nullptr) [[unlikely]] {
    grow();
  }
  Packet* p = free_;
  free_ = p->next_free_;
  ++in_use_;
  return p;
}

inline PooledPacket PacketPool::acquire() {
  Packet* p = take();
  p->seq = 0;
  p->created_at = 0.0;
  p->attempt = 0;
  p->is_ack = false;
  p->ack_payload.clear();
  p->size_bytes = kDefaultMessageBytes;
  p->path = -1;
  p->session = 0;
  p->sent_at = 0.0;
  return PooledPacket{p};
}

}  // namespace dmc::sim
