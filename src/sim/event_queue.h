// Time-ordered event queue for the discrete-event simulator. Events at the
// same timestamp execute in scheduling (FIFO) order, which keeps runs
// deterministic. Cancellation is O(1) via lazy deletion.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace dmc::sim {

using Time = double;  // seconds since simulation start

struct EventId {
  std::uint64_t value = 0;  // 0 means "no event"
  bool valid() const { return value != 0; }
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventId schedule(Time time, Callback callback);

  // Returns true if the event existed and had not yet run.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  // Time of the next live event; queue must not be empty.
  Time next_time();

  // Pops and returns the next live event's callback, advancing past any
  // cancelled entries. Queue must not be empty.
  std::pair<Time, Callback> pop();

 private:
  struct Entry {
    Time time = 0.0;
    std::uint64_t seq = 0;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void skip_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace dmc::sim
