// Time-ordered event queue for the discrete-event simulator. Events at the
// same timestamp execute in scheduling (FIFO) order, which keeps runs
// deterministic; ordering is the lexicographic (time, sequence) pair exactly
// as in the original binary-heap implementation.
//
// Storage is a two-level calendar queue (Brown, CACM 1988): a power-of-two
// ring of time buckets of equal width holds every event within the current
// horizon, and a binary min-heap catches far-future events until the cursor
// advances close enough to migrate them into the ring. Bucket width and
// count adapt to the live event population, so both microsecond-spaced
// packet events and second-spaced session arrivals hash to O(1) buckets.
//
// Callbacks are stored inline in the bucket entry itself: a small-buffer
// type-erasure with kInlineCallbackBytes of storage and a per-type static
// ops table (invoke/destroy/relocate). No std::function, no per-event node
// allocation, no per-event map — in steady state schedule/run_next touch
// only memory the queue already owns.
//
// Cancellation is O(1) through a generation-checked slot slab: an EventId
// names (slot index, generation); cancelling bumps the slot's generation so
// the entry is recognised as stale and swept when its bucket is scanned.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace dmc::sim {

using Time = double;  // seconds since simulation start

struct EventId {
  std::uint64_t value = 0;  // 0 means "no event"
  bool valid() const { return value != 0; }
};

class EventQueue {
 public:
  // Callables whose size fits here (and whose alignment is <= 16) live
  // inline in the calendar entry; larger ones fall back to one heap box.
  static constexpr std::size_t kInlineCallbackBytes = 48;

  EventQueue();
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  template <typename F>
  EventId schedule(Time time, F&& callback);

  // Returns true if the event existed and had not yet run.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  // Time of the next live event; queue must not be empty.
  Time next_time() const;

  // Executes the next live event's callback in place and returns its
  // timestamp. When `clock` is non-null it is set to that timestamp *before*
  // the callback runs, so the callback observes the event's own time.
  // Queue must not be empty.
  Time run_next(Time* clock = nullptr);

 private:
  // Per-callable-type operations; all pointers may assume `storage` holds a
  // constructed object of the erased type.
  struct Ops {
    void (*invoke_and_destroy)(void* storage);
    // nullptr when the type is trivially destructible.
    void (*destroy)(void* storage);
    // Move-construct at dst from src and destroy src; nullptr when a plain
    // memcpy of the storage bytes is a valid relocation.
    void (*relocate)(void* dst, void* src);
  };

  struct Entry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    const Ops* ops;
    alignas(16) unsigned char storage[kInlineCallbackBytes];
  };

  // Entries are manually relocated raw storage, never value-semantically
  // copied; buckets and the heap hold uninitialised arrays of them.
  struct Bucket {
    Entry* data = nullptr;
    std::uint32_t count = 0;
    std::uint32_t cap = 0;
  };

  struct Slot {
    std::uint32_t gen = 1;  // matches the live entry's gen, if any
    std::uint32_t next_free = kNoIndex;
  };

  static constexpr std::uint32_t kNoIndex = 0xffffffffu;
  static constexpr std::uint64_t kFarBucket = ~std::uint64_t{0};
  static constexpr std::size_t kMinBuckets = 256;
  static constexpr double kMinWidth = 1e-9;
  static constexpr double kMaxWidth = 1.0;

  template <typename Fn>
  struct InlineOps {
    static void invoke_and_destroy(void* s) {
      Fn* f = std::launder(reinterpret_cast<Fn*>(s));
      struct Guard {
        Fn* f;
        ~Guard() { f->~Fn(); }
      } guard{f};
      (*f)();
    }
    static void destroy(void* s) {
      std::launder(reinterpret_cast<Fn*>(s))->~Fn();
    }
    static void relocate(void* dst, void* src) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static constexpr Ops ops{
        &invoke_and_destroy,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroy,
        std::is_trivially_copyable_v<Fn> ? nullptr : &relocate};
  };

  template <typename Fn>
  struct BoxedOps {
    static Fn*& box(void* s) { return *std::launder(reinterpret_cast<Fn**>(s)); }
    static void invoke_and_destroy(void* s) {
      Fn* f = box(s);
      struct Guard {
        Fn* f;
        ~Guard() { delete f; }
      } guard{f};
      (*f)();
    }
    static void destroy(void* s) { delete box(s); }
    static constexpr Ops ops{&invoke_and_destroy, &destroy, nullptr};
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCallbackBytes && alignof(Fn) <= 16;
  }

  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Relocates a fully-constructed entry between raw storage locations.
  static void move_entry(Entry* dst, Entry* src) {
    dst->time = src->time;
    dst->seq = src->seq;
    dst->slot = src->slot;
    dst->gen = src->gen;
    dst->ops = src->ops;
    if (src->ops->relocate == nullptr) {
      std::memcpy(dst->storage, src->storage, kInlineCallbackBytes);
    } else {
      src->ops->relocate(dst->storage, src->storage);
    }
  }

  std::uint64_t bucket_index_of(Time t) const {
    const double scaled = t * inv_width_;
    // Guards the double->integer cast: times beyond ~2^53 buckets (and NaN)
    // are "far" by definition and belong in the heap.
    if (!(scaled < 9007199254740992.0)) return kFarBucket;
    if (scaled <= 0.0) return 0;
    return static_cast<std::uint64_t>(scaled);
  }

  bool stale(const Entry& e) const { return slots_[e.slot].gen != e.gen; }

  std::uint32_t acquire_slot();
  std::uint32_t grow_slots();
  void release_slot(std::uint32_t index) {
    Slot& slot = slots_[index];
    ++slot.gen;
    assert(slot.gen != 0 && "EventQueue: slot generation wrapped");
    slot.next_free = free_slot_;
    free_slot_ = index;
  }

  template <typename F>
  void construct_callback(Entry* entry, F&& callback);

  // Positions cursor_ on the bucket holding the earliest live event and
  // returns that event's index within the bucket. Sweeps cancelled entries
  // and migrates heap events as the cursor passes. Requires live_ > 0.
  std::uint32_t normalize();

  void advance_cursor() {
    ++cursor_;
    if (heap_min_bucket_ < cursor_ + num_buckets_) migrate_heap();
  }

  void jump_to_heap_front();
  void migrate_heap();
  void maybe_rebuild_for_heap_pressure();
  void rebuild();
  void grow_bucket(Bucket& bucket);
  Entry* heap_append();
  void heap_sift_last();
  void heap_remove_top();
  [[noreturn]] static void throw_empty(const char* what);

  static Entry* allocate_entries(std::size_t n);
  static void free_entries(Entry* p);

  // --- Calendar ring --------------------------------------------------------
  std::vector<Bucket> buckets_;
  std::uint64_t num_buckets_ = 0;  // == buckets_.size(), power of two
  std::uint64_t bucket_mask_ = 0;
  double width_ = 1e-6;  // bucket width in seconds
  double inv_width_ = 1e6;
  std::uint64_t cursor_ = 0;       // absolute index of the current bucket
  std::size_t wheel_entries_ = 0;  // entries in buckets (stale included)

  // --- Far-future heap ------------------------------------------------------
  Entry* heap_ = nullptr;
  std::size_t heap_size_ = 0;
  std::size_t heap_cap_ = 0;
  std::uint64_t heap_min_bucket_ = kFarBucket;  // bucket of heap_[0]

  // --- Cancellation slab ----------------------------------------------------
  std::vector<Slot> slots_;
  std::uint32_t free_slot_ = kNoIndex;

  // --- Counters -------------------------------------------------------------
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::size_t ops_since_rebuild_ = 0;
  std::size_t heap_pushes_since_rebuild_ = 0;
};

template <typename F>
EventId EventQueue::schedule(Time time, F&& callback) {
  const std::uint64_t seq = next_seq_++;
  assert(next_seq_ != 0 && "EventQueue: event sequence counter wrapped");

  const std::uint32_t slot_index = acquire_slot();
  const std::uint32_t gen = slots_[slot_index].gen;
  ++ops_since_rebuild_;

  std::uint64_t b = bucket_index_of(time);
  if (b < cursor_) b = cursor_;  // floating-point jitter: run "now"
  Entry* entry;
  bool in_heap;
  if (b - cursor_ < num_buckets_) {
    in_heap = false;
    Bucket& bucket = buckets_[b & bucket_mask_];
    if (bucket.count == bucket.cap) [[unlikely]] {
      grow_bucket(bucket);
    }
    entry = &bucket.data[bucket.count++];
    ++wheel_entries_;
  } else {
    in_heap = true;
    entry = heap_append();
  }
  entry->time = time;
  entry->seq = seq;
  entry->slot = slot_index;
  entry->gen = gen;
  construct_callback(entry, std::forward<F>(callback));
  ++live_;

  if (in_heap) {
    heap_sift_last();
    ++heap_pushes_since_rebuild_;
    if (heap_pushes_since_rebuild_ > 32 &&
        heap_size_ > 2 * (wheel_entries_ + 1)) [[unlikely]] {
      maybe_rebuild_for_heap_pressure();
    }
  } else if (live_ > 2 * num_buckets_) [[unlikely]] {
    rebuild();
  }
  return EventId{((static_cast<std::uint64_t>(slot_index) + 1) << 32) | gen};
}

template <typename F>
void EventQueue::construct_callback(Entry* entry, F&& callback) {
  using Fn = std::decay_t<F>;
  if constexpr (fits_inline<Fn>()) {
    ::new (static_cast<void*>(entry->storage)) Fn(std::forward<F>(callback));
    entry->ops = &InlineOps<Fn>::ops;
  } else {
    // dmc-lint: allow(alloc-new) oversized-callable escape hatch; the
    // zero-alloc steady-state contract is pinned by test_zero_alloc
    Fn* boxed = new Fn(std::forward<F>(callback));
    std::memcpy(entry->storage, &boxed, sizeof(boxed));
    entry->ops = &BoxedOps<Fn>::ops;
  }
}

inline std::uint32_t EventQueue::acquire_slot() {
  const std::uint32_t index = free_slot_;
  if (index == kNoIndex) [[unlikely]] {
    return grow_slots();
  }
  free_slot_ = slots_[index].next_free;
  return index;
}

inline Time EventQueue::run_next(Time* clock) {
  if (live_ == 0) [[unlikely]] {
    throw_empty("run_next");
  }
  const std::uint32_t best = normalize();
  Bucket& bucket = buckets_[cursor_ & bucket_mask_];
  Entry* entry = &bucket.data[best];
  const Time time = entry->time;

  // Recycle the slot before invoking: the running event can no longer be
  // cancelled (cancel of its id returns false, as with the old queue), and
  // the callback may schedule new events that reuse the slot.
  release_slot(entry->slot);

  // The callback may schedule into this very bucket and reallocate its
  // storage, so move the callable out before removing the entry.
  const Ops* ops = entry->ops;
  alignas(16) unsigned char scratch[kInlineCallbackBytes];
  if (ops->relocate == nullptr) {
    std::memcpy(scratch, entry->storage, kInlineCallbackBytes);
  } else {
    ops->relocate(scratch, entry->storage);
  }
  --bucket.count;
  if (best != bucket.count) move_entry(entry, &bucket.data[bucket.count]);
  --wheel_entries_;
  --live_;

  if (clock != nullptr) *clock = time;
  ops->invoke_and_destroy(scratch);
  return time;
}

inline std::uint32_t EventQueue::normalize() {
  for (;;) {
    if (wheel_entries_ == 0) [[unlikely]] {
      jump_to_heap_front();
    }
    Bucket& bucket = buckets_[cursor_ & bucket_mask_];
    std::uint32_t n = bucket.count;
    std::uint32_t best = kNoIndex;
    std::uint32_t i = 0;
    while (i < n) {
      Entry& e = bucket.data[i];
      if (stale(e)) [[unlikely]] {
        if (e.ops->destroy != nullptr) e.ops->destroy(e.storage);
        --n;
        if (i != n) move_entry(&e, &bucket.data[n]);
        continue;  // re-examine the entry swapped into position i
      }
      if (best == kNoIndex || entry_less(e, bucket.data[best])) best = i;
      ++i;
    }
    wheel_entries_ -= bucket.count - n;
    bucket.count = n;
    if (best != kNoIndex) return best;
    advance_cursor();
  }
}

}  // namespace dmc::sim
