// Discrete-event simulation kernel: a clock, an event queue, a packet pool,
// and a seeded random stream. This is the substrate that stands in for ns-3
// in the paper's evaluation (Section VII-A); see DESIGN.md for the
// substitution rationale.
#pragma once

#include <cstdint>
#include <utility>

#include "obs/hub.h"
#include "sim/event_queue.h"
#include "sim/packet.h"
#include "stats/rng.h"

namespace dmc::sim {

class Simulator {
 public:
  // The hub carries non-owning observability pointers (obs/hub.h); the
  // default empty hub keeps every instrumentation site a single dead
  // branch. The registry/recorder must outlive the simulator.
  explicit Simulator(std::uint64_t seed = 1, dmc::obs::Hub obs = {})
      : obs_(obs), rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `callback` at absolute time `t` (must be >= now()).
  template <typename F>
  EventId at(Time t, F&& callback) {
    if (t < now_) [[unlikely]] {
      throw_past(t);
    }
    return queue_.schedule(t, std::forward<F>(callback));
  }

  // Schedules `callback` `dt` seconds from now (dt >= 0).
  template <typename F>
  EventId in(Time dt, F&& callback) {
    return at(now_ + dt, std::forward<F>(callback));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs until the event queue drains.
  void run() {
    while (!queue_.empty()) {
      queue_.run_next(&now_);
      ++events_executed_;
    }
  }

  // Runs events with time <= `t`, then sets the clock to `t`.
  void run_until(Time t) {
    while (!queue_.empty() && queue_.next_time() <= t) {
      queue_.run_next(&now_);
      ++events_executed_;
    }
    if (now_ < t) now_ = t;
  }

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t events_pending() const { return queue_.size(); }

  // Arena behind every packet circulating in this simulation.
  PacketPool& packets() { return packets_; }

  stats::Rng& rng() { return rng_; }

  // Observability attachment point shared by every component holding this
  // simulator (links, protocol endpoints, the server loop).
  const dmc::obs::Hub& obs() const { return obs_; }
  void set_obs(dmc::obs::Hub obs) { obs_ = obs; }

 private:
  [[noreturn]] void throw_past(Time t) const;

  dmc::obs::Hub obs_;
  Time now_ = 0.0;
  // The pool must outlive the queue: pending events may hold PooledPacket
  // handles that release into the pool on destruction.
  PacketPool packets_;
  EventQueue queue_;
  stats::Rng rng_;
  std::uint64_t events_executed_ = 0;
};

}  // namespace dmc::sim
