// Discrete-event simulation kernel: a clock, an event queue, and a seeded
// random stream. This is the substrate that stands in for ns-3 in the
// paper's evaluation (Section VII-A); see DESIGN.md for the substitution
// rationale.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "stats/rng.h"

namespace dmc::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `callback` at absolute time `t` (must be >= now()).
  EventId at(Time t, EventQueue::Callback callback);

  // Schedules `callback` `dt` seconds from now (dt >= 0).
  EventId in(Time dt, EventQueue::Callback callback) {
    return at(now_ + dt, std::move(callback));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs until the event queue drains.
  void run();

  // Runs events with time <= `t`, then sets the clock to `t`.
  void run_until(Time t);

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t events_pending() const { return queue_.size(); }

  stats::Rng& rng() { return rng_; }

 private:
  Time now_ = 0.0;
  EventQueue queue_;
  stats::Rng rng_;
  std::uint64_t events_executed_ = 0;
};

}  // namespace dmc::sim
