#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dmc::sim {

EventQueue::EventQueue() {
  buckets_.resize(kMinBuckets);
  num_buckets_ = kMinBuckets;
  bucket_mask_ = kMinBuckets - 1;
  slots_.reserve(kMinBuckets);
}

EventQueue::~EventQueue() {
  // Destroy every still-constructed callback: live entries and lazily
  // cancelled ones alike (cancellation only bumps the slot generation).
  for (Bucket& bucket : buckets_) {
    for (std::uint32_t i = 0; i < bucket.count; ++i) {
      Entry& e = bucket.data[i];
      if (e.ops->destroy != nullptr) e.ops->destroy(e.storage);
    }
    free_entries(bucket.data);
  }
  for (std::size_t i = 0; i < heap_size_; ++i) {
    Entry& e = heap_[i];
    if (e.ops->destroy != nullptr) e.ops->destroy(e.storage);
  }
  free_entries(heap_);
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint64_t index = (id.value >> 32) - 1;
  if (index >= slots_.size()) return false;
  const auto gen = static_cast<std::uint32_t>(id.value);
  if (slots_[index].gen != gen) return false;
  // The entry stays where it is and is swept (callback destroyed) when its
  // bucket is next scanned; only the identity dies here.
  release_slot(static_cast<std::uint32_t>(index));
  --live_;
  return true;
}

Time EventQueue::next_time() const {
  if (live_ == 0) throw_empty("next_time");
  // Logically const: sweeping cancelled entries and advancing the cursor to
  // the first live event changes no observable ordering.
  auto* self = const_cast<EventQueue*>(this);
  const std::uint32_t best = self->normalize();
  return buckets_[cursor_ & bucket_mask_].data[best].time;
}

void EventQueue::jump_to_heap_front() {
  // The wheel is empty, so every live event sits in the heap; discard stale
  // heap tops, then jump the cursor straight to the first event's bucket.
  while (heap_size_ > 0 && stale(heap_[0])) {
    Entry& top = heap_[0];
    if (top.ops->destroy != nullptr) top.ops->destroy(top.storage);
    heap_remove_top();
  }
  assert(heap_size_ > 0 && "normalize with no live events");
  const std::uint64_t b = heap_min_bucket_;
  if (b != kFarBucket && b > cursor_) cursor_ = b;
  migrate_heap();
  // If even the front event hashes beyond 2^53 buckets (e.g. a timer at
  // +infinity), pull it into the current bucket directly: ordering is
  // preserved because bucket scans select the full (time, seq) minimum.
  while (wheel_entries_ == 0 && heap_size_ > 0) {
    Bucket& bucket = buckets_[cursor_ & bucket_mask_];
    if (bucket.count == bucket.cap) grow_bucket(bucket);
    move_entry(&bucket.data[bucket.count++], &heap_[0]);
    ++wheel_entries_;
    heap_remove_top();
  }
}

void EventQueue::migrate_heap() {
  // Pull every heap event whose bucket now falls within the wheel horizon.
  while (heap_size_ > 0) {
    Entry& top = heap_[0];
    if (stale(top)) {
      if (top.ops->destroy != nullptr) top.ops->destroy(top.storage);
      heap_remove_top();
      continue;
    }
    std::uint64_t b = heap_min_bucket_;
    if (b - cursor_ >= num_buckets_ && b >= cursor_) break;
    if (b < cursor_) b = cursor_;
    Bucket& bucket = buckets_[b & bucket_mask_];
    if (bucket.count == bucket.cap) grow_bucket(bucket);
    move_entry(&bucket.data[bucket.count++], &top);
    ++wheel_entries_;
    heap_remove_top();
  }
}

void EventQueue::maybe_rebuild_for_heap_pressure() {
  // Most schedules are bypassing the wheel: the bucket width no longer
  // matches the workload's event spacing. Rebuilding is O(live), so demand
  // at least that many schedules since the last rebuild (amortised O(1)).
  if (ops_since_rebuild_ > live_) rebuild();
}

void EventQueue::rebuild() {
  // Collect every still-live entry, destroying cancelled ones.
  const std::size_t total = wheel_entries_ + heap_size_;
  Entry* collected = allocate_entries(total);
  std::size_t m = 0;
  for (Bucket& bucket : buckets_) {
    for (std::uint32_t i = 0; i < bucket.count; ++i) {
      Entry& e = bucket.data[i];
      if (stale(e)) {
        if (e.ops->destroy != nullptr) e.ops->destroy(e.storage);
      } else {
        move_entry(&collected[m++], &e);
      }
    }
    bucket.count = 0;
  }
  for (std::size_t i = 0; i < heap_size_; ++i) {
    Entry& e = heap_[i];
    if (stale(e)) {
      if (e.ops->destroy != nullptr) e.ops->destroy(e.storage);
    } else {
      move_entry(&collected[m++], &e);
    }
  }
  heap_size_ = 0;
  heap_min_bucket_ = kFarBucket;
  wheel_entries_ = 0;
  assert(m == live_ && "rebuild lost track of live events");

  // Size the ring to the live population and spread its observed span over
  // it, so the common case lands every event within the horizon.
  std::uint64_t n = kMinBuckets;
  while (n < m) n <<= 1;
  if (n != num_buckets_) {
    for (Bucket& bucket : buckets_) free_entries(bucket.data);
    buckets_.assign(n, Bucket{});
    num_buckets_ = n;
    bucket_mask_ = n - 1;
  }
  Time min_time = 0.0;
  Time max_finite = 0.0;
  bool have_any = false;
  bool have_finite = false;
  for (std::size_t i = 0; i < m; ++i) {
    const Time t = collected[i].time;
    if (!have_any || t < min_time) min_time = t;
    have_any = true;
    if (t < 1e18) {
      if (!have_finite || t > max_finite) max_finite = t;
      have_finite = true;
    }
  }
  if (have_finite && max_finite > min_time) {
    const double span = max_finite - min_time;
    width_ = std::clamp(span / static_cast<double>(n), kMinWidth, kMaxWidth);
    inv_width_ = 1.0 / width_;
  }
  if (have_any) {
    const std::uint64_t b = bucket_index_of(min_time);
    cursor_ = b == kFarBucket ? cursor_ : b;
  }

  for (std::size_t i = 0; i < m; ++i) {
    Entry& e = collected[i];
    std::uint64_t b = bucket_index_of(e.time);
    if (b < cursor_) b = cursor_;
    if (b - cursor_ < num_buckets_) {
      Bucket& bucket = buckets_[b & bucket_mask_];
      if (bucket.count == bucket.cap) grow_bucket(bucket);
      move_entry(&bucket.data[bucket.count++], &e);
      ++wheel_entries_;
    } else {
      move_entry(heap_append(), &e);
      heap_sift_last();
    }
  }
  free_entries(collected);
  ops_since_rebuild_ = 0;
  heap_pushes_since_rebuild_ = 0;
}

void EventQueue::grow_bucket(Bucket& bucket) {
  const std::uint32_t cap = bucket.cap == 0 ? 4 : bucket.cap * 2;
  Entry* data = allocate_entries(cap);
  for (std::uint32_t i = 0; i < bucket.count; ++i) {
    move_entry(&data[i], &bucket.data[i]);
  }
  free_entries(bucket.data);
  bucket.data = data;
  bucket.cap = cap;
}

std::uint32_t EventQueue::grow_slots() {
  const std::size_t index = slots_.size();
  if (index >= kNoIndex) {
    throw std::length_error("EventQueue: slot slab exhausted");
  }
  slots_.push_back(Slot{});
  return static_cast<std::uint32_t>(index);
}

EventQueue::Entry* EventQueue::heap_append() {
  if (heap_size_ == heap_cap_) {
    const std::size_t cap = heap_cap_ == 0 ? 16 : heap_cap_ * 2;
    Entry* data = allocate_entries(cap);
    for (std::size_t i = 0; i < heap_size_; ++i) {
      move_entry(&data[i], &heap_[i]);
    }
    free_entries(heap_);
    heap_ = data;
    heap_cap_ = cap;
  }
  return &heap_[heap_size_++];
}

void EventQueue::heap_sift_last() {
  std::size_t i = heap_size_ - 1;
  if (i > 0) {
    alignas(Entry) unsigned char hole[sizeof(Entry)];
    Entry* moving = reinterpret_cast<Entry*>(hole);
    move_entry(moving, &heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!entry_less(*moving, heap_[parent])) break;
      move_entry(&heap_[i], &heap_[parent]);
      i = parent;
    }
    move_entry(&heap_[i], moving);
  }
  if (i == 0) heap_min_bucket_ = bucket_index_of(heap_[0].time);
}

void EventQueue::heap_remove_top() {
  --heap_size_;
  if (heap_size_ == 0) {
    heap_min_bucket_ = kFarBucket;
    return;
  }
  alignas(Entry) unsigned char hole[sizeof(Entry)];
  Entry* moving = reinterpret_cast<Entry*>(hole);
  move_entry(moving, &heap_[heap_size_]);
  std::size_t i = 0;
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_size_) break;
    if (child + 1 < heap_size_ && entry_less(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!entry_less(heap_[child], *moving)) break;
    move_entry(&heap_[i], &heap_[child]);
    i = child;
  }
  move_entry(&heap_[i], moving);
  heap_min_bucket_ = bucket_index_of(heap_[0].time);
}

void EventQueue::throw_empty(const char* what) {
  throw std::logic_error(std::string("EventQueue::") + what + " on empty");
}

EventQueue::Entry* EventQueue::allocate_entries(std::size_t n) {
  if (n == 0) return nullptr;
  return static_cast<Entry*>(
      // dmc-lint: allow(alloc-new) cold-path arena growth, amortized to zero
      ::operator new(n * sizeof(Entry), std::align_val_t{alignof(Entry)}));
}

void EventQueue::free_entries(Entry* p) {
  if (p != nullptr) {
    ::operator delete(p, std::align_val_t{alignof(Entry)});
  }
}

}  // namespace dmc::sim
