#include "sim/event_queue.h"

#include <stdexcept>

namespace dmc::sim {

EventId EventQueue::schedule(Time time, Callback callback) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{time, seq});
  callbacks_.emplace(seq, std::move(callback));
  ++live_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto erased = callbacks_.erase(id.value);
  if (erased > 0) {
    --live_;
    return true;
  }
  return false;
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

Time EventQueue::next_time() {
  skip_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty");
  return heap_.top().time;
}

std::pair<Time, EventQueue::Callback> EventQueue::pop() {
  skip_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty");
  const Entry entry = heap_.top();
  heap_.pop();
  auto node = callbacks_.extract(entry.seq);
  --live_;
  return {entry.time, std::move(node.mapped())};
}

}  // namespace dmc::sim
