#include "sim/simulator.h"

#include <stdexcept>
#include <string>

namespace dmc::sim {

void Simulator::throw_past(Time t) const {
  throw std::invalid_argument("Simulator::at: time " + std::to_string(t) +
                              " is in the past (now=" + std::to_string(now_) +
                              ")");
}

}  // namespace dmc::sim
