#include "sim/simulator.h"

#include <stdexcept>
#include <string>

namespace dmc::sim {

EventId Simulator::at(Time t, EventQueue::Callback callback) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::at: time " + std::to_string(t) +
                                " is in the past (now=" +
                                std::to_string(now_) + ")");
  }
  return queue_.schedule(t, std::move(callback));
}

void Simulator::run() {
  while (!queue_.empty()) {
    auto [time, callback] = queue_.pop();
    now_ = time;
    callback();
    ++events_executed_;
  }
}

void Simulator::run_until(Time t) {
  while (!queue_.empty() && queue_.next_time() <= t) {
    auto [time, callback] = queue_.pop();
    now_ = time;
    callback();
    ++events_executed_;
  }
  if (now_ < t) now_ = t;
}

}  // namespace dmc::sim
