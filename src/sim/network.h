// A client and a server joined by n independent bidirectional paths, each a
// pair of unidirectional links. This reproduces the paper's Experiment
// setup: "multiple UDP sockets between two network nodes ... associated with
// different devices communicating in pairs over a point-to-point channel"
// (Section VII-A). Path i's forward link carries data, its reverse link
// carries acknowledgments.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/link.h"
#include "sim/packet.h"
#include "sim/simulator.h"

namespace dmc::sim {

struct PathConfig {
  LinkConfig forward;   // client -> server (data)
  LinkConfig reverse;   // server -> client (acks)
  std::string name;
};

// Builds a symmetric path: the reverse link mirrors the forward link's
// characteristics, matching a bidirectional point-to-point channel.
PathConfig symmetric_path(LinkConfig both_directions, std::string name);

class Network {
 public:
  // Receiver callbacks get the path index the packet arrived on.
  // dmc-lint: allow(alloc-function) installed once at wiring time
  using Receiver = std::function<void(int path, PooledPacket)>;

  Network(Simulator& simulator, std::vector<PathConfig> paths);

  std::size_t num_paths() const { return forward_.size(); }

  void set_server_receiver(Receiver receiver);
  void set_client_receiver(Receiver receiver);

  void client_send(int path, PooledPacket packet);
  void server_send(int path, PooledPacket packet);

  Link& forward_link(int path) { return *forward_.at(path); }
  Link& reverse_link(int path) { return *reverse_.at(path); }
  const Link& forward_link(int path) const { return *forward_.at(path); }
  const Link& reverse_link(int path) const { return *reverse_.at(path); }

 private:
  std::vector<std::unique_ptr<Link>> forward_;
  std::vector<std::unique_ptr<Link>> reverse_;
};

}  // namespace dmc::sim
