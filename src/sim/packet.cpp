#include "sim/packet.h"

namespace dmc::sim {

void PacketPool::grow() {
  auto chunk = std::make_unique<Packet[]>(kChunkPackets);
  for (std::size_t i = 0; i < kChunkPackets; ++i) {
    chunk[i].pool_ = this;
    chunk[i].next_free_ = free_;
    free_ = &chunk[i];
  }
  chunks_.push_back(std::move(chunk));
}

}  // namespace dmc::sim
