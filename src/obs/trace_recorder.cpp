#include "obs/trace_recorder.h"

#include <stdexcept>

namespace dmc::obs {

TraceRecorder::TraceRecorder(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceRecorder: zero capacity");
  }
  ring_.resize(capacity);
}

std::uint16_t TraceRecorder::track(std::string_view name) {
  const auto it = track_index_.find(std::string(name));
  if (it != track_index_.end()) return it->second;
  if (tracks_.size() >= kNoTrack) {
    throw std::length_error("TraceRecorder: track table full");
  }
  const auto id = static_cast<std::uint16_t>(tracks_.size());
  tracks_.emplace_back(name);
  track_index_.emplace(tracks_.back(), id);
  return id;
}

std::uint16_t TraceRecorder::session_track(std::uint32_t session_id) {
  return track("session " + std::to_string(session_id));
}

std::uint16_t TraceRecorder::link_track(std::string_view link_name) {
  return track("link " + std::string(link_name));
}

TraceData to_trace_data(const TraceRecorder& recorder) {
  TraceData data;
  data.tracks = recorder.track_names();
  data.dropped = recorder.dropped();
  data.events.reserve(recorder.size());
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    data.events.push_back(recorder.event(i));
  }
  return data;
}

}  // namespace dmc::obs
