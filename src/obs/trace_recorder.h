// Flight-recorder event tracing: compact binary span/instant events in a
// preallocated ring buffer. Recording is a couple of stores into memory the
// recorder already owns — no allocation, no formatting, no I/O — so it can
// sit on the per-packet hot path. When the ring is full the oldest events
// are overwritten and counted in dropped(), classic flight-recorder
// semantics: the tail of a long run survives, and the exporter reports how
// much history was lost.
//
// Events carry simulated time, so two runs of the same seed produce the
// same event stream — the determinism tests compare simulation *results*
// with tracing on vs off, and the trace itself diffs cleanly too.
//
// Track registration (track()/session_track()) allocates and is meant for
// setup time or first-touch warm-up, mirroring MetricRegistry registration.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dmc::obs {

// One byte of event kind; the exporter maps each to a Chrome trace-event
// name + phase (instant / complete / counter).
enum class Ev : std::uint8_t {
  // Server admission state machine (server track / session tracks).
  session_admit = 0,
  session_reject,
  session_queue,
  session_expire,
  session_span,  // complete event: value = session duration (s)
  replan,
  // LP solver (lp track): value = warm pivots of the solve batch.
  lp_warm_solve,
  lp_cold_solve,
  // Protocol sender/receiver (session tracks): id = message sequence.
  msg_tx,
  msg_retx,
  msg_fast_retx,
  msg_ack,
  msg_gave_up,
  msg_deliver,
  msg_late,       // value = lateness beyond the deadline (s)
  msg_dup,
  msg_blackhole,  // plan assigned the message to the blackhole (never sent)
  // Link layer (link tracks): id = packet sequence, value = owning session
  // (exact through float for ids < 2^24 — the analysis join key).
  link_tx,
  link_queue_drop,
  link_loss_drop,
  link_deliver,
  // Counter samples: value carries the sampled level.
  link_queue_depth,
  event_queue_depth,
};

// One past the last Ev value; obs/analysis.cpp iterates the enum to build
// its name-to-type import table, so keep this in sync when adding events.
inline constexpr std::uint8_t kNumEvTypes =
    static_cast<std::uint8_t>(Ev::event_queue_depth) + 1;

// 24 bytes; the ring is a plain vector of these.
struct TraceEvent {
  double t = 0.0;            // simulated time (seconds)
  float value = 0.0F;        // duration / lateness / counter level
  std::uint32_t id = 0;      // message seq, request id, ...
  std::uint16_t track = 0;   // index into track_names()
  Ev type = Ev::session_admit;
  std::uint8_t arg = 0;      // small payload: path index, attempt, ...
};

class TraceRecorder {
 public:
  static constexpr std::uint16_t kNoTrack = 0xFFFF;

  explicit TraceRecorder(std::size_t capacity = std::size_t{1} << 20);

  // Registers (or looks up) a named track; allocation happens here, never
  // in record(). At most kNoTrack tracks.
  std::uint16_t track(std::string_view name);
  std::uint16_t session_track(std::uint32_t session_id);
  std::uint16_t link_track(std::string_view link_name);

  void record(Ev type, double t, std::uint16_t track, std::uint32_t id = 0,
              std::uint8_t arg = 0, float value = 0.0F) {
    TraceEvent& event = ring_[written_ % ring_.size()];
    event.t = t;
    event.value = value;
    event.id = id;
    event.track = track;
    event.type = type;
    event.arg = arg;
    ++written_;
  }

  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t recorded() const { return written_; }
  // Events lost to ring wraparound (oldest-first overwrite).
  std::uint64_t dropped() const {
    return written_ > ring_.size() ? written_ - ring_.size() : 0;
  }
  std::size_t size() const {
    return written_ < ring_.size() ? static_cast<std::size_t>(written_)
                                   : ring_.size();
  }
  // i-th surviving event in chronological order (0 = oldest retained).
  const TraceEvent& event(std::size_t i) const {
    const std::uint64_t base = dropped();
    return ring_[(base + i) % ring_.size()];
  }

  const std::vector<std::string>& track_names() const { return tracks_; }

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t written_ = 0;
  std::vector<std::string> tracks_;
  std::unordered_map<std::string, std::uint16_t> track_index_;
};

// A trace detached from its recorder: events in chronological order plus the
// track table and the wraparound loss count. Every trace consumer (the
// Chrome exporter, the deadline-miss analyzer) normalizes to this, which is
// also what the sharded server merges per-shard rings into.
struct TraceData {
  std::vector<TraceEvent> events;
  std::vector<std::string> tracks;
  std::uint64_t dropped = 0;
};

TraceData to_trace_data(const TraceRecorder& recorder);

}  // namespace dmc::obs
