#include "obs/export.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace dmc::obs {

// Shortest round-trip decimal (the fleet JSON convention); non-finite
// values become JSON null.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "null";
  return std::string(buffer, ptr);
}

std::string json_string(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

// Prometheus exposition renders doubles with full precision too, but +Inf
// spells differently than in JSON.
std::string prom_number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return json_number(value);
}

}  // namespace

EvInfo ev_info(Ev type) {
  switch (type) {
    case Ev::session_admit:
      return {"admit", 'i'};
    case Ev::session_reject:
      return {"reject", 'i'};
    case Ev::session_queue:
      return {"queue", 'i'};
    case Ev::session_expire:
      return {"expire", 'i'};
    case Ev::session_span:
      return {"session", 'X'};
    case Ev::replan:
      return {"replan", 'i'};
    case Ev::lp_warm_solve:
      return {"lp warm solve", 'i'};
    case Ev::lp_cold_solve:
      return {"lp cold solve", 'i'};
    case Ev::msg_tx:
      return {"tx", 'i'};
    case Ev::msg_retx:
      return {"retx", 'i'};
    case Ev::msg_fast_retx:
      return {"fast-retx", 'i'};
    case Ev::msg_ack:
      return {"ack", 'i'};
    case Ev::msg_gave_up:
      return {"gave-up", 'i'};
    case Ev::msg_deliver:
      return {"deliver", 'i'};
    case Ev::msg_late:
      return {"late", 'i'};
    case Ev::msg_dup:
      return {"dup", 'i'};
    case Ev::msg_blackhole:
      return {"blackhole", 'i'};
    case Ev::link_tx:
      return {"link-tx", 'i'};
    case Ev::link_queue_drop:
      return {"queue-drop", 'i'};
    case Ev::link_loss_drop:
      return {"loss-drop", 'i'};
    case Ev::link_deliver:
      return {"link-deliver", 'i'};
    case Ev::link_queue_depth:
      return {"queue depth", 'C'};
    case Ev::event_queue_depth:
      return {"event queue depth", 'C'};
  }
  return {"unknown", 'i'};
}

Snapshot Snapshot::from(const MetricRegistry& registry) {
  Snapshot snapshot;
  for (const MetricRegistry::Entry& entry : registry.entries()) {
    if (entry.wallclock) continue;  // host timing is not deterministic
    switch (entry.kind) {
      case MetricKind::counter:
        snapshot.counters.emplace_back(entry.name, entry.counter.value());
        break;
      case MetricKind::gauge:
        snapshot.gauges.emplace_back(entry.name, entry.gauge.value());
        break;
      case MetricKind::histogram: {
        const Histogram& h = entry.histogram;
        HistogramSnapshot hs;
        hs.name = entry.name;
        hs.count = h.count();
        hs.sum = h.sum();
        if (h.count() > 0) {
          hs.min = h.min_seen();
          hs.max = h.max_seen();
        }
        for (std::size_t i = 0; i < h.num_buckets(); ++i) {
          if (h.bucket_count(i) > 0) {
            hs.buckets.emplace_back(h.bucket_upper(i), h.bucket_count(i));
          }
        }
        snapshot.histograms.push_back(std::move(hs));
        break;
      }
    }
  }
  return snapshot;
}

Snapshot merge_snapshots(const std::vector<Snapshot>& snapshots) {
  Snapshot merged;
  std::unordered_map<std::string, std::size_t> counter_index;
  std::unordered_map<std::string, std::size_t> gauge_index;
  std::unordered_map<std::string, std::size_t> hist_index;
  for (const Snapshot& snapshot : snapshots) {
    for (const auto& [name, value] : snapshot.counters) {
      const auto [it, inserted] =
          counter_index.emplace(name, merged.counters.size());
      if (inserted) merged.counters.emplace_back(name, 0);
      merged.counters[it->second].second += value;
    }
    for (const auto& [name, value] : snapshot.gauges) {
      const auto [it, inserted] =
          gauge_index.emplace(name, merged.gauges.size());
      if (inserted) {
        merged.gauges.emplace_back(name, value);
      } else {
        merged.gauges[it->second].second =
            std::max(merged.gauges[it->second].second, value);
      }
    }
    for (const HistogramSnapshot& h : snapshot.histograms) {
      const auto [it, inserted] =
          hist_index.emplace(h.name, merged.histograms.size());
      if (inserted) {
        merged.histograms.push_back(h);
        continue;
      }
      HistogramSnapshot& m = merged.histograms[it->second];
      if (h.count > 0) {
        m.min = m.count > 0 ? std::min(m.min, h.min) : h.min;
        m.max = m.count > 0 ? std::max(m.max, h.max) : h.max;
      }
      m.count += h.count;
      m.sum += h.sum;
      // Both bucket lists are sorted by bound; merge-join, summing counts
      // where the bounds coincide (same HistogramOptions -> same grid).
      std::vector<std::pair<double, std::uint64_t>> buckets;
      buckets.reserve(m.buckets.size() + h.buckets.size());
      std::size_t a = 0;
      std::size_t b = 0;
      while (a < m.buckets.size() || b < h.buckets.size()) {
        if (b == h.buckets.size() ||
            (a < m.buckets.size() &&
             m.buckets[a].first < h.buckets[b].first)) {
          buckets.push_back(m.buckets[a++]);
        } else if (a == m.buckets.size() ||
                   h.buckets[b].first < m.buckets[a].first) {
          buckets.push_back(h.buckets[b++]);
        } else {
          buckets.emplace_back(m.buckets[a].first,
                               m.buckets[a].second + h.buckets[b].second);
          ++a;
          ++b;
        }
      }
      m.buckets = std::move(buckets);
    }
  }
  return merged;
}

std::string Snapshot::to_json() const {
  std::string out = "{\"schema\":\"";
  out += kObsSchema;
  out += "\",\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ',';
    out += json_string(counters[i].first);
    out += ':';
    out += std::to_string(counters[i].second);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out += ',';
    out += json_string(gauges[i].first);
    out += ':';
    out += json_number(gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i > 0) out += ',';
    out += json_string(h.name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += json_number(h.sum);
    if (h.count > 0) {
      out += ",\"min\":";
      out += json_number(h.min);
      out += ",\"max\":";
      out += json_number(h.max);
    }
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ',';
      out += '[';
      out += json_number(h.buckets[b].first);
      out += ',';
      out += std::to_string(h.buckets[b].second);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void write_prometheus(std::ostream& out, const MetricRegistry& registry) {
  for (const MetricRegistry::Entry& entry : registry.entries()) {
    out << "# HELP " << entry.name << " " << entry.help << "\n";
    switch (entry.kind) {
      case MetricKind::counter:
        out << "# TYPE " << entry.name << " counter\n";
        out << entry.name << " " << entry.counter.value() << "\n";
        break;
      case MetricKind::gauge:
        out << "# TYPE " << entry.name << " gauge\n";
        out << entry.name << " " << prom_number(entry.gauge.value()) << "\n";
        break;
      case MetricKind::histogram: {
        const Histogram& h = entry.histogram;
        out << "# TYPE " << entry.name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.num_buckets(); ++i) {
          cumulative += h.bucket_count(i);
          // Empty interior buckets are elided (le labels stay monotonic);
          // the +Inf bucket is mandatory and always written.
          if (h.bucket_count(i) == 0 && i + 1 < h.num_buckets()) continue;
          out << entry.name << "_bucket{le=\""
              << prom_number(h.bucket_upper(i)) << "\"} " << cumulative
              << "\n";
        }
        out << entry.name << "_sum " << prom_number(h.sum()) << "\n";
        out << entry.name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
}

namespace {

// Shared rendering behind both write_chrome_trace overloads: `event_at(i)`
// yields the i-th surviving event in chronological order.
template <typename EventAt>
void write_chrome_trace_impl(std::ostream& out,
                             const std::vector<std::string>& tracks,
                             std::size_t num_events, std::uint64_t dropped,
                             EventAt&& event_at) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{"
         "\"name\":\"dmc\"}}";
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << (t + 1) << ",\"args\":{\"name\":" << json_string(tracks[t])
        << "}}";
  }
  for (std::size_t i = 0; i < num_events; ++i) {
    const TraceEvent& event = event_at(i);
    const EvInfo info = ev_info(event.type);
    const double ts_us = event.t * 1e6;
    out << ",\n{\"name\":";
    if (info.phase == 'C') {
      // Counters are keyed by (pid, name); fold the track name in so each
      // link gets its own counter series.
      std::string name = info.name;
      if (event.track < tracks.size()) {
        name += " ";
        name += tracks[event.track];
      }
      out << json_string(name) << ",\"ph\":\"C\",\"ts\":"
          << json_number(ts_us) << ",\"pid\":1,\"args\":{\"value\":"
          << json_number(static_cast<double>(event.value)) << "}}";
      continue;
    }
    out << json_string(info.name) << ",\"ph\":\"" << info.phase
        << "\",\"ts\":" << json_number(ts_us) << ",\"pid\":1,\"tid\":"
        << (event.track + 1);
    if (info.phase == 'X') {
      out << ",\"dur\":"
          << json_number(static_cast<double>(event.value) * 1e6);
    } else {
      out << ",\"s\":\"t\"";
    }
    out << ",\"args\":{\"id\":" << event.id << ",\"arg\":"
        << static_cast<unsigned>(event.arg);
    if (event.value != 0.0F) {
      out << ",\"value\":" << json_number(static_cast<double>(event.value));
    }
    out << "}}";
  }
  out << "\n],\"otherData\":{\"dropped_events\":" << dropped << "}}\n";
}

}  // namespace

void write_prometheus(std::ostream& out, const Snapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    out << "# TYPE " << name << " counter\n";
    out << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << prom_number(value) << "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    out << "# TYPE " << h.name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [bound, count] : h.buckets) {
      // The +Inf bucket is written unconditionally below; snapshots store
      // only non-empty buckets, so an explicit overflow bucket would
      // duplicate it.
      if (std::isinf(bound)) break;
      cumulative += count;
      out << h.name << "_bucket{le=\"" << prom_number(bound) << "\"} "
          << cumulative << "\n";
    }
    out << h.name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << h.name << "_sum " << prom_number(h.sum) << "\n";
    out << h.name << "_count " << h.count << "\n";
  }
}

void write_chrome_trace(std::ostream& out, const TraceRecorder& recorder) {
  write_chrome_trace_impl(
      out, recorder.track_names(), recorder.size(), recorder.dropped(),
      [&recorder](std::size_t i) -> const TraceEvent& {
        return recorder.event(i);
      });
}

void write_chrome_trace(std::ostream& out, const TraceData& data) {
  write_chrome_trace_impl(
      out, data.tracks, data.events.size(), data.dropped,
      [&data](std::size_t i) -> const TraceEvent& { return data.events[i]; });
}

void print_run_footer(std::ostream& out, const MetricRegistry& registry) {
  double wall = 0.0;
  double sim = 0.0;
  std::uint64_t events = 0;
  const Histogram* delay = nullptr;
  for (const MetricRegistry::Entry& entry : registry.entries()) {
    if (entry.name == kRunWallSeconds) wall = entry.gauge.value();
    if (entry.name == kRunSimSeconds) sim = entry.gauge.value();
    if (entry.name == kRunEventsTotal) events = entry.counter.value();
    if (entry.name == kProtoDelayHistogram &&
        entry.kind == MetricKind::histogram) {
      delay = &entry.histogram;
    }
  }
  const double rate = wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
  char line[200];
  std::snprintf(line, sizeof(line),
                "run: wall %.3f s | sim %.3f s | %llu events | %.2fM events/s",
                wall, sim, static_cast<unsigned long long>(events),
                rate / 1e6);
  out << line;
  if (delay != nullptr && delay->count() > 0) {
    std::snprintf(line, sizeof(line), " | p99 delay %.3f ms",
                  delay->quantile(0.99) * 1e3);
    out << line;
  }
  out << "\n";
}

void print_run_footer(std::ostream& out, const Snapshot& snapshot,
                      double wall_seconds) {
  double sim = 0.0;
  std::uint64_t events = 0;
  const HistogramSnapshot* delay = nullptr;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == kRunSimSeconds) sim = value;
  }
  for (const auto& [name, value] : snapshot.counters) {
    if (name == kRunEventsTotal) events = value;
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.name == kProtoDelayHistogram) delay = &h;
  }
  const double rate =
      wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
  char line[200];
  std::snprintf(line, sizeof(line),
                "run: wall %.3f s | sim %.3f s | %llu events | %.2fM events/s",
                wall_seconds, sim, static_cast<unsigned long long>(events),
                rate / 1e6);
  out << line;
  if (delay != nullptr && delay->count > 0) {
    // Bucket-resolved p99: upper bound of the bucket holding the target
    // rank, clamped to the observed maximum (coarser than
    // Histogram::quantile's interpolation, but snapshot-only sources have
    // nothing finer).
    const double target = 0.99 * static_cast<double>(delay->count);
    double p99 = delay->max;
    std::uint64_t cumulative = 0;
    for (const auto& [bound, count] : delay->buckets) {
      cumulative += count;
      if (static_cast<double>(cumulative) >= target) {
        p99 = std::min(bound, delay->max);
        break;
      }
    }
    std::snprintf(line, sizeof(line), " | p99 delay %.3f ms", p99 * 1e3);
    out << line;
  }
  out << "\n";
}

}  // namespace dmc::obs
