// The observability attachment point: one pair of non-owning pointers that
// rides on sim::Simulator and reaches every component holding a simulator
// reference (links, protocol endpoints, the server loop). Both pointers are
// null by default, so an uninstrumented run pays exactly one branch per
// would-be observation — the gating contract tests/test_zero_alloc.cpp and
// bench/bench_obs.cpp pin down.
//
// Lifetime: whoever owns the MetricRegistry / TraceRecorder (the server
// loop, a CLI driver, a test) must keep them alive for as long as the
// simulator that carries this hub runs.
#pragma once

namespace dmc::obs {

class MetricRegistry;
class TraceRecorder;

struct Hub {
  MetricRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;

  bool any() const { return metrics != nullptr || trace != nullptr; }
};

}  // namespace dmc::obs
