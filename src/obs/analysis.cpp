#include "obs/analysis.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstring>
#include <istream>
#include <iterator>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace dmc::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Delay/lateness distributions use the same layout as the receiver's
// dmc_proto_delay_seconds histogram, so in-process and imported analyses
// bucket identically.
const HistogramOptions kDelayHist{1e-4, 100.0, 8};

// --- track classification -------------------------------------------------

enum class TrackKind : std::uint8_t { other, session, link_fwd, link_rev };

struct TrackInfo {
  TrackKind kind = TrackKind::other;
  std::uint32_t session = 0;  // session tracks only
  std::int32_t link = -1;     // index into the link list (link tracks only)
};

bool parse_u32(std::string_view text, std::uint32_t& out) {
  const auto [ptr, ec] = std::from_chars(text.data(),
                                         text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

// "session N" -> session track, "link NAME" -> link track ("/rev" suffix
// marks the ack direction, which never carries data-message evidence).
std::vector<TrackInfo> classify_tracks(const std::vector<std::string>& tracks,
                                       std::vector<std::string>& link_names) {
  std::vector<TrackInfo> info(tracks.size());
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const std::string& name = tracks[i];
    if (name.rfind("session ", 0) == 0) {
      std::uint32_t session = 0;
      if (parse_u32(std::string_view(name).substr(8), session)) {
        info[i].kind = TrackKind::session;
        info[i].session = session;
      }
    } else if (name.rfind("link ", 0) == 0) {
      const std::string_view link_name = std::string_view(name).substr(5);
      const bool rev = link_name.size() >= 4 &&
                       link_name.substr(link_name.size() - 4) == "/rev";
      info[i].kind = rev ? TrackKind::link_rev : TrackKind::link_fwd;
      info[i].link = static_cast<std::int32_t>(link_names.size());
      link_names.emplace_back(link_name);
    }
  }
  return info;
}

// --- per-message and per-session state ------------------------------------

constexpr std::uint8_t kSeen = 1;
constexpr std::uint8_t kOnTime = 2;
constexpr std::uint8_t kLate = 4;
constexpr std::uint8_t kGaveUp = 8;
constexpr std::uint8_t kBlackhole = 16;
constexpr std::uint8_t kResolved = kOnTime | kLate | kGaveUp | kBlackhole;

// A data packet the message currently has on some forward link; bounded so
// MsgState stays flat (deeper pipelining than 4 concurrent attempts of one
// message does not occur — programs retransmit sequentially).
struct InFlightTx {
  double t = 0.0;
  std::int32_t link = -1;
};

struct MsgState {
  double first_tx = -1.0;
  double resolved_at = -1.0;
  double deliver_transit = -1.0;  // link transit of the delivering packet
  std::int32_t deliver_link = -1;
  float late_by = 0.0F;
  std::uint16_t attempts = 0;
  std::uint16_t losses = 0;
  std::uint16_t queue_drops = 0;
  std::uint8_t flags = 0;
  std::uint8_t n_inflight = 0;
  InFlightTx inflight[4];

  void push_inflight(double t, std::int32_t link) {
    if (n_inflight == 4) {  // evict the oldest: it can no longer match
      std::memmove(&inflight[0], &inflight[1], 3 * sizeof(InFlightTx));
      n_inflight = 3;
    }
    inflight[n_inflight++] = InFlightTx{t, link};
  }

  // Oldest in-flight entry on `link`, FIFO-matching link delivery order.
  bool pop_inflight(std::int32_t link, double& tx_t) {
    for (std::uint8_t i = 0; i < n_inflight; ++i) {
      if (inflight[i].link != link) continue;
      tx_t = inflight[i].t;
      std::memmove(&inflight[i], &inflight[i + 1],
                   static_cast<std::size_t>(n_inflight - i - 1) *
                       sizeof(InFlightTx));
      --n_inflight;
      return true;
    }
    return false;
  }
};

// Sequence numbers are dense per session, so messages live in a flat
// vector; absurd sequence values (possible only in hand-built traces) spill
// into an ordered map to keep memory bounded.
constexpr std::uint32_t kDenseSeqLimit = 1u << 22;

struct SessState {
  std::uint32_t request = 0;
  double admitted_at = kNaN;
  double admit_quality = kNaN;
  std::vector<double> replans;  // ascending (trace order)
  std::vector<MsgState> dense;
  std::map<std::uint32_t, MsgState> sparse;

  MsgState& msg(std::uint32_t seq) {
    if (seq >= kDenseSeqLimit) return sparse[seq];
    if (seq >= dense.size()) {
      dense.resize(std::max<std::size_t>(seq + 1, dense.size() * 2));
    }
    return dense[seq];
  }
};

const char* outcome_name(std::uint8_t flags) {
  if (flags & kBlackhole) return "blackholed";
  if (flags & kOnTime) return "on-time";
  if (flags & kLate) return "late";
  if (flags & kGaveUp) return "gave-up";
  return "open";
}

}  // namespace

const char* to_string(MissCause cause) {
  switch (cause) {
    case MissCause::blackhole:
      return "blackhole";
    case MissCause::queue_delay:
      return "queue_delay";
    case MissCause::loss_burst:
      return "loss_burst";
    case MissCause::replan_lag:
      return "replan_lag";
    case MissCause::admitted_over_residual:
      return "admitted_over_residual";
    case MissCause::planner_misestimate:
      return "planner_misestimate";
  }
  return "unknown";
}

void AnalysisOptions::check() const {
  if (!(window_s > 0.0) || !std::isfinite(window_s)) {
    throw std::invalid_argument("AnalysisOptions: window_s must be > 0");
  }
  if (!(slo_miss_rate > 0.0) || slo_miss_rate > 1.0) {
    throw std::invalid_argument(
        "AnalysisOptions: slo_miss_rate not in (0,1]");
  }
  if (optimism_quality < 0.0 || optimism_quality > 1.0) {
    throw std::invalid_argument(
        "AnalysisOptions: optimism_quality not in [0,1]");
  }
  if (loss_burst_min < 1) {
    throw std::invalid_argument("AnalysisOptions: loss_burst_min < 1");
  }
  if (max_windows < 1) {
    throw std::invalid_argument("AnalysisOptions: max_windows < 1");
  }
}

AnalysisReport analyze(const TraceRecorder& recorder,
                       const AnalysisOptions& options) {
  return analyze(to_trace_data(recorder), options);
}

AnalysisReport analyze(const TraceData& data, const AnalysisOptions& options) {
  options.check();

  AnalysisReport report;
  report.events = data.events.size();
  report.dropped = data.dropped;
  report.truncated = data.dropped > 0;
  report.lower_bound = report.truncated;
  report.slo_miss_rate = options.slo_miss_rate;
  report.detail_session = options.detail_session;

  std::vector<std::string> link_names;
  const std::vector<TrackInfo> tracks =
      classify_tracks(data.tracks, link_names);
  report.links = link_names;
  const std::size_t num_links = link_names.size();

  if (data.events.empty()) {
    report.effective_window_s = options.window_s;
    return report;
  }

  // Time range and window width. Span events carry their *start* time, so
  // the minimum is a real scan, not events.front().
  double t_start = kInf;
  double t_end = -kInf;
  for (const TraceEvent& event : data.events) {
    t_start = std::min(t_start, event.t);
    t_end = std::max(t_end, event.t);
  }
  report.t_start_s = t_start;
  report.t_end_s = t_end;

  double width = options.window_s;
  const double span = t_end - t_start;
  while (span / width >= static_cast<double>(options.max_windows)) {
    width *= 2.0;
  }
  report.effective_window_s = width;
  const std::size_t num_windows =
      static_cast<std::size_t>(span / width) + 1;
  report.windows.resize(num_windows);
  std::vector<Histogram> window_delay;
  window_delay.reserve(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    WindowStats& window = report.windows[w];
    window.t0 = t_start + static_cast<double>(w) * width;
    window.link_queue_depth_max.assign(num_links, 0.0F);
    window_delay.emplace_back(kDelayHist);
  }
  const auto window_at = [&](double t) -> std::size_t {
    const double offset = (t - t_start) / width;
    if (!(offset > 0.0)) return 0;
    return std::min(static_cast<std::size_t>(offset), num_windows - 1);
  };

  std::map<std::uint32_t, SessState> sessions;
  std::vector<double> min_transit(num_links, kInf);
  Histogram delay_hist(kDelayHist);
  Histogram lateness_hist(kDelayHist);

  // --- pass 1: one ordered sweep reconstructs per-message state, joins
  // link evidence by (session, seq), and fills the windowed counters.
  // Resolution is first-event-wins: a message resolves exactly once, so the
  // window series sums to the report totals by construction.
  for (const TraceEvent& event : data.events) {
    if (event.track >= tracks.size()) continue;  // unregistered track
    const TrackInfo& track = tracks[event.track];
    WindowStats& win = report.windows[window_at(event.t)];

    const auto resolve = [&](MsgState& ms, std::uint8_t flag) {
      ms.flags |= flag | kSeen;
      ms.resolved_at = event.t;
      if (ms.first_tx >= 0.0 && flag != kBlackhole) {
        const double delay = event.t - ms.first_tx;
        delay_hist.record(delay);
        window_delay[window_at(event.t)].record(delay);
      }
    };

    switch (event.type) {
      case Ev::session_admit: {
        if (track.kind != TrackKind::session) break;
        SessState& sess = sessions[track.session];
        sess.request = event.id;
        sess.admitted_at = event.t;
        if (event.value > 0.0F) {
          sess.admit_quality = static_cast<double>(event.value);
        }
        ++report.admits;
        ++win.admits;
        break;
      }
      case Ev::session_reject:
        ++report.rejects;
        ++win.rejects;
        break;
      case Ev::session_queue:
        ++report.queued;
        break;
      case Ev::session_expire:
        ++report.expires;
        ++win.expires;
        break;
      case Ev::session_span: {
        if (track.kind != TrackKind::session) break;
        SessState& sess = sessions[track.session];
        if (std::isnan(sess.admitted_at)) sess.admitted_at = event.t;
        if (sess.request == 0) sess.request = event.id;
        break;
      }
      case Ev::replan: {
        if (track.kind != TrackKind::session) break;
        sessions[track.session].replans.push_back(event.t);
        ++report.replans;
        ++win.replans;
        break;
      }
      case Ev::lp_warm_solve:
        ++report.lp_warm_solves;
        break;
      case Ev::lp_cold_solve:
        ++report.lp_cold_solves;
        break;

      case Ev::msg_tx:
      case Ev::msg_retx:
      case Ev::msg_fast_retx: {
        if (track.kind != TrackKind::session) break;
        MsgState& ms = sessions[track.session].msg(event.id);
        ms.flags |= kSeen;
        ++ms.attempts;
        ++win.transmissions;
        ++report.transmissions;
        if (event.type == Ev::msg_tx) {
          if (ms.first_tx < 0.0) {
            ms.first_tx = event.t;
            ++win.generated;
          }
        } else {
          ++win.retransmissions;
          ++report.retransmissions;
          // Wrapped ring: the first transmission may be lost; anchor the
          // delay at the earliest surviving attempt (report is flagged as
          // truncated in that case anyway).
          if (ms.first_tx < 0.0) ms.first_tx = event.t;
        }
        break;
      }
      case Ev::msg_ack: {
        if (track.kind != TrackKind::session) break;
        sessions[track.session].msg(event.id).flags |= kSeen;
        ++report.acks;
        break;
      }
      case Ev::msg_deliver: {
        if (track.kind != TrackKind::session) break;
        MsgState& ms = sessions[track.session].msg(event.id);
        if (ms.flags & kResolved) break;
        resolve(ms, kOnTime);
        ++win.delivered;
        break;
      }
      case Ev::msg_late: {
        if (track.kind != TrackKind::session) break;
        MsgState& ms = sessions[track.session].msg(event.id);
        if (ms.flags & kResolved) break;
        resolve(ms, kLate);
        ms.late_by = event.value;
        lateness_hist.record(static_cast<double>(event.value));
        ++win.late;
        break;
      }
      case Ev::msg_gave_up: {
        if (track.kind != TrackKind::session) break;
        MsgState& ms = sessions[track.session].msg(event.id);
        if (ms.flags & kResolved) break;
        resolve(ms, kGaveUp);
        ++win.gave_up;
        break;
      }
      case Ev::msg_dup:
        ++report.duplicates;
        break;
      case Ev::msg_blackhole: {
        if (track.kind != TrackKind::session) break;
        MsgState& ms = sessions[track.session].msg(event.id);
        if (ms.flags & kResolved) break;
        if (ms.first_tx < 0.0) ms.first_tx = event.t;
        resolve(ms, kBlackhole);
        ++win.generated;
        ++win.blackholed;
        break;
      }

      case Ev::link_tx: {
        if (track.kind != TrackKind::link_fwd) break;
        MsgState& ms = sessions[static_cast<std::uint32_t>(event.value)].msg(
            event.id);
        ms.push_inflight(event.t, track.link);
        break;
      }
      case Ev::link_queue_drop: {
        if (track.kind != TrackKind::link_fwd) break;
        MsgState& ms = sessions[static_cast<std::uint32_t>(event.value)].msg(
            event.id);
        ++ms.queue_drops;
        break;
      }
      case Ev::link_loss_drop: {
        if (track.kind != TrackKind::link_fwd) break;
        MsgState& ms = sessions[static_cast<std::uint32_t>(event.value)].msg(
            event.id);
        ++ms.losses;
        double tx_t = 0.0;
        ms.pop_inflight(track.link, tx_t);
        break;
      }
      case Ev::link_deliver: {
        if (track.kind != TrackKind::link_fwd) break;
        MsgState& ms = sessions[static_cast<std::uint32_t>(event.value)].msg(
            event.id);
        double tx_t = 0.0;
        if (ms.pop_inflight(track.link, tx_t)) {
          const double transit = event.t - tx_t;
          min_transit[static_cast<std::size_t>(track.link)] = std::min(
              min_transit[static_cast<std::size_t>(track.link)], transit);
          // The arrival that resolves the message is the last link delivery
          // before its deliver/late event; later (duplicate) arrivals must
          // not overwrite the evidence.
          if (!(ms.flags & kResolved)) {
            ms.deliver_transit = transit;
            ms.deliver_link = track.link;
          }
        }
        break;
      }

      case Ev::link_queue_depth: {
        if (track.link >= 0) {
          float& depth =
              win.link_queue_depth_max[static_cast<std::size_t>(track.link)];
          depth = std::max(depth, event.value);
        }
        break;
      }
      case Ev::event_queue_depth:
        win.event_queue_depth_max =
            std::max(win.event_queue_depth_max, event.value);
        break;
    }
  }

  // --- pass 2: attribute every miss through the cascade (header comment),
  // now that per-link transit floors and per-session replan lists are
  // complete. Sessions iterate in id order, messages in sequence order, so
  // the walk — and the report — is deterministic.
  report.sessions_observed = sessions.size();
  const bool want_detail = options.detail_session >= 0;

  for (auto& [session_id, sess] : sessions) {
    SessionSummary summary;
    summary.session = session_id;
    summary.request = sess.request;
    summary.admitted_at_s = sess.admitted_at;
    summary.admit_quality = sess.admit_quality;

    const auto visit = [&](std::uint32_t seq, const MsgState& ms) {
      if (!(ms.flags & kSeen)) return;
      ++report.messages_observed;
      ++summary.observed;

      bool miss = false;
      if (ms.flags & kBlackhole) {
        ++report.blackholed;
        miss = true;
      } else if (ms.flags & kOnTime) {
        ++report.on_time;
      } else if (ms.flags & kLate) {
        ++report.late;
        miss = true;
      } else if (ms.flags & kGaveUp) {
        ++report.gave_up;
        miss = true;
      } else {
        ++report.unresolved;
      }

      MissCause cause = MissCause::planner_misestimate;
      double queue_excess = kNaN;
      if (ms.deliver_transit >= 0.0 && ms.deliver_link >= 0 &&
          std::isfinite(
              min_transit[static_cast<std::size_t>(ms.deliver_link)])) {
        queue_excess =
            ms.deliver_transit -
            min_transit[static_cast<std::size_t>(ms.deliver_link)];
      }
      if (miss) {
        const bool queue_dominated =
            (ms.flags & kLate) && !std::isnan(queue_excess) &&
            queue_excess >= static_cast<double>(ms.late_by) - 1e-9;
        const bool gave_up_to_loss = (ms.flags & kGaveUp) && ms.losses >= 1;
        if (ms.flags & kBlackhole) {
          cause = MissCause::blackhole;
        } else if (ms.queue_drops > 0 || queue_dominated) {
          cause = MissCause::queue_delay;
        } else if (ms.losses >= options.loss_burst_min || gave_up_to_loss) {
          cause = MissCause::loss_burst;
        } else if ([&] {
                     const auto it = std::upper_bound(sess.replans.begin(),
                                                      sess.replans.end(),
                                                      ms.first_tx);
                     return it != sess.replans.end() &&
                            *it <= ms.resolved_at;
                   }()) {
          cause = MissCause::replan_lag;
        } else if (!std::isnan(sess.admit_quality) &&
                   sess.admit_quality < options.optimism_quality) {
          cause = MissCause::admitted_over_residual;
        }
        ++report.misses[cause];
        ++summary.causes[cause];
        ++summary.misses;
      }

      if (want_detail &&
          static_cast<std::int64_t>(session_id) == options.detail_session) {
        MessageForensics row;
        row.seq = seq;
        row.outcome = outcome_name(ms.flags);
        row.cause = miss ? static_cast<std::int8_t>(cause) : -1;
        row.first_tx_s = ms.first_tx >= 0.0 ? ms.first_tx : kNaN;
        row.resolved_at_s = ms.resolved_at >= 0.0 ? ms.resolved_at : kNaN;
        row.late_by_s = static_cast<double>(ms.late_by);
        row.attempts = ms.attempts;
        row.losses = ms.losses;
        row.queue_drops = ms.queue_drops;
        row.queue_excess_s = queue_excess;
        report.detail.push_back(row);
      }
    };

    for (std::uint32_t seq = 0; seq < sess.dense.size(); ++seq) {
      visit(seq, sess.dense[seq]);
    }
    for (const auto& [seq, ms] : sess.sparse) visit(seq, ms);

    if (summary.misses > 0) report.worst_sessions.push_back(summary);
  }

  std::stable_sort(report.worst_sessions.begin(), report.worst_sessions.end(),
                   [](const SessionSummary& a, const SessionSummary& b) {
                     if (a.misses != b.misses) return a.misses > b.misses;
                     return a.session < b.session;
                   });
  if (report.worst_sessions.size() > options.max_worst_sessions) {
    report.worst_sessions.resize(options.max_worst_sessions);
  }

  // --- derived series and totals.
  for (std::size_t w = 0; w < num_windows; ++w) {
    WindowStats& window = report.windows[w];
    const std::uint64_t resolved =
        window.delivered + window.late + window.gave_up + window.blackholed;
    if (resolved > 0) {
      window.miss_rate =
          static_cast<double>(window.late + window.gave_up +
                              window.blackholed) /
          static_cast<double>(resolved);
      window.slo_burn = window.miss_rate / options.slo_miss_rate;
    }
    if (window_delay[w].count() > 0) {
      window.p50_delay_s = window_delay[w].quantile(0.50);
      window.p95_delay_s = window_delay[w].quantile(0.95);
      window.p99_delay_s = window_delay[w].quantile(0.99);
    }
  }

  report.lateness_count = lateness_hist.count();
  report.lateness_sum_s = lateness_hist.sum();
  if (lateness_hist.count() > 0) {
    report.lateness_p50_s = lateness_hist.quantile(0.50);
    report.lateness_p95_s = lateness_hist.quantile(0.95);
    report.lateness_p99_s = lateness_hist.quantile(0.99);
  }
  if (delay_hist.count() > 0) {
    report.delay_p50_s = delay_hist.quantile(0.50);
    report.delay_p95_s = delay_hist.quantile(0.95);
    report.delay_p99_s = delay_hist.quantile(0.99);
  }
  const std::uint64_t resolved_total =
      report.on_time + report.late + report.gave_up + report.blackholed;
  if (resolved_total > 0) {
    report.overall_miss_rate =
        static_cast<double>(report.misses.total()) /
        static_cast<double>(resolved_total);
    report.slo_burn = report.overall_miss_rate / options.slo_miss_rate;
  }
  return report;
}

std::vector<TraceEvent> session_events(const TraceData& data,
                                       std::uint32_t session_id) {
  std::vector<std::string> link_names;
  const std::vector<TrackInfo> tracks =
      classify_tracks(data.tracks, link_names);
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : data.events) {
    if (event.track >= tracks.size()) continue;
    const TrackInfo& track = tracks[event.track];
    const bool session_track = track.kind == TrackKind::session &&
                               track.session == session_id;
    const bool link_join =
        track.kind == TrackKind::link_fwd &&
        (event.type == Ev::link_tx || event.type == Ev::link_queue_drop ||
         event.type == Ev::link_loss_drop ||
         event.type == Ev::link_deliver) &&
        static_cast<std::uint32_t>(event.value) == session_id;
    if (session_track || link_join) out.push_back(event);
  }
  return out;
}

// --- dmc.obs.analysis.v1 serialization ------------------------------------

namespace {

void append_causes(std::string& out, const MissBreakdown& causes) {
  out += '{';
  for (std::size_t c = 0; c < kNumMissCauses; ++c) {
    if (c > 0) out += ',';
    out += json_string(to_string(static_cast<MissCause>(c)));
    out += ':';
    out += std::to_string(causes.counts[c]);
  }
  out += '}';
}

}  // namespace

std::string AnalysisReport::to_json() const {
  std::string out = "{\"schema\":\"";
  out += kAnalysisSchema;
  out += "\",\"trace\":{\"events\":";
  out += std::to_string(events);
  out += ",\"dropped\":";
  out += std::to_string(dropped);
  out += ",\"truncated\":";
  out += truncated ? "true" : "false";
  out += ",\"t_start_s\":";
  out += json_number(t_start_s);
  out += ",\"t_end_s\":";
  out += json_number(t_end_s);
  out += "},\"sessions\":{\"observed\":";
  out += std::to_string(sessions_observed);
  out += ",\"admitted\":";
  out += std::to_string(admits);
  out += ",\"rejected\":";
  out += std::to_string(rejects);
  out += ",\"queued\":";
  out += std::to_string(queued);
  out += ",\"expired\":";
  out += std::to_string(expires);
  out += ",\"replans\":";
  out += std::to_string(replans);
  out += ",\"lp_warm_solves\":";
  out += std::to_string(lp_warm_solves);
  out += ",\"lp_cold_solves\":";
  out += std::to_string(lp_cold_solves);
  out += "},\"messages\":{\"observed\":";
  out += std::to_string(messages_observed);
  out += ",\"on_time\":";
  out += std::to_string(on_time);
  out += ",\"late\":";
  out += std::to_string(late);
  out += ",\"gave_up\":";
  out += std::to_string(gave_up);
  out += ",\"blackholed\":";
  out += std::to_string(blackholed);
  out += ",\"unresolved\":";
  out += std::to_string(unresolved);
  out += ",\"transmissions\":";
  out += std::to_string(transmissions);
  out += ",\"retransmissions\":";
  out += std::to_string(retransmissions);
  out += ",\"duplicates\":";
  out += std::to_string(duplicates);
  out += ",\"acks\":";
  out += std::to_string(acks);
  out += "},\"misses\":{\"total\":";
  out += std::to_string(misses.total());
  out += ",\"lower_bound\":";
  out += lower_bound ? "true" : "false";
  out += ",\"causes\":";
  append_causes(out, misses);
  out += ",\"lateness_s\":{\"count\":";
  out += std::to_string(lateness_count);
  out += ",\"sum\":";
  out += json_number(lateness_sum_s);
  out += ",\"p50\":";
  out += json_number(lateness_p50_s);
  out += ",\"p95\":";
  out += json_number(lateness_p95_s);
  out += ",\"p99\":";
  out += json_number(lateness_p99_s);
  out += "}},\"delay_s\":{\"p50\":";
  out += json_number(delay_p50_s);
  out += ",\"p95\":";
  out += json_number(delay_p95_s);
  out += ",\"p99\":";
  out += json_number(delay_p99_s);
  out += "},\"slo\":{\"target_miss_rate\":";
  out += json_number(slo_miss_rate);
  out += ",\"overall_miss_rate\":";
  out += json_number(overall_miss_rate);
  out += ",\"burn\":";
  out += json_number(slo_burn);
  out += "},\"windows\":{\"width_s\":";
  out += json_number(effective_window_s);
  out += ",\"links\":[";
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (i > 0) out += ',';
    out += json_string(links[i]);
  }
  out += "],\"series\":[";
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const WindowStats& window = windows[w];
    if (w > 0) out += ',';
    out += "{\"t0\":";
    out += json_number(window.t0);
    out += ",\"generated\":";
    out += std::to_string(window.generated);
    out += ",\"transmissions\":";
    out += std::to_string(window.transmissions);
    out += ",\"retransmissions\":";
    out += std::to_string(window.retransmissions);
    out += ",\"delivered\":";
    out += std::to_string(window.delivered);
    out += ",\"late\":";
    out += std::to_string(window.late);
    out += ",\"gave_up\":";
    out += std::to_string(window.gave_up);
    out += ",\"blackholed\":";
    out += std::to_string(window.blackholed);
    out += ",\"admits\":";
    out += std::to_string(window.admits);
    out += ",\"rejects\":";
    out += std::to_string(window.rejects);
    out += ",\"expires\":";
    out += std::to_string(window.expires);
    out += ",\"replans\":";
    out += std::to_string(window.replans);
    out += ",\"miss_rate\":";
    out += json_number(window.miss_rate);
    out += ",\"slo_burn\":";
    out += json_number(window.slo_burn);
    out += ",\"p50_delay_s\":";
    out += json_number(window.p50_delay_s);
    out += ",\"p95_delay_s\":";
    out += json_number(window.p95_delay_s);
    out += ",\"p99_delay_s\":";
    out += json_number(window.p99_delay_s);
    out += ",\"link_depth_max\":[";
    for (std::size_t l = 0; l < window.link_queue_depth_max.size(); ++l) {
      if (l > 0) out += ',';
      out += json_number(
          static_cast<double>(window.link_queue_depth_max[l]));
    }
    out += "],\"event_depth_max\":";
    out += json_number(static_cast<double>(window.event_queue_depth_max));
    out += '}';
  }
  out += "]},\"worst_sessions\":[";
  for (std::size_t i = 0; i < worst_sessions.size(); ++i) {
    const SessionSummary& s = worst_sessions[i];
    if (i > 0) out += ',';
    out += "{\"session\":";
    out += std::to_string(s.session);
    out += ",\"request\":";
    out += std::to_string(s.request);
    out += ",\"admitted_at_s\":";
    out += json_number(s.admitted_at_s);
    out += ",\"admit_quality\":";
    out += json_number(s.admit_quality);
    out += ",\"observed\":";
    out += std::to_string(s.observed);
    out += ",\"misses\":";
    out += std::to_string(s.misses);
    out += ",\"causes\":";
    append_causes(out, s.causes);
    out += '}';
  }
  out += ']';
  if (detail_session >= 0) {
    out += ",\"detail\":{\"session\":";
    out += std::to_string(detail_session);
    out += ",\"messages\":[";
    for (std::size_t i = 0; i < detail.size(); ++i) {
      const MessageForensics& row = detail[i];
      if (i > 0) out += ',';
      out += "{\"seq\":";
      out += std::to_string(row.seq);
      out += ",\"outcome\":";
      out += json_string(row.outcome);
      out += ",\"cause\":";
      out += row.cause >= 0
                 ? json_string(to_string(static_cast<MissCause>(row.cause)))
                 : "null";
      out += ",\"first_tx_s\":";
      out += json_number(row.first_tx_s);
      out += ",\"resolved_at_s\":";
      out += json_number(row.resolved_at_s);
      out += ",\"late_by_s\":";
      out += json_number(row.late_by_s);
      out += ",\"attempts\":";
      out += std::to_string(row.attempts);
      out += ",\"losses\":";
      out += std::to_string(row.losses);
      out += ",\"queue_drops\":";
      out += std::to_string(row.queue_drops);
      out += ",\"queue_excess_s\":";
      out += json_number(row.queue_excess_s);
      out += '}';
    }
    out += "]}";
  }
  out += '}';
  return out;
}

// --- Chrome trace-event import --------------------------------------------

namespace {

// Minimal recursive-descent JSON scanner, locale-independent (from_chars),
// sized for the exporter's own output but tolerant of whitespace and key
// order. It parses event objects into a flat struct instead of a DOM so a
// million-event trace never materializes twice.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  void ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }

  bool consume(char c) {
    ws();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool at(char c) {
    ws();
    return p_ < end_ && *p_ == c;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (p_ < end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ >= end_) fail("unterminated escape");
        const char esc = *p_++;
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 'r':
            c = '\r';
            break;
          case 't':
            c = '\t';
            break;
          case 'u': {
            if (end_ - p_ < 4) fail("truncated \\u escape");
            unsigned code = 0;
            const auto [ptr, ec] = std::from_chars(p_, p_ + 4, code, 16);
            if (ec != std::errc() || ptr != p_ + 4) fail("bad \\u escape");
            p_ += 4;
            // The exporter only escapes control characters; anything else
            // is passed through as a replacement byte.
            c = code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            c = esc;  // \" \\ \/ and friends
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  double parse_number() {
    ws();
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(p_, end_, value);
    if (ec != std::errc()) fail("bad number");
    p_ = ptr;
    return value;
  }

  void skip_value() {
    ws();
    if (p_ >= end_) fail("unexpected end of input");
    switch (*p_) {
      case '"':
        parse_string();
        return;
      case '{':
        ++p_;
        if (consume('}')) return;
        do {
          parse_string();
          expect(':');
          skip_value();
        } while (consume(','));
        expect('}');
        return;
      case '[':
        ++p_;
        if (consume(']')) return;
        do {
          skip_value();
        } while (consume(','));
        expect(']');
        return;
      case 't':
      case 'f':
      case 'n':
        while (p_ < end_ && std::isalpha(static_cast<unsigned char>(*p_))) {
          ++p_;
        }
        return;
      default:
        parse_number();
        return;
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("import_chrome_trace: " + what);
  }

 private:
  const char* p_;
  const char* end_;
};

struct RawEvent {
  std::string name;
  char ph = 0;
  double ts = 0.0;
  double dur = 0.0;
  std::int64_t tid = 0;
  bool has_tid = false;
  std::uint32_t id = 0;
  std::uint8_t arg = 0;
  float value = 0.0F;
  std::string thread_name;  // metadata args.name
};

}  // namespace

TraceData import_chrome_trace(std::istream& in) {
  std::string text{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  JsonScanner scanner(text);
  TraceData data;
  std::unordered_map<std::string, std::uint16_t> track_index;

  // Name -> Ev for instant/complete events (the exact inverse of ev_info);
  // counters fold the track name into the event name and are matched by
  // prefix below, longest prefix first.
  std::unordered_map<std::string, Ev> by_name;
  for (std::uint8_t i = 0; i < kNumEvTypes; ++i) {
    const auto type = static_cast<Ev>(i);
    if (ev_info(type).phase != 'C') by_name.emplace(ev_info(type).name, type);
  }
  const std::string event_depth_prefix =
      std::string(ev_info(Ev::event_queue_depth).name) + " ";
  const std::string link_depth_prefix =
      std::string(ev_info(Ev::link_queue_depth).name) + " ";

  const auto track_for = [&](const std::string& name) -> std::uint16_t {
    const auto it = track_index.find(name);
    if (it != track_index.end()) return it->second;
    const auto idx = static_cast<std::uint16_t>(data.tracks.size());
    data.tracks.push_back(name);
    track_index.emplace(name, idx);
    return idx;
  };

  const auto handle_event = [&](const RawEvent& raw) {
    if (raw.ph == 'M') {
      if (raw.name == "thread_name" && raw.has_tid && raw.tid >= 1) {
        const auto idx = static_cast<std::size_t>(raw.tid - 1);
        if (idx >= data.tracks.size()) data.tracks.resize(idx + 1);
        data.tracks[idx] = raw.thread_name;
        track_index[raw.thread_name] = static_cast<std::uint16_t>(idx);
      }
      return;
    }
    TraceEvent event;
    event.t = raw.ts / 1e6;
    event.id = raw.id;
    event.arg = raw.arg;
    event.value = raw.value;
    if (raw.ph == 'C') {
      std::string_view rest;
      if (raw.name.rfind(event_depth_prefix, 0) == 0) {
        event.type = Ev::event_queue_depth;
        rest = std::string_view(raw.name).substr(event_depth_prefix.size());
      } else if (raw.name.rfind(link_depth_prefix, 0) == 0) {
        event.type = Ev::link_queue_depth;
        rest = std::string_view(raw.name).substr(link_depth_prefix.size());
      } else {
        return;  // counter without a recoverable track
      }
      event.track = track_for(std::string(rest));
    } else {
      const auto it = by_name.find(raw.name);
      if (it == by_name.end()) return;  // unknown event: forward-compatible
      event.type = it->second;
      if (!raw.has_tid || raw.tid < 1) return;
      event.track = static_cast<std::uint16_t>(raw.tid - 1);
      if (static_cast<std::size_t>(raw.tid) > data.tracks.size()) {
        data.tracks.resize(static_cast<std::size_t>(raw.tid));
      }
      if (raw.ph == 'X') event.value = static_cast<float>(raw.dur / 1e6);
    }
    data.events.push_back(event);
  };

  const auto parse_args = [&](JsonScanner& s, RawEvent& raw) {
    s.expect('{');
    if (s.consume('}')) return;
    do {
      const std::string key = s.parse_string();
      s.expect(':');
      if (key == "id") {
        raw.id = static_cast<std::uint32_t>(s.parse_number());
      } else if (key == "arg") {
        raw.arg = static_cast<std::uint8_t>(s.parse_number());
      } else if (key == "value") {
        raw.value = static_cast<float>(s.parse_number());
      } else if (key == "name") {
        raw.thread_name = s.parse_string();
      } else {
        s.skip_value();
      }
    } while (s.consume(','));
    s.expect('}');
  };

  const auto parse_event = [&](JsonScanner& s) {
    RawEvent raw;
    s.expect('{');
    if (s.consume('}')) return;
    do {
      const std::string key = s.parse_string();
      s.expect(':');
      if (key == "name") {
        raw.name = s.parse_string();
      } else if (key == "ph") {
        const std::string ph = s.parse_string();
        raw.ph = ph.empty() ? 0 : ph[0];
      } else if (key == "ts") {
        raw.ts = s.parse_number();
      } else if (key == "dur") {
        raw.dur = s.parse_number();
      } else if (key == "tid") {
        raw.tid = static_cast<std::int64_t>(s.parse_number());
        raw.has_tid = true;
      } else if (key == "args") {
        parse_args(s, raw);
      } else {
        s.skip_value();
      }
    } while (s.consume(','));
    s.expect('}');
    handle_event(raw);
  };

  scanner.expect('{');
  if (!scanner.consume('}')) {
    do {
      const std::string key = scanner.parse_string();
      scanner.expect(':');
      if (key == "traceEvents") {
        scanner.expect('[');
        if (!scanner.consume(']')) {
          do {
            parse_event(scanner);
          } while (scanner.consume(','));
          scanner.expect(']');
        }
      } else if (key == "otherData") {
        scanner.expect('{');
        if (!scanner.consume('}')) {
          do {
            const std::string other = scanner.parse_string();
            scanner.expect(':');
            if (other == "dropped_events") {
              data.dropped =
                  static_cast<std::uint64_t>(scanner.parse_number());
            } else {
              scanner.skip_value();
            }
          } while (scanner.consume(','));
          scanner.expect('}');
        }
      } else {
        scanner.skip_value();
      }
    } while (scanner.consume(','));
    scanner.expect('}');
  }
  return data;
}

}  // namespace dmc::obs
