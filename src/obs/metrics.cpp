#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmc::obs {

Histogram::Histogram(HistogramOptions options) : options_(options) {
  if (!(options_.min > 0.0) || !(options_.max > options_.min) ||
      !std::isfinite(options_.max)) {
    throw std::invalid_argument("Histogram: need 0 < min < max < inf");
  }
  if (options_.sub_buckets < 1 || options_.sub_buckets > 64) {
    throw std::invalid_argument("Histogram: sub_buckets not in [1,64]");
  }
  const double octaves = std::log2(options_.max / options_.min);
  const auto log_buckets = static_cast<std::size_t>(
      std::ceil(octaves * static_cast<double>(options_.sub_buckets)));
  // underflow + geometric span + overflow
  counts_.assign(log_buckets + 2, 0);
  inv_min_ = 1.0 / options_.min;
  scale_ = static_cast<double>(options_.sub_buckets);
}

void Histogram::record(double value) {
  ++count_;
  sum_ += value;
  min_seen_ = std::min(min_seen_, value);
  max_seen_ = std::max(max_seen_, value);

  std::size_t index;
  if (!(value > options_.min)) {
    index = 0;  // underflow; NaN also lands here rather than corrupting state
  } else if (value >= options_.max) {
    index = counts_.size() - 1;  // overflow
  } else {
    index = 1 + static_cast<std::size_t>(std::log2(value * inv_min_) * scale_);
    // Floating-point edge: log2 rounding may land exactly on the overflow
    // boundary for values just below max.
    index = std::min(index, counts_.size() - 2);
  }
  ++counts_[index];
}

double Histogram::quantile(double p) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank target: the smallest rank r (1-based) with r >= p * count.
  const double scaled = p * static_cast<double>(count_);
  std::uint64_t target = static_cast<std::uint64_t>(std::ceil(scaled));
  target = std::clamp<std::uint64_t>(target, 1, count_);

  std::uint64_t cumulative = 0;
  std::size_t bucket = counts_.size() - 1;
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cumulative + counts_[i] >= target) {
      bucket = i;
      before = cumulative;
      break;
    }
    cumulative += counts_[i];
  }

  // Bucket value range: log-spaced interior buckets interpolate
  // geometrically; the open-ended underflow/overflow buckets fall back to
  // the observed extremes (and to linear interpolation when the lower bound
  // is not positive, where a geometric mean is undefined).
  double lower;
  double upper;
  if (bucket == 0) {
    lower = std::min(min_seen_, options_.min);
    upper = options_.min;
  } else if (bucket == counts_.size() - 1) {
    lower = options_.max;
    upper = std::max(max_seen_, options_.max);
  } else {
    lower = bucket_upper(bucket - 1);
    upper = bucket_upper(bucket);
  }
  const double fraction =
      static_cast<double>(target - before) /
      static_cast<double>(counts_[bucket]);
  double value;
  if (lower > 0.0 && std::isfinite(upper)) {
    value = lower * std::pow(upper / lower, fraction);
  } else {
    value = lower + (upper - lower) * fraction;
  }
  return std::clamp(value, min_seen_, max_seen_);
}

double Histogram::bucket_upper(std::size_t i) const {
  if (i == 0) return options_.min;
  if (i >= counts_.size() - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return options_.min *
         std::exp2(static_cast<double>(i) / static_cast<double>(scale_));
}

MetricRegistry::Entry& MetricRegistry::find_or_insert(std::string_view name,
                                                      std::string_view help,
                                                      MetricKind kind,
                                                      bool wallclock) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    Entry& entry = entries_[it->second];
    if (entry.kind != kind) {
      throw std::invalid_argument("MetricRegistry: '" + std::string(name) +
                                  "' re-registered with a different kind");
    }
    return entry;
  }
  Entry& entry = entries_.emplace_back();
  entry.name = std::string(name);
  entry.help = std::string(help);
  entry.kind = kind;
  entry.wallclock = wallclock;
  index_.emplace(entry.name, entries_.size() - 1);
  return entry;
}

Counter& MetricRegistry::counter(std::string_view name, std::string_view help,
                                 bool wallclock) {
  return find_or_insert(name, help, MetricKind::counter, wallclock).counter;
}

Gauge& MetricRegistry::gauge(std::string_view name, std::string_view help,
                             bool wallclock) {
  return find_or_insert(name, help, MetricKind::gauge, wallclock).gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::string_view help,
                                     HistogramOptions options,
                                     bool wallclock) {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    Entry& entry = find_or_insert(name, help, MetricKind::histogram, wallclock);
    entry.histogram = Histogram(options);
    return entry.histogram;
  }
  return find_or_insert(name, help, MetricKind::histogram, wallclock)
      .histogram;
}

}  // namespace dmc::obs
