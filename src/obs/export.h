// Exporters for the observability layer:
//
//   Snapshot         deterministic metric snapshot, serialized as the
//                    versioned `dmc.obs.v1` JSON block that rides inside
//                    fleet::RunRecord / dmc_server / dmc_fleet output.
//                    Wallclock-flagged metrics are excluded, so the block
//                    is bit-identical across reruns and thread counts.
//   write_prometheus Prometheus text exposition (format 0.0.4) of every
//                    registered metric, wall-clock timers included.
//   write_chrome_trace
//                    Chrome trace-event JSON of a TraceRecorder's surviving
//                    events — loadable in Perfetto / chrome://tracing, with
//                    one named track per session, per link, and for the LP
//                    solver.
//   print_run_footer one human-readable line (wall time, simulated time,
//                    events, events/s) sourced from the registry's
//                    dmc_run_* metrics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace dmc::obs {

inline constexpr std::string_view kObsSchema = "dmc.obs.v1";

// Names print_run_footer reads; fill them in whatever drives the run. The
// delay histogram (registered by proto::DeadlineReceiver) adds a p99 delay
// field to the footer when present and non-empty.
inline constexpr std::string_view kRunWallSeconds = "dmc_run_wall_seconds";
inline constexpr std::string_view kRunSimSeconds = "dmc_run_sim_seconds";
inline constexpr std::string_view kRunEventsTotal = "dmc_run_events_total";
inline constexpr std::string_view kProtoDelayHistogram =
    "dmc_proto_delay_seconds";

// JSON atoms shared by every deterministic exporter (Snapshot, the
// dmc.obs.analysis.v1 report, the fleet result writer): shortest
// round-trip decimals, non-finite values as null, minimal escaping.
std::string json_number(double value);
std::string json_string(std::string_view text);

// Chrome trace-event rendering of one Ev: display name plus phase
// ('i' instant, 'X' complete, 'C' counter). Public so the trace importer
// (obs/analysis) can invert the mapping and tools can print event names.
struct EvInfo {
  const char* name;
  char phase;
};
EvInfo ev_info(Ev type);

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningless when count == 0
  double max = 0.0;
  // (inclusive upper bound, count) for non-empty buckets only.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

// Deterministic registry state: everything except wallclock metrics, in
// registration order.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  static Snapshot from(const MetricRegistry& registry);

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // {"schema":"dmc.obs.v1","counters":{...},"gauges":{...},
  //  "histograms":{...}} — fixed key order, shortest round-trip doubles,
  // non-finite values as null (the fleet JSON conventions).
  std::string to_json() const;
};

// Deterministic shard merge: counters summed, gauges combined by max (every
// snapshot gauge today is a duration-style high-water mark), histograms
// merged bucket-by-bucket. Names appear in first-appearance order across the
// inputs, so merging shard snapshots that registered the same metrics in the
// same order preserves the single-shard layout — merge(A) == A, and the
// result is independent of worker count because the input order is the fixed
// logical-shard order.
Snapshot merge_snapshots(const std::vector<Snapshot>& snapshots);

void write_prometheus(std::ostream& out, const MetricRegistry& registry);
// Exposition of a deterministic snapshot (merged sharded runs): same
// format, minus HELP lines (a snapshot stores no help text) and minus
// wallclock metrics (a snapshot never contains them).
void write_prometheus(std::ostream& out, const Snapshot& snapshot);

void write_chrome_trace(std::ostream& out, const TraceRecorder& recorder);
void write_chrome_trace(std::ostream& out, const TraceData& data);

void print_run_footer(std::ostream& out, const MetricRegistry& registry);
// Footer for a snapshot-only source (merged sharded runs): the wall-clock
// duration is not in the snapshot and must be passed in; the p99 delay is
// bucket-resolved (upper bound of the bucket holding the target rank).
void print_run_footer(std::ostream& out, const Snapshot& snapshot,
                      double wall_seconds);

}  // namespace dmc::obs
