// Deadline-miss forensics: the consumption side of the observability layer.
// The analyzer ingests a flight-recorder trace — in-process from a
// TraceRecorder ring, or re-imported from the Chrome trace-event JSON the
// exporter wrote — and turns raw events into answers:
//
//   timelines   per-session / per-message event joins: tx -> retx/fast-retx
//               -> ack -> deliver/late/gave-up, matched with link enqueue,
//               drop and delivery evidence and session re-plans.
//   root cause  every missed message (msg_late, msg_gave_up with no
//               delivery, msg_blackhole) is attributed to exactly one cause
//               by a deterministic rule cascade — causes are exhaustive and
//               mutually exclusive, so the per-cause counts always sum to
//               the total number of misses.
//   time-series windowed admit/miss rates, p50/p95/p99 delay from log-bucket
//               histograms (Histogram::quantile), SLO burn against a target
//               miss rate, and per-link queue-depth envelopes.
//
// The cascade, first match wins:
//   1. blackhole              the plan deliberately dropped the message
//                             (zero-attempt combo, Section V-C).
//   2. queue_delay            congestion evidence: an attempt was dropped at
//                             a full link queue, or the delivering packet's
//                             link transit exceeded that link's observed
//                             floor by at least the message's lateness.
//   3. loss_burst             >= loss_burst_min observed erasures of this
//                             message's attempts, or it gave up with at
//                             least one observed erasure.
//   4. replan_lag             the owning session was re-planned while the
//                             message was in flight: the controller already
//                             knew the installed plan was stale.
//   5. admitted_over_residual the session was admitted with a plan whose
//                             own quality claim was below optimism_quality:
//                             the admission decision budgeted for misses.
//   6. planner_misestimate    none of the above — no loss, no queueing
//                             evidence, a near-certain plan: the model
//                             (delay tails, timeouts, cross-traffic) was
//                             simply wrong.
//
// Honesty about wraparound: when the ring dropped events, the report keeps
// the truncated time range, sets `truncated`, and flags the cause counts as
// lower bounds — evidence that was overwritten cannot be re-attributed.
//
// Everything here is a pure function of the trace: analyzing the same
// events yields byte-identical JSON at any thread count, on any host.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace dmc::obs {

inline constexpr std::string_view kAnalysisSchema = "dmc.obs.analysis.v1";

// The analyzer's input is obs::TraceData (obs/trace_recorder.h): events in
// chronological order plus the track table and the wraparound loss count.

// Re-imports a Chrome trace-event JSON written by write_chrome_trace:
// thread_name metadata rebuilds the track table, instant/complete events map
// back through ev_info names, counter events are reverse-matched against the
// known counter prefixes, and otherData.dropped_events restores the loss
// count. Throws std::runtime_error on malformed input.
TraceData import_chrome_trace(std::istream& in);

enum class MissCause : std::uint8_t {
  blackhole = 0,
  queue_delay,
  loss_burst,
  replan_lag,
  admitted_over_residual,
  planner_misestimate,
};
inline constexpr std::size_t kNumMissCauses = 6;
const char* to_string(MissCause cause);

struct MissBreakdown {
  std::array<std::uint64_t, kNumMissCauses> counts{};

  std::uint64_t& operator[](MissCause cause) {
    return counts[static_cast<std::size_t>(cause)];
  }
  std::uint64_t operator[](MissCause cause) const {
    return counts[static_cast<std::size_t>(cause)];
  }
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t c : counts) sum += c;
    return sum;
  }
};

struct AnalysisOptions {
  double window_s = 1.0;           // time-series bucket width (seconds)
  double slo_miss_rate = 0.01;     // SLO target the burn rate is scored against
  double optimism_quality = 0.999; // admit quality below this counts as
                                   // deliberate admission optimism (rule 5)
  int loss_burst_min = 2;          // erasures that make a loss burst (rule 3)
  std::size_t max_windows = 4096;  // width doubles until the span fits
  std::size_t max_worst_sessions = 16;
  // >= 0: emit per-message forensics rows for this session id.
  std::int64_t detail_session = -1;

  void check() const;  // throws std::invalid_argument on nonsense
};

// One bucket of the windowed time-series. Counts are event counts inside
// [t0, t0 + window_s); rates are derived from messages *resolved* in the
// window, so miss_rate is exact even when a message crosses windows.
struct WindowStats {
  double t0 = 0.0;
  std::uint64_t generated = 0;        // first transmissions + blackholes
  std::uint64_t transmissions = 0;    // tx + retx + fast-retx
  std::uint64_t retransmissions = 0;
  std::uint64_t delivered = 0;        // on-time first arrivals
  std::uint64_t late = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t blackholed = 0;
  std::uint64_t admits = 0;
  std::uint64_t rejects = 0;
  std::uint64_t expires = 0;
  std::uint64_t replans = 0;
  double miss_rate = 0.0;  // (late + gave_up + blackholed) / resolved
  double slo_burn = 0.0;   // miss_rate / slo_miss_rate
  double p50_delay_s = std::numeric_limits<double>::quiet_NaN();
  double p95_delay_s = std::numeric_limits<double>::quiet_NaN();
  double p99_delay_s = std::numeric_limits<double>::quiet_NaN();
  // Queue-depth envelope: max sampled depth per link track in this window
  // (aligned with AnalysisReport::links), and the simulator event queue.
  std::vector<float> link_queue_depth_max;
  float event_queue_depth_max = 0.0F;
};

struct SessionSummary {
  std::uint32_t session = 0;
  std::uint32_t request = 0;   // request id from the admit event (0 unknown)
  double admitted_at_s = std::numeric_limits<double>::quiet_NaN();
  double admit_quality = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t observed = 0;  // messages with any trace evidence
  std::uint64_t misses = 0;
  MissBreakdown causes;
};

// Per-message forensics row (detail_session only).
struct MessageForensics {
  std::uint32_t seq = 0;
  const char* outcome = "";  // on-time | late | gave-up | blackholed | open
  std::int8_t cause = -1;    // MissCause when a miss, -1 otherwise
  double first_tx_s = std::numeric_limits<double>::quiet_NaN();
  double resolved_at_s = std::numeric_limits<double>::quiet_NaN();
  double late_by_s = 0.0;
  std::uint32_t attempts = 0;
  std::uint32_t losses = 0;
  std::uint32_t queue_drops = 0;
  // Transit of the delivering packet minus the link's observed floor
  // (NaN when the message never delivered or the link has no floor yet).
  double queue_excess_s = std::numeric_limits<double>::quiet_NaN();
};

struct AnalysisReport {
  // Trace coverage. `truncated` mirrors dropped > 0: the window below only
  // covers what survived the ring.
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  bool truncated = false;
  double t_start_s = 0.0;
  double t_end_s = 0.0;

  // Session lifecycle counts (events observed in the trace).
  std::uint64_t sessions_observed = 0;
  std::uint64_t admits = 0;
  std::uint64_t rejects = 0;
  std::uint64_t queued = 0;
  std::uint64_t expires = 0;
  std::uint64_t replans = 0;
  std::uint64_t lp_warm_solves = 0;
  std::uint64_t lp_cold_solves = 0;

  // Per-message outcome totals. observed = every message with any trace
  // evidence; on_time/late/gave_up/blackholed partition the resolved ones
  // (a message that was late *and* later abandoned counts once, as late).
  std::uint64_t messages_observed = 0;
  std::uint64_t on_time = 0;
  std::uint64_t late = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t blackholed = 0;
  std::uint64_t unresolved = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t acks = 0;

  // Root-cause attribution: misses.total() == late + gave_up + blackholed,
  // always. lower_bound is set when the trace was truncated.
  MissBreakdown misses;
  bool lower_bound = false;
  // Lateness distribution of late deliveries plus its quantiles.
  std::uint64_t lateness_count = 0;
  double lateness_sum_s = 0.0;
  double lateness_p50_s = std::numeric_limits<double>::quiet_NaN();
  double lateness_p95_s = std::numeric_limits<double>::quiet_NaN();
  double lateness_p99_s = std::numeric_limits<double>::quiet_NaN();

  // Overall delay quantiles (first transmission to first arrival).
  double delay_p50_s = std::numeric_limits<double>::quiet_NaN();
  double delay_p95_s = std::numeric_limits<double>::quiet_NaN();
  double delay_p99_s = std::numeric_limits<double>::quiet_NaN();

  // SLO scoring against options.slo_miss_rate.
  double slo_miss_rate = 0.0;
  double overall_miss_rate = 0.0;
  double slo_burn = 0.0;

  // Windowed time-series; effective_window_s is window_s after doubling to
  // respect max_windows. `links` names the per-window depth envelopes.
  double effective_window_s = 0.0;
  std::vector<std::string> links;
  std::vector<WindowStats> windows;

  // Sessions with misses, worst first (ties by session id).
  std::vector<SessionSummary> worst_sessions;

  // Per-message rows for options.detail_session (empty otherwise).
  std::int64_t detail_session = -1;
  std::vector<MessageForensics> detail;

  // Versioned dmc.obs.analysis.v1 JSON: fixed key order, shortest
  // round-trip doubles, non-finite as null — byte-identical for identical
  // traces and options.
  std::string to_json() const;
};

AnalysisReport analyze(const TraceData& data,
                       const AnalysisOptions& options = {});
AnalysisReport analyze(const TraceRecorder& recorder,
                       const AnalysisOptions& options = {});

// All events touching one session, in trace order: everything on its
// session track plus forward-link events joined by the session id carried
// in link-event values. Feeds the dmc_trace --session timeline view.
std::vector<TraceEvent> session_events(const TraceData& data,
                                       std::uint32_t session_id);

}  // namespace dmc::obs
