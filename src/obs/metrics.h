// Metric primitives for the unified observability layer: counters, gauges,
// and log-bucketed fixed-size histograms behind one registry.
//
// Design constraints, in order:
//   1. The steady-state hot path must stay allocation-free: every metric is
//      preallocated at registration time, record()/inc()/set() only touch
//      memory the metric already owns (tests/test_zero_alloc.cpp runs with
//      metrics enabled).
//   2. Handles are stable: the registry stores metrics in a deque, so a
//      Counter&/Histogram* captured at setup time stays valid for the
//      registry's lifetime no matter how many metrics register later.
//   3. Export is deterministic: iteration order is registration order, and
//      every quantity derived from simulation state is reproducible bit for
//      bit. Metrics fed from the host's wall clock (scoped timers) are
//      flagged `wallclock` so the deterministic exporters can skip them.
//
// Naming convention (enforced socially, documented in README):
//   dmc_<subsystem>_<quantity>_<unit>[_total]
// e.g. dmc_proto_delay_seconds, dmc_server_arrivals_total. Counters end in
// _total; histograms/gauges end in their unit.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dmc::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  void set(std::uint64_t v) { value_ = v; }  // publishing an existing total
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Geometric (log2) bucket layout, HDR-histogram style: `sub_buckets` buckets
// per octave between `min` and `max`, plus an underflow bucket at the front
// and an overflow bucket at the back. All storage is sized at construction;
// record() is branch + log2 + array increment, no allocation ever.
struct HistogramOptions {
  double min = 1e-6;    // values <= min land in the underflow bucket
  double max = 1e3;     // values >= max land in the overflow bucket
  int sub_buckets = 4;  // buckets per octave (factor-of-2 value range)
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void record(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min_seen() const { return min_seen_; }
  double max_seen() const { return max_seen_; }

  std::size_t num_buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  // Inclusive upper bound of bucket i (+inf for the overflow bucket).
  double bucket_upper(std::size_t i) const;

  // Estimated p-quantile (p in [0,1]) by geometric interpolation inside the
  // log-spaced bucket holding the target rank — the same estimator Prometheus
  // applies to `le` buckets, with the error bounded by one bucket width
  // (a factor of 2^(1/sub_buckets)). The underflow/overflow buckets use the
  // observed min/max as their open bound, and the result is clamped to
  // [min_seen, max_seen]. NaN when the histogram is empty.
  double quantile(double p) const;

  const HistogramOptions& options() const { return options_; }

 private:
  HistogramOptions options_;
  double inv_min_ = 0.0;
  double scale_ = 0.0;  // sub_buckets / ln(2)
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = std::numeric_limits<double>::infinity();
  double max_seen_ = -std::numeric_limits<double>::infinity();
};

enum class MetricKind { counter, gauge, histogram };

class MetricRegistry {
 public:
  // Registration: returns the existing metric when `name` was registered
  // before (kind must match, or std::invalid_argument). Registration
  // allocates; do it at setup time, never on the hot path.
  Counter& counter(std::string_view name, std::string_view help,
                   bool wallclock = false);
  Gauge& gauge(std::string_view name, std::string_view help,
               bool wallclock = false);
  Histogram& histogram(std::string_view name, std::string_view help,
                       HistogramOptions options = {}, bool wallclock = false);

  // One registered metric; exactly the member matching `kind` is meaningful.
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::counter;
    bool wallclock = false;  // host-time sourced: excluded from
                             // deterministic exports (dmc.obs.v1)
    Counter counter;
    Gauge gauge;
    Histogram histogram{HistogramOptions{}};
  };

  // Registration-order iteration for exporters.
  const std::deque<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

 private:
  Entry& find_or_insert(std::string_view name, std::string_view help,
                        MetricKind kind, bool wallclock);

  std::deque<Entry> entries_;  // deque: stable addresses for handles
  std::unordered_map<std::string, std::size_t> index_;
};

// Records the wall-clock duration of a scope into a histogram (seconds).
// Null histogram = disabled timer: costs one branch per end of scope. The
// target histogram should be registered with wallclock = true — host timing
// never belongs in deterministic output.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    // dmc-lint: allow(det-wallclock) wallclock histograms are excluded
    // from deterministic output (Options::wallclock)
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      const std::chrono::duration<double> elapsed =
          // dmc-lint: allow(det-wallclock) wallclock-only histogram
          std::chrono::steady_clock::now() - start_;
      histogram_->record(elapsed.count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  // dmc-lint: allow(det-wallclock) telemetry state, never exported
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dmc::obs
