#include "fleet/engine.h"

#include <cstdlib>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "stats/rng.h"
#include "util/parse.h"

namespace dmc::fleet {

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t lane) {
  return stats::mix_seed(base, lane);
}

namespace {

// Guarded deque of task indices. A mutex per worker keeps this simple and
// obviously correct; tasks here are whole simulation runs (milliseconds to
// seconds), so queue overhead is noise.
struct WorkerQueue {
  std::mutex mutex;
  std::deque<std::size_t> tasks;

  void push(std::size_t index) {
    const std::lock_guard<std::mutex> lock(mutex);
    tasks.push_back(index);
  }

  // Owner takes from the front (its dealt order).
  bool pop_front(std::size_t& index) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) return false;
    index = tasks.front();
    tasks.pop_front();
    return true;
  }

  // Thieves take from the back, away from the owner's end.
  bool steal_back(std::size_t& index) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) return false;
    index = tasks.back();
    tasks.pop_back();
    return true;
  }
};

}  // namespace

Engine::Engine(EngineOptions options) {
  unsigned threads = options.threads;
  if (threads == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    threads = env_threads(hardware > 0 ? hardware : 1);
  }
  threads_ = threads > 0 ? threads : 1;
}

unsigned Engine::env_threads(unsigned fallback) {
  // dmc-lint: allow(det-getenv) worker-count override; fleet results are
  // bit-identical at any thread count (pinned by test_fleet)
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before worker spawn
  const char* env = std::getenv("DMC_THREADS");
  if (env == nullptr) return fallback;
  return util::parse_positive<unsigned>("DMC_THREADS", env);
}

void Engine::run_tasks(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;

  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto guarded = [&](std::function<void()>& task) {
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  const auto n_workers = static_cast<unsigned>(
      std::min<std::size_t>(threads_, tasks.size()));
  if (n_workers <= 1) {
    for (auto& task : tasks) guarded(task);
  } else {
    std::deque<WorkerQueue> queues(n_workers);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      queues[i % n_workers].push(i);
    }

    auto worker = [&](unsigned me) {
      std::size_t index = 0;
      for (;;) {
        bool got = queues[me].pop_front(index);
        for (unsigned step = 1; !got && step < n_workers; ++step) {
          got = queues[(me + step) % n_workers].steal_back(index);
        }
        // No work is ever re-queued, so a full scan coming up empty means
        // every task is claimed (though siblings may still be mid-run).
        if (!got) return;
        guarded(tasks[index]);
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(n_workers - 1);
    for (unsigned t = 1; t < n_workers; ++t) {
      pool.emplace_back(worker, t);
    }
    worker(0);
    for (std::thread& thread : pool) thread.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dmc::fleet
