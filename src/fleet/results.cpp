#include "fleet/results.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace dmc::fleet {

std::string format_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "null";  // cannot happen with a 32-byte buffer
  return std::string(buffer, ptr);
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_trace(std::ostream& out, const proto::Trace& trace) {
  out << "{\"generated\":" << trace.generated
      << ",\"assigned_blackhole\":" << trace.assigned_blackhole
      << ",\"transmissions\":" << trace.transmissions
      << ",\"retransmissions\":" << trace.retransmissions
      << ",\"fast_retransmissions\":" << trace.fast_retransmissions
      << ",\"delivered_unique\":" << trace.delivered_unique
      << ",\"on_time\":" << trace.on_time << ",\"late\":" << trace.late
      << ",\"duplicates\":" << trace.duplicates
      << ",\"acks_sent\":" << trace.acks_sent
      << ",\"acks_received\":" << trace.acks_received
      << ",\"gave_up\":" << trace.gave_up << "}";
}

void write_record(std::ostream& out, const RunRecord& record) {
  out << "    {\"scenario\":\"" << json_escape(record.scenario) << "\"";
  out << ",\"params\":{";
  for (std::size_t i = 0; i < record.params.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(record.params[i].name)
        << "\":" << format_double(record.params[i].value);
  }
  out << "}";
  out << ",\"seed\":" << record.seed << ",\"messages\":" << record.messages
      << ",\"session_index\":" << record.session_index
      << ",\"sessions\":" << record.sessions
      << ",\"ok\":" << (record.ok ? "true" : "false") << ",\"error\":\""
      << json_escape(record.error) << "\"";
  out << ",\"theory_quality\":" << format_double(record.theory_quality);
  out << ",\"single_path_theory\":[";
  for (std::size_t i = 0; i < record.single_path_theory.size(); ++i) {
    if (i > 0) out << ",";
    out << format_double(record.single_path_theory[i]);
  }
  out << "]";
  out << ",\"measured_quality\":" << format_double(record.measured_quality)
      << ",\"elapsed_s\":" << format_double(record.elapsed_s)
      << ",\"events\":" << record.events;
  out << ",\"trace\":";
  write_trace(out, record.trace);
  out << ",\"delay_s\":{\"mean\":" << format_double(record.delay_mean_s)
      << ",\"p50\":" << format_double(record.delay_p50_s)
      << ",\"p99\":" << format_double(record.delay_p99_s) << "}";
  if (!record.policy.empty()) {
    out << ",\"server\":{\"policy\":\"" << json_escape(record.policy)
        << "\",\"arrivals\":" << record.arrivals
        << ",\"admitted\":" << record.admitted
        << ",\"rejected\":" << record.rejected
        << ",\"expired\":" << record.expired
        << ",\"admission_rate\":" << format_double(record.admission_rate)
        << ",\"deadline_miss_rate\":"
        << format_double(record.deadline_miss_rate)
        << ",\"goodput_bps\":" << format_double(record.goodput_bps)
        << ",\"mean_queue_wait_s\":"
        << format_double(record.mean_queue_wait_s)
        << ",\"replans\":" << record.replans
        << ",\"orphan_packets\":" << record.orphan_packets
        << ",\"warm_start\":" << (record.warm_start ? "true" : "false")
        << ",\"lp_warm_solves\":" << record.lp_warm_solves
        << ",\"lp_cold_solves\":" << record.lp_cold_solves
        << ",\"lp_fallbacks\":" << record.lp_fallbacks
        << ",\"shards\":" << record.shards << "}";
  }
  if (record.has_forensics) {
    out << ",\"forensics\":{\"misses\":" << record.forensics_misses
        << ",\"lower_bound\":"
        << (record.forensics_lower_bound ? "true" : "false")
        << ",\"causes\":{";
    for (std::size_t c = 0; c < obs::kNumMissCauses; ++c) {
      if (c > 0) out << ",";
      out << "\"" << obs::to_string(static_cast<obs::MissCause>(c))
          << "\":" << record.miss_causes.counts[c];
    }
    out << "}}";
  }
  if (!record.obs_json.empty()) {
    out << ",\"obs\":" << record.obs_json;
  }
  out << ",\"links\":[";
  for (std::size_t i = 0; i < record.links.size(); ++i) {
    const LinkRecord& link = record.links[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << json_escape(link.name)
        << "\",\"offered\":" << link.offered
        << ",\"delivered\":" << link.delivered
        << ",\"queue_drops\":" << link.queue_drops
        << ",\"loss_drops\":" << link.loss_drops
        << ",\"utilization\":" << format_double(link.utilization) << "}";
  }
  out << "]}";
}

}  // namespace

void ResultSet::write_json(std::ostream& out) const {
  out << "{\n  \"schema\":\"" << kResultSchema << "\",\n  \"records\":[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    write_record(out, records[i]);
    if (i + 1 < records.size()) out << ",";
    out << "\n";
  }
  out << "  ]\n}\n";
}

std::string ResultSet::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void ResultSet::write_csv(std::ostream& out) const {
  out << "scenario,params,seed,messages,session_index,sessions,ok,error,"
         "theory_quality,measured_quality,elapsed_s,events,generated,on_time,"
         "late,retransmissions,duplicates,gave_up,delay_mean_s,delay_p50_s,"
         "delay_p99_s,policy,arrivals,admitted,rejected,expired,"
         "admission_rate,deadline_miss_rate,goodput_bps,warm_start,"
         "lp_warm_solves,lp_cold_solves,lp_fallbacks,forensics_misses";
  for (std::size_t c = 0; c < obs::kNumMissCauses; ++c) {
    out << ",cause_" << obs::to_string(static_cast<obs::MissCause>(c));
  }
  out << ",shards\n";
  for (const RunRecord& record : records) {
    std::string params;
    for (const Param& param : record.params) {
      if (!params.empty()) params += ";";
      params += param.name + "=" + format_double(param.value);
    }
    std::string error = record.error;
    for (char& c : error) {
      if (c == ',' || c == '\n') c = ';';
    }
    std::string policy = record.policy;
    for (char& c : policy) {
      if (c == ',' || c == '\n') c = ';';
    }
    out << record.scenario << "," << params << "," << record.seed << ","
        << record.messages << "," << record.session_index << ","
        << record.sessions << "," << (record.ok ? "true" : "false") << ","
        << error << "," << format_double(record.theory_quality) << ","
        << format_double(record.measured_quality) << ","
        << format_double(record.elapsed_s) << "," << record.events << ","
        << record.trace.generated << "," << record.trace.on_time << ","
        << record.trace.late << "," << record.trace.retransmissions << ","
        << record.trace.duplicates << "," << record.trace.gave_up << ","
        << format_double(record.delay_mean_s) << ","
        << format_double(record.delay_p50_s) << ","
        << format_double(record.delay_p99_s) << "," << policy << ","
        << record.arrivals << "," << record.admitted << ","
        << record.rejected << "," << record.expired << ","
        << format_double(record.admission_rate) << ","
        << format_double(record.deadline_miss_rate) << ","
        << format_double(record.goodput_bps) << ","
        << (record.warm_start ? "true" : "false") << ","
        << record.lp_warm_solves << "," << record.lp_cold_solves << ","
        << record.lp_fallbacks << "," << record.forensics_misses;
    for (std::size_t c = 0; c < obs::kNumMissCauses; ++c) {
      out << "," << record.miss_causes.counts[c];
    }
    out << "," << record.shards << "\n";
  }
}

}  // namespace dmc::fleet
