#include "fleet/grids.h"

#include <stdexcept>
#include <utility>

#include "core/units.h"
#include "experiments/scenarios.h"

namespace dmc::fleet {
namespace {

JobSpec single_point(std::string scenario, std::vector<Param> params,
                     const core::PathSet& planning, const core::PathSet& truth,
                     const core::TrafficSpec& traffic,
                     const GridOptions& options, std::uint64_t seed) {
  SingleJob work;
  work.planning = planning;
  work.truth = truth;
  work.traffic = traffic;
  work.options.num_messages = options.messages;
  work.options.seed = seed;
  work.with_theory = options.with_theory;
  return JobSpec{std::move(scenario), std::move(params), std::move(work)};
}

int checked_replicates(const GridOptions& options) {
  if (options.replicates < 1) {
    throw std::invalid_argument("GridOptions: replicates must be >= 1");
  }
  return options.replicates;
}

}  // namespace

std::vector<JobSpec> fig2_rate_grid(const GridOptions& options) {
  const int replicates = checked_replicates(options);
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  std::vector<JobSpec> jobs;
  for (double rate = 10; rate <= 150; rate += 10) {
    for (int rep = 0; rep < replicates; ++rep) {
      // Replicate 0 keeps the historical bench seeds (base + rate, i.e.
      // 42 + rate) so the classic Figure 2 numbers are unchanged; extra
      // replicates get independent mixed streams.
      const std::uint64_t point_seed =
          options.base_seed + static_cast<std::uint64_t>(rate);
      const std::uint64_t seed =
          rep == 0 ? point_seed
                   : mix_seed(point_seed, static_cast<std::uint64_t>(rep));
      jobs.push_back(single_point(
          "fig2_rate",
          {{"rate_mbps", rate}, {"replicate", static_cast<double>(rep)}},
          planning, truth, exp::table4_traffic_rate(mbps(rate)), options,
          seed));
    }
  }
  return jobs;
}

std::vector<JobSpec> fig2_lifetime_grid(const GridOptions& options) {
  const int replicates = checked_replicates(options);
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  std::vector<JobSpec> jobs;
  for (double lifetime = 100; lifetime <= 1100; lifetime += 100) {
    for (int rep = 0; rep < replicates; ++rep) {
      // base * 100 + lifetime reproduces the historical 4200 + lifetime
      // seeds for the default base seed of 42.
      const std::uint64_t point_seed =
          options.base_seed * 100 + static_cast<std::uint64_t>(lifetime);
      const std::uint64_t seed =
          rep == 0 ? point_seed
                   : mix_seed(point_seed, static_cast<std::uint64_t>(rep));
      jobs.push_back(single_point(
          "fig2_lifetime",
          {{"lifetime_ms", lifetime}, {"replicate", static_cast<double>(rep)}},
          planning, truth, exp::table4_traffic_lifetime(ms(lifetime)), options,
          seed));
    }
  }
  return jobs;
}

std::vector<JobSpec> table4_rate_grid(const GridOptions& options) {
  const int replicates = checked_replicates(options);
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  std::vector<JobSpec> jobs;
  for (const double rate : {10, 20, 40, 60, 80, 100, 120, 140}) {
    for (int rep = 0; rep < replicates; ++rep) {
      const std::uint64_t seed =
          mix_seed(options.base_seed,
                   static_cast<std::uint64_t>(rate) * 1000 +
                       static_cast<std::uint64_t>(rep));
      jobs.push_back(single_point(
          "table4_rate",
          {{"rate_mbps", rate}, {"replicate", static_cast<double>(rep)}},
          planning, truth, exp::table4_traffic_rate(mbps(rate)), options,
          seed));
    }
  }
  return jobs;
}

std::vector<JobSpec> contention_grid(int max_sessions,
                                     double rate_per_session_bps,
                                     const GridOptions& options) {
  if (max_sessions < 1) {
    throw std::invalid_argument("contention_grid: need at least one session");
  }
  const int replicates = checked_replicates(options);
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  std::vector<JobSpec> jobs;
  for (int k = 1; k <= max_sessions; ++k) {
    for (int rep = 0; rep < replicates; ++rep) {
      MultiJob work;
      work.planning = planning;
      work.truth = truth;
      work.traffic.assign(static_cast<std::size_t>(k),
                          exp::table4_traffic_rate(rate_per_session_bps));
      work.options.num_messages = options.messages;
      work.options.seed =
          mix_seed(options.base_seed,
                   static_cast<std::uint64_t>(k) * 1000 +
                       static_cast<std::uint64_t>(rep));
      jobs.push_back(JobSpec{
          "contention",
          {{"sessions", static_cast<double>(k)},
           {"rate_mbps", rate_per_session_bps / 1e6},
           {"replicate", static_cast<double>(rep)}},
          std::move(work)});
    }
  }
  return jobs;
}

std::vector<JobSpec> server_grid(const ServerAxes& axes,
                                 const GridOptions& options) {
  if (axes.arrivals_per_s.empty() || axes.rate_mbps.empty() ||
      axes.lifetime_ms.empty() || axes.policies.empty() ||
      axes.shards.empty()) {
    throw std::invalid_argument("server_grid: empty axis");
  }
  if (axes.count < 1 || axes.mean_messages < 1.0) {
    throw std::invalid_argument(
        "server_grid: need at least one arrival and one message");
  }
  const int replicates = checked_replicates(options);
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  const bool shard_axis = axes.shards.size() > 1 || axes.shards.front() != 0;
  std::vector<JobSpec> jobs;
  // The cell index deliberately excludes the policy axis: every policy at
  // one (arrivals, load, tightness, replicate) point faces the identical
  // workload and network seed, so policy curves differ only by policy.
  std::uint64_t cell = 0;
  for (const double arrivals : axes.arrivals_per_s) {
    for (const double rate : axes.rate_mbps) {
      for (const double lifetime : axes.lifetime_ms) {
        for (int rep = 0; rep < replicates; ++rep) {
          // Nested mix: no replicate count can collide with another cell's
          // lane (cell * K + rep schemes alias once rep reaches K).
          const std::uint64_t point_seed =
              mix_seed(mix_seed(options.base_seed, cell),
                       static_cast<std::uint64_t>(rep));
          for (const std::string& policy : axes.policies) {
            for (const unsigned shards : axes.shards) {
              ServerJob work;
              work.config.planning_paths = planning;
              work.config.true_paths = truth;
              work.config.policy = policy;
              work.config.warm_start = axes.warm_start;
              work.config.collect_metrics = axes.collect_metrics;
              work.config.collect_forensics = axes.collect_forensics;
              work.config.seed = point_seed;
              work.workload.count = axes.count;
              work.workload.arrivals_per_s = arrivals;
              work.workload.mean_rate_bps = mbps(rate);
              work.workload.mean_lifetime_s = ms(lifetime);
              work.workload.mean_messages = axes.mean_messages;
              work.workload.seed = mix_seed(point_seed, 0xA881);
              work.shards = shards;
              std::vector<Param> params = {
                  {"arrivals_per_s", arrivals},
                  {"rate_mbps", rate},
                  {"lifetime_ms", lifetime},
                  {"replicate", static_cast<double>(rep)}};
              if (shard_axis) {
                params.push_back(
                    {"shards", static_cast<double>(shards)});
              }
              jobs.push_back(
                  JobSpec{"server", std::move(params), std::move(work)});
            }
          }
        }
        ++cell;
      }
    }
  }
  return jobs;
}

exp::Table fig2_table(const std::vector<RunRecord>& records,
                      const std::string& x_header, int x_precision) {
  exp::Table table({x_header, "multipath (sim)", "multipath (theory)",
                    "path 1 (theory)", "path 2 (theory)"});
  for (const RunRecord& record : records) {
    const double x = record.params.empty() ? 0.0 : record.params[0].value;
    if (!record.ok) {
      table.add_row({exp::Table::num(x, x_precision), "error: " + record.error,
                     "-", "-", "-"});
      continue;
    }
    const auto single = [&](std::size_t i) {
      return i < record.single_path_theory.size()
                 ? exp::Table::percent(record.single_path_theory[i])
                 : std::string("-");
    };
    table.add_row({exp::Table::num(x, x_precision),
                   exp::Table::percent(record.measured_quality),
                   exp::Table::percent(record.theory_quality), single(0),
                   single(1)});
  }
  return table;
}

}  // namespace dmc::fleet
