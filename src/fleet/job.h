// Fleet job specifications: a typed description of one grid cell that the
// engine can execute on any worker. Two shapes exist — the paper's classic
// isolated plan/simulate run, and the multi-session contention run where
// several independently-planned sessions share one network.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "core/path.h"
#include "core/planner.h"
#include "experiments/runner.h"
#include "fleet/engine.h"
#include "fleet/results.h"
#include "server/arrivals.h"
#include "server/server.h"

namespace dmc::fleet {

// One independent plan-then-simulate run (a cell of Figure 2 / Table IV).
struct SingleJob {
  core::PathSet planning;
  core::PathSet truth;
  core::TrafficSpec traffic;
  exp::RunOptions options;
  core::PlanOptions plan_options;
  bool with_theory = false;  // also compute the Figure 2 theory series
};

// N sessions planned independently (each unaware of the others, as real
// endpoints would be) but simulated concurrently over one shared network.
struct MultiJob {
  core::PathSet planning;
  core::PathSet truth;                     // the shared network
  std::vector<core::TrafficSpec> traffic;  // one spec per session
  // options.seed is the job's base seed; session s runs with
  // mix_seed(seed, s) so streams stay independent.
  exp::RunOptions options;
  core::PlanOptions plan_options;
  std::vector<double> start_at_s;  // optional stagger; empty = all at t=0
};

// One online-admission run (a cell of the server grid): a workload of
// staggered arrivals pushed through server::SessionServer under one policy.
// Yields a single aggregate record (admission rate, deadline-miss rate,
// goodput) with the summed per-session trace counters.
struct ServerJob {
  server::ServerConfig config;
  server::WorkloadOptions workload;
  // 0 = the classic single-loop SessionServer; > 0 = ShardedSessionServer
  // with this many logical shard slices. The job always executes its slices
  // on one thread — the fleet engine owns cross-job parallelism — which
  // changes nothing: slice results are worker-count independent.
  unsigned shards = 0;
};

struct JobSpec {
  std::string scenario;       // grid family, e.g. "fig2_rate"
  std::vector<Param> params;  // grid coordinates of this cell
  std::variant<SingleJob, MultiJob, ServerJob> work;
};

// Executes one job. Never throws: a failure comes back as one record with
// ok=false and the exception text in `error`. A MultiJob yields one record
// per session.
std::vector<RunRecord> run_job(const JobSpec& job);

// Maps one finished server run into the aggregate record shape of the
// server grid (shared by run_job and the dmc_server CLI). A conservation
// violation comes back as ok=false.
RunRecord server_record(std::string scenario, std::vector<Param> params,
                        const server::ServerConfig& config,
                        const server::ServerOutcome& outcome);

// Runs all jobs on the engine. Returned records are in job order (then
// session order) regardless of thread count or steal pattern — the
// determinism the JSON diffability contract relies on.
std::vector<RunRecord> run_jobs(Engine& engine,
                                const std::vector<JobSpec>& jobs);

}  // namespace dmc::fleet
