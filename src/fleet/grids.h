// The paper's evaluation grids expressed as fleet job specs, plus the
// cross-traffic contention family the paper never measured. Every grid
// derives per-job seeds deterministically, so a grid is reproducible at any
// thread count and replicate count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/table.h"
#include "fleet/job.h"

namespace dmc::fleet {

struct GridOptions {
  std::uint64_t messages = 100000;  // per point (per session for contention)
  std::uint64_t base_seed = 42;
  int replicates = 1;      // seed replicates per grid point
  bool with_theory = true;  // compute the Figure 2 theory series
};

// Figure 2 (top): quality vs data rate lambda, delta = 800 ms, Table III
// paths (conservative model delays vs raw true delays).
std::vector<JobSpec> fig2_rate_grid(const GridOptions& options = {});

// Figure 2 (bottom): quality vs lifetime delta, lambda = 90 Mbps.
std::vector<JobSpec> fig2_lifetime_grid(const GridOptions& options = {});

// Table IV (top) rates, delta = 800 ms: plan + simulate at each rate.
std::vector<JobSpec> table4_rate_grid(const GridOptions& options = {});

// Cross-traffic family: k = 1..max_sessions sessions, each planned in
// isolation at `rate_per_session_bps` (delta = 800 ms), contending on the
// shared Table III network. With the default 30 Mbps per session the shared
// 80+20 Mbps capacity saturates at k = 4.
std::vector<JobSpec> contention_grid(int max_sessions,
                                     double rate_per_session_bps,
                                     const GridOptions& options = {});

// Online-admission family: arrival rate x per-session load x deadline
// tightness, each cell run once per policy through server::SessionServer
// over the shared Table III network. The resulting admission-rate /
// goodput / deadline-miss curves are the server analogue of Figure 2.
struct ServerAxes {
  std::vector<double> arrivals_per_s = {5, 10, 20, 40};
  std::vector<double> rate_mbps = {20};      // per-session mean load
  std::vector<double> lifetime_ms = {800};   // deadline tightness
  std::vector<std::string> policies = {"always-admit", "feasibility-lp",
                                       "threshold"};
  int count = 200;             // arrivals per cell
  double mean_messages = 400;  // mean session size (messages)
  // Warm-started LP re-solves in every cell's server (ServerConfig::
  // warm_start); the per-record lp_* counters make the cold/warm split
  // visible in the exported results.
  bool warm_start = true;
  // Per-cell metric collection (ServerConfig::collect_metrics): each record
  // gains the deterministic dmc.obs.v1 "obs" block. Still bit-identical at
  // any thread count — wall-clock metrics never enter the snapshot.
  bool collect_metrics = false;
  // Per-cell deadline-miss forensics (ServerConfig::collect_forensics):
  // each record gains the per-cause "forensics" block. Also bit-identical
  // at any thread count — the analyzer is a pure function of the trace.
  bool collect_forensics = false;
  // Shard axis (ServerJob::shards): 0 = the classic single-loop server,
  // v > 0 = ShardedSessionServer with v logical slices. Like the policy
  // axis it is excluded from the cell seed, so every shard count at one
  // grid point faces the identical workload — the curves isolate the
  // effect of sharded admission. A "shards" param column is emitted only
  // when the axis differs from the default {0}, keeping pre-PR9 result
  // files byte-identical.
  std::vector<unsigned> shards = {0};
};

std::vector<JobSpec> server_grid(const ServerAxes& axes,
                                 const GridOptions& options = {});

// Renders the classic Figure 2 four-series table from fleet records; shared
// by bench_fig2_rate_sweep and bench_fig2_lifetime_sweep.
exp::Table fig2_table(const std::vector<RunRecord>& records,
                      const std::string& x_header, int x_precision = 0);

}  // namespace dmc::fleet
