// Typed result records for fleet runs and their JSON/CSV export. The JSON
// output is schema-versioned and deterministic (fixed key order, shortest
// round-trip number formatting, no timestamps or host information), so two
// runs of the same grid diff cleanly — including across thread counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/analysis.h"
#include "protocol/trace.h"

namespace dmc::fleet {

inline constexpr std::string_view kResultSchema = "dmc.fleet.result.v1";

// One grid coordinate, e.g. {"rate_mbps", 90}.
struct Param {
  std::string name;
  double value = 0.0;
};

// Shared-link totals of the run (forward/data direction).
struct LinkRecord {
  std::string name;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t loss_drops = 0;
  double utilization = 0.0;  // busy time / simulated duration
};

// One session of one grid cell. Single-session jobs produce exactly one
// record (session_index = -1); a k-session contention job produces k
// records that share scenario/params and differ in session_index.
struct RunRecord {
  std::string scenario;
  std::vector<Param> params;
  std::uint64_t seed = 0;
  std::uint64_t messages = 0;
  int session_index = -1;  // -1 = single-session job
  int sessions = 1;        // sessions contending in the job
  bool ok = true;
  std::string error;

  // LP predictions. theory_quality is the plan's expected quality (for a
  // contention record: the *isolated* prediction the session was planned
  // with). single_path_theory is the Figure 2 per-path series; empty when
  // the job did not request it.
  double theory_quality = 0.0;
  std::vector<double> single_path_theory;

  // Measured outcome.
  double measured_quality = 0.0;
  double elapsed_s = 0.0;
  std::uint64_t events = 0;
  proto::Trace trace;
  double delay_mean_s = 0.0;
  double delay_p50_s = 0.0;
  double delay_p99_s = 0.0;
  std::vector<LinkRecord> links;  // shared totals on multi-session records

  // Server-grid aggregates (one record per admission-control run). `policy`
  // is empty on classic records, and the JSON "server" object is emitted
  // only when it is set, so pre-server result files are byte-identical.
  std::string policy;
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;  // includes queued-then-admitted
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;   // queued until patience ran out
  double admission_rate = 0.0;
  double deadline_miss_rate = 0.0;  // over admitted traffic
  double goodput_bps = 0.0;
  double mean_queue_wait_s = 0.0;
  std::uint64_t replans = 0;
  std::uint64_t orphan_packets = 0;  // outlived their session's teardown
  // Warm-started LP re-solve accounting (PR 4): how much of the control
  // plane's solver work the stored-basis path absorbed. Deterministic, so
  // it lives in the diffable result schema; wall-clock speedups are the
  // bench_warm_start benchmark's job.
  bool warm_start = false;
  std::uint64_t lp_warm_solves = 0;
  std::uint64_t lp_cold_solves = 0;
  std::uint64_t lp_fallbacks = 0;
  // Logical shard count of a sharded server run (ServerOutcome::shards):
  // 0 for the classic single-loop server. Appended to the "server" JSON
  // object and as the trailing CSV column (PR 9 schema addition — earlier
  // substrings of the record are unchanged). Never the worker-thread
  // count, so records stay bit-identical across --shards values.
  std::uint64_t shards = 0;

  // Pre-serialized dmc.obs.v1 metric snapshot (obs::Snapshot::to_json).
  // Empty unless the job ran with metric collection; the record then gains
  // an "obs" object. Only deterministic (non-wallclock) metrics appear, so
  // the bit-identity guarantee across thread counts holds with it populated.
  std::string obs_json;

  // Deadline-miss forensics (obs::analyze over the run's trace ring). The
  // JSON "forensics" block is emitted only when has_forensics, so result
  // files from runs without it stay byte-identical; the per-cause counts
  // are a pure function of the trace, hence bit-identical at any thread
  // count. forensics_lower_bound flags ring-wraparound truncation.
  bool has_forensics = false;
  bool forensics_lower_bound = false;
  std::uint64_t forensics_misses = 0;
  obs::MissBreakdown miss_causes;
};

struct ResultSet {
  std::vector<RunRecord> records;

  void write_json(std::ostream& out) const;
  std::string json() const;

  // One row per record; params flatten into a "name=value;..." column.
  void write_csv(std::ostream& out) const;
};

// Shortest round-trip decimal representation (std::to_chars); non-finite
// values render as JSON null.
std::string format_double(double value);

// Escapes ", backslash and control characters for a JSON string literal.
std::string json_escape(std::string_view text);

}  // namespace dmc::fleet
