#include "fleet/job.h"

#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "protocol/multi_session.h"
#include "server/sharded_server.h"

namespace dmc::fleet {
namespace {

void fill_session(RunRecord& record, const proto::SessionResult& session) {
  record.measured_quality = session.measured_quality;
  record.elapsed_s = session.elapsed_s;
  record.events = session.events;
  record.trace = session.trace;
  record.delay_mean_s = session.delay_mean_s;
  record.delay_p50_s = session.delay_p50_s;
  record.delay_p99_s = session.delay_p99_s;
}

void fill_links(RunRecord& record, const core::PathSet& truth,
                const std::vector<sim::LinkStats>& forward_links,
                double elapsed_s) {
  record.links.reserve(forward_links.size());
  for (std::size_t i = 0; i < forward_links.size(); ++i) {
    const sim::LinkStats& stats = forward_links[i];
    LinkRecord link;
    link.name = i < truth.size() ? truth[i].name : "path" + std::to_string(i);
    link.offered = stats.offered;
    link.delivered = stats.delivered;
    link.queue_drops = stats.queue_drops;
    link.loss_drops = stats.loss_drops;
    link.utilization = elapsed_s > 0.0 ? stats.busy_time_s / elapsed_s : 0.0;
    record.links.push_back(std::move(link));
  }
}

std::vector<RunRecord> run_single(const JobSpec& job, const SingleJob& work) {
  RunRecord record;
  record.scenario = job.scenario;
  record.params = job.params;
  record.seed = work.options.seed;
  record.messages = work.options.num_messages;
  try {
    // One multipath LP solve serves both the theory column and the executed
    // plan; only the single-path series needs extra solves.
    const core::Plan plan =
        core::plan_max_quality(work.planning, work.traffic, work.plan_options);
    if (!plan.feasible()) {
      throw std::runtime_error("fleet: planning LP infeasible");
    }
    record.theory_quality = plan.quality();
    if (work.with_theory) {
      record.single_path_theory.reserve(work.planning.size());
      for (std::size_t i = 0; i < work.planning.size(); ++i) {
        record.single_path_theory.push_back(
            core::plan_single_path(work.planning, i, work.traffic,
                                   work.plan_options)
                .quality());
      }
    }
    const proto::SessionResult session =
        exp::simulate_plan(plan, work.truth, work.options);
    fill_session(record, session);
    fill_links(record, work.truth, session.forward_links, session.elapsed_s);
  } catch (const std::exception& e) {
    record.ok = false;
    record.error = e.what();
  }
  return {std::move(record)};
}

std::vector<RunRecord> run_multi(const JobSpec& job, const MultiJob& work) {
  const int sessions = static_cast<int>(work.traffic.size());
  std::vector<RunRecord> records;
  try {
    std::vector<proto::SessionSpec> specs;
    specs.reserve(work.traffic.size());
    for (std::size_t s = 0; s < work.traffic.size(); ++s) {
      proto::SessionConfig config = work.options.session;
      config.num_messages = work.options.num_messages;
      config.seed = mix_seed(work.options.seed, s);
      config.timeout_guard_s = work.options.timeout_guard_s;
      proto::SessionSpec spec{
          core::plan_max_quality(work.planning, work.traffic[s],
                                 work.plan_options),
          config, s < work.start_at_s.size() ? work.start_at_s[s] : 0.0};
      if (!spec.plan.feasible()) {
        throw std::runtime_error("fleet: session " + std::to_string(s) +
                                 " planning LP infeasible");
      }
      specs.push_back(std::move(spec));
    }
    const auto sim_paths =
        proto::to_sim_paths(work.truth, work.options.bandwidth_headroom,
                            work.options.queue_capacity);
    const proto::MultiSessionOutcome outcome =
        proto::run_multi_sessions(sim_paths, specs, work.options.seed);

    records.reserve(specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
      RunRecord record;
      record.scenario = job.scenario;
      record.params = job.params;
      record.seed = specs[s].config.seed;
      record.messages = work.options.num_messages;
      record.session_index = static_cast<int>(s);
      record.sessions = sessions;
      // The isolated LP prediction this session was planned with; the gap
      // to measured_quality is the cost of contention.
      record.theory_quality = specs[s].plan.quality();
      fill_session(record, outcome.sessions[s]);
      // Shared-link totals repeat on every session's record so each record
      // is self-contained.
      fill_links(record, work.truth, outcome.forward_links,
                 outcome.elapsed_s);
      records.push_back(std::move(record));
    }
  } catch (const std::exception& e) {
    RunRecord record;
    record.scenario = job.scenario;
    record.params = job.params;
    record.seed = work.options.seed;
    record.messages = work.options.num_messages;
    record.sessions = sessions;
    record.ok = false;
    record.error = e.what();
    records.assign(1, std::move(record));
  }
  return records;
}

std::vector<RunRecord> run_server_job(const JobSpec& job,
                                      const ServerJob& work) {
  try {
    const server::ServerOutcome outcome = [&work] {
      if (work.shards == 0) {
        return server::run_server(work.config, work.workload);
      }
      server::ServerConfig config = work.config;
      config.shard_slices = work.shards;
      config.shards = 1;  // one thread per job; the engine parallelizes
      return server::run_sharded_server(config, work.workload);
    }();
    return {server_record(job.scenario, job.params, work.config, outcome)};
  } catch (const std::exception& e) {
    RunRecord record;
    record.scenario = job.scenario;
    record.params = job.params;
    record.seed = work.config.seed;
    record.policy = work.config.policy;
    record.ok = false;
    record.error = e.what();
    return {std::move(record)};
  }
}

}  // namespace

RunRecord server_record(std::string scenario, std::vector<Param> params,
                        const server::ServerConfig& config,
                        const server::ServerOutcome& outcome) {
  RunRecord record;
  record.scenario = std::move(scenario);
  record.params = std::move(params);
  record.seed = config.seed;
  record.policy = config.policy;
  record.arrivals = outcome.arrivals;
  record.admitted = outcome.admitted;
  record.rejected = outcome.rejected;
  record.expired = outcome.expired;
  record.admission_rate = outcome.admission_rate;
  record.deadline_miss_rate = outcome.deadline_miss_rate;
  record.goodput_bps = outcome.goodput_bps;
  record.mean_queue_wait_s = outcome.mean_queue_wait_s;
  record.replans = outcome.replans;
  record.orphan_packets = outcome.orphans.total();
  record.warm_start = config.warm_start;
  record.lp_warm_solves = outcome.lp.warm_solves;
  record.lp_cold_solves = outcome.lp.cold_solves;
  record.lp_fallbacks = outcome.lp.fallbacks;
  record.shards = outcome.shards;
  record.sessions = static_cast<int>(outcome.arrivals);
  record.elapsed_s = outcome.elapsed_s;
  record.events = outcome.events;
  record.measured_quality = 1.0 - outcome.deadline_miss_rate;
  // Aggregate counters and the mean LP prediction over admitted sessions.
  double predicted_sum = 0.0;
  std::uint64_t admitted_sessions = 0;
  for (const server::SessionRecord& session : outcome.sessions) {
    record.messages += session.trace.generated;
    if (session.fate != server::RequestFate::admitted &&
        session.fate != server::RequestFate::queued_admitted) {
      continue;
    }
    ++admitted_sessions;
    predicted_sum += session.predicted_quality;
    record.trace.generated += session.trace.generated;
    record.trace.assigned_blackhole += session.trace.assigned_blackhole;
    record.trace.transmissions += session.trace.transmissions;
    record.trace.retransmissions += session.trace.retransmissions;
    record.trace.fast_retransmissions += session.trace.fast_retransmissions;
    record.trace.delivered_unique += session.trace.delivered_unique;
    record.trace.on_time += session.trace.on_time;
    record.trace.late += session.trace.late;
    record.trace.duplicates += session.trace.duplicates;
    record.trace.acks_sent += session.trace.acks_sent;
    record.trace.acks_received += session.trace.acks_received;
    record.trace.gave_up += session.trace.gave_up;
  }
  record.theory_quality =
      admitted_sessions > 0
          ? predicted_sum / static_cast<double>(admitted_sessions)
          : 0.0;
  fill_links(record, config.true_paths, outcome.forward_links,
             outcome.elapsed_s);
  if (!outcome.obs.empty()) record.obs_json = outcome.obs.to_json();
  if (outcome.forensics.has_value()) {
    record.has_forensics = true;
    record.forensics_lower_bound = outcome.forensics->lower_bound;
    record.forensics_misses = outcome.forensics->misses.total();
    record.miss_causes = outcome.forensics->misses;
  }
  if (!outcome.conserved) {
    record.ok = false;
    record.error = "server run violated link packet conservation";
  }
  return record;
}

std::vector<RunRecord> run_job(const JobSpec& job) {
  if (const SingleJob* single = std::get_if<SingleJob>(&job.work)) {
    return run_single(job, *single);
  }
  if (const ServerJob* server_job = std::get_if<ServerJob>(&job.work)) {
    return run_server_job(job, *server_job);
  }
  return run_multi(job, std::get<MultiJob>(job.work));
}

std::vector<RunRecord> run_jobs(Engine& engine,
                                const std::vector<JobSpec>& jobs) {
  std::vector<std::vector<RunRecord>> slots(jobs.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    tasks.push_back([&jobs, &slots, i] { slots[i] = run_job(jobs[i]); });
  }
  engine.run_tasks(std::move(tasks));

  std::vector<RunRecord> records;
  for (std::vector<RunRecord>& slot : slots) {
    for (RunRecord& record : slot) {
      records.push_back(std::move(record));
    }
  }
  return records;
}

}  // namespace dmc::fleet
