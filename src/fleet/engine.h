// Work-stealing thread-pool sweep engine. The paper's evaluation is a grid
// of independent plan/simulate runs; the engine shards any such grid across
// cores. Determinism contract: tasks own disjoint result slots and all
// randomness is derived from per-task seeds (mix_seed), so a grid produces
// bit-identical results at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace dmc::fleet {

// splitmix64 finalizer over (base, lane): derives an independent seed per
// job / session / replicate so sibling runs never share an RNG stream and
// adding a lane never perturbs another lane's draws.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t lane);

struct EngineOptions {
  // Worker threads; 0 means the DMC_THREADS environment override, falling
  // back to std::thread::hardware_concurrency().
  unsigned threads = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  unsigned threads() const { return threads_; }

  // Executes every task exactly once and blocks until all finish. Tasks are
  // dealt round-robin onto per-worker queues; an idle worker steals from
  // the back of its neighbours' queues, so uneven task durations balance
  // out. Tasks must synchronize any state they share; the first exception
  // escaping a task is rethrown here after the pool drains.
  void run_tasks(std::vector<std::function<void()>> tasks);

  // DMC_THREADS environment override; rejects non-numeric, zero, and
  // overflowing values with a clear error instead of misparsing.
  static unsigned env_threads(unsigned fallback);

 private:
  unsigned threads_ = 1;
};

}  // namespace dmc::fleet
