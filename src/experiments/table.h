// Fixed-width text tables and CSV output for the bench binaries, so every
// reproduced table/figure prints in a uniform, diffable format.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace dmc::exp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; cells are stringified values.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 4);
  static std::string percent(double fraction, int precision = 1);

  // Aligned text rendering.
  void print(std::ostream& out = std::cout) const;

  // CSV rendering (for plotting).
  void print_csv(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner for bench output.
void banner(const std::string& title, std::ostream& out = std::cout);

}  // namespace dmc::exp
