// The paper's concrete scenarios, so tests, benches and examples agree on
// the exact numbers.
#pragma once

#include "core/path.h"

namespace dmc::exp {

// Figure 1 / Section II: the intuition scenario. 10 Mbps of data with a
// 1-second lifetime over a fast-but-lossy path and a slow-but-clean path.
core::PathSet fig1_paths();
core::TrafficSpec fig1_traffic();

// Table III: path characteristics of Experiments 1 and 3 (raw values).
core::PathSet table3_paths();

// The conservative variant the paper feeds its model in Experiment 1
// (450 ms / 150 ms instead of 400/100, absorbing queueing deviation).
core::PathSet table3_model_paths();

// Table V: shifted-gamma paths of Experiment 2.
core::PathSet table5_paths();

// Experiment 2 traffic: lambda = 90 Mbps, delta = 750 ms.
core::TrafficSpec table5_traffic();

// Experiment 1 traffic for the rate sweep (delta = 800 ms) and for the
// lifetime sweep (lambda = 90 Mbps).
core::TrafficSpec table4_traffic_rate(double lambda_bps);
core::TrafficSpec table4_traffic_lifetime(double delta_s);

}  // namespace dmc::exp
