#include "experiments/table.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dmc::exp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::percent(double fraction, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << (fraction * 100.0)
      << "%";
  return out.str();
}

void Table::print(std::ostream& out) const {
  // DMC_CSV=1 switches every bench table to machine-readable output for
  // plotting pipelines.
  // dmc-lint: allow(det-getenv) output-format toggle only, values identical
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before any threads
  if (const char* env = std::getenv("DMC_CSV"); env && env[0] == '1') {
    print_csv(out);
    return;
  }
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
          << row[c];
    }
    out << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& out) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << row[c];
    }
    out << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

void banner(const std::string& title, std::ostream& out) {
  out << "\n=== " << title << " ===\n";
}

}  // namespace dmc::exp
