#include "experiments/runner.h"

#include <cstdlib>
#include <stdexcept>

#include "util/parse.h"

namespace dmc::exp {

std::uint64_t default_messages(std::uint64_t fallback) {
  // dmc-lint: allow(det-getenv) explicit workload-size override; seeds
  // and per-message results are unaffected
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before any threads
  const char* env = std::getenv("DMC_MESSAGES");
  if (env == nullptr) return fallback;
  return util::parse_positive<std::uint64_t>("DMC_MESSAGES", env);
}

RunOutcome run_planned(const core::PathSet& planning_paths,
                       const core::PathSet& true_paths,
                       const core::TrafficSpec& traffic,
                       const RunOptions& options,
                       const core::PlanOptions& plan_options) {
  core::Plan plan = core::plan_max_quality(planning_paths, traffic,
                                           plan_options);
  if (!plan.feasible()) {
    throw std::runtime_error("run_planned: planning LP infeasible");
  }
  RunOutcome outcome{plan, simulate_plan(plan, true_paths, options),
                     plan.quality()};
  return outcome;
}

proto::SessionResult simulate_plan(const core::Plan& plan,
                                   const core::PathSet& true_paths,
                                   const RunOptions& options) {
  proto::SessionConfig config = options.session;
  config.num_messages = options.num_messages;
  config.seed = options.seed;
  config.timeout_guard_s = options.timeout_guard_s;
  const auto sim_paths = proto::to_sim_paths(
      true_paths, options.bandwidth_headroom, options.queue_capacity);
  return proto::run_session(plan, sim_paths, config);
}

TheoryPoint theory_qualities(const core::PathSet& planning_paths,
                             const core::TrafficSpec& traffic,
                             const core::PlanOptions& plan_options) {
  TheoryPoint point;
  point.multipath =
      core::plan_max_quality(planning_paths, traffic, plan_options).quality();
  for (std::size_t i = 0; i < planning_paths.size(); ++i) {
    point.single_path.push_back(
        core::plan_single_path(planning_paths, i, traffic, plan_options)
            .quality());
  }
  return point;
}

}  // namespace dmc::exp
