#include "experiments/scenarios.h"

#include "core/units.h"

namespace dmc::exp {

core::PathSet fig1_paths() {
  core::PathSet paths;
  paths.add({.name = "high-bandwidth",
             .bandwidth_bps = mbps(10),
             .delay_s = ms(600),
             .loss_rate = 0.10});
  paths.add({.name = "low-latency",
             .bandwidth_bps = mbps(1),
             .delay_s = ms(200),
             .loss_rate = 0.0});
  return paths;
}

core::TrafficSpec fig1_traffic() {
  return {.rate_bps = mbps(10), .lifetime_s = seconds(1.0)};
}

core::PathSet table3_paths() {
  core::PathSet paths;
  paths.add({.name = "path1",
             .bandwidth_bps = mbps(80),
             .delay_s = ms(400),
             .loss_rate = 0.2});
  paths.add({.name = "path2",
             .bandwidth_bps = mbps(20),
             .delay_s = ms(100),
             .loss_rate = 0.0});
  return paths;
}

core::PathSet table3_model_paths() {
  core::PathSet paths;
  paths.add({.name = "path1",
             .bandwidth_bps = mbps(80),
             .delay_s = ms(450),
             .loss_rate = 0.2});
  paths.add({.name = "path2",
             .bandwidth_bps = mbps(20),
             .delay_s = ms(150),
             .loss_rate = 0.0});
  return paths;
}

core::PathSet table5_paths() {
  core::PathSet paths;
  core::PathSpec path1{.name = "path1",
                       .bandwidth_bps = mbps(80),
                       .loss_rate = 0.2};
  path1.delay_dist = stats::make_shifted_gamma(ms(400), 10.0, ms(4));
  paths.add(std::move(path1));
  core::PathSpec path2{.name = "path2",
                       .bandwidth_bps = mbps(20),
                       .loss_rate = 0.0};
  path2.delay_dist = stats::make_shifted_gamma(ms(100), 5.0, ms(2));
  paths.add(std::move(path2));
  return paths;
}

core::TrafficSpec table5_traffic() {
  return {.rate_bps = mbps(90), .lifetime_s = ms(750)};
}

core::TrafficSpec table4_traffic_rate(double lambda_bps) {
  return {.rate_bps = lambda_bps, .lifetime_s = ms(800)};
}

core::TrafficSpec table4_traffic_lifetime(double delta_s) {
  return {.rate_bps = mbps(90), .lifetime_s = delta_s};
}

}  // namespace dmc::exp
