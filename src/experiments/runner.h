// Experiment drivers shared by the bench binaries: run a planned strategy
// over a (possibly different) true network, and sweep helpers for the
// figure series.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/path.h"
#include "core/planner.h"
#include "protocol/session.h"

namespace dmc::exp {

struct RunOptions {
  std::uint64_t num_messages = 100000;
  std::uint64_t seed = 42;
  double timeout_guard_s = 0.0;
  double bandwidth_headroom = 1.0;  // true link rate / modeled bandwidth
  std::size_t queue_capacity = 100;
  proto::SessionConfig session;  // scheduler/ack knobs (messages/seed/guard
                                 // fields here are overwritten by the above)
};

// Number of messages honoring the DMC_MESSAGES environment override, so a
// full-fidelity 100k-message run can be dialed down for quick smoke runs.
// Throws std::invalid_argument on non-numeric, zero, or overflowing values
// instead of silently misparsing them.
std::uint64_t default_messages(std::uint64_t fallback = 100000);

// Plans on `planning_paths`, simulates on `true_paths`. The two differ in
// Experiment 1 (conservative vs raw delays) and Experiment 3 (estimation
// errors).
struct RunOutcome {
  core::Plan plan;                 // the plan that was executed
  proto::SessionResult session;    // measured outcome
  double theory_quality = 0.0;     // plan.quality() — the LP's prediction
};

RunOutcome run_planned(const core::PathSet& planning_paths,
                       const core::PathSet& true_paths,
                       const core::TrafficSpec& traffic,
                       const RunOptions& options = {},
                       const core::PlanOptions& plan_options = {});

// Simulates an existing plan over the true paths.
proto::SessionResult simulate_plan(const core::Plan& plan,
                                   const core::PathSet& true_paths,
                                   const RunOptions& options = {});

// Multipath & single-path theory quality for one traffic point (the four
// series of Figure 2 minus the simulation).
struct TheoryPoint {
  double multipath = 0.0;
  std::vector<double> single_path;  // one entry per path
};

TheoryPoint theory_qualities(const core::PathSet& planning_paths,
                             const core::TrafficSpec& traffic,
                             const core::PlanOptions& plan_options = {});

}  // namespace dmc::exp
