// Comparison strategies for the baseline bench:
//   * manual plans (evaluate any handcrafted allocation, e.g. the exact
//     solutions printed in the paper's Table IV);
//   * proportional split: traffic divided by bandwidth share, retransmitted
//     on the same path — multipath without deadline awareness;
//   * greedy flow assignment: whole-flow-to-best-combination in the spirit
//     of Wu et al. [18], which the paper contrasts with packet-level
//     splitting;
//   * duplication: every packet copied onto several paths simultaneously
//     (open-loop redundancy, Section IX-B), solved as a small LP over path
//     subsets.
#pragma once

#include <vector>

#include "core/planner.h"

namespace dmc::proto {

// Wraps a handcrafted allocation x (over the model's combinations) into a
// Plan so it can be simulated and evaluated like a solver plan.
core::Plan make_manual_plan(const core::PathSet& paths,
                            const core::TrafficSpec& traffic,
                            const std::vector<double>& x,
                            const core::ModelOptions& options = {});

// x_{i,i} proportional to b_i: spreads load by capacity, retransmits on the
// same path, never drops deliberately.
core::Plan make_proportional_split_plan(const core::PathSet& paths,
                                        const core::TrafficSpec& traffic,
                                        const core::ModelOptions& options = {});

// Assigns the flow greedily: best delivery-probability combination first,
// as much traffic as its bandwidth allows, then the next. Flow-level
// assignment cannot drop deliberately; leftovers go to the blackhole.
core::Plan make_greedy_flow_plan(const core::PathSet& paths,
                                 const core::TrafficSpec& traffic,
                                 const core::ModelOptions& options = {});

// Duplication baseline: packets are sent simultaneously on subsets of
// paths. Returns the optimal subset mix and its expected quality, solved
// exactly as an LP over the 2^n - 1 nonempty subsets.
struct DuplicationPlan {
  std::vector<std::vector<std::size_t>> subsets;  // real path indices
  std::vector<double> weights;                    // fraction per subset
  double quality = 0.0;
  double cost_per_s = 0.0;
  bool feasible = false;
};

DuplicationPlan plan_duplication(const core::PathSet& paths,
                                 const core::TrafficSpec& traffic);

}  // namespace dmc::proto
