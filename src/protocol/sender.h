// Client side of the deadline-aware protocol.
//
// The sender generates messages at the application rate lambda, assigns
// each to a path combination with a scheduler (Algorithm 1 by default),
// transmits and retransmits according to the plan's timeouts, drops
// messages assigned to the blackhole, and processes acknowledgments.
// Optional fast retransmit (Section VIII-D) advances to the next attempt
// after a configurable number of acks for packets sent later on the same
// path (per-path reordering being unlikely in this architecture).
//
// Bookkeeping is allocation-free in steady state: combo programs are
// compiled once per plan (not per message), in-flight messages live in a
// sliding ring indexed by sequence number, per-path send order lives in
// rings indexed by transmission counter, and acks are decoded in place.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/planner.h"
#include "core/scheduler.h"
#include "protocol/ack.h"
#include "protocol/seq_window.h"
#include "protocol/trace.h"
#include "sim/packet.h"
#include "sim/simulator.h"

namespace dmc::proto {

struct SenderConfig {
  std::uint64_t num_messages = 100000;
  std::size_t message_bytes = sim::kDefaultMessageBytes;
  // Extra slack added to every plan timeout at execution time (the paper
  // adds 100 ms in Experiment 1 to absorb queueing-delay deviation).
  double timeout_guard_s = 0.0;
  // Fast retransmit after this many acks for later same-path packets;
  // 0 disables the mechanism. TCP uses 3 (Section VIII-D).
  int fast_retransmit_dupacks = 0;
};

// Observer hooks for online estimation (estimation/adaptive.h) and tests.
struct SenderHooks {
  // rtt: echo-based round-trip sample for a first-attempt transmission on
  // `path` (Karn's rule: retransmitted attempts produce no sample).
  // dmc-lint: allow(alloc-function) installed once at session setup
  std::function<void(int path, double rtt)> on_rtt_sample;
  // A transmission on `path` was declared lost (timer or fast retransmit).
  // dmc-lint: allow(alloc-function) installed once at session setup
  std::function<void(int path)> on_loss_inferred;
  // A previously inferred loss on `path` turned out spurious: the ack for
  // the "lost" attempt arrived after the timer had already fired (Eifel-
  // style detection). Estimators should revert the loss sample.
  // dmc-lint: allow(alloc-function) installed once at session setup
  std::function<void(int path)> on_spurious_loss;
  // A transmission on `path` was acknowledged.
  // dmc-lint: allow(alloc-function) installed once at session setup
  std::function<void(int path)> on_ack_for_path;
  // A message was generated (fires before assignment).
  // dmc-lint: allow(alloc-function) installed once at session setup
  std::function<void(std::uint64_t seq)> on_generated;
  // All messages have been generated and the last outstanding one resolved
  // (acknowledged or given up): the sender will never emit another packet.
  // Fires at most once, possibly from inside ack processing — the callback
  // must not destroy the sender synchronously (defer teardown to a fresh
  // simulator event, as proto::SessionHost does).
  // dmc-lint: allow(alloc-function) installed once at session setup
  std::function<void()> on_drained;
};

class DeadlineSender {
 public:
  // dmc-lint: allow(alloc-function) bound once per session, not per event
  using DataSender = std::function<void(int path, sim::PooledPacket)>;

  // Upper bound on attempts per combo the execution engine supports; plans
  // beyond it are rejected loudly at compile_programs() time.
  static constexpr std::size_t kMaxAttempts = 16;

  DeadlineSender(sim::Simulator& simulator, core::Plan plan,
                 std::unique_ptr<core::ComboScheduler> scheduler,
                 SenderConfig config, Trace& trace);
  ~DeadlineSender();

  DeadlineSender(const DeadlineSender&) = delete;
  DeadlineSender& operator=(const DeadlineSender&) = delete;

  void set_data_sender(DataSender sender) { data_sender_ = std::move(sender); }
  void set_hooks(SenderHooks hooks) { hooks_ = std::move(hooks); }

  // Schedules message generation starting at the current simulation time.
  void start();

  // Hook for acknowledgment packets arriving from the network.
  void on_ack(int path, const sim::Packet& packet);

  // Swaps in a new plan and scheduler; messages already in flight keep the
  // timeouts they were sent with. Used by the adaptive controller.
  void replace_plan(core::Plan plan,
                    std::unique_ptr<core::ComboScheduler> scheduler);

  const core::Plan& plan() const { return plan_; }
  std::uint64_t outstanding() const { return outstanding_.size(); }
  // True once on_drained has fired (or would have: the hook is optional).
  bool drained() const { return drained_; }

 private:
  // A plan combination translated into real-path attempt sequences (-1 marks
  // the blackhole) plus execution timeouts. Compiled once per plan; each
  // in-flight message embeds a copy so it stays valid across replace_plan.
  struct ComboProgram {
    std::array<double, kMaxAttempts> timeouts{};
    std::array<std::int16_t, kMaxAttempts> attempt_paths{};
    std::uint8_t num_attempts = 0;
    std::uint8_t num_timeouts = 0;
  };

  // A message still being worked on: which attempt sequence it follows and
  // where it currently stands.
  struct Outstanding {
    ComboProgram program;
    int stage = 0;                     // current attempt index
    double created_at = 0.0;
    double sent_at = 0.0;              // when the current attempt went out
    sim::EventId timer;
    std::uint64_t path_tx_index = 0;   // per-path send counter of the
                                       // current attempt (fast retransmit)
    int dupacks = 0;
    std::uint16_t lost_attempt_mask = 0;  // attempts written off as lost
  };

  // Messages that resolved while carrying loss verdicts: a late ack for
  // one of their written-off attempts proves the loss was spurious.
  // Cold path — only populated when the on_spurious_loss hook is set.
  struct ResolvedRecord {
    std::array<std::int16_t, kMaxAttempts> attempt_paths{};
    std::uint8_t num_attempts = 0;
    std::uint16_t lost_attempt_mask = 0;
  };

  static std::vector<ComboProgram> compile_programs(const core::Model& model,
                                                    double guard);

  void generate_next();
  void maybe_drained();
  // Cached trace track for this session; resolved on the first traced event
  // (registration allocates, recording never does).
  std::uint16_t obs_track();
  void assign_and_send(std::uint64_t seq);
  void transmit(std::uint64_t seq, Outstanding& state, bool is_fast);
  void on_attempt_failed(std::uint64_t seq, bool is_fast);
  void acknowledge(std::uint64_t seq, bool count_hook);
  void register_dupack_scan(int real_path, std::uint64_t acked_tx_index);

  sim::Simulator& simulator_;
  core::Plan plan_;
  std::unique_ptr<core::ComboScheduler> scheduler_;
  SenderConfig config_;
  Trace& trace_;
  DataSender data_sender_;
  SenderHooks hooks_;

  double inter_message_s_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool drained_ = false;
  std::uint16_t obs_track_ = 0xFFFF;  // lazily resolved trace track
  // The self-scheduling message-generation event; tracked so mid-run
  // teardown (server admission loop) can cancel it in the destructor.
  sim::EventId generator_;

  // Per plan-combination execution programs for the current plan.
  std::vector<ComboProgram> programs_;

  // Sequence-indexed ring, ordered so cumulative acks can sweep a prefix.
  SeqSlab<Outstanding> outstanding_;
  // Bounded history for spurious-loss reversal after resolution (cold path,
  // hook-gated; stays a map deliberately).
  std::map<std::uint64_t, ResolvedRecord> resolved_with_losses_;
  static constexpr std::size_t kResolvedHistory = 8192;
  // Per real path: send counter and outstanding transmissions in send order
  // (tx index -> seq), for the dup-ack scan.
  std::vector<std::uint64_t> path_tx_counter_;
  std::vector<SeqSlab<std::uint64_t>> path_outstanding_;
  // Reused scratch buffers for ack processing (no per-ack allocation).
  std::vector<std::uint64_t> acked_scratch_;
  std::vector<std::uint64_t> to_fail_scratch_;
};

}  // namespace dmc::proto
