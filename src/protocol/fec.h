// Forward error correction as the open-loop alternative to retransmission
// (Section IX-B). The paper deliberately excludes coding from its model and
// argues its benefits are "questionable" because (a) recovering a loss
// requires waiting for enough of the group, and (b) correlated losses gut
// open-loop redundancy. This module makes that argument quantitative:
//
//   * an analytic model of (K, R) MDS block coding striped over the paths:
//     each group of K data packets gains R parity packets; any K of the
//     K + R in-time arrivals reconstruct everything;
//   * a simulated sender/receiver pair executing the same scheme over the
//     discrete-event network (including Gilbert-Elliott burst loss, which
//     the analytic i.i.d. model cannot see);
//   * a small planner that picks R and the striping subject to bandwidth.
//
// The companion bench (bench_fec) compares this against the paper's
// closed-loop LP: retransmission wins whenever the deadline admits a repair
// round trip; FEC only pays below that threshold, and bursts erode it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/path.h"
#include "protocol/trace.h"
#include "sim/network.h"

namespace dmc::proto {

struct FecConfig {
  int data_per_group = 8;   // K
  int parity_per_group = 2; // R
  // Stripe packets over paths proportionally to bandwidth (true) or send
  // each whole group on the least-loaded single path (false).
  bool stripe_across_paths = true;
};

// Analytic evaluation under i.i.d. losses and deterministic delays.
struct FecAnalysis {
  double quality = 0.0;         // P(data packet delivered in time)
  double overhead = 0.0;        // (K+R)/K - 1
  std::vector<double> send_rate_bps;  // per path, data + parity
  bool bandwidth_feasible = true;
  // Decomposition: P(own copy in time) and P(recovered via the group).
  double p_direct = 0.0;
  double p_recovery_gain = 0.0;
};

FecAnalysis analyze_fec(const core::PathSet& paths,
                        const core::TrafficSpec& traffic,
                        const FecConfig& config);

// Sweeps R in [0, max_parity] and returns the best feasible configuration.
FecConfig plan_fec(const core::PathSet& paths,
                   const core::TrafficSpec& traffic, int data_per_group,
                   int max_parity);

// Simulated execution over a sim::Network (no acks, no retransmission: the
// scheme is open-loop). Returns the measured on-time fraction; "on time"
// counts direct arrivals plus packets reconstructed once the K-th group
// member arrives within the original packet's deadline.
struct FecSessionResult {
  std::uint64_t generated = 0;
  std::uint64_t direct_on_time = 0;
  std::uint64_t recovered_on_time = 0;
  std::uint64_t lost = 0;
  double measured_quality = 0.0;
  double parity_rate_bps = 0.0;
};

struct FecSessionConfig {
  std::uint64_t num_messages = 100000;
  std::size_t message_bytes = 1024;
  std::uint64_t seed = 1;
};

FecSessionResult run_fec_session(const core::PathSet& paths,
                                 const core::TrafficSpec& traffic,
                                 const FecConfig& config,
                                 const std::vector<sim::PathConfig>& network,
                                 const FecSessionConfig& session = {});

}  // namespace dmc::proto
