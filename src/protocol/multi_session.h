// Multiple concurrent sessions over one shared simulated network. Every
// session is a full sender/receiver pair executing its own plan, but all
// sessions inject packets into the *same* sim::Network links, so they
// contend for bandwidth and queue slots — the cross-traffic regime the
// paper's single-session evaluation never measured. run_session() in
// session.h is the one-session special case of this runner.
#pragma once

#include <cstdint>
#include <vector>

#include "protocol/session.h"

namespace dmc::proto {

// One contending session: the plan it executes, its protocol knobs, and an
// optional start offset (seconds of simulated time before its first
// message), so arrival waves can be staggered.
struct SessionSpec {
  core::Plan plan;
  SessionConfig config;
  double start_at_s = 0.0;
};

struct MultiSessionOutcome {
  // Per-session traces/qualities/delays, in spec order. The link-stats
  // vectors inside these stay empty: links are shared, their totals live in
  // forward_links/reverse_links below.
  std::vector<SessionResult> sessions;
  double elapsed_s = 0.0;   // simulated duration until all sessions drained
  std::uint64_t events = 0; // simulator events executed in total
  std::vector<sim::LinkStats> forward_links;  // shared-link totals
  std::vector<sim::LinkStats> reverse_links;
};

// Simulates all `specs` concurrently over the shared `true_paths`. Every
// plan must be feasible and agree with `true_paths` on the path count.
// Deterministic for a fixed (specs, network_seed) input: packets carry
// their owning session id (sim::Packet::session) and each trace records it
// (Trace::session_id).
MultiSessionOutcome run_multi_sessions(
    const std::vector<sim::PathConfig>& true_paths,
    const std::vector<SessionSpec>& specs, std::uint64_t network_seed = 1);

}  // namespace dmc::proto
