#include "protocol/multi_session.h"

#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "protocol/receiver.h"
#include "protocol/sender.h"
#include "sim/simulator.h"

namespace dmc::proto {
namespace {

int lowest_delay_path(const std::vector<sim::PathConfig>& paths) {
  int best = 0;
  double best_delay = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    double d = paths[i].forward.prop_delay_s;
    if (paths[i].forward.extra_delay) {
      d += paths[i].forward.extra_delay->mean();
    }
    if (d < best_delay) {
      best_delay = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

MultiSessionOutcome run_multi_sessions(
    const std::vector<sim::PathConfig>& true_paths,
    const std::vector<SessionSpec>& specs, std::uint64_t network_seed) {
  if (specs.empty()) {
    throw std::invalid_argument(
        "run_multi_sessions: need at least one session");
  }
  for (std::size_t s = 0; s < specs.size(); ++s) {
    if (!specs[s].plan.feasible()) {
      throw std::invalid_argument("run_multi_sessions: session " +
                                  std::to_string(s) + " plan is not feasible");
    }
    if (specs[s].plan.model().real_paths().size() != true_paths.size()) {
      throw std::invalid_argument(
          "run_multi_sessions: session " + std::to_string(s) +
          " plan and network disagree on the number of paths");
    }
    if (specs[s].start_at_s < 0.0) {
      throw std::invalid_argument("run_multi_sessions: session " +
                                  std::to_string(s) + " starts before t=0");
    }
  }

  sim::Simulator simulator(network_seed);
  sim::Network network(simulator, true_paths);
  const int default_ack_path = lowest_delay_path(true_paths);

  // unique_ptrs: senders/receivers hold references to their Trace, and all
  // of them are captured by address in the routing lambdas below.
  std::vector<std::unique_ptr<Trace>> traces;
  std::vector<std::unique_ptr<DeadlineReceiver>> receivers;
  std::vector<std::unique_ptr<DeadlineSender>> senders;
  traces.reserve(specs.size());
  receivers.reserve(specs.size());
  senders.reserve(specs.size());

  for (std::size_t s = 0; s < specs.size(); ++s) {
    const SessionSpec& spec = specs[s];
    const auto session_id = static_cast<std::uint32_t>(s);
    auto trace = std::make_unique<Trace>();
    trace->session_id = session_id;

    ReceiverConfig receiver_config;
    receiver_config.lifetime_s = spec.plan.model().traffic().lifetime_s;
    receiver_config.ack_path =
        spec.config.ack_path >= 0 ? spec.config.ack_path : default_ack_path;
    receiver_config.ack_window_bits = spec.config.ack_window_bits;
    receiver_config.max_ack_bytes = spec.config.max_ack_bytes;
    receiver_config.ack_overhead_bytes = spec.config.ack_overhead_bytes;
    receiver_config.ack_every = spec.config.ack_every;
    auto receiver =
        std::make_unique<DeadlineReceiver>(simulator, receiver_config, *trace);

    SenderConfig sender_config;
    sender_config.num_messages = spec.config.num_messages;
    sender_config.message_bytes = spec.config.message_bytes;
    sender_config.timeout_guard_s = spec.config.timeout_guard_s;
    sender_config.fast_retransmit_dupacks = spec.config.fast_retransmit_dupacks;
    auto sender = std::make_unique<DeadlineSender>(
        simulator, spec.plan,
        core::make_scheduler(spec.config.scheduler, spec.plan.x(),
                             spec.config.seed ^ 0x5eedULL),
        sender_config, *trace);

    // Outbound packets are stamped with their session so the shared network
    // can route arrivals back to the right endpoint.
    receiver->set_ack_sender([&network, session_id](int path,
                                                    sim::Packet packet) {
      packet.session = session_id;
      network.server_send(path, std::move(packet));
    });
    sender->set_data_sender([&network, session_id](int path,
                                                   sim::Packet packet) {
      packet.session = session_id;
      network.client_send(path, std::move(packet));
    });

    traces.push_back(std::move(trace));
    receivers.push_back(std::move(receiver));
    senders.push_back(std::move(sender));
  }

  network.set_server_receiver([&receivers](int path, sim::Packet packet) {
    receivers.at(packet.session)->on_data(path, packet);
  });
  network.set_client_receiver([&senders](int path, sim::Packet packet) {
    senders.at(packet.session)->on_ack(path, packet);
  });

  for (std::size_t s = 0; s < specs.size(); ++s) {
    if (specs[s].start_at_s > 0.0) {
      simulator.at(specs[s].start_at_s,
                   [sender = senders[s].get()] { sender->start(); });
    } else {
      senders[s]->start();
    }
  }
  simulator.run();

  MultiSessionOutcome outcome;
  outcome.elapsed_s = simulator.now();
  outcome.events = simulator.events_executed();
  for (std::size_t i = 0; i < true_paths.size(); ++i) {
    outcome.forward_links.push_back(
        network.forward_link(static_cast<int>(i)).stats());
    outcome.reverse_links.push_back(
        network.reverse_link(static_cast<int>(i)).stats());
  }
  outcome.sessions.reserve(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    SessionResult result;
    result.trace = *traces[s];
    result.measured_quality = traces[s]->quality();
    result.elapsed_s = outcome.elapsed_s;
    result.events = outcome.events;
    stats::SampleSet& delays = receivers[s]->delay_samples();
    if (delays.count() > 0) {
      result.delay_mean_s = delays.mean();
      result.delay_p50_s = delays.quantile(0.5);
      result.delay_p99_s = delays.quantile(0.99);
    }
    outcome.sessions.push_back(std::move(result));
  }
  return outcome;
}

}  // namespace dmc::proto
