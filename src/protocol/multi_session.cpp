#include "protocol/multi_session.h"

#include <stdexcept>
#include <string>

#include "protocol/session_host.h"
#include "sim/simulator.h"

namespace dmc::proto {

// Batch wrapper over the incremental SessionHost: validate, start every
// session up front (staggered via start_at_s), run the simulator to drain,
// then stop them all and collect the shared-link totals.
MultiSessionOutcome run_multi_sessions(
    const std::vector<sim::PathConfig>& true_paths,
    const std::vector<SessionSpec>& specs, std::uint64_t network_seed) {
  if (specs.empty()) {
    throw std::invalid_argument(
        "run_multi_sessions: need at least one session");
  }
  for (std::size_t s = 0; s < specs.size(); ++s) {
    if (!specs[s].plan.feasible()) {
      throw std::invalid_argument("run_multi_sessions: session " +
                                  std::to_string(s) + " plan is not feasible");
    }
    if (specs[s].plan.model().real_paths().size() != true_paths.size()) {
      throw std::invalid_argument(
          "run_multi_sessions: session " + std::to_string(s) +
          " plan and network disagree on the number of paths");
    }
    if (specs[s].start_at_s < 0.0) {
      throw std::invalid_argument("run_multi_sessions: session " +
                                  std::to_string(s) + " starts before t=0");
    }
  }

  sim::Simulator simulator(network_seed);
  sim::Network network(simulator, true_paths);
  SessionHost host(simulator, network);

  std::vector<std::uint32_t> ids;
  ids.reserve(specs.size());
  for (const SessionSpec& spec : specs) {
    ids.push_back(host.start_session(spec));
  }
  simulator.run();

  MultiSessionOutcome outcome;
  outcome.elapsed_s = simulator.now();
  outcome.events = simulator.events_executed();
  for (std::size_t i = 0; i < true_paths.size(); ++i) {
    outcome.forward_links.push_back(
        network.forward_link(static_cast<int>(i)).stats());
    outcome.reverse_links.push_back(
        network.reverse_link(static_cast<int>(i)).stats());
  }
  outcome.sessions.reserve(specs.size());
  for (const std::uint32_t id : ids) {
    outcome.sessions.push_back(host.stop_session(id));
  }
  return outcome;
}

}  // namespace dmc::proto
