#include "protocol/receiver.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace dmc::proto {

DeadlineReceiver::DeadlineReceiver(sim::Simulator& simulator,
                                   ReceiverConfig config, Trace& trace)
    : simulator_(simulator), config_(config), trace_(trace) {
  if (config_.lifetime_s <= 0.0) {
    throw std::invalid_argument("DeadlineReceiver: lifetime must be > 0");
  }
  if (config_.ack_every == 0) {
    throw std::invalid_argument("DeadlineReceiver: ack_every must be >= 1");
  }
  if (obs::MetricRegistry* metrics = simulator_.obs().metrics) {
    // Per-message delay / lateness distributions: the measured counterpart
    // of the planned arrival-time distribution. Registration (allocating)
    // happens here, at session setup; record() on the delivery path is
    // allocation-free.
    delay_hist_ = &metrics->histogram(
        "dmc_proto_delay_seconds",
        "One-way delay of first arrivals (seconds)",
        obs::HistogramOptions{1e-4, 100.0, 8});
    late_by_hist_ = &metrics->histogram(
        "dmc_proto_late_by_seconds",
        "How far past the deadline late first arrivals landed (seconds)",
        obs::HistogramOptions{1e-4, 100.0, 8});
  }
}

std::uint16_t DeadlineReceiver::obs_track() {
  if (obs_track_ == obs::TraceRecorder::kNoTrack) {
    obs_track_ = simulator_.obs().trace->session_track(trace_.session_id);
  }
  return obs_track_;
}

bool DeadlineReceiver::already_received(std::uint64_t seq) const {
  return seq < cumulative_ || pending_.test(seq);
}

void DeadlineReceiver::mark_received(std::uint64_t seq) {
  highest_seen_ = std::max(highest_seen_, seq);
  if (seq < cumulative_) return;
  pending_.set(seq);
  while (pending_.test(cumulative_)) ++cumulative_;
  pending_.advance_floor(cumulative_);
}

sim::PooledPacket DeadlineReceiver::build_ack(
    const sim::Packet& packet) const {
  // Anchor the window at the newest arrivals rather than the cumulative
  // edge: under partial reliability the cumulative edge sticks at the first
  // permanently-lost packet, and with a large bandwidth-delay product the
  // window would never reach the packets currently in flight (the
  // Section VIII-C discussion). Recent packets are the ones whose
  // retransmission timers are still pending.
  const std::uint64_t bits_wanted = config_.ack_window_bits;
  std::uint64_t window_base = cumulative_;
  if (bits_wanted > 0 && highest_seen_ + 1 > bits_wanted) {
    window_base = std::max(cumulative_, highest_seen_ + 1 - bits_wanted);
  }
  const std::size_t bits =
      ack_truncated_bits(config_.ack_window_bits, config_.max_ack_bytes);

  sim::PooledPacket ack = simulator_.packets().acquire();
  ack->is_ack = true;
  ack->seq = packet.seq;
  ack->created_at = packet.created_at;
  std::uint8_t* out = ack->ack_payload.resize(ack_encoded_size(bits));
  encode_ack_into(out, cumulative_, window_base, packet.seq, packet.attempt,
                  bits, [this, window_base](std::size_t c) {
                    return pending_.word_at(window_base + c * 64);
                  });
  ack->size_bytes = config_.ack_overhead_bytes + ack->ack_payload.size();
  ack->sent_at = simulator_.now();
  return ack;
}

void DeadlineReceiver::on_data(int path, const sim::Packet& packet) {
  obs::TraceRecorder* tr = simulator_.obs().trace;
  if (already_received(packet.seq)) {
    ++trace_.duplicates;
    if (tr != nullptr) {
      tr->record(obs::Ev::msg_dup, simulator_.now(), obs_track(),
                 static_cast<std::uint32_t>(packet.seq),
                 static_cast<std::uint8_t>(path));
    }
  } else {
    mark_received(packet.seq);
    ++trace_.delivered_unique;
    const double delay = simulator_.now() - packet.created_at;
    delays_.add(delay);
    if (delay_hist_ != nullptr) delay_hist_->record(delay);
    const bool on_time = delay <= config_.lifetime_s;
    if (on_time) {
      ++trace_.on_time;
    } else {
      ++trace_.late;
      if (late_by_hist_ != nullptr) {
        late_by_hist_->record(delay - config_.lifetime_s);
      }
    }
    if (tr != nullptr) {
      const double late_by = on_time ? 0.0 : delay - config_.lifetime_s;
      tr->record(on_time ? obs::Ev::msg_deliver : obs::Ev::msg_late,
                 simulator_.now(), obs_track(),
                 static_cast<std::uint32_t>(packet.seq),
                 static_cast<std::uint8_t>(path),
                 static_cast<float>(late_by));
    }
    if (config_.verdict_hook) config_.verdict_hook(packet.seq, on_time);
  }

  // Acknowledge even duplicates: the sender may still be retransmitting.
  if (++data_since_ack_ >= config_.ack_every && ack_sender_) {
    data_since_ack_ = 0;
    ++trace_.acks_sent;
    ack_sender_(config_.ack_path, build_ack(packet));
  }
}

}  // namespace dmc::proto
