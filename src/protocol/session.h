// End-to-end wiring: a plan, a simulated network, a sender, and a receiver.
// run_session() is the reproduction of the paper's experiment loop: the
// client generates N timestamped messages at rate lambda, the server
// verifies deadlines and acknowledges on the lowest-delay path, and the
// measured quality is on_time / generated.
#pragma once

#include <cstdint>
#include <vector>

#include "core/planner.h"
#include "core/scheduler.h"
#include "protocol/trace.h"
#include "sim/link.h"
#include "sim/network.h"
#include "stats/summary.h"

namespace dmc::proto {

struct SessionConfig {
  std::uint64_t num_messages = 100000;  // paper: 100,000 messages
  std::size_t message_bytes = 1024;     // paper: 1024 B incl. header
  core::SchedulerKind scheduler = core::SchedulerKind::deficit;
  std::uint64_t seed = 1;
  double timeout_guard_s = 0.0;         // extra slack on plan timeouts
  int fast_retransmit_dupacks = 0;      // 0 = off (Section VIII-D)
  // Ack parameters (Section VIII-C).
  std::size_t ack_window_bits = 256;
  std::size_t max_ack_bytes = 64;
  std::size_t ack_overhead_bytes = 28;
  std::uint32_t ack_every = 1;
  // Ack return path; -1 = pick the true lowest-delay path automatically.
  int ack_path = -1;
};

struct SessionResult {
  Trace trace = {};
  double measured_quality = 0.0;  // on_time / generated
  double elapsed_s = 0.0;         // simulated duration
  std::uint64_t events = 0;       // simulator events executed
  std::vector<sim::LinkStats> forward_links;
  std::vector<sim::LinkStats> reverse_links;
  // One-way delay of first arrivals: mean / p50 / p99 (seconds).
  double delay_mean_s = 0.0;
  double delay_p50_s = 0.0;
  double delay_p99_s = 0.0;
};

// Simulates `plan` over the given *true* network paths (which may differ
// from the paths the plan was computed for — that gap is Experiment 3).
SessionResult run_session(const core::Plan& plan,
                          const std::vector<sim::PathConfig>& true_paths,
                          const SessionConfig& config = {});

// Converts true path characteristics into simulator link configs. The
// reverse (ack) direction mirrors the forward one, like a bidirectional
// point-to-point channel. `bandwidth_headroom` scales the link rate above
// the modeled bandwidth (Experiment 2 over-provisions to isolate the delay
// distribution from queueing).
std::vector<sim::PathConfig> to_sim_paths(const core::PathSet& paths,
                                          double bandwidth_headroom = 1.0,
                                          std::size_t queue_capacity = 100);

}  // namespace dmc::proto
