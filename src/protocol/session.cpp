#include "protocol/session.h"

#include <stdexcept>
#include <utility>

#include "protocol/multi_session.h"

namespace dmc::proto {

std::vector<sim::PathConfig> to_sim_paths(const core::PathSet& paths,
                                          double bandwidth_headroom,
                                          std::size_t queue_capacity) {
  if (bandwidth_headroom < 1.0) {
    throw std::invalid_argument("to_sim_paths: headroom must be >= 1");
  }
  std::vector<sim::PathConfig> out;
  out.reserve(paths.size());
  for (const core::PathSpec& p : paths) {
    if (p.is_blackhole()) {
      throw std::invalid_argument("to_sim_paths: blackhole is not simulated");
    }
    sim::LinkConfig link;
    link.rate_bps = p.bandwidth_bps * bandwidth_headroom;
    link.loss_rate = p.loss_rate;
    link.queue_capacity = queue_capacity;
    if (p.is_random()) {
      // Shift goes into the fixed propagation part when known; the sampled
      // component rides on top. For arbitrary distributions, sample the
      // whole delay (prop = 0).
      link.prop_delay_s = p.delay_dist->min_support();
      link.extra_delay = stats::make_shifted(p.delay_dist,
                                             -p.delay_dist->min_support());
    } else {
      link.prop_delay_s = p.delay_s;
    }
    out.push_back(sim::symmetric_path(link, p.name));
  }
  return out;
}

// The classic single-session entry point is the one-element special case of
// the multi-session runner (protocol/multi_session.h).
SessionResult run_session(const core::Plan& plan,
                          const std::vector<sim::PathConfig>& true_paths,
                          const SessionConfig& config) {
  if (!plan.feasible()) {
    throw std::invalid_argument("run_session: plan is not feasible");
  }
  if (plan.model().real_paths().size() != true_paths.size()) {
    throw std::invalid_argument(
        "run_session: plan and network disagree on the number of paths");
  }
  MultiSessionOutcome outcome = run_multi_sessions(
      true_paths, {SessionSpec{plan, config, 0.0}}, config.seed);
  SessionResult result = std::move(outcome.sessions.front());
  result.forward_links = std::move(outcome.forward_links);
  result.reverse_links = std::move(outcome.reverse_links);
  return result;
}

}  // namespace dmc::proto
