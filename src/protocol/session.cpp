#include "protocol/session.h"

#include <limits>
#include <memory>
#include <stdexcept>

#include "protocol/receiver.h"
#include "protocol/sender.h"
#include "sim/simulator.h"

namespace dmc::proto {

std::vector<sim::PathConfig> to_sim_paths(const core::PathSet& paths,
                                          double bandwidth_headroom,
                                          std::size_t queue_capacity) {
  if (bandwidth_headroom < 1.0) {
    throw std::invalid_argument("to_sim_paths: headroom must be >= 1");
  }
  std::vector<sim::PathConfig> out;
  out.reserve(paths.size());
  for (const core::PathSpec& p : paths) {
    if (p.is_blackhole()) {
      throw std::invalid_argument("to_sim_paths: blackhole is not simulated");
    }
    sim::LinkConfig link;
    link.rate_bps = p.bandwidth_bps * bandwidth_headroom;
    link.loss_rate = p.loss_rate;
    link.queue_capacity = queue_capacity;
    if (p.is_random()) {
      // Shift goes into the fixed propagation part when known; the sampled
      // component rides on top. For arbitrary distributions, sample the
      // whole delay (prop = 0).
      link.prop_delay_s = p.delay_dist->min_support();
      link.extra_delay = stats::make_shifted(p.delay_dist,
                                             -p.delay_dist->min_support());
    } else {
      link.prop_delay_s = p.delay_s;
    }
    out.push_back(sim::symmetric_path(link, p.name));
  }
  return out;
}

namespace {

int lowest_delay_path(const std::vector<sim::PathConfig>& paths) {
  int best = 0;
  double best_delay = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    double d = paths[i].forward.prop_delay_s;
    if (paths[i].forward.extra_delay) {
      d += paths[i].forward.extra_delay->mean();
    }
    if (d < best_delay) {
      best_delay = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

SessionResult run_session(const core::Plan& plan,
                          const std::vector<sim::PathConfig>& true_paths,
                          const SessionConfig& config) {
  if (!plan.feasible()) {
    throw std::invalid_argument("run_session: plan is not feasible");
  }
  if (plan.model().real_paths().size() != true_paths.size()) {
    throw std::invalid_argument(
        "run_session: plan and network disagree on the number of paths");
  }

  sim::Simulator simulator(config.seed);
  sim::Network network(simulator, true_paths);

  Trace trace;

  ReceiverConfig receiver_config;
  receiver_config.lifetime_s = plan.model().traffic().lifetime_s;
  receiver_config.ack_path = config.ack_path >= 0
                                 ? config.ack_path
                                 : lowest_delay_path(true_paths);
  receiver_config.ack_window_bits = config.ack_window_bits;
  receiver_config.max_ack_bytes = config.max_ack_bytes;
  receiver_config.ack_overhead_bytes = config.ack_overhead_bytes;
  receiver_config.ack_every = config.ack_every;
  DeadlineReceiver receiver(simulator, receiver_config, trace);

  SenderConfig sender_config;
  sender_config.num_messages = config.num_messages;
  sender_config.message_bytes = config.message_bytes;
  sender_config.timeout_guard_s = config.timeout_guard_s;
  sender_config.fast_retransmit_dupacks = config.fast_retransmit_dupacks;
  DeadlineSender sender(simulator, plan,
                        core::make_scheduler(config.scheduler, plan.x(),
                                             config.seed ^ 0x5eedULL),
                        sender_config, trace);

  receiver.set_ack_sender([&network](int path, sim::Packet packet) {
    network.server_send(path, std::move(packet));
  });
  sender.set_data_sender([&network](int path, sim::Packet packet) {
    network.client_send(path, std::move(packet));
  });
  network.set_server_receiver([&receiver](int path, sim::Packet packet) {
    receiver.on_data(path, packet);
  });
  network.set_client_receiver([&sender](int path, sim::Packet packet) {
    sender.on_ack(path, packet);
  });

  sender.start();
  simulator.run();

  SessionResult result;
  result.trace = trace;
  result.measured_quality = trace.quality();
  result.elapsed_s = simulator.now();
  result.events = simulator.events_executed();
  for (std::size_t i = 0; i < true_paths.size(); ++i) {
    result.forward_links.push_back(network.forward_link(static_cast<int>(i)).stats());
    result.reverse_links.push_back(network.reverse_link(static_cast<int>(i)).stats());
  }
  stats::SampleSet& delays = receiver.delay_samples();
  if (delays.count() > 0) {
    result.delay_mean_s = delays.mean();
    result.delay_p50_s = delays.quantile(0.5);
    result.delay_p99_s = delays.quantile(0.99);
  }
  return result;
}

}  // namespace dmc::proto
