#include "protocol/ack.h"

namespace dmc::proto {

std::vector<std::uint8_t> encode_ack(const AckFrame& frame,
                                     std::size_t max_bytes) {
  const std::size_t bits = ack_truncated_bits(frame.window.size(), max_bytes);
  std::vector<std::uint8_t> out(ack_encoded_size(bits));
  encode_ack_into(out.data(), frame.cumulative, frame.window_base,
                  frame.echo_seq, frame.echo_attempt, bits,
                  [&frame](std::size_t c) {
                    std::uint64_t word = 0;
                    const std::size_t base = c * 64;
                    const std::size_t n =
                        frame.window.size() - base < 64
                            ? frame.window.size() - base
                            : std::size_t{64};
                    for (std::size_t k = 0; k < n; ++k) {
                      if (frame.window[base + k]) {
                        word |= std::uint64_t{1} << k;
                      }
                    }
                    return word;
                  });
  return out;
}

AckFrame decode_ack(std::span<const std::uint8_t> bytes) {
  const AckView view(bytes);
  AckFrame frame;
  frame.cumulative = view.cumulative();
  frame.window_base = view.window_base();
  frame.echo_seq = view.echo_seq();
  frame.echo_attempt = view.echo_attempt();
  const std::size_t bits = view.window_bits();
  frame.window.resize(bits);
  for (std::size_t k = 0; k < bits; ++k) {
    frame.window[k] = view.window_bit(k);
  }
  return frame;
}

}  // namespace dmc::proto
