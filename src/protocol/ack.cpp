#include "protocol/ack.h"

#include <algorithm>
#include <stdexcept>

namespace dmc::proto {

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] |
                                    (static_cast<std::uint16_t>(in[at + 1])
                                     << 8));
}

}  // namespace

std::vector<std::uint8_t> encode_ack(const AckFrame& frame,
                                     std::size_t max_bytes) {
  if (max_bytes < kAckHeaderBytes) {
    throw std::invalid_argument("encode_ack: max_bytes below header size");
  }
  // Truncate the window from the tail so the frame fits.
  const std::size_t budget_bytes = max_bytes - kAckHeaderBytes;
  const std::size_t max_bits = std::min<std::size_t>(budget_bytes * 8, 0xffff);
  const std::size_t bits = std::min(frame.window.size(), max_bits);

  std::vector<std::uint8_t> out;
  out.reserve(kAckHeaderBytes + (bits + 7) / 8);
  put_u64(out, frame.cumulative);
  put_u64(out, frame.window_base);
  put_u64(out, frame.echo_seq);
  out.push_back(frame.echo_attempt);
  put_u16(out, static_cast<std::uint16_t>(bits));
  std::uint8_t current = 0;
  for (std::size_t k = 0; k < bits; ++k) {
    if (frame.window[k]) current |= static_cast<std::uint8_t>(1u << (k % 8));
    if (k % 8 == 7) {
      out.push_back(current);
      current = 0;
    }
  }
  if (bits % 8 != 0) out.push_back(current);
  return out;
}

AckFrame decode_ack(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kAckHeaderBytes) {
    throw std::invalid_argument("decode_ack: frame too short");
  }
  AckFrame frame;
  frame.cumulative = get_u64(bytes, 0);
  frame.window_base = get_u64(bytes, 8);
  frame.echo_seq = get_u64(bytes, 16);
  frame.echo_attempt = bytes[24];
  const std::size_t bits = get_u16(bytes, 25);
  if (bytes.size() < kAckHeaderBytes + (bits + 7) / 8) {
    throw std::invalid_argument("decode_ack: truncated window");
  }
  frame.window.resize(bits);
  for (std::size_t k = 0; k < bits; ++k) {
    const std::uint8_t byte = bytes[kAckHeaderBytes + k / 8];
    frame.window[k] = (byte >> (k % 8)) & 1u;
  }
  return frame;
}

}  // namespace dmc::proto
