#include "protocol/sender.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "core/units.h"
#include "obs/trace_recorder.h"

namespace dmc::proto {

std::vector<DeadlineSender::ComboProgram> DeadlineSender::compile_programs(
    const core::Model& model, double guard) {
  const auto& metrics = model.metrics();
  std::vector<ComboProgram> programs(metrics.size());
  const int offset = model.has_blackhole() ? 1 : 0;
  for (std::size_t c = 0; c < metrics.size(); ++c) {
    const core::ComboMetrics& m = metrics[c];
    if (m.attempts.size() > kMaxAttempts || m.timeouts.size() > kMaxAttempts) {
      throw std::invalid_argument(
          "DeadlineSender: combination exceeds kMaxAttempts attempts");
    }
    ComboProgram& p = programs[c];
    p.num_attempts = static_cast<std::uint8_t>(m.attempts.size());
    for (std::size_t i = 0; i < m.attempts.size(); ++i) {
      p.attempt_paths[i] =
          static_cast<std::int16_t>(static_cast<int>(m.attempts[i]) - offset);
    }
    p.num_timeouts = static_cast<std::uint8_t>(m.timeouts.size());
    for (std::size_t i = 0; i < m.timeouts.size(); ++i) {
      const double t = m.timeouts[i];
      p.timeouts[i] = std::isinf(t) ? t : t + guard;
    }
  }
  return programs;
}

DeadlineSender::DeadlineSender(sim::Simulator& simulator, core::Plan plan,
                               std::unique_ptr<core::ComboScheduler> scheduler,
                               SenderConfig config, Trace& trace)
    : simulator_(simulator),
      plan_(std::move(plan)),
      scheduler_(std::move(scheduler)),
      config_(config),
      trace_(trace) {
  if (!plan_.feasible()) {
    throw std::invalid_argument("DeadlineSender: plan is not feasible");
  }
  if (!scheduler_) {
    throw std::invalid_argument("DeadlineSender: null scheduler");
  }
  if (config_.num_messages == 0) {
    throw std::invalid_argument("DeadlineSender: zero messages");
  }
  const double lambda = plan_.model().traffic().rate_bps;
  inter_message_s_ =
      bytes_to_bits(static_cast<double>(config_.message_bytes)) / lambda;

  programs_ = compile_programs(plan_.model(), config_.timeout_guard_s);

  const std::size_t n = plan_.model().real_paths().size();
  path_tx_counter_.assign(n, 0);
  path_outstanding_.resize(n);
}

DeadlineSender::~DeadlineSender() {
  // Mid-run teardown: every pending event capturing `this` must be
  // cancelled, or the simulator would later call into a destroyed object.
  if (generator_.valid()) simulator_.cancel(generator_);
  for (std::uint64_t seq = outstanding_.front(); seq < outstanding_.end();
       ++seq) {
    const Outstanding* state = outstanding_.find(seq);
    if (state != nullptr && state->timer.valid()) {
      simulator_.cancel(state->timer);
    }
  }
}

void DeadlineSender::start() {
  generate_next();
}

void DeadlineSender::generate_next() {
  generator_ = sim::EventId{};
  if (next_seq_ >= config_.num_messages) {
    maybe_drained();
    return;
  }
  const std::uint64_t seq = next_seq_++;
  ++trace_.generated;
  if (hooks_.on_generated) hooks_.on_generated(seq);
  assign_and_send(seq);
  if (next_seq_ < config_.num_messages) {
    generator_ = simulator_.in(inter_message_s_, [this] { generate_next(); });
  }
  maybe_drained();
}

std::uint16_t DeadlineSender::obs_track() {
  if (obs_track_ == obs::TraceRecorder::kNoTrack) {
    obs_track_ = simulator_.obs().trace->session_track(trace_.session_id);
  }
  return obs_track_;
}

void DeadlineSender::maybe_drained() {
  if (drained_ || next_seq_ < config_.num_messages || !outstanding_.empty()) {
    return;
  }
  drained_ = true;
  if (hooks_.on_drained) hooks_.on_drained();
}

void DeadlineSender::assign_and_send(std::uint64_t seq) {
  const std::size_t combo = scheduler_->select();
  const ComboProgram& program = programs_[combo];

  if (program.attempt_paths[0] < 0) {
    ++trace_.assigned_blackhole;  // deliberate drop (Section V-C)
    if (obs::TraceRecorder* tr = simulator_.obs().trace) {
      tr->record(obs::Ev::msg_blackhole, simulator_.now(), obs_track(),
                 static_cast<std::uint32_t>(seq));
    }
    return;
  }

  Outstanding& state = outstanding_.emplace(seq);
  state = Outstanding{};  // the ring recycles cells; reset all fields
  state.program = program;
  state.created_at = simulator_.now();
  transmit(seq, state, /*is_fast=*/false);
}

void DeadlineSender::transmit(std::uint64_t seq, Outstanding& state,
                              bool is_fast) {
  const auto stage = static_cast<std::size_t>(state.stage);
  const int real_path = state.program.attempt_paths[stage];
  state.sent_at = simulator_.now();
  state.dupacks = 0;
  state.path_tx_index = path_tx_counter_[static_cast<std::size_t>(real_path)]++;
  path_outstanding_[static_cast<std::size_t>(real_path)].emplace(
      state.path_tx_index) = seq;

  sim::PooledPacket packet = simulator_.packets().acquire();
  packet->seq = seq;
  packet->created_at = state.created_at;
  packet->attempt = static_cast<std::uint8_t>(state.stage);
  packet->size_bytes = config_.message_bytes;
  packet->sent_at = state.sent_at;
  ++trace_.transmissions;
  if (state.stage > 0) {
    ++trace_.retransmissions;
    if (is_fast) ++trace_.fast_retransmissions;
  }
  if (obs::TraceRecorder* tr = simulator_.obs().trace) {
    const obs::Ev kind = state.stage == 0 ? obs::Ev::msg_tx
                         : is_fast        ? obs::Ev::msg_fast_retx
                                          : obs::Ev::msg_retx;
    tr->record(kind, simulator_.now(), obs_track(),
               static_cast<std::uint32_t>(seq),
               static_cast<std::uint8_t>(real_path));
  }
  if (data_sender_) data_sender_(real_path, std::move(packet));

  // Arm the retransmission timer unless this was the last attempt or the
  // next attempt is the blackhole ("send once, never retransmit").
  const bool has_next =
      stage + 1 < state.program.num_attempts &&
      state.program.attempt_paths[stage + 1] >= 0 &&
      stage < state.program.num_timeouts &&
      !std::isinf(state.program.timeouts[stage]);
  if (has_next) {
    state.timer = simulator_.in(state.program.timeouts[stage], [this, seq] {
      on_attempt_failed(seq, /*is_fast=*/false);
    });
  } else {
    // Final attempt: give up once the data is safely past its lifetime so
    // the bookkeeping for never-acknowledged messages is reclaimed.
    const double lifetime = plan_.model().traffic().lifetime_s;
    const double give_up_at = state.created_at + 2.0 * lifetime;
    const double delay = std::max(give_up_at - simulator_.now(), lifetime);
    state.timer = simulator_.in(delay, [this, seq] {
      on_attempt_failed(seq, /*is_fast=*/false);
    });
  }
}

void DeadlineSender::on_attempt_failed(std::uint64_t seq, bool is_fast) {
  Outstanding* found = outstanding_.find(seq);
  if (found == nullptr) return;  // already acknowledged
  Outstanding& state = *found;

  // Dup-ack evidence is circumstantial (reordering, ack loss); acting on it
  // only makes sense when a further attempt exists to fire. For the final
  // attempt, keep waiting for the conclusive timer instead of writing the
  // packet off early.
  const auto stage = static_cast<std::size_t>(state.stage);
  if (is_fast) {
    const bool next_exists = stage + 1 < state.program.num_attempts &&
                             state.program.attempt_paths[stage + 1] >= 0 &&
                             stage < state.program.num_timeouts &&
                             !std::isinf(state.program.timeouts[stage]);
    if (!next_exists) {
      state.dupacks = 0;
      return;
    }
  }

  // A fast retransmit races the timer; disarm it so the stage cannot be
  // advanced twice for the same failure.
  if (state.timer.valid()) {
    simulator_.cancel(state.timer);
    state.timer = sim::EventId{};
  }

  const int old_path = state.program.attempt_paths[stage];
  path_outstanding_[static_cast<std::size_t>(old_path)].erase(
      state.path_tx_index);
  state.lost_attempt_mask |= static_cast<std::uint16_t>(1u << stage);
  if (hooks_.on_loss_inferred) hooks_.on_loss_inferred(old_path);

  const bool has_next = stage + 1 < state.program.num_attempts &&
                        state.program.attempt_paths[stage + 1] >= 0 &&
                        stage < state.program.num_timeouts &&
                        !std::isinf(state.program.timeouts[stage]);
  if (!has_next) {
    ++trace_.gave_up;
    if (obs::TraceRecorder* tr = simulator_.obs().trace) {
      tr->record(obs::Ev::msg_gave_up, simulator_.now(), obs_track(),
                 static_cast<std::uint32_t>(seq),
                 static_cast<std::uint8_t>(old_path));
    }
    outstanding_.erase(seq);
    maybe_drained();
    return;
  }
  ++state.stage;
  transmit(seq, state, is_fast);
}

void DeadlineSender::acknowledge(std::uint64_t seq, bool count_hook) {
  Outstanding* found = outstanding_.find(seq);
  if (found == nullptr) return;
  Outstanding& state = *found;

  const int path =
      state.program.attempt_paths[static_cast<std::size_t>(state.stage)];
  path_outstanding_[static_cast<std::size_t>(path)].erase(state.path_tx_index);
  if (state.timer.valid()) simulator_.cancel(state.timer);
  if (count_hook && hooks_.on_ack_for_path) hooks_.on_ack_for_path(path);
  if (obs::TraceRecorder* tr = simulator_.obs().trace) {
    tr->record(obs::Ev::msg_ack, simulator_.now(), obs_track(),
               static_cast<std::uint32_t>(seq),
               static_cast<std::uint8_t>(path));
  }

  // Keep a bounded record when earlier attempts were written off as lost:
  // their acks may still arrive and prove the timeouts spurious.
  if (state.lost_attempt_mask != 0 && hooks_.on_spurious_loss) {
    if (resolved_with_losses_.size() >= kResolvedHistory) {
      resolved_with_losses_.erase(resolved_with_losses_.begin());
    }
    ResolvedRecord record;
    record.attempt_paths = state.program.attempt_paths;
    record.num_attempts = state.program.num_attempts;
    record.lost_attempt_mask = state.lost_attempt_mask;
    resolved_with_losses_.emplace(seq, record);
  }
  outstanding_.erase(seq);
  maybe_drained();
}

void DeadlineSender::register_dupack_scan(int real_path,
                                          std::uint64_t acked_tx_index) {
  if (config_.fast_retransmit_dupacks <= 0) return;
  auto& ordered = path_outstanding_[static_cast<std::size_t>(real_path)];
  // Every outstanding transmission sent on this path *before* the acked one
  // has been overtaken; per-path reordering being unlikely, count it.
  to_fail_scratch_.clear();
  const std::uint64_t limit = std::min(ordered.end(), acked_tx_index);
  for (std::uint64_t tx = ordered.front(); tx < limit; ++tx) {
    const std::uint64_t* seq = ordered.find(tx);
    if (seq == nullptr) continue;
    Outstanding* out = outstanding_.find(*seq);
    if (out == nullptr) continue;
    if (++out->dupacks >= config_.fast_retransmit_dupacks) {
      to_fail_scratch_.push_back(*seq);
    }
  }
  for (std::uint64_t seq : to_fail_scratch_) {
    on_attempt_failed(seq, /*is_fast=*/true);
  }
}

void DeadlineSender::on_ack(int path, const sim::Packet& packet) {
  (void)path;
  ++trace_.acks_received;
  const AckView view(packet.ack_payload.view());
  const std::uint64_t echo_seq = view.echo_seq();
  const std::uint8_t echo_attempt = view.echo_attempt();

  // RTT sample: only when the echoed attempt is the one currently in
  // flight and it was a first attempt (Karn's rule).
  Outstanding* echoed = outstanding_.find(echo_seq);
  if (echoed != nullptr) {
    if (static_cast<int>(echo_attempt) == echoed->stage) {
      const int tx_path = echoed->program.attempt_paths[static_cast<std::size_t>(
          echoed->stage)];
      if (hooks_.on_rtt_sample && echoed->stage == 0) {
        hooks_.on_rtt_sample(tx_path, simulator_.now() - echoed->sent_at);
      }
      register_dupack_scan(tx_path, echoed->path_tx_index);
      // The scan may have fast-retransmitted (and thus moved) other
      // messages, never the echoed one itself — its dupack count was reset
      // by neither path; re-find to stay safe against ring growth.
      echoed = outstanding_.find(echo_seq);
    } else if (static_cast<int>(echo_attempt) < echoed->stage &&
               echo_attempt < kMaxAttempts) {
      // The echoed attempt was already written off as lost and
      // retransmitted, yet its ack arrived: the timeout was spurious.
      const auto bit = static_cast<std::uint16_t>(1u << echo_attempt);
      if ((echoed->lost_attempt_mask & bit) != 0) {
        echoed->lost_attempt_mask &= static_cast<std::uint16_t>(~bit);
        if (hooks_.on_spurious_loss) {
          hooks_.on_spurious_loss(echoed->program.attempt_paths[echo_attempt]);
        }
      }
    }
  } else {
    // Already resolved: a late ack can still exonerate an attempt that was
    // written off before the message completed.
    const auto resolved = resolved_with_losses_.find(echo_seq);
    if (resolved != resolved_with_losses_.end() &&
        echo_attempt < kMaxAttempts) {
      const auto bit = static_cast<std::uint16_t>(1u << echo_attempt);
      if ((resolved->second.lost_attempt_mask & bit) != 0) {
        resolved->second.lost_attempt_mask &=
            static_cast<std::uint16_t>(~bit);
        if (hooks_.on_spurious_loss) {
          hooks_.on_spurious_loss(
              resolved->second.attempt_paths[echo_attempt]);
        }
        if (resolved->second.lost_attempt_mask == 0) {
          resolved_with_losses_.erase(resolved);
        }
      }
    }
  }

  // Clear everything this frame acknowledges: the echo, the cumulative
  // prefix, and the window bits. (The redundancy matters when earlier acks
  // were lost on the return path.)
  acknowledge(echo_seq, /*count_hook=*/true);
  acked_scratch_.clear();
  const std::uint64_t sweep_end =
      std::min(outstanding_.end(), view.cumulative());
  for (std::uint64_t seq = outstanding_.front(); seq < sweep_end; ++seq) {
    if (outstanding_.find(seq) != nullptr) acked_scratch_.push_back(seq);
  }
  const std::uint64_t window_base = view.window_base();
  const std::size_t nbits = view.window_bits();
  for (std::size_t w = 0; w * 64 < nbits; ++w) {
    std::uint64_t word = view.window_word(w);
    while (word != 0) {
      const int bit = std::countr_zero(word);
      word &= word - 1;
      const std::uint64_t seq =
          window_base + w * 64 + static_cast<unsigned>(bit);
      if (outstanding_.find(seq) != nullptr) acked_scratch_.push_back(seq);
    }
  }
  for (std::uint64_t seq : acked_scratch_) {
    acknowledge(seq, /*count_hook=*/false);
  }
}

void DeadlineSender::replace_plan(
    core::Plan plan, std::unique_ptr<core::ComboScheduler> scheduler) {
  if (!plan.feasible()) {
    throw std::invalid_argument("replace_plan: plan is not feasible");
  }
  if (!scheduler) throw std::invalid_argument("replace_plan: null scheduler");
  programs_ = compile_programs(plan.model(), config_.timeout_guard_s);
  plan_ = std::move(plan);
  scheduler_ = std::move(scheduler);
}

}  // namespace dmc::proto
