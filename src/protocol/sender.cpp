#include "protocol/sender.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/units.h"

namespace dmc::proto {

namespace {

// Translates a plan combination into real-path attempt sequences (-1 marks
// the blackhole) plus execution timeouts, so an in-flight message stays
// valid even if the plan is later replaced.
struct ComboProgram {
  std::vector<int> attempt_paths;
  std::vector<double> timeouts;
};

ComboProgram compile_combo(const core::Model& model, std::size_t combo,
                           double guard) {
  const core::ComboMetrics& metrics = model.metrics()[combo];
  ComboProgram program;
  program.attempt_paths.reserve(metrics.attempts.size());
  const int offset = model.has_blackhole() ? 1 : 0;
  for (std::size_t model_path : metrics.attempts) {
    program.attempt_paths.push_back(static_cast<int>(model_path) - offset);
  }
  program.timeouts.reserve(metrics.timeouts.size());
  for (double t : metrics.timeouts) {
    program.timeouts.push_back(std::isinf(t) ? t : t + guard);
  }
  return program;
}

}  // namespace

DeadlineSender::DeadlineSender(sim::Simulator& simulator, core::Plan plan,
                               std::unique_ptr<core::ComboScheduler> scheduler,
                               SenderConfig config, Trace& trace)
    : simulator_(simulator),
      plan_(std::move(plan)),
      scheduler_(std::move(scheduler)),
      config_(config),
      trace_(trace) {
  if (!plan_.feasible()) {
    throw std::invalid_argument("DeadlineSender: plan is not feasible");
  }
  if (!scheduler_) {
    throw std::invalid_argument("DeadlineSender: null scheduler");
  }
  if (config_.num_messages == 0) {
    throw std::invalid_argument("DeadlineSender: zero messages");
  }
  const double lambda = plan_.model().traffic().rate_bps;
  inter_message_s_ =
      bytes_to_bits(static_cast<double>(config_.message_bytes)) / lambda;

  const std::size_t n = plan_.model().real_paths().size();
  path_tx_counter_.assign(n, 0);
  path_outstanding_.resize(n);
}

DeadlineSender::~DeadlineSender() {
  // Mid-run teardown: every pending event capturing `this` must be
  // cancelled, or the simulator would later call into a destroyed object.
  if (generator_.valid()) simulator_.cancel(generator_);
  for (auto& [seq, state] : outstanding_) {
    if (state.timer.valid()) simulator_.cancel(state.timer);
  }
}

void DeadlineSender::start() {
  generate_next();
}

void DeadlineSender::generate_next() {
  generator_ = sim::EventId{};
  if (next_seq_ >= config_.num_messages) {
    maybe_drained();
    return;
  }
  const std::uint64_t seq = next_seq_++;
  ++trace_.generated;
  if (hooks_.on_generated) hooks_.on_generated(seq);
  assign_and_send(seq);
  if (next_seq_ < config_.num_messages) {
    generator_ = simulator_.in(inter_message_s_, [this] { generate_next(); });
  }
  maybe_drained();
}

void DeadlineSender::maybe_drained() {
  if (drained_ || next_seq_ < config_.num_messages || !outstanding_.empty()) {
    return;
  }
  drained_ = true;
  if (hooks_.on_drained) hooks_.on_drained();
}

void DeadlineSender::assign_and_send(std::uint64_t seq) {
  const std::size_t combo = scheduler_->select();
  const ComboProgram program =
      compile_combo(plan_.model(), combo, config_.timeout_guard_s);

  if (program.attempt_paths.front() < 0) {
    ++trace_.assigned_blackhole;  // deliberate drop (Section V-C)
    return;
  }

  Outstanding state;
  state.attempt_paths = program.attempt_paths;
  state.timeouts = program.timeouts;
  state.created_at = simulator_.now();
  auto [it, inserted] = outstanding_.emplace(seq, std::move(state));
  if (!inserted) throw std::logic_error("duplicate sequence number");
  transmit(seq, it->second, /*is_fast=*/false);
}

void DeadlineSender::transmit(std::uint64_t seq, Outstanding& state,
                              bool is_fast) {
  const int real_path =
      state.attempt_paths[static_cast<std::size_t>(state.stage)];
  state.sent_at = simulator_.now();
  state.dupacks = 0;
  state.path_tx_index = path_tx_counter_[static_cast<std::size_t>(real_path)]++;
  path_outstanding_[static_cast<std::size_t>(real_path)]
      .emplace(state.path_tx_index, seq);

  sim::Packet packet;
  packet.seq = seq;
  packet.created_at = state.created_at;
  packet.attempt = static_cast<std::uint8_t>(state.stage);
  packet.size_bytes = config_.message_bytes;
  packet.sent_at = state.sent_at;
  ++trace_.transmissions;
  if (state.stage > 0) {
    ++trace_.retransmissions;
    if (is_fast) ++trace_.fast_retransmissions;
  }
  if (data_sender_) data_sender_(real_path, std::move(packet));

  // Arm the retransmission timer unless this was the last attempt or the
  // next attempt is the blackhole ("send once, never retransmit").
  const auto stage = static_cast<std::size_t>(state.stage);
  const bool has_next =
      stage + 1 < state.attempt_paths.size() &&
      state.attempt_paths[stage + 1] >= 0 &&
      stage < state.timeouts.size() && !std::isinf(state.timeouts[stage]);
  if (has_next) {
    state.timer = simulator_.in(state.timeouts[stage], [this, seq] {
      on_attempt_failed(seq, /*is_fast=*/false);
    });
  } else {
    // Final attempt: give up once the data is safely past its lifetime so
    // the bookkeeping for never-acknowledged messages is reclaimed.
    const double lifetime = plan_.model().traffic().lifetime_s;
    const double give_up_at = state.created_at + 2.0 * lifetime;
    const double delay = std::max(give_up_at - simulator_.now(), lifetime);
    state.timer = simulator_.in(delay, [this, seq] {
      on_attempt_failed(seq, /*is_fast=*/false);
    });
  }
}

void DeadlineSender::on_attempt_failed(std::uint64_t seq, bool is_fast) {
  const auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;  // already acknowledged
  Outstanding& state = it->second;

  // Dup-ack evidence is circumstantial (reordering, ack loss); acting on it
  // only makes sense when a further attempt exists to fire. For the final
  // attempt, keep waiting for the conclusive timer instead of writing the
  // packet off early.
  if (is_fast) {
    const auto s = static_cast<std::size_t>(state.stage);
    const bool next_exists = s + 1 < state.attempt_paths.size() &&
                             state.attempt_paths[s + 1] >= 0 &&
                             s < state.timeouts.size() &&
                             !std::isinf(state.timeouts[s]);
    if (!next_exists) {
      state.dupacks = 0;
      return;
    }
  }

  // A fast retransmit races the timer; disarm it so the stage cannot be
  // advanced twice for the same failure.
  if (state.timer.valid()) {
    simulator_.cancel(state.timer);
    state.timer = sim::EventId{};
  }

  const auto stage = static_cast<std::size_t>(state.stage);
  const int old_path = state.attempt_paths[stage];
  path_outstanding_[static_cast<std::size_t>(old_path)].erase(
      state.path_tx_index);
  state.lost_attempt_mask |= static_cast<std::uint8_t>(1u << stage);
  if (hooks_.on_loss_inferred) hooks_.on_loss_inferred(old_path);

  const bool has_next = stage + 1 < state.attempt_paths.size() &&
                        state.attempt_paths[stage + 1] >= 0 &&
                        stage < state.timeouts.size() &&
                        !std::isinf(state.timeouts[stage]);
  if (!has_next) {
    ++trace_.gave_up;
    outstanding_.erase(it);
    maybe_drained();
    return;
  }
  ++state.stage;
  transmit(seq, state, is_fast);
}

void DeadlineSender::acknowledge(std::uint64_t seq, bool count_hook) {
  const auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;
  Outstanding& state = it->second;

  const int path = state.attempt_paths[static_cast<std::size_t>(state.stage)];
  path_outstanding_[static_cast<std::size_t>(path)].erase(state.path_tx_index);
  if (state.timer.valid()) simulator_.cancel(state.timer);
  if (count_hook && hooks_.on_ack_for_path) hooks_.on_ack_for_path(path);

  // Keep a bounded record when earlier attempts were written off as lost:
  // their acks may still arrive and prove the timeouts spurious.
  if (state.lost_attempt_mask != 0 && hooks_.on_spurious_loss) {
    if (resolved_with_losses_.size() >= kResolvedHistory) {
      resolved_with_losses_.erase(resolved_with_losses_.begin());
    }
    resolved_with_losses_.emplace(
        seq,
        ResolvedRecord{state.attempt_paths, state.lost_attempt_mask});
  }
  outstanding_.erase(it);
  maybe_drained();
}

void DeadlineSender::register_dupack_scan(int real_path,
                                          std::uint64_t acked_tx_index) {
  if (config_.fast_retransmit_dupacks <= 0) return;
  auto& ordered = path_outstanding_[static_cast<std::size_t>(real_path)];
  // Every outstanding transmission sent on this path *before* the acked one
  // has been overtaken; per-path reordering being unlikely, count it.
  std::vector<std::uint64_t> to_fail;
  for (auto it = ordered.begin();
       it != ordered.end() && it->first < acked_tx_index; ++it) {
    const auto out = outstanding_.find(it->second);
    if (out == outstanding_.end()) continue;
    if (++out->second.dupacks >= config_.fast_retransmit_dupacks) {
      to_fail.push_back(it->second);
    }
  }
  for (std::uint64_t seq : to_fail) on_attempt_failed(seq, /*is_fast=*/true);
}

void DeadlineSender::on_ack(int path, const sim::Packet& packet) {
  (void)path;
  ++trace_.acks_received;
  const AckFrame frame = decode_ack(packet.ack_payload);

  // RTT sample: only when the echoed attempt is the one currently in
  // flight and it was a first attempt (Karn's rule).
  const auto it = outstanding_.find(frame.echo_seq);
  if (it != outstanding_.end()) {
    if (static_cast<int>(frame.echo_attempt) == it->second.stage) {
      const int tx_path =
          it->second
              .attempt_paths[static_cast<std::size_t>(it->second.stage)];
      if (hooks_.on_rtt_sample && it->second.stage == 0) {
        hooks_.on_rtt_sample(tx_path, simulator_.now() - it->second.sent_at);
      }
      register_dupack_scan(tx_path, it->second.path_tx_index);
    } else if (static_cast<int>(frame.echo_attempt) < it->second.stage) {
      // The echoed attempt was already written off as lost and
      // retransmitted, yet its ack arrived: the timeout was spurious.
      const auto bit = static_cast<std::uint8_t>(1u << frame.echo_attempt);
      if ((it->second.lost_attempt_mask & bit) != 0) {
        it->second.lost_attempt_mask &= static_cast<std::uint8_t>(~bit);
        if (hooks_.on_spurious_loss) {
          hooks_.on_spurious_loss(
              it->second.attempt_paths[frame.echo_attempt]);
        }
      }
    }
  } else {
    // Already resolved: a late ack can still exonerate an attempt that was
    // written off before the message completed.
    const auto resolved = resolved_with_losses_.find(frame.echo_seq);
    if (resolved != resolved_with_losses_.end()) {
      const auto bit = static_cast<std::uint8_t>(1u << frame.echo_attempt);
      if ((resolved->second.lost_attempt_mask & bit) != 0) {
        resolved->second.lost_attempt_mask &= static_cast<std::uint8_t>(~bit);
        if (hooks_.on_spurious_loss) {
          hooks_.on_spurious_loss(
              resolved->second.attempt_paths[frame.echo_attempt]);
        }
        if (resolved->second.lost_attempt_mask == 0) {
          resolved_with_losses_.erase(resolved);
        }
      }
    }
  }

  // Clear everything this frame acknowledges: the echo, the cumulative
  // prefix, and the window bits. (The redundancy matters when earlier acks
  // were lost on the return path.)
  acknowledge(frame.echo_seq, /*count_hook=*/true);
  std::vector<std::uint64_t> acked;
  for (auto it2 = outstanding_.begin();
       it2 != outstanding_.end() && it2->first < frame.cumulative; ++it2) {
    acked.push_back(it2->first);
  }
  for (std::size_t k = 0; k < frame.window.size(); ++k) {
    if (!frame.window[k]) continue;
    const std::uint64_t seq = frame.window_base + k;
    if (outstanding_.contains(seq)) acked.push_back(seq);
  }
  for (std::uint64_t seq : acked) acknowledge(seq, /*count_hook=*/false);
}

void DeadlineSender::replace_plan(
    core::Plan plan, std::unique_ptr<core::ComboScheduler> scheduler) {
  if (!plan.feasible()) {
    throw std::invalid_argument("replace_plan: plan is not feasible");
  }
  if (!scheduler) throw std::invalid_argument("replace_plan: null scheduler");
  plan_ = std::move(plan);
  scheduler_ = std::move(scheduler);
}

}  // namespace dmc::proto
