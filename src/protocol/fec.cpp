#include "protocol/fec.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "core/units.h"
#include "sim/simulator.h"

namespace dmc::proto {

namespace {

// Assigns the K + R packets of a group to paths. Striped: largest-remainder
// proportional to bandwidth; single-path: everything on the path with the
// most spare bandwidth per group.
std::vector<std::size_t> group_assignment(const core::PathSet& paths,
                                          const FecConfig& config) {
  const int total = config.data_per_group + config.parity_per_group;
  std::vector<std::size_t> assignment;
  assignment.reserve(static_cast<std::size_t>(total));
  if (!config.stripe_across_paths || paths.size() == 1) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < paths.size(); ++i) {
      if (paths[i].bandwidth_bps > paths[best].bandwidth_bps) best = i;
    }
    assignment.assign(static_cast<std::size_t>(total), best);
    return assignment;
  }

  double total_bw = 0.0;
  for (const auto& p : paths) total_bw += p.bandwidth_bps;
  std::vector<int> count(paths.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  int used = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const double ideal = paths[i].bandwidth_bps / total_bw * total;
    count[i] = static_cast<int>(ideal);
    used += count[i];
    remainders.emplace_back(ideal - count[i], i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; used < total && k < remainders.size(); ++k) {
    ++count[remainders[k].second];
    ++used;
  }
  // Interleave deterministically: data packets rotate over the path pool.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (int k = 0; k < count[i]; ++k) assignment.push_back(i);
  }
  // Spread: stable rotation so consecutive packets hit different paths.
  std::vector<std::size_t> rotated;
  rotated.reserve(assignment.size());
  std::size_t step = paths.size();
  for (std::size_t offset = 0; offset < step; ++offset) {
    for (std::size_t k = offset; k < assignment.size(); k += step) {
      rotated.push_back(assignment[k]);
    }
  }
  return rotated;
}

}  // namespace

FecAnalysis analyze_fec(const core::PathSet& paths,
                        const core::TrafficSpec& traffic,
                        const FecConfig& config) {
  traffic.check();
  if (config.data_per_group < 1 || config.parity_per_group < 0) {
    throw std::invalid_argument("analyze_fec: bad group shape");
  }
  if (config.data_per_group + config.parity_per_group > 64) {
    throw std::invalid_argument("analyze_fec: group too large (max 64)");
  }
  const int k = config.data_per_group;
  const int total = k + config.parity_per_group;
  const double delta = traffic.lifetime_s;

  const auto assignment = group_assignment(paths, config);

  FecAnalysis analysis;
  analysis.overhead =
      static_cast<double>(config.parity_per_group) / k;

  // Per-packet in-time arrival probability (i.i.d. losses, deterministic
  // delays; the generation spread inside a group is negligible against the
  // lifetime and is ignored — documented approximation).
  std::vector<double> arrive(assignment.size());
  for (std::size_t j = 0; j < assignment.size(); ++j) {
    const core::PathSpec& path = paths[assignment[j]];
    const bool in_time = path.mean_delay_s() <= delta;
    arrive[j] = in_time ? (1.0 - path.loss_rate) : 0.0;
  }

  // Bandwidth: the group repeats every k data packets, so path i carries
  // lambda * (packets assigned to i) / k.
  analysis.send_rate_bps.assign(paths.size(), 0.0);
  for (std::size_t j = 0; j < assignment.size(); ++j) {
    analysis.send_rate_bps[assignment[j]] += traffic.rate_bps / k;
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (analysis.send_rate_bps[i] > paths[i].bandwidth_bps + 1e-9) {
      analysis.bandwidth_feasible = false;
    }
  }

  // Delivery probability of data packet i:
  //   P(own arrives) + P(own lost) * P(>= k in-time among the others).
  // Poisson-binomial tail by dynamic programming over the other packets.
  double quality_sum = 0.0;
  double direct_sum = 0.0;
  for (int i = 0; i < k; ++i) {
    const double own = arrive[static_cast<std::size_t>(i)];
    std::vector<double> dp(static_cast<std::size_t>(total), 0.0);
    dp[0] = 1.0;  // dp[c] = P(c of the processed others arrived in time)
    std::size_t processed = 0;
    for (int j = 0; j < total; ++j) {
      if (j == i) continue;
      const double p = arrive[static_cast<std::size_t>(j)];
      for (std::size_t c = processed + 1; c-- > 0;) {
        dp[c + 1] += dp[c] * p;
        dp[c] *= 1.0 - p;
      }
      ++processed;
    }
    double recover = 0.0;  // P(>= k of the total-1 others in time)
    for (std::size_t c = static_cast<std::size_t>(k); c < dp.size(); ++c) {
      recover += dp[c];
    }
    quality_sum += own + (1.0 - own) * recover;
    direct_sum += own;
  }
  analysis.quality = quality_sum / k;
  analysis.p_direct = direct_sum / k;
  analysis.p_recovery_gain = analysis.quality - analysis.p_direct;
  return analysis;
}

FecConfig plan_fec(const core::PathSet& paths,
                   const core::TrafficSpec& traffic, int data_per_group,
                   int max_parity) {
  FecConfig best;
  best.data_per_group = data_per_group;
  best.parity_per_group = 0;
  double best_quality = -1.0;
  for (int r = 0; r <= max_parity; ++r) {
    for (bool stripe : {true, false}) {
      FecConfig candidate{data_per_group, r, stripe};
      const FecAnalysis analysis = analyze_fec(paths, traffic, candidate);
      if (!analysis.bandwidth_feasible) continue;
      if (analysis.quality > best_quality + 1e-12) {
        best_quality = analysis.quality;
        best = candidate;
      }
    }
  }
  return best;
}

FecSessionResult run_fec_session(const core::PathSet& paths,
                                 const core::TrafficSpec& traffic,
                                 const FecConfig& config,
                                 const std::vector<sim::PathConfig>& network,
                                 const FecSessionConfig& session) {
  if (network.size() != paths.size()) {
    throw std::invalid_argument("run_fec_session: path count mismatch");
  }
  const int k = config.data_per_group;
  const int total = k + config.parity_per_group;
  const auto assignment = group_assignment(paths, config);

  sim::Simulator simulator(session.seed);
  sim::Network net(simulator, network);

  FecSessionResult result;

  // Receiver-side group tracking. Sequence numbers encode
  // (group, index-in-group): seq = group * total + index; indexes >= k are
  // parity. A data packet is on time if it arrives directly within its
  // deadline, or if the group's k-th in-time arrival lands within it.
  struct GroupState {
    int in_time_arrivals = 0;
    std::vector<std::uint64_t> missing_data_seqs;  // data seqs not yet seen
    std::vector<double> deadlines;                 // matching deadlines
    bool reconstructed = false;
  };
  std::map<std::uint64_t, GroupState> groups;

  net.set_server_receiver([&](int, sim::PooledPacket packet) {
    const std::uint64_t group_id =
        packet->seq / static_cast<std::uint64_t>(total);
    const auto index =
        static_cast<int>(packet->seq % static_cast<std::uint64_t>(total));
    GroupState& group = groups[group_id];
    if (group.reconstructed) return;

    const double now = simulator.now();
    const bool within_own_deadline =
        now - packet->created_at <= traffic.lifetime_s;
    if (index < k && within_own_deadline) {
      ++result.direct_on_time;
      // Remove from missing if it was registered (it may arrive before the
      // sender registered nothing — registration happens at send).
      auto& missing = group.missing_data_seqs;
      for (std::size_t m = 0; m < missing.size(); ++m) {
        if (missing[m] == packet->seq) {
          missing.erase(missing.begin() + static_cast<std::ptrdiff_t>(m));
          group.deadlines.erase(group.deadlines.begin() +
                                static_cast<std::ptrdiff_t>(m));
          break;
        }
      }
    }
    // Count this arrival toward reconstruction if it is "fresh enough" to
    // matter for any outstanding deadline (conservatively: always count;
    // the deadline check below gates what reconstruction rescues).
    ++group.in_time_arrivals;
    if (group.in_time_arrivals >= k && !group.reconstructed) {
      group.reconstructed = true;
      // Everything still missing is recovered *now*; rescue the data
      // packets whose deadlines have not yet passed.
      for (double deadline : group.deadlines) {
        if (now <= deadline) ++result.recovered_on_time;
      }
      group.missing_data_seqs.clear();
      group.deadlines.clear();
    }
  });

  // Sender: generates data packets at rate lambda; when a group's k data
  // packets are out, the R parity packets follow immediately.
  const double message_bits =
      8.0 * static_cast<double>(session.message_bytes);
  const double inter_message = message_bits / traffic.rate_bps;
  std::uint64_t next_data = 0;

  // dmc-lint: allow(alloc-function) one self-scheduling closure per run
  std::function<void()> generate = [&]() {
    if (next_data >= session.num_messages) return;
    const std::uint64_t group_id = next_data / static_cast<std::uint64_t>(k);
    const auto index = static_cast<int>(next_data % static_cast<std::uint64_t>(k));
    const std::uint64_t seq =
        group_id * static_cast<std::uint64_t>(total) +
        static_cast<std::uint64_t>(index);

    ++result.generated;
    sim::PooledPacket packet = simulator.packets().acquire();
    packet->seq = seq;
    packet->created_at = simulator.now();
    packet->size_bytes = session.message_bytes;
    // Register as missing until it arrives (or the group reconstructs).
    GroupState& group = groups[group_id];
    if (!group.reconstructed) {
      group.missing_data_seqs.push_back(seq);
      group.deadlines.push_back(simulator.now() + traffic.lifetime_s);
    }
    net.client_send(
        static_cast<int>(assignment[static_cast<std::size_t>(index)]),
        std::move(packet));

    if (index == k - 1) {
      // Group complete: emit parity packets back to back.
      for (int parity = 0; parity < config.parity_per_group; ++parity) {
        sim::PooledPacket p = simulator.packets().acquire();
        p->seq = group_id * static_cast<std::uint64_t>(total) +
                 static_cast<std::uint64_t>(k + parity);
        p->created_at = simulator.now();
        p->size_bytes = session.message_bytes;
        result.parity_rate_bps += message_bits;
        net.client_send(static_cast<int>(
                            assignment[static_cast<std::size_t>(k + parity)]),
                        std::move(p));
      }
    }
    ++next_data;
    simulator.in(inter_message, generate);
  };
  generate();
  simulator.run();

  // The receiver counted direct arrivals for registered packets; anything
  // neither direct nor recovered is lost.
  result.lost = result.generated - result.direct_on_time -
                result.recovered_on_time;
  result.measured_quality =
      result.generated > 0
          ? static_cast<double>(result.direct_on_time +
                                result.recovered_on_time) /
                static_cast<double>(result.generated)
          : 0.0;
  result.parity_rate_bps /= std::max(simulator.now(), 1e-9);
  return result;
}

}  // namespace dmc::proto
