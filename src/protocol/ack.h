// Acknowledgment frames (Section VIII-C).
//
// The paper prescribes that acks carry a combination of: (a) the range of
// packet numbers the receiver is expecting, (b) a bit vector describing
// what was received in a window of consecutive packets, and (c) the packet
// that was just received, for RTT estimation. This frame carries all three:
//
//   cumulative  — every seq < cumulative has been received (the low end of
//                 the expected range)
//   window      — received-flags for seqs [window_base, window_base + W)
//   echo_seq /  — the packet (and which of its transmission attempts)
//   echo_attempt  that triggered this ack
//
// Encoding is fixed-header + packed bit vector. When the in-flight window
// exceeds what max_bytes allows, the bit vector is truncated from the tail —
// exactly the high bandwidth-delay-product regime the paper discusses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dmc::proto {

struct AckFrame {
  std::uint64_t cumulative = 0;
  std::uint64_t window_base = 0;
  std::vector<bool> window;  // window[k] = received(window_base + k)
  std::uint64_t echo_seq = 0;
  std::uint8_t echo_attempt = 0;

  bool acknowledges(std::uint64_t seq) const {
    if (seq < cumulative) return true;
    if (seq == echo_seq) return true;
    if (seq >= window_base && seq - window_base < window.size()) {
      return window[static_cast<std::size_t>(seq - window_base)];
    }
    return false;
  }
};

// Header: cumulative(8) window_base(8) echo_seq(8) echo_attempt(1)
// window_bits(2) + ceil(bits/8) packed bytes.
inline constexpr std::size_t kAckHeaderBytes = 27;

// Encodes the frame into at most max_bytes; the window is truncated to fit.
std::vector<std::uint8_t> encode_ack(const AckFrame& frame,
                                     std::size_t max_bytes);

// Decodes a frame; throws std::invalid_argument on malformed input.
AckFrame decode_ack(std::span<const std::uint8_t> bytes);

}  // namespace dmc::proto
