// Acknowledgment frames (Section VIII-C).
//
// The paper prescribes that acks carry a combination of: (a) the range of
// packet numbers the receiver is expecting, (b) a bit vector describing
// what was received in a window of consecutive packets, and (c) the packet
// that was just received, for RTT estimation. This frame carries all three:
//
//   cumulative  — every seq < cumulative has been received (the low end of
//                 the expected range)
//   window      — received-flags for seqs [window_base, window_base + W)
//   echo_seq /  — the packet (and which of its transmission attempts)
//   echo_attempt  that triggered this ack
//
// Encoding is fixed-header + packed bit vector. When the in-flight window
// exceeds what max_bytes allows, the bit vector is truncated from the tail —
// exactly the high bandwidth-delay-product regime the paper discusses.
//
// Two interfaces share the wire format. The hot path is allocation-free:
// encode_ack_into() writes straight into a caller-owned buffer from 64-bit
// window chunks, and AckView reads a frame in place without materialising
// the bit vector. AckFrame plus encode_ack()/decode_ack() remain as the
// value-semantic interface for tests and offline tooling; both paths
// produce/consume byte-identical frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace dmc::proto {

struct AckFrame {
  std::uint64_t cumulative = 0;
  std::uint64_t window_base = 0;
  std::vector<bool> window;  // window[k] = received(window_base + k)
  std::uint64_t echo_seq = 0;
  std::uint8_t echo_attempt = 0;

  bool acknowledges(std::uint64_t seq) const {
    if (seq < cumulative) return true;
    if (seq == echo_seq) return true;
    if (seq >= window_base && seq - window_base < window.size()) {
      return window[static_cast<std::size_t>(seq - window_base)];
    }
    return false;
  }
};

// Header: cumulative(8) window_base(8) echo_seq(8) echo_attempt(1)
// window_bits(2) + ceil(bits/8) packed bytes.
inline constexpr std::size_t kAckHeaderBytes = 27;

// Window-bit count after truncating `window_bits` to what max_bytes (and the
// 16-bit length field) allow.
inline std::size_t ack_truncated_bits(std::size_t window_bits,
                                      std::size_t max_bytes) {
  if (max_bytes < kAckHeaderBytes) {
    throw std::invalid_argument("encode_ack: max_bytes below header size");
  }
  const std::size_t budget_bits = (max_bytes - kAckHeaderBytes) * 8;
  const std::size_t max_bits = budget_bits < 0xffff ? budget_bits : 0xffff;
  return window_bits < max_bits ? window_bits : max_bits;
}

inline std::size_t ack_encoded_size(std::size_t bits) {
  return kAckHeaderBytes + (bits + 7) / 8;
}

// Encodes a frame into `out`, which must hold ack_encoded_size(bits) bytes;
// `bits` must already be truncated via ack_truncated_bits(). The window
// content is supplied as 64-bit little-endian chunks: word_at(c) returns
// received-flags for seqs [window_base + 64c, window_base + 64c + 64), of
// which only the low `bits - 64c` are used for the final chunk.
template <typename WordFn>
void encode_ack_into(std::uint8_t* out, std::uint64_t cumulative,
                     std::uint64_t window_base, std::uint64_t echo_seq,
                     std::uint8_t echo_attempt, std::size_t bits,
                     WordFn word_at) {
  const auto put_u64 = [](std::uint8_t* p, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  put_u64(out, cumulative);
  put_u64(out + 8, window_base);
  put_u64(out + 16, echo_seq);
  out[24] = echo_attempt;
  out[25] = static_cast<std::uint8_t>(bits);
  out[26] = static_cast<std::uint8_t>(bits >> 8);
  std::uint8_t* body = out + kAckHeaderBytes;
  for (std::size_t c = 0; c * 64 < bits; ++c) {
    std::uint64_t word = word_at(c);
    std::size_t chunk_bits = bits - c * 64;
    if (chunk_bits >= 64) {
      chunk_bits = 64;
    } else {
      word &= (std::uint64_t{1} << chunk_bits) - 1;
    }
    const std::size_t chunk_bytes = (chunk_bits + 7) / 8;
    for (std::size_t j = 0; j < chunk_bytes; ++j) {
      body[c * 8 + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
}

// Zero-copy reader over an encoded frame. Validates the same invariants as
// decode_ack() but leaves the window packed in the caller's buffer.
class AckView {
 public:
  explicit AckView(std::span<const std::uint8_t> bytes) : p_(bytes.data()) {
    if (bytes.size() < kAckHeaderBytes) {
      throw std::invalid_argument("decode_ack: frame too short");
    }
    bits_ = static_cast<std::size_t>(p_[25]) |
            (static_cast<std::size_t>(p_[26]) << 8);
    if (bytes.size() < ack_encoded_size(bits_)) {
      throw std::invalid_argument("decode_ack: truncated window");
    }
  }

  std::uint64_t cumulative() const { return get_u64(0); }
  std::uint64_t window_base() const { return get_u64(8); }
  std::uint64_t echo_seq() const { return get_u64(16); }
  std::uint8_t echo_attempt() const { return p_[24]; }
  std::size_t window_bits() const { return bits_; }

  bool window_bit(std::size_t k) const {
    return (p_[kAckHeaderBytes + k / 8] >> (k % 8)) & 1u;
  }

  // Window bits [64w, 64w + 64) as a little-endian word, zero-padded past
  // window_bits(); encoding guarantees padding bits in the last byte are 0.
  std::uint64_t window_word(std::size_t w) const {
    const std::size_t first_byte = w * 8;
    const std::size_t total_bytes = (bits_ + 7) / 8;
    std::uint64_t word = 0;
    const std::size_t n =
        first_byte < total_bytes ? (total_bytes - first_byte < 8
                                        ? total_bytes - first_byte
                                        : std::size_t{8})
                                 : 0;
    for (std::size_t j = 0; j < n; ++j) {
      word |= static_cast<std::uint64_t>(p_[kAckHeaderBytes + first_byte + j])
              << (8 * j);
    }
    return word;
  }

 private:
  std::uint64_t get_u64(std::size_t at) const {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p_[at + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    return v;
  }

  const std::uint8_t* p_;
  std::size_t bits_;
};

// Encodes the frame into at most max_bytes; the window is truncated to fit.
std::vector<std::uint8_t> encode_ack(const AckFrame& frame,
                                     std::size_t max_bytes);

// Decodes a frame; throws std::invalid_argument on malformed input.
AckFrame decode_ack(std::span<const std::uint8_t> bytes);

}  // namespace dmc::proto
