#include "protocol/baselines.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "lp/simplex.h"

namespace dmc::proto {

core::Plan make_manual_plan(const core::PathSet& paths,
                            const core::TrafficSpec& traffic,
                            const std::vector<double>& x,
                            const core::ModelOptions& options) {
  // dmc-lint: allow(alloc-shared-ptr) Plan setup; core::Plan shares its Model
  auto model = std::make_shared<const core::Model>(paths, traffic, options);
  if (x.size() != model->combos().size()) {
    throw std::invalid_argument("make_manual_plan: x has wrong dimension");
  }
  double sum = 0.0;
  for (double v : x) {
    if (v < -1e-9) {
      throw std::invalid_argument("make_manual_plan: negative weight");
    }
    sum += v;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument("make_manual_plan: weights must sum to 1");
  }

  lp::Solution solution;
  solution.status = lp::SolveStatus::optimal;
  solution.x = x;
  solution.objective_value = model->evaluate(x).quality;
  return core::Plan(std::move(model), std::move(solution));
}

core::Plan make_proportional_split_plan(const core::PathSet& paths,
                                        const core::TrafficSpec& traffic,
                                        const core::ModelOptions& options) {
  // dmc-lint: allow(alloc-shared-ptr) Plan setup; core::Plan shares its Model
  auto model = std::make_shared<const core::Model>(paths, traffic, options);
  const auto& combos = model->combos();
  std::vector<double> x(combos.size(), 0.0);

  double total_bandwidth = 0.0;
  for (const core::PathSpec& p : paths) total_bandwidth += p.bandwidth_bps;

  // Diagonal combinations (i, i, ..., i): all attempts on the same path.
  // Shares are capped at what the path can actually carry (including its
  // own retransmissions); the rest is dropped, as a real link would do.
  double assigned = 0.0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::size_t mi = model->model_index(i);
    std::vector<std::size_t> attempts(
        static_cast<std::size_t>(combos.transmissions()), mi);
    const std::size_t l = combos.encode(attempts);
    const double load = model->metrics()[l].expected_load[mi];
    const double share = paths[i].bandwidth_bps / total_bandwidth;
    const double cap =
        load > 0.0 ? paths[i].bandwidth_bps / (traffic.rate_bps * load)
                   : share;
    x[l] = std::min(share, cap);
    assigned += x[l];
  }
  if (assigned < 1.0) {
    // Leftover traffic exceeds capacity: it is dropped (blackhole when
    // available; otherwise scale up proportionally, which mirrors a sender
    // that blindly overdrives the links).
    if (model->has_blackhole()) {
      std::vector<std::size_t> attempts(
          static_cast<std::size_t>(combos.transmissions()), 0);
      x[combos.encode(attempts)] += 1.0 - assigned;
    } else {
      for (double& v : x) v /= assigned;
    }
  }

  lp::Solution solution;
  solution.status = lp::SolveStatus::optimal;
  solution.x = x;
  solution.objective_value = model->evaluate(x).quality;
  return core::Plan(std::move(model), std::move(solution));
}

core::Plan make_greedy_flow_plan(const core::PathSet& paths,
                                 const core::TrafficSpec& traffic,
                                 const core::ModelOptions& options) {
  core::ModelOptions with_blackhole = options;
  with_blackhole.use_blackhole = true;  // leftovers must go somewhere
  auto model =
      // dmc-lint: allow(alloc-shared-ptr) Plan setup; core::Plan shares its Model
      std::make_shared<const core::Model>(paths, traffic, with_blackhole);
  const auto& combos = model->combos();

  // Candidate assignments: one real path per flow share (retransmissions on
  // the same path), ranked by delivery probability.
  struct Candidate {
    std::size_t combo;
    double p;
    std::size_t real_path;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::size_t mi = model->model_index(i);
    std::vector<std::size_t> attempts(
        static_cast<std::size_t>(combos.transmissions()), mi);
    const std::size_t l = combos.encode(attempts);
    candidates.push_back({l, model->metrics()[l].delivery_probability, i});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.p > b.p; });

  std::vector<double> x(combos.size(), 0.0);
  std::vector<double> remaining_bw;
  for (const core::PathSpec& p : paths) remaining_bw.push_back(p.bandwidth_bps);
  double remaining_cost = traffic.cost_cap_per_s;
  double remaining_traffic = 1.0;

  for (const Candidate& c : candidates) {
    if (remaining_traffic <= 0.0) break;
    const core::ComboMetrics& m = model->metrics()[c.combo];
    // Largest fraction this combination can carry within its path's
    // bandwidth (all attempts are on the same real path here) and the cost
    // cap.
    const std::size_t mi = model->model_index(c.real_path);
    const double load = m.expected_load[mi];  // attempts per unit traffic
    double f = remaining_traffic;
    if (load > 0.0) {
      f = std::min(f, remaining_bw[c.real_path] / (traffic.rate_bps * load));
    }
    if (!std::isinf(remaining_cost) && m.cost_per_bit > 0.0) {
      f = std::min(f, remaining_cost / (traffic.rate_bps * m.cost_per_bit));
    }
    if (f <= 0.0) continue;
    x[c.combo] += f;
    remaining_traffic -= f;
    remaining_bw[c.real_path] -= f * traffic.rate_bps * load;
    if (!std::isinf(remaining_cost)) {
      remaining_cost -= f * traffic.rate_bps * m.cost_per_bit;
    }
  }

  // Whatever could not be placed is dropped.
  if (remaining_traffic > 0.0) {
    std::vector<std::size_t> attempts(
        static_cast<std::size_t>(combos.transmissions()), 0);
    x[combos.encode(attempts)] += remaining_traffic;
  }

  lp::Solution solution;
  solution.status = lp::SolveStatus::optimal;
  solution.x = x;
  solution.objective_value = model->evaluate(x).quality;
  return core::Plan(std::move(model), std::move(solution));
}

DuplicationPlan plan_duplication(const core::PathSet& paths,
                                 const core::TrafficSpec& traffic) {
  traffic.check();
  const std::size_t n = paths.size();
  if (n == 0 || n > 16) {
    throw std::invalid_argument("plan_duplication: need 1..16 paths");
  }
  const double lambda = traffic.rate_bps;
  const double delta = traffic.lifetime_s;

  // Variables: one weight per subset of paths (the empty subset is the
  // "drop" option). Quality of a subset: P(at least one copy on time).
  const std::size_t num_subsets = std::size_t{1} << n;
  std::vector<double> p(num_subsets, 0.0);
  std::vector<double> cost(num_subsets, 0.0);
  for (std::size_t s = 1; s < num_subsets; ++s) {
    double miss = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(s & (std::size_t{1} << i))) continue;
      const bool in_time = paths[i].mean_delay_s() <= delta;
      miss *= 1.0 - (in_time ? (1.0 - paths[i].loss_rate) : 0.0);
      cost[s] += lambda * paths[i].cost_per_bit;
    }
    p[s] = 1.0 - miss;
  }

  lp::Problem problem;
  problem.sense = lp::Sense::maximize;
  problem.objective = p;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(num_subsets, 0.0);
    for (std::size_t s = 0; s < num_subsets; ++s) {
      if (s & (std::size_t{1} << i)) row[s] = lambda;
    }
    problem.add_constraint(std::move(row), lp::Relation::less_equal,
                           paths[i].bandwidth_bps,
                           "bandwidth[" + paths[i].name + "]");
  }
  if (!std::isinf(traffic.cost_cap_per_s)) {
    problem.add_constraint(cost, lp::Relation::less_equal,
                           traffic.cost_cap_per_s, "cost");
  }
  problem.add_constraint(std::vector<double>(num_subsets, 1.0),
                         lp::Relation::equal, 1.0, "sum_w");

  const lp::SimplexSolver solver;
  const lp::Solution solution = solver.solve(problem);

  DuplicationPlan out;
  out.feasible = solution.optimal();
  if (!out.feasible) return out;
  out.quality = solution.objective_value;
  for (std::size_t s = 0; s < num_subsets; ++s) {
    if (solution.x[s] <= 1e-9) continue;
    std::vector<std::size_t> subset;
    for (std::size_t i = 0; i < n; ++i) {
      if (s & (std::size_t{1} << i)) subset.push_back(i);
    }
    out.subsets.push_back(std::move(subset));
    out.weights.push_back(solution.x[s]);
    out.cost_per_s += solution.x[s] * cost[s];
  }
  return out;
}

}  // namespace dmc::proto
