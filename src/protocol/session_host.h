// Incremental session lifecycle over one shared network: start endpoints at
// runtime, observe their progress, and tear them down mid-run — the
// primitive the online session server (server/server.h) builds admission
// control on. run_multi_sessions() is now a thin batch wrapper over this
// class: it starts every session up front and stops them all after the
// simulator drains.
//
// Teardown safety: stopping a session destroys its sender/receiver (pending
// retransmission timers are cancelled), but packets it already injected keep
// flowing through the shared links. Arrivals addressed to a stopped session
// are counted as orphans instead of being delivered — so shared-link packet
// conservation (sim::LinkStats::conserved()) holds across any admit/teardown
// sequence, which the teardown regression tests assert.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "protocol/multi_session.h"
#include "protocol/receiver.h"
#include "protocol/sender.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace dmc::proto {

// Packets that arrived for sessions no longer live (torn down mid-run).
struct OrphanStats {
  std::uint64_t data_packets = 0;  // at the server side
  std::uint64_t ack_packets = 0;   // at the client side
  std::uint64_t total() const { return data_packets + ack_packets; }
};

class SessionHost {
 public:
  // Fired (via a zero-delay follow-up event, so the handler may stop the
  // session) when a session's sender has generated all messages and the last
  // outstanding one resolved.
  // dmc-lint: allow(alloc-function) bound once per host, fires per session
  using CompletionHandler = std::function<void(std::uint32_t id)>;

  SessionHost(sim::Simulator& simulator, sim::Network& network);

  SessionHost(const SessionHost&) = delete;
  SessionHost& operator=(const SessionHost&) = delete;

  // Starts a session and returns its id (sequential from 0, also stamped
  // into every packet and the session's Trace). spec.start_at_s is absolute
  // simulation time; values at or before now() start the sender immediately.
  // The plan must be feasible and agree with the network on the path count.
  std::uint32_t start_session(const SessionSpec& spec,
                              CompletionHandler on_complete = nullptr);

  // Tears the session down and returns its final counters. The id must be
  // live. elapsed_s/events in the result are the simulator totals at stop
  // time; link-stat vectors stay empty (links are shared).
  SessionResult stop_session(std::uint32_t id);

  // Swaps a live session's plan (and a freshly seeded scheduler) — the
  // contention-aware re-planning entry point. Messages already in flight
  // keep the timeouts they were sent with.
  void replace_plan(std::uint32_t id, core::Plan plan);

  bool live(std::uint32_t id) const { return sessions_.contains(id); }
  std::size_t live_count() const { return sessions_.size(); }
  const Trace& trace(std::uint32_t id) const;
  const core::Plan& plan(std::uint32_t id) const;
  bool drained(std::uint32_t id) const;

  const OrphanStats& orphans() const { return orphans_; }

  // The true lowest-delay path of the network — the default ack return path.
  int default_ack_path() const { return default_ack_path_; }

 private:
  struct Endpoint {
    std::unique_ptr<Trace> trace;
    std::unique_ptr<DeadlineReceiver> receiver;
    std::unique_ptr<DeadlineSender> sender;
    SessionConfig config;
    CompletionHandler on_complete;
    int replans = 0;
    // Deferred start (spec.start_at_s in the future); cancelled on stop so
    // teardown before the start instant cannot fire into a dead sender.
    sim::EventId start_event;
  };

  const Endpoint& at(std::uint32_t id, const char* what) const;

  sim::Simulator& simulator_;
  sim::Network& network_;
  std::unordered_map<std::uint32_t, Endpoint> sessions_;
  std::uint32_t next_id_ = 0;
  int default_ack_path_ = 0;
  OrphanStats orphans_;
};

}  // namespace dmc::proto
