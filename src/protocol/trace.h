// Counters collected during a protocol run; the measured communication
// quality (on_time / generated) is the simulation series of Figure 2.
#pragma once

#include <cstdint>

namespace dmc::proto {

struct Trace {
  std::uint32_t session_id = 0;          // owning session in multi-session runs
  std::uint64_t generated = 0;           // messages produced by the app
  std::uint64_t assigned_blackhole = 0;  // dropped deliberately (x0,*)
  std::uint64_t transmissions = 0;       // data packets handed to links
  std::uint64_t retransmissions = 0;     // transmissions with attempt > 0
  std::uint64_t fast_retransmissions = 0;  // triggered by dup-acks, not timer
  std::uint64_t delivered_unique = 0;    // first arrivals at the receiver
  std::uint64_t on_time = 0;             // first arrival within the lifetime
  std::uint64_t late = 0;                // first arrival after the deadline
  std::uint64_t duplicates = 0;          // repeat arrivals
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t gave_up = 0;             // exhausted attempts without an ack

  double quality() const {
    return generated > 0
               ? static_cast<double>(on_time) / static_cast<double>(generated)
               : 0.0;
  }

  // Message conservation, mirroring sim::LinkStats::conserved(): every
  // generated message is eventually blackholed, first-delivered (on time or
  // late), given up on, or still in flight at the sender —
  //   generated == on_time + late + gave_up + assigned_blackhole + in_flight
  // with in_flight == DeadlineSender::outstanding() (0 once drained).
  // Caveat: `gave_up` is a sender-side verdict and `late` a receiver-side
  // one, so a message whose data arrived but whose every ack (echo,
  // cumulative, and window bits alike) was lost on the return path would be
  // counted on both sides. The cumulative-ack redundancy makes that overlap
  // require an unbroken run of reverse-path losses spanning the whole give-up
  // horizon; the session teardown tests assert exact conservation and would
  // surface such a scenario as a failure worth examining.
  bool conserved(std::uint64_t in_flight = 0) const {
    return generated ==
           on_time + late + gave_up + assigned_blackhole + in_flight;
  }
};

}  // namespace dmc::proto
