// Server side of the deadline-aware protocol: deduplicates arrivals, checks
// the enclosed creation timestamp against the lifetime (Section VII-A), and
// responds to each data packet with an acknowledgment on the lowest-delay
// path (Section VIII-C). The receive-tracking state is a sliding bitmap and
// ack frames are encoded directly into a pool packet, so steady-state data
// processing performs no heap allocation.
#pragma once

#include <cstdint>
#include <functional>

#include "protocol/ack.h"
#include "protocol/seq_window.h"
#include "protocol/trace.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "stats/summary.h"

namespace dmc::obs {
class Histogram;
}

namespace dmc::proto {

struct ReceiverConfig {
  double lifetime_s = 0.0;          // delta: on-time verdict threshold
  int ack_path = 0;                 // real path index for acknowledgments
  std::size_t ack_window_bits = 256;
  std::size_t max_ack_bytes = 64;   // cap on the encoded ack frame
  std::size_t ack_overhead_bytes = 28;  // simulated UDP/IP framing
  // Send one ack every `ack_every` data packets (1 = ack per packet).
  std::uint32_t ack_every = 1;
  // Optional per-message verdict callback: fires once per unique sequence
  // number on its first arrival, with the on-time decision.
  // dmc-lint: allow(alloc-function) installed once at session setup
  std::function<void(std::uint64_t seq, bool on_time)> verdict_hook;
};

class DeadlineReceiver {
 public:
  // dmc-lint: allow(alloc-function) bound once per session, not per event
  using AckSender = std::function<void(int path, sim::PooledPacket)>;

  DeadlineReceiver(sim::Simulator& simulator, ReceiverConfig config,
                   Trace& trace);

  void set_ack_sender(AckSender sender) { ack_sender_ = std::move(sender); }

  // Hook for data packets arriving from the network.
  void on_data(int path, const sim::Packet& packet);

  // One-way delay samples of first arrivals (seconds). Non-const because
  // quantile queries sort lazily.
  stats::SampleSet& delay_samples() { return delays_; }
  const stats::SampleSet& delay_samples() const { return delays_; }

 private:
  bool already_received(std::uint64_t seq) const;
  void mark_received(std::uint64_t seq);
  std::uint16_t obs_track();
  sim::PooledPacket build_ack(const sim::Packet& packet) const;

  sim::Simulator& simulator_;
  ReceiverConfig config_;
  Trace& trace_;
  AckSender ack_sender_;

  // Receive tracking: everything below `cumulative_` was received; sparse
  // out-of-order arrivals are bits in `pending_` (floored at cumulative_)
  // until the cumulative edge sweeps past them.
  std::uint64_t cumulative_ = 0;
  std::uint64_t highest_seen_ = 0;
  SeqBitmap pending_;
  std::uint64_t data_since_ack_ = 0;
  stats::SampleSet delays_;

  // Observability handles, resolved at construction from the simulator's
  // hub (null = disabled, one branch per delivery). The histograms live in
  // the registry and are shared by every session of the run.
  obs::Histogram* delay_hist_ = nullptr;    // one-way delay of first arrivals
  obs::Histogram* late_by_hist_ = nullptr;  // lateness beyond the deadline
  std::uint16_t obs_track_ = 0xFFFF;        // lazily resolved trace track
};

}  // namespace dmc::proto
