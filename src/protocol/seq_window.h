// Allocation-free sliding-window containers keyed by monotonically
// increasing sequence numbers. Both structures exploit the protocol's
// structure — sequence numbers and per-path transmission indices only ever
// grow, and entries resolve within a bounded horizon (2x lifetime give-up
// timers) — to replace the per-message map/set nodes of the original
// implementation with ring buffers that stop allocating once the in-flight
// window peaks.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace dmc::proto {

// Membership bitmap over a sliding window of sequence numbers. Bits below
// floor() read as absent; the backing ring of 64-bit words grows (amortised)
// to span the gap between the floor and the highest set bit.
class SeqBitmap {
 public:
  SeqBitmap() : words_(kMinWords, 0) {}

  std::uint64_t floor() const { return floor_seq_; }

  bool test(std::uint64_t seq) const {
    if (seq < floor_seq_) return false;
    const std::uint64_t word = seq >> 6;
    if (word - floor_word() >= words_.size()) return false;
    return (words_[word & mask()] >> (seq & 63)) & 1u;
  }

  void set(std::uint64_t seq) {
    assert(seq >= floor_seq_ && "SeqBitmap::set below floor");
    const std::uint64_t word = seq >> 6;
    if (word - floor_word() >= words_.size()) grow(word);
    words_[word & mask()] |= std::uint64_t{1} << (seq & 63);
  }

  // Drops all bits below `new_floor` from the window. Words that slide out
  // are cleared so the ring can re-use them for later sequence numbers.
  void advance_floor(std::uint64_t new_floor) {
    assert(new_floor >= floor_seq_ && "SeqBitmap floor must not retreat");
    const std::uint64_t old_word = floor_word();
    std::uint64_t new_word = new_floor >> 6;
    if (new_word - old_word >= words_.size()) {
      words_.assign(words_.size(), 0);
    } else {
      for (std::uint64_t w = old_word; w < new_word; ++w) {
        words_[w & mask()] = 0;
      }
    }
    floor_seq_ = new_floor;
  }

  // 64 bits describing seqs [seq, seq + 64), zero-padded outside the window.
  // `seq` must be >= floor(): stale bits below the floor in a straddled word
  // are shifted out, never returned.
  std::uint64_t word_at(std::uint64_t seq) const {
    assert(seq >= floor_seq_ && "SeqBitmap::word_at below floor");
    const std::uint64_t word = seq >> 6;
    const unsigned off = static_cast<unsigned>(seq & 63);
    const std::uint64_t lo = in_window(word) ? words_[word & mask()] : 0;
    if (off == 0) return lo;
    const std::uint64_t hi =
        in_window(word + 1) ? words_[(word + 1) & mask()] : 0;
    return (lo >> off) | (hi << (64 - off));
  }

 private:
  static constexpr std::size_t kMinWords = 8;  // 512-bit starting window

  std::uint64_t floor_word() const { return floor_seq_ >> 6; }
  std::uint64_t mask() const { return words_.size() - 1; }
  bool in_window(std::uint64_t word) const {
    return word >= floor_word() && word - floor_word() < words_.size();
  }

  void grow(std::uint64_t word_needed) {
    std::size_t n = words_.size();
    while (word_needed - floor_word() >= n) n *= 2;
    std::vector<std::uint64_t> bigger(n, 0);
    for (std::uint64_t w = floor_word(); w - floor_word() < words_.size();
         ++w) {
      bigger[w & (n - 1)] = words_[w & mask()];
    }
    words_.swap(bigger);
  }

  std::vector<std::uint64_t> words_;
  std::uint64_t floor_seq_ = 0;
};

// Ordered map over a sliding window of strictly increasing keys: emplace(id)
// requires id >= end(), erase marks the cell dead, and the front advances
// over dead cells. Supports the protocol's prefix sweeps (iterate ids from
// front() to end(), probing find()) without per-node allocation.
template <typename T>
class SeqSlab {
 public:
  SeqSlab() : cells_(kMinCells) {}

  std::uint64_t front() const { return front_; }
  std::uint64_t end() const { return end_; }
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  T& emplace(std::uint64_t id) {
    assert(id >= end_ && "SeqSlab keys must be strictly increasing");
    if (live_ == 0) {
      // Window empty: re-anchor instead of spanning the dead gap.
      front_ = id;
    }
    if (id - front_ >= cells_.size()) grow(id);
    end_ = id + 1;
    Cell& cell = cells_[id & mask()];
    assert(!cell.live);
    cell.live = true;
    ++live_;
    return cell.value;
  }

  T* find(std::uint64_t id) {
    if (id < front_ || id >= end_) return nullptr;
    Cell& cell = cells_[id & mask()];
    return cell.live ? &cell.value : nullptr;
  }
  const T* find(std::uint64_t id) const {
    return const_cast<SeqSlab*>(this)->find(id);
  }

  void erase(std::uint64_t id) {
    Cell& cell = cells_[id & mask()];
    assert(id >= front_ && id < end_ && cell.live);
    cell.live = false;
    --live_;
    if (id == front_) {
      while (front_ < end_ && !cells_[front_ & mask()].live) ++front_;
    }
  }

 private:
  static constexpr std::size_t kMinCells = 16;

  struct Cell {
    T value{};
    bool live = false;
  };

  std::uint64_t mask() const { return cells_.size() - 1; }

  void grow(std::uint64_t id_needed) {
    std::size_t n = cells_.size();
    while (id_needed - front_ >= n) n *= 2;
    std::vector<Cell> bigger(n);
    for (std::uint64_t id = front_; id < end_; ++id) {
      bigger[id & (n - 1)] = std::move(cells_[id & mask()]);
    }
    cells_.swap(bigger);
  }

  std::vector<Cell> cells_;
  std::uint64_t front_ = 0;
  std::uint64_t end_ = 0;
  std::size_t live_ = 0;
};

}  // namespace dmc::proto
