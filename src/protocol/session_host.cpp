#include "protocol/session_host.h"

#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace dmc::proto {

namespace {

int lowest_delay_path(const sim::Network& network) {
  int best = 0;
  double best_delay = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < network.num_paths(); ++i) {
    const sim::LinkConfig& config =
        network.forward_link(static_cast<int>(i)).config();
    double d = config.prop_delay_s;
    if (config.extra_delay) d += config.extra_delay->mean();
    if (d < best_delay) {
      best_delay = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

SessionHost::SessionHost(sim::Simulator& simulator, sim::Network& network)
    : simulator_(simulator),
      network_(network),
      default_ack_path_(lowest_delay_path(network)) {
  // Dispatch by the session id stamped into every packet; arrivals for
  // sessions that were torn down while their packets were still inside the
  // network count as orphans rather than crashing or silently vanishing.
  network_.set_server_receiver([this](int path, sim::PooledPacket packet) {
    const auto it = sessions_.find(packet->session);
    if (it == sessions_.end()) {
      ++orphans_.data_packets;
      return;
    }
    it->second.receiver->on_data(path, *packet);
  });
  network_.set_client_receiver([this](int path, sim::PooledPacket packet) {
    const auto it = sessions_.find(packet->session);
    if (it == sessions_.end()) {
      ++orphans_.ack_packets;
      return;
    }
    it->second.sender->on_ack(path, *packet);
  });
}

std::uint32_t SessionHost::start_session(const SessionSpec& spec,
                                         CompletionHandler on_complete) {
  if (!spec.plan.feasible()) {
    throw std::invalid_argument("SessionHost: plan is not feasible");
  }
  if (spec.plan.model().real_paths().size() != network_.num_paths()) {
    throw std::invalid_argument(
        "SessionHost: plan and network disagree on the number of paths");
  }
  const std::uint32_t session_id = next_id_++;

  Endpoint endpoint;
  endpoint.config = spec.config;
  endpoint.on_complete = std::move(on_complete);
  endpoint.trace = std::make_unique<Trace>();
  endpoint.trace->session_id = session_id;

  ReceiverConfig receiver_config;
  receiver_config.lifetime_s = spec.plan.model().traffic().lifetime_s;
  receiver_config.ack_path =
      spec.config.ack_path >= 0 ? spec.config.ack_path : default_ack_path_;
  receiver_config.ack_window_bits = spec.config.ack_window_bits;
  receiver_config.max_ack_bytes = spec.config.max_ack_bytes;
  receiver_config.ack_overhead_bytes = spec.config.ack_overhead_bytes;
  receiver_config.ack_every = spec.config.ack_every;
  endpoint.receiver = std::make_unique<DeadlineReceiver>(
      simulator_, receiver_config, *endpoint.trace);

  SenderConfig sender_config;
  sender_config.num_messages = spec.config.num_messages;
  sender_config.message_bytes = spec.config.message_bytes;
  sender_config.timeout_guard_s = spec.config.timeout_guard_s;
  sender_config.fast_retransmit_dupacks = spec.config.fast_retransmit_dupacks;
  endpoint.sender = std::make_unique<DeadlineSender>(
      simulator_, spec.plan,
      core::make_scheduler(spec.config.scheduler, spec.plan.x(),
                           spec.config.seed ^ 0x5eedULL),
      sender_config, *endpoint.trace);

  // Outbound packets are stamped with their session so the shared network
  // can route arrivals back to the right endpoint.
  endpoint.receiver->set_ack_sender(
      [this, session_id](int path, sim::PooledPacket packet) {
        packet->session = session_id;
        network_.server_send(path, std::move(packet));
      });
  endpoint.sender->set_data_sender(
      [this, session_id](int path, sim::PooledPacket packet) {
        packet->session = session_id;
        network_.client_send(path, std::move(packet));
      });

  SenderHooks hooks;
  // Deferred to a fresh event so the handler may tear the session down even
  // though the drain was detected inside ack processing.
  hooks.on_drained = [this, session_id] {
    simulator_.in(0.0, [this, session_id] {
      const auto it = sessions_.find(session_id);
      if (it == sessions_.end() || !it->second.on_complete) return;
      it->second.on_complete(session_id);
    });
  };
  endpoint.sender->set_hooks(std::move(hooks));

  DeadlineSender* sender = endpoint.sender.get();
  const auto [it, inserted] =
      sessions_.emplace(session_id, std::move(endpoint));
  if (spec.start_at_s > simulator_.now()) {
    it->second.start_event =
        simulator_.at(spec.start_at_s, [sender] { sender->start(); });
  } else {
    sender->start();
  }
  return session_id;
}

SessionResult SessionHost::stop_session(std::uint32_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("SessionHost: session " + std::to_string(id) +
                                " is not live");
  }
  Endpoint& endpoint = it->second;
  SessionResult result;
  result.trace = *endpoint.trace;
  result.measured_quality = endpoint.trace->quality();
  result.elapsed_s = simulator_.now();
  result.events = simulator_.events_executed();
  stats::SampleSet& delays = endpoint.receiver->delay_samples();
  if (delays.count() > 0) {
    result.delay_mean_s = delays.mean();
    result.delay_p50_s = delays.quantile(0.5);
    result.delay_p99_s = delays.quantile(0.99);
  }
  // A session stopped before its deferred start must not fire into the
  // destroyed sender (cancelling an already-run event is a no-op).
  if (endpoint.start_event.valid()) simulator_.cancel(endpoint.start_event);
  // Destroying the sender cancels its pending timers; packets already inside
  // the network keep flowing and will be counted as orphans on arrival.
  sessions_.erase(it);
  return result;
}

void SessionHost::replace_plan(std::uint32_t id, core::Plan plan) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("SessionHost: session " + std::to_string(id) +
                                " is not live");
  }
  Endpoint& endpoint = it->second;
  ++endpoint.replans;
  // Derive a fresh deterministic scheduler stream per re-plan so replacing a
  // plan never replays the previous scheduler's draws.
  const std::uint64_t seed =
      endpoint.config.seed ^ 0x5eedULL ^
      (static_cast<std::uint64_t>(endpoint.replans) * 0x9e3779b97f4a7c15ULL);
  auto scheduler =
      core::make_scheduler(endpoint.config.scheduler, plan.x(), seed);
  endpoint.sender->replace_plan(std::move(plan), std::move(scheduler));
}

const SessionHost::Endpoint& SessionHost::at(std::uint32_t id,
                                             const char* what) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument(std::string("SessionHost::") + what +
                                ": session " + std::to_string(id) +
                                " is not live");
  }
  return it->second;
}

const Trace& SessionHost::trace(std::uint32_t id) const {
  return *at(id, "trace").trace;
}

const core::Plan& SessionHost::plan(std::uint32_t id) const {
  return at(id, "plan").sender->plan();
}

bool SessionHost::drained(std::uint32_t id) const {
  return at(id, "drained").sender->drained();
}

}  // namespace dmc::proto
