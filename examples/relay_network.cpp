// A "heteroclite" network (the paper's introduction): a live-video uplink
// from a remote site over four wildly different paths — LEO satellite,
// high-altitude balloon, a solar drone relay, and fringe cellular. Shows
// the model beyond two paths: three transmissions per data unit (m = 3),
// load-dependent congestion on the thin paths (Section IX-A), and the
// baseline comparison.
//
//   $ ./examples/relay_network
#include <iostream>

#include "core/load_aware.h"
#include "core/planner.h"
#include "core/units.h"
#include "experiments/table.h"
#include "protocol/baselines.h"
#include "protocol/session.h"

int main() {
  using namespace dmc;

  core::PathSet paths;
  paths.add({.name = "leo-satellite",  // fast but scarce and lossy
             .bandwidth_bps = mbps(20),
             .delay_s = ms(40),
             .loss_rate = 0.06});
  paths.add({.name = "balloon",  // decent all around
             .bandwidth_bps = mbps(30),
             .delay_s = ms(90),
             .loss_rate = 0.03});
  paths.add({.name = "drone-relay",  // fat but far and flaky
             .bandwidth_bps = mbps(60),
             .delay_s = ms(180),
             .loss_rate = 0.12});
  paths.add({.name = "cellular-fringe",  // thin, slow, clean
             .bandwidth_bps = mbps(8),
             .delay_s = ms(120),
             .loss_rate = 0.01});

  const core::TrafficSpec traffic{.rate_bps = mbps(80),
                                  .lifetime_s = ms(600)};

  // --- m = 2 vs m = 3: is a second retransmission worth it here? --------
  exp::Table budget({"transmissions m", "variables", "expected Q"});
  for (int m : {1, 2, 3}) {
    core::PlanOptions options;
    options.model.transmissions = m;
    const core::Plan plan = core::plan_max_quality(paths, traffic, options);
    budget.add_row({std::to_string(m), std::to_string(plan.x().size()),
                    exp::Table::percent(plan.quality(), 2)});
  }
  budget.print();

  core::PlanOptions options;
  options.model.transmissions = 3;
  const core::Plan plan = core::plan_max_quality(paths, traffic, options);
  std::cout << "\nm = 3 strategy (125 combinations, "
            << plan.nonzero_weights().size() << " active):\n";
  for (const auto& [combo, weight] : plan.nonzero_weights()) {
    std::cout << "  " << plan.label(combo) << " = "
              << exp::Table::num(weight, 3) << "\n";
  }

  // --- Simulate it -------------------------------------------------------
  // Practitioner's guard-banding, as in the paper's Experiment 1: plan
  // against 90% of the advertised bandwidths (the LP otherwise saturates
  // the clean path to exactly 100%, and real queues then eat the deadline
  // budget) and give the timers a small guard.
  core::PathSet shaded;
  for (const auto& p : paths) {
    core::PathSpec s = p;
    s.bandwidth_bps *= 0.9;
    shaded.add(s);
  }
  options.model.timeout_guard_s = ms(20);
  const core::Plan executable = core::plan_max_quality(shaded, traffic, options);

  proto::SessionConfig session;
  session.num_messages = 30000;
  session.seed = 5;
  const auto result = proto::run_session(
      executable, proto::to_sim_paths(paths, /*bandwidth_headroom=*/1.2),
      session);
  std::cout << "\nSimulated quality (planned on 90% bandwidths): "
            << exp::Table::percent(result.measured_quality) << " (plan bound "
            << exp::Table::percent(executable.quality()) << "), "
            << result.trace.retransmissions << " retransmissions\n";

  // --- Baselines ---------------------------------------------------------
  exp::Table baselines({"strategy", "expected Q"});
  baselines.add_row({"deadline-aware LP (m=3)",
                     exp::Table::percent(plan.quality(), 2)});
  baselines.add_row(
      {"proportional split",
       exp::Table::percent(
           proto::make_proportional_split_plan(paths, traffic).quality(), 2)});
  baselines.add_row(
      {"greedy flow assignment",
       exp::Table::percent(
           proto::make_greedy_flow_plan(paths, traffic).quality(), 2)});
  for (std::size_t i = 0; i < paths.size(); ++i) {
    baselines.add_row(
        {"single " + paths[i].name,
         exp::Table::percent(
             core::plan_single_path(paths, i, traffic).quality(), 2)});
  }
  std::cout << "\n";
  baselines.print();

  // --- Congestion-aware planning (IX-A) ----------------------------------
  // The thin paths' latency climbs as we load them; the fixed-point
  // iteration backs off before queues eat the deadline budget.
  std::vector<core::LoadAwarePath> load_aware;
  for (const auto& p : paths) {
    core::LoadResponse response;
    response.queue_delay_at_half_load_s = ms(20);
    response.max_queue_delay_s = ms(150);
    response.extra_loss_at_capacity = 0.05;
    load_aware.push_back({p, response});
  }
  core::LoadAwareOptions la_options;
  la_options.plan = options;
  const auto aware = core::plan_load_aware(load_aware, traffic, la_options);
  std::cout << "\nIX-A load-aware fixpoint: naive plan would really achieve "
            << exp::Table::percent(aware.naive_quality, 2)
            << "; load-aware plan achieves "
            << exp::Table::percent(aware.plan.quality(), 2) << " after "
            << aware.rounds << " rounds (utilizations:";
  for (double u : aware.utilization) std::cout << " " << exp::Table::num(u, 2);
  std::cout << ")\n";
  return 0;
}
