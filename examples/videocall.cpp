// Videoconference from a smartphone: WiFi + LTE (the paper's Section II
// motivating setup). Delays jitter (shifted gamma, Section VI-B), LTE
// costs money, and the true characteristics are unknown at call start —
// the adaptive controller estimates them online and re-solves the LP when
// they move (Sections VIII-A/B).
//
//   $ ./examples/videocall
#include <iostream>

#include "core/planner.h"
#include "core/units.h"
#include "estimation/adaptive.h"
#include "experiments/table.h"
#include "protocol/session.h"

int main() {
  using namespace dmc;

  // True network conditions (unknown to the sender at call start):
  // congested WiFi with heavy jitter and 8% loss; clean LTE with modest
  // jitter, but every bit on LTE costs data-plan money.
  core::PathSet truth;
  core::PathSpec wifi{.name = "wifi",
                      .bandwidth_bps = mbps(6),
                      .loss_rate = 0.08,
                      .cost_per_bit = 0.0};
  wifi.delay_dist = stats::make_shifted_gamma(ms(25), 6.0, ms(5));  // ~55 ms
  truth.add(wifi);
  core::PathSpec lte{.name = "lte",
                     .bandwidth_bps = mbps(4),
                     .loss_rate = 0.005,
                     .cost_per_bit = 0.5e-6};
  lte.delay_dist = stats::make_shifted_gamma(ms(40), 4.0, ms(3));  // ~52 ms
  truth.add(lte);

  // A 4 Mbps video call; frames are useless 150 ms after capture.
  const core::TrafficSpec traffic{.rate_bps = mbps(4),
                                  .lifetime_s = ms(150)};

  // --- What an oracle would do (planning with the true distributions) ----
  const core::Plan oracle = core::plan_max_quality(truth, traffic);
  std::cout << "Oracle plan (true characteristics known):\n  "
            << oracle.summary() << "\n"
            << "  expected LTE spend: based on S_lte = "
            << to_mbps(oracle.send_rate_bps()[2]) << " Mbps -> $"
            << oracle.cost_per_s() << "/s\n\n";

  // --- Cold start: crude guesses, zero loss knowledge -------------------
  est::AdaptiveOptions options;
  options.initial_estimates.add({.name = "wifi",
                                 .bandwidth_bps = mbps(6),
                                 .delay_s = ms(30),
                                 .loss_rate = 0.0});
  options.initial_estimates.add({.name = "lte",
                                 .bandwidth_bps = mbps(4),
                                 .delay_s = ms(30),
                                 .loss_rate = 0.0,
                                 .cost_per_bit = 0.5e-6});
  options.replan_interval_s = 0.5;
  options.delay_margin_factor = 1.2;
  options.session.num_messages = 40000;  // ~82 s of call
  options.session.seed = 77;
  options.session.fast_retransmit_dupacks = 3;  // Section VIII-D

  const auto result =
      est::run_adaptive_session(proto::to_sim_paths(truth), traffic, options);

  std::cout << "Adaptive call over " << result.session.elapsed_s
            << " simulated seconds:\n";
  exp::Table table({"metric", "value"});
  table.add_row({"frames on time (overall)",
                 exp::Table::percent(result.session.measured_quality)});
  table.add_row({"frames on time (after warm-up)",
                 exp::Table::percent(result.converged_quality)});
  table.add_row({"oracle bound", exp::Table::percent(oracle.quality())});
  table.add_row({"LP re-solves", std::to_string(result.replans)});
  table.add_row({"fast retransmissions",
                 std::to_string(result.session.trace.fast_retransmissions)});
  table.print();

  std::cout << "\nFinal estimates vs truth:\n";
  const auto& final_estimates = result.timeline.back().estimates;
  exp::Table estimates({"path", "est delay (ms)", "true E[d] (ms)",
                        "est loss", "true loss"});
  for (std::size_t i = 0; i < truth.size(); ++i) {
    estimates.add_row({truth[i].name,
                       exp::Table::num(to_ms(final_estimates[i].delay_s), 1),
                       exp::Table::num(to_ms(truth[i].mean_delay_s()), 1),
                       exp::Table::percent(final_estimates[i].loss_rate, 1),
                       exp::Table::percent(truth[i].loss_rate, 1)});
  }
  estimates.print();
  return 0;
}
