// Market-data distribution: microwave vs fiber (the paper's introduction:
// microwaves approach the speed of light in air but lose more and carry
// less; fiber is fat and clean but ~50% slower). Updates expire within
// milliseconds, so the lifetime *is* the product: this example prices it.
//
// Chicago -> New Jersey, roughly: microwave one-way 4.0 ms, 5% loss,
// 100 Mbps, 20x the per-bit price; fiber 6.5 ms, 0.5% loss, 1 Gbps.
// Acknowledgments return over the microwave path (d_min = 4 ms), so one
// fiber retransmission loop costs 6.5 + 4 + 6.5 = 17 ms.
//
//   $ ./examples/trading
#include <algorithm>
#include <iostream>

#include "core/planner.h"
#include "core/risk.h"
#include "core/units.h"
#include "experiments/table.h"

int main() {
  using namespace dmc;

  core::PathSet paths;
  paths.add({.name = "microwave",
             .bandwidth_bps = mbps(100),
             .delay_s = ms(4.0),
             .loss_rate = 0.05,
             .cost_per_bit = 20e-6});
  paths.add({.name = "fiber",
             .bandwidth_bps = gbps(1),
             .delay_s = ms(6.5),
             .loss_rate = 0.005,
             .cost_per_bit = 1e-6});
  const double rate = mbps(200);

  // --- The price of a millisecond ----------------------------------------
  // For each lifetime: the best achievable quality, and the cheapest way to
  // deliver at least 45% of the feed in time (the most a microwave-only
  // network could ever do here is 100/200 * 0.95 = 47.5%).
  exp::banner("The price of a millisecond (cost floor: Q >= 45%)");
  exp::Table table({"lifetime (ms)", "max achievable Q", "min cost ($/s)",
                    "microwave Mbps", "fiber Mbps", "regime"});
  for (double lifetime_ms : {5.0, 6.0, 7.0, 12.0, 17.0, 25.0}) {
    const core::TrafficSpec traffic{.rate_bps = rate,
                                    .lifetime_s = ms(lifetime_ms)};
    const core::Plan best = core::plan_max_quality(paths, traffic);
    const core::Plan cheap = core::plan_min_cost(paths, traffic, 0.45);
    const char* regime =
        lifetime_ms < 6.5   ? "microwave only (fiber too slow)"
        : lifetime_ms < 17.0 ? "first attempts only"
                             : "retransmission feasible";
    if (!cheap.feasible()) {
      table.add_row({exp::Table::num(lifetime_ms, 1),
                     exp::Table::percent(best.quality(), 2), "infeasible",
                     "-", "-", regime});
      continue;
    }
    table.add_row({exp::Table::num(lifetime_ms, 1),
                   exp::Table::percent(best.quality(), 2),
                   exp::Table::num(cheap.cost_per_s(), 0),
                   exp::Table::num(to_mbps(cheap.send_rate_bps()[1]), 1),
                   exp::Table::num(to_mbps(cheap.send_rate_bps()[2]), 1),
                   regime});
  }
  table.print();
  std::cout << "\nBelow 6.5 ms only microwave arrives: 45% of the feed "
               "costs ~$1900/s and 47.5% is a hard ceiling. One more "
               "millisecond admits fiber and the same floor costs ~$91/s — "
               "a ~20x price cliff per millisecond of deadline. Past 17 ms "
               "the fiber retransmission loop closes and quality ceilings "
               "jump from 99.5% to ~99.99%.\n";

  // --- Buying the last basis points at a fixed 25 ms lifetime ------------
  exp::banner("Cost of the quality tail (lifetime = 25 ms)");
  const core::TrafficSpec traffic{.rate_bps = rate, .lifetime_s = ms(25)};
  exp::Table tail({"quality floor", "spend ($/s)", "microwave Mbps",
                   "achieved Q"});
  for (double floor : {0.99, 0.995, 0.999, 0.9999}) {
    const core::Plan plan = core::plan_min_cost(paths, traffic, floor);
    if (!plan.feasible()) {
      tail.add_row({exp::Table::percent(floor, 2), "infeasible", "-", "-"});
      continue;
    }
    tail.add_row({exp::Table::percent(floor, 2),
                  exp::Table::num(plan.cost_per_s(), 1),
                  exp::Table::num(to_mbps(plan.send_rate_bps()[1]), 2),
                  exp::Table::percent(plan.quality(), 3)});
  }
  tail.print();

  // --- Hard caps on the microwave lease (Section IX-C) -------------------
  // Expected-value planning exceeds a binding cap about half the time; a
  // 5% overshoot bound tightens the caps fed to the LP.
  const core::TrafficSpec tight{.rate_bps = rate, .lifetime_s = ms(6.0)};
  const auto risk = core::plan_with_risk_bound(paths, tight,
                                               /*packet_bits=*/8.0 * 512.0,
                                               /*window_packets=*/10000,
                                               /*max_overshoot=*/0.05);
  double worst = risk.report.cost_overshoot;
  for (double v : risk.report.bandwidth_overshoot) worst = std::max(worst, v);
  std::cout << "\nIX-C at the 6 ms point (microwave saturated): caps "
            << "tightened to " << exp::Table::num(risk.shrink_factor * 100, 1)
            << "% of nominal over " << risk.solve_rounds
            << " solves; quality " << exp::Table::percent(risk.plan.quality())
            << ", worst overshoot " << exp::Table::percent(worst) << ".\n";
  return 0;
}
