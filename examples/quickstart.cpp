// Quickstart: the paper's Figure 1 scenario, end to end.
//
// A source generates 10 Mbps of data that must arrive within one second.
// Two paths are available: a fast-but-lossy 10 Mbps link (600 ms, 10% loss)
// and a clean-but-thin 1 Mbps link (200 ms, no loss). Neither path alone
// can deliver everything in time; sending on the fast path and
// retransmitting losses on the clean path can.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/planner.h"
#include "core/units.h"
#include "protocol/session.h"

int main() {
  using namespace dmc;

  // 1. Describe the paths (Table I characteristics).
  core::PathSet paths;
  paths.add({.name = "high-bandwidth",
             .bandwidth_bps = mbps(10),
             .delay_s = ms(600),
             .loss_rate = 0.10});
  paths.add({.name = "low-latency",
             .bandwidth_bps = mbps(1),
             .delay_s = ms(200),
             .loss_rate = 0.0});

  // 2. Describe the traffic: rate lambda, lifetime delta. (A cost cap mu
  //    could be set too; it defaults to unlimited.)
  core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = seconds(1.1)};

  // 3. Solve the linear program for the optimal sending strategy. The
  //    50 ms timeout guard keeps retransmission timers clear of the
  //    acknowledgment arrival (see DESIGN.md on Equation 4 guards).
  core::PlanOptions options;
  options.model.timeout_guard_s = ms(50);
  const core::Plan plan = core::plan_max_quality(paths, traffic, options);
  if (!plan.feasible()) {
    std::cerr << "no feasible plan: " << lp::to_string(plan.status()) << "\n";
    return 1;
  }

  std::cout << "Optimal strategy (x_{i,j} = send on i, retransmit on j; "
               "path 0 is the blackhole):\n";
  for (const auto& [combo, weight] : plan.nonzero_weights()) {
    std::cout << "  " << plan.label(combo) << " = " << weight << "\n";
  }
  std::cout << "Expected quality Q = " << plan.quality() * 100 << "%\n";
  std::cout << "Expected per-path send rates: ";
  for (std::size_t i = 0; i < plan.send_rate_bps().size(); ++i) {
    std::cout << to_mbps(plan.send_rate_bps()[i]) << " Mbps ";
  }
  std::cout << "\n\n";

  // 4. Execute the plan over a simulated network (20,000 messages of
  //    1024 bytes; links get 1.5x physical headroom so exact saturation
  //    does not diverge the queues).
  proto::SessionConfig session;
  session.num_messages = 20000;
  session.seed = 1;
  const auto result = proto::run_session(
      plan, proto::to_sim_paths(paths, /*bandwidth_headroom=*/1.5), session);

  std::cout << "Simulated " << result.trace.generated << " messages: "
            << result.trace.on_time << " arrived in time ("
            << result.measured_quality * 100 << "%), "
            << result.trace.retransmissions << " retransmissions, "
            << result.trace.late << " late.\n";

  // 5. Compare with using each path alone.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto single = core::plan_single_path(paths, i, traffic, options);
    std::cout << "Single-path bound on " << paths[i].name << ": "
              << single.quality() * 100 << "%\n";
  }
  std::cout << "\nMultipath wins because path diversity lets each path "
               "specialize: bulk on the fat path, repair on the fast one.\n";
  return 0;
}
