// Simulator-core throughput benchmarks (google-benchmark), pinned so the
// allocation-free core (pooled packets, inline-callback calendar queue)
// stays fast: raw event schedule/run, timer arm/cancel churn (the dominant
// protocol pattern: most retransmission timers are cancelled by an ack, not
// fired), sustained single-link packet streaming, and a full protocol
// session over a lossy link. Record alongside bench_micro in BENCH_*.json.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/planner.h"
#include "core/scheduler.h"
#include "core/units.h"
#include "protocol/baselines.h"
#include "protocol/receiver.h"
#include "protocol/sender.h"
#include "sim/network.h"

namespace {

using namespace dmc;

// Self-rescheduling tick with a trivially copyable capture: the common shape
// of protocol timers, stored inline in the calendar entry.
struct Tick {
  sim::Simulator* simulator;
  std::uint64_t* remaining;
  void operator()() const {
    if (--*remaining > 0) simulator->in(1e-6, *this);
  }
};

void BM_EventScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator(1);
    std::uint64_t remaining = n;
    simulator.in(1e-6, Tick{&simulator, &remaining});
    simulator.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventScheduleRun)->Arg(100000)->Unit(benchmark::kMillisecond);

// Timer churn: every packet event arms a retransmission timer ~100 ms out
// and the next event cancels it — the calendar must absorb far-horizon
// entries that never fire (generation-checked lazy sweep).
void BM_TimerArmCancel(benchmark::State& state) {
  constexpr std::uint64_t kEvents = 100000;
  for (auto _ : state) {
    sim::Simulator simulator(1);
    std::uint64_t count = 0;
    sim::EventId pending{};
    std::function<void()> tick = [&] {
      if (pending.valid()) simulator.cancel(pending);
      pending = simulator.in(0.1, [] {});  // timer that will be cancelled
      if (++count < kEvents) simulator.in(1e-6, tick);
    };
    simulator.in(1e-6, tick);
    simulator.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_TimerArmCancel)->Unit(benchmark::kMillisecond);

// Sustained pooled-packet streaming through one lossy link: a source event
// injects a packet per tick; the pool recycles delivered ones.
void BM_LinkSustainedStream(benchmark::State& state) {
  constexpr std::uint64_t kPackets = 50000;
  for (auto _ : state) {
    sim::Simulator simulator(1);
    sim::LinkConfig config{.rate_bps = gbps(1), .prop_delay_s = ms(1),
                           .loss_rate = 0.05, .queue_capacity = 1000000};
    sim::Link link(simulator, config, "bench");
    std::uint64_t delivered = 0;
    link.set_receiver([&](sim::PooledPacket) { ++delivered; });
    std::uint64_t sent = 0;
    std::function<void()> source = [&] {
      sim::PooledPacket packet = simulator.packets().acquire();
      packet->seq = sent;
      packet->size_bytes = 1024;
      link.send(std::move(packet));
      if (++sent < kPackets) simulator.in(9e-6, source);  // ~90% utilization
    };
    simulator.in(0.0, source);
    simulator.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * kPackets);
}
BENCHMARK(BM_LinkSustainedStream)->Unit(benchmark::kMillisecond);

// Full protocol session: deadline sender/receiver over a lossy two-way path
// with retransmission timers, dup-ack scans and in-place ack frames.
// items_per_second counts application messages end to end.
void BM_ProtocolSessionSteadyState(benchmark::State& state) {
  core::PathSet believed;
  believed.add({.name = "p",
                .bandwidth_bps = mbps(100),
                .delay_s = ms(10),
                .loss_rate = 0.05});
  core::TrafficSpec traffic{.rate_bps = mbps(20), .lifetime_s = ms(200)};
  core::Model model(believed, traffic);
  std::vector<double> x(model.combos().size(), 0.0);
  std::size_t attempts[] = {1, 1};
  x[model.combos().encode(attempts)] = 1.0;
  const core::Plan plan = proto::make_manual_plan(believed, traffic, x);
  constexpr std::uint64_t kMessages = 20000;

  for (auto _ : state) {
    sim::Simulator simulator(7);
    sim::LinkConfig link{.rate_bps = mbps(100), .prop_delay_s = ms(10),
                         .loss_rate = 0.05, .queue_capacity = 100000};
    sim::Network network(simulator, {sim::symmetric_path(link, "p")});
    proto::Trace trace;
    proto::ReceiverConfig receiver_config;
    receiver_config.lifetime_s = traffic.lifetime_s;
    proto::DeadlineReceiver receiver(simulator, receiver_config, trace);
    proto::SenderConfig sender_config;
    sender_config.num_messages = kMessages;
    sender_config.timeout_guard_s = ms(5);
    sender_config.fast_retransmit_dupacks = 3;
    proto::DeadlineSender sender(
        simulator, plan,
        core::make_scheduler(core::SchedulerKind::deficit, plan.x()),
        sender_config, trace);
    receiver.set_ack_sender([&](int path, sim::PooledPacket packet) {
      network.server_send(path, std::move(packet));
    });
    sender.set_data_sender([&](int path, sim::PooledPacket packet) {
      network.client_send(path, std::move(packet));
    });
    network.set_server_receiver([&](int path, sim::PooledPacket packet) {
      receiver.on_data(path, *packet);
    });
    network.set_client_receiver([&](int path, sim::PooledPacket packet) {
      sender.on_ack(path, *packet);
    });
    sender.start();
    simulator.run();
    benchmark::DoNotOptimize(trace.delivered_unique);
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}
BENCHMARK(BM_ProtocolSessionSteadyState)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
