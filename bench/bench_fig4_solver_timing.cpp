// Reproduces Figure 4: time to solve the multipath LP as a function of the
// number of paths (2..10, blackhole excluded) for 2 and 3 transmissions per
// data unit. The paper measured CGAL on a 2.8 GHz i5 (~458 us for n = 2,
// m = 2, growing to ~1 s for n = 10, m = 3); absolute numbers differ by
// solver and machine, the growth shape with n and m is the reproduction
// target. Implemented with google-benchmark.
#include <benchmark/benchmark.h>

#include <random>

#include "core/model.h"
#include "core/units.h"
#include "lp/interior_point.h"
#include "lp/simplex.h"

namespace {

using namespace dmc;

// Deterministic synthetic path set: heterogeneous bandwidth/delay/loss.
core::PathSet synthetic_paths(int n) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(n) * 7919);
  std::uniform_real_distribution<double> bw(10.0, 100.0);
  std::uniform_real_distribution<double> delay(50.0, 600.0);
  std::uniform_real_distribution<double> loss(0.0, 0.3);
  core::PathSet paths;
  for (int i = 0; i < n; ++i) {
    paths.add({.name = "p" + std::to_string(i),
               .bandwidth_bps = mbps(bw(rng)),
               .delay_s = ms(delay(rng)),
               .loss_rate = loss(rng)});
  }
  return paths;
}

// Full pipeline timing: build the model (metrics + matrices) and solve the
// LP, matching what a sender does when characteristics change.
void solve_once(int n, int m) {
  core::ModelOptions options;
  options.transmissions = m;
  const core::Model model(synthetic_paths(n),
                          {.rate_bps = mbps(150), .lifetime_s = ms(900)},
                          options);
  const lp::SimplexSolver solver;
  const lp::Solution solution = solver.solve(model.quality_lp());
  benchmark::DoNotOptimize(solution.objective_value);
}

void BM_SolveMultipathLP(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  for (auto _ : state) {
    solve_once(n, m);
  }
  state.SetLabel(std::to_string(n) + " paths, " + std::to_string(m) +
                 " transmissions, " +
                 std::to_string(static_cast<std::size_t>(
                     std::pow(n + 1.0, m))) +
                 " variables");
}

// Solve-only timing (model construction excluded), closest to the paper's
// "solve the linear program" measurement.
void BM_SolveOnlyLP(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  core::ModelOptions options;
  options.transmissions = m;
  const core::Model model(synthetic_paths(n),
                          {.rate_bps = mbps(150), .lifetime_s = ms(900)},
                          options);
  const lp::Problem problem = model.quality_lp();
  const lp::SimplexSolver solver;
  for (auto _ : state) {
    const lp::Solution solution = solver.solve(problem);
    benchmark::DoNotOptimize(solution.objective_value);
  }
}

// Interior-point comparison (the Karmarkar discussion of Section VIII-B):
// iteration counts stay ~constant while per-iteration cost grows, so the
// crossover against simplex sits at problem sizes far beyond the paper's
// practical range.
void BM_SolveOnlyInteriorPoint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  core::ModelOptions options;
  options.transmissions = m;
  const core::Model model(synthetic_paths(n),
                          {.rate_bps = mbps(150), .lifetime_s = ms(900)},
                          options);
  const lp::Problem problem = model.quality_lp();
  const lp::InteriorPointSolver solver;
  for (auto _ : state) {
    const lp::Solution solution = solver.solve(problem);
    benchmark::DoNotOptimize(solution.objective_value);
  }
}

void PathsAndTransmissions(benchmark::internal::Benchmark* bench) {
  for (int m : {2, 3}) {
    for (int n = 2; n <= 10; ++n) {
      bench->Args({n, m});
    }
  }
}

BENCHMARK(BM_SolveMultipathLP)->Apply(PathsAndTransmissions)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SolveOnlyLP)->Apply(PathsAndTransmissions)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SolveOnlyInteriorPoint)->Apply(PathsAndTransmissions)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
