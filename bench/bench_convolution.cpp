// Distribution-kernel micro-benchmarks: the radix-2 FFT convolution versus
// the direct sum, the batched gamma CDF kernel versus per-point evaluation,
// and the end-to-end numeric convolution under the adaptive-grid policy
// versus the fixed-grid direct method it replaced. These pin the >= 10x
// targets recorded in BENCH_pr5.json for BM_NumericConvolution and
// BM_RandomDelayModelBuild (bench_micro).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "core/timeout_optimizer.h"
#include "core/units.h"
#include "stats/convolution.h"
#include "stats/fft.h"
#include "stats/gamma_math.h"
#include "stats/rng.h"

namespace {

using namespace dmc;

std::vector<double> random_masses(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> mass(n);
  double total = 0.0;
  for (double& v : mass) total += (v = rng.uniform());
  for (double& v : mass) v /= total;
  return mass;
}

void BM_FftConvolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_masses(n, 1);
  const auto b = random_masses(n / 2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fft_convolve(a, b).back());
  }
}
BENCHMARK(BM_FftConvolve)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void BM_DirectConvolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_masses(n, 1);
  const auto b = random_masses(n / 2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::direct_convolve(a, b).back());
  }
}
BENCHMARK(BM_DirectConvolve)->Arg(1 << 10)->Arg(1 << 12);

void BM_GammaCdfGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  for (auto _ : state) {
    stats::gamma_cdf_grid(10.0, ms(4), ms(400), ms(400), ms(120) / n, n,
                          out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GammaCdfGrid)->Arg(1 << 10)->Arg(1 << 13);

void BM_GammaCdfPointwise(benchmark::State& state) {
  // The per-point loop the grid kernel replaces (one lgamma per call).
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  const double dt = ms(120) / n;
  for (auto _ : state) {
    for (std::size_t k = 0; k < n; ++k) {
      out[k] = stats::regularized_gamma_p(
          10.0, (static_cast<double>(k) * dt) / ms(4));
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GammaCdfPointwise)->Arg(1 << 10)->Arg(1 << 13);

// Experiment 2's numeric convolution (different scales force the gridded
// path), under the adaptive FFT policy.
void BM_NumericSumAdaptiveFft(benchmark::State& state) {
  const auto a = stats::make_shifted_gamma(ms(400), 10.0, ms(4));
  const auto b = stats::make_shifted_gamma(ms(100), 5.0, ms(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::numeric_sum_distribution(a, b)->mean());
  }
}
BENCHMARK(BM_NumericSumAdaptiveFft)->Unit(benchmark::kMicrosecond);

// The same convolution on the pre-PR fixed 0.25 ms grid with the direct
// engine. Note this is already far faster than the seed's 15.6 ms
// BM_NumericConvolution: the seed paid one *virtual* gamma-CDF call per
// (t, cell) pair, whereas the mass-vector formulation costs two batched
// grid builds plus an n * m multiply-accumulate. The adaptive FFT variant
// above runs a ~3.5x finer grid and still wins once grids grow.
void BM_NumericSumFixedDirect(benchmark::State& state) {
  const auto a = stats::make_shifted_gamma(ms(400), 10.0, ms(4));
  const auto b = stats::make_shifted_gamma(ms(100), 5.0, ms(2));
  stats::ConvolutionOptions options;
  options.adaptive = false;
  options.method = stats::ConvolutionMethod::direct;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::numeric_sum_distribution(a, b, options)->mean());
  }
}
BENCHMARK(BM_NumericSumFixedDirect)->Unit(benchmark::kMicrosecond);

// Timeout optimization over the batched scan (gridded ack CDF + gamma
// retransmission CDF), the inner loop of the random-delay model build.
void BM_TimeoutScanBatched(benchmark::State& state) {
  const auto a = stats::make_shifted_gamma(ms(400), 10.0, ms(4));
  const auto b = stats::make_shifted_gamma(ms(100), 5.0, ms(2));
  const auto ack = stats::sum_distribution(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::optimize_timeout(*ack, *b, ms(750)).timeout);
  }
}
BENCHMARK(BM_TimeoutScanBatched)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
