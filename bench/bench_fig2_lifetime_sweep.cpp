// Reproduces Figure 2 (bottom): communication quality vs lifetime delta,
// lambda = 90 Mbps. Same four series and methodology as the rate sweep.
#include <iostream>

#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"

int main() {
  using namespace dmc;
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  const auto messages = exp::default_messages(100000);

  exp::banner("Figure 2 (bottom): quality vs lifetime (lambda = 90 Mbps)");
  std::cout << "messages per point: " << messages
            << " (override with DMC_MESSAGES)\n\n";

  exp::Table table({"delta (ms)", "multipath (sim)", "multipath (theory)",
                    "path 1 (theory)", "path 2 (theory)"});
  for (double lifetime = 100; lifetime <= 1100; lifetime += 100) {
    const auto traffic = exp::table4_traffic_lifetime(ms(lifetime));
    const auto theory = exp::theory_qualities(planning, traffic);

    exp::RunOptions options;
    options.num_messages = messages;
    options.seed = 4200 + static_cast<std::uint64_t>(lifetime);
    const auto outcome = exp::run_planned(planning, truth, traffic, options);

    table.add_row({exp::Table::num(lifetime, 0),
                   exp::Table::percent(outcome.session.measured_quality),
                   exp::Table::percent(theory.multipath),
                   exp::Table::percent(theory.single_path[0]),
                   exp::Table::percent(theory.single_path[1])});
  }
  table.print();
  std::cout << "\nShape checks (paper): steps at ~450 ms and ~750 ms; "
               "multipath plateaus at 93.3%; path 1 alone needs delta >= "
               "450 ms for 71.1%; path 2 alone stays at 22.2%.\n";
  return 0;
}
