// Reproduces Figure 2 (bottom): communication quality vs lifetime delta,
// lambda = 90 Mbps. Same four series and methodology as the rate sweep; the
// grid definition and the sweep loop both live in fleet/grids.h now, so the
// two Figure 2 benches share one implementation.
#include <iostream>

#include "experiments/runner.h"
#include "fleet/engine.h"
#include "fleet/grids.h"

int main() try {
  using namespace dmc;
  const auto messages = exp::default_messages(100000);

  exp::banner("Figure 2 (bottom): quality vs lifetime (lambda = 90 Mbps)");
  std::cout << "messages per point: " << messages
            << " (override with DMC_MESSAGES; threads with DMC_THREADS)\n\n";

  fleet::GridOptions grid;
  grid.messages = messages;
  fleet::Engine engine;
  const auto records =
      fleet::run_jobs(engine, fleet::fig2_lifetime_grid(grid));

  fleet::fig2_table(records, "delta (ms)").print();
  std::cout << "\nShape checks (paper): steps at ~450 ms and ~750 ms; "
               "multipath plateaus at 93.3%; path 1 alone needs delta >= "
               "450 ms for 71.1%; path 2 alone stays at 22.2%.\n";
  return 0;
} catch (const std::exception& e) {
  // Misconfigured DMC_MESSAGES / DMC_THREADS throw; report, don't abort.
  std::cerr << "bench_fig2_lifetime_sweep: " << e.what() << "\n";
  return 1;
}
