// Extension benches for the discussion-section machinery:
//   * Section IX-C: overshoot probabilities of expected-value plans and the
//     cap-tightening loop;
//   * Section IX-A: load-dependent characteristics and the fixed-point
//     re-solve;
//   * Section VI-A: the cost-minimization variant across quality targets.
#include <algorithm>
#include <iostream>

#include "core/load_aware.h"
#include "core/planner.h"
#include "core/risk.h"
#include "core/units.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"

namespace {

using namespace dmc;

void risk_section() {
  const auto paths = exp::table3_model_paths();
  const core::TrafficSpec traffic{.rate_bps = mbps(90), .lifetime_s = ms(800)};
  const double packet_bits = 8.0 * 1024.0;

  exp::banner("IX-C: overshoot probability of the expected-value plan");
  const core::Model model(paths, traffic);
  const core::Plan plan = core::plan_max_quality(paths, traffic);
  exp::Table table({"window (packets)", "P(overshoot path1)",
                    "P(overshoot path2)"});
  for (std::size_t window : {100u, 1000u, 10000u, 100000u}) {
    const auto report =
        core::compute_overshoot(model, plan.x(), packet_bits, window);
    table.add_row({std::to_string(window),
                   exp::Table::percent(report.bandwidth_overshoot[1]),
                   exp::Table::percent(report.bandwidth_overshoot[2])});
  }
  table.print();
  std::cout << "\nBoth paths are saturated in expectation, so overshoot "
               "hovers near 50% on the retransmission-fed path regardless "
               "of window size — the motivation for tightening q.\n";

  exp::banner("IX-C: cap tightening until P(overshoot) <= target");
  exp::Table tighten({"target", "shrink factor", "resulting Q",
                      "worst overshoot", "LP solves"});
  for (double target : {0.25, 0.10, 0.05, 0.01}) {
    const auto result = core::plan_with_risk_bound(paths, traffic,
                                                   packet_bits, 1000, target);
    double worst = result.report.cost_overshoot;
    for (double v : result.report.bandwidth_overshoot) {
      worst = std::max(worst, v);
    }
    tighten.add_row({exp::Table::percent(target, 0),
                     exp::Table::num(result.shrink_factor, 3),
                     exp::Table::percent(result.plan.quality()),
                     exp::Table::percent(worst),
                     std::to_string(result.solve_rounds)});
  }
  tighten.print();
}

void load_aware_section() {
  exp::banner("IX-A: load-dependent characteristics, fixed-point re-solve");
  const auto base = exp::table3_model_paths();
  const core::TrafficSpec traffic{.rate_bps = mbps(90), .lifetime_s = ms(800)};

  exp::Table table({"queueing knob (ms at 50% load)", "naive plan Q*",
                    "fixpoint plan Q", "rounds", "util path1", "util path2"});
  for (double knob_ms : {0.0, 10.0, 30.0, 60.0}) {
    core::LoadResponse response;
    response.queue_delay_at_half_load_s = ms(knob_ms);
    response.max_queue_delay_s = ms(250);
    response.extra_loss_at_capacity = 0.05;
    std::vector<core::LoadAwarePath> paths;
    for (const auto& p : base) paths.push_back({p, response});
    const auto result = core::plan_load_aware(paths, traffic);
    table.add_row({exp::Table::num(knob_ms, 0),
                   exp::Table::percent(result.naive_quality),
                   exp::Table::percent(result.plan.quality()),
                   std::to_string(result.rounds),
                   exp::Table::num(result.utilization[0], 2),
                   exp::Table::num(result.utilization[1], 2)});
  }
  table.print();
  std::cout << "\nQ* = quality the zero-load plan actually achieves under "
               "load-adjusted characteristics. The fixpoint plan must match "
               "or beat it, backing off saturated paths as queueing grows.\n";
}

void cost_min_section() {
  exp::banner("VI-A: minimize cost subject to a quality floor");
  core::PathSet paths;
  paths.add({.name = "premium",  // fast, clean, expensive
             .bandwidth_bps = mbps(40),
             .delay_s = ms(120),
             .loss_rate = 0.0,
             .cost_per_bit = 8e-6});
  paths.add({.name = "budget",  // slower, lossy, cheap
             .bandwidth_bps = mbps(80),
             .delay_s = ms(350),
             .loss_rate = 0.15,
             .cost_per_bit = 1e-6});
  const core::TrafficSpec traffic{.rate_bps = mbps(30),
                                  .lifetime_s = ms(900)};

  exp::Table table({"quality floor", "cost ($/s)", "achieved Q",
                    "premium share of spend"});
  for (double floor : {0.80, 0.90, 0.95, 0.99, 0.999}) {
    const core::Plan plan = core::plan_min_cost(paths, traffic, floor);
    if (!plan.feasible()) {
      table.add_row({exp::Table::percent(floor, 1), "infeasible", "-", "-"});
      continue;
    }
    // Spend attributable to the premium path.
    const double premium_spend =
        plan.send_rate_bps()[plan.model().model_index(0)] * 8e-6;
    table.add_row({exp::Table::percent(floor, 1),
                   exp::Table::num(plan.cost_per_s(), 2),
                   exp::Table::percent(plan.quality(), 2),
                   exp::Table::percent(
                       plan.cost_per_s() > 0
                           ? premium_spend / plan.cost_per_s()
                           : 0.0,
                       0)});
  }
  table.print();
  std::cout << "\nExpected: the optimizer rides the cheap path as far as the "
               "floor allows, buying premium capacity only for the last few "
               "points of quality.\n";
}

}  // namespace

int main() {
  risk_section();
  load_aware_section();
  cost_min_section();
  return 0;
}
