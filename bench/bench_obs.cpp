// Observability hot-path benchmarks (google-benchmark), pinning the costs
// the instrumentation contract promises: histogram record is a branch, a
// log2 and an increment; a trace-ring append is a bounds-free store into a
// preallocated ring; and a disabled recorder costs one predictable branch
// per instrumentation site. The last pair replays the full protocol session
// from bench_sim_throughput with and without a live Hub so the end-to-end
// overhead of enabled tracing stays visible in BENCH_*.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/planner.h"
#include "core/scheduler.h"
#include "core/units.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "protocol/baselines.h"
#include "protocol/receiver.h"
#include "protocol/sender.h"
#include "sim/network.h"

namespace {

using namespace dmc;

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram hist(obs::HistogramOptions{1e-6, 1e3, 4});
  // Sweep values across the full bucket range so the branch predictor can't
  // learn a single bucket index.
  double v = 1.3e-6;
  for (auto _ : state) {
    hist.record(v);
    v *= 1.618;
    if (v > 900.0) v = 1.3e-6;
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_TraceRingAppend(benchmark::State& state) {
  obs::TraceRecorder recorder(std::size_t{1} << 16);
  const std::uint16_t track = recorder.track("bench");
  double t = 0.0;
  std::uint32_t id = 0;
  for (auto _ : state) {
    recorder.record(obs::Ev::msg_tx, t, track, id++, 0, 1.0F);
    t += 1e-6;
  }
  benchmark::DoNotOptimize(recorder.recorded());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRingAppend);

// The disabled path: every instrumentation site guards on a null Hub
// pointer. This pins that guard at its promised cost — one compare+branch —
// by running the same site shape with a hub that is all nulls.
void BM_DisabledHubBranch(benchmark::State& state) {
  const obs::Hub hub{};  // metrics == nullptr, trace == nullptr
  double t = 0.0;
  std::uint64_t taken = 0;
  for (auto _ : state) {
    if (hub.trace != nullptr) {
      hub.trace->record(obs::Ev::msg_tx, t, 0);
      ++taken;
    }
    t += 1e-6;
    benchmark::DoNotOptimize(t);
  }
  benchmark::DoNotOptimize(taken);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisabledHubBranch);

// Full protocol session from bench_sim_throughput, parameterized on
// observability: 0 = no Hub (the default everywhere), 1 = live registry and
// trace ring. The delta between the two rows is the true per-run cost of
// full instrumentation; the 0 row must track BM_ProtocolSessionSteadyState.
void BM_ProtocolSessionObs(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  core::PathSet believed;
  believed.add({.name = "p",
                .bandwidth_bps = mbps(100),
                .delay_s = ms(10),
                .loss_rate = 0.05});
  core::TrafficSpec traffic{.rate_bps = mbps(20), .lifetime_s = ms(200)};
  core::Model model(believed, traffic);
  std::vector<double> x(model.combos().size(), 0.0);
  std::size_t attempts[] = {1, 1};
  x[model.combos().encode(attempts)] = 1.0;
  const core::Plan plan = proto::make_manual_plan(believed, traffic, x);
  constexpr std::uint64_t kMessages = 20000;

  for (auto _ : state) {
    obs::MetricRegistry registry;
    obs::TraceRecorder recorder(std::size_t{1} << 20);
    const obs::Hub hub = enabled ? obs::Hub{&registry, &recorder}
                                 : obs::Hub{};
    sim::Simulator simulator(7, hub);
    sim::LinkConfig link{.rate_bps = mbps(100), .prop_delay_s = ms(10),
                         .loss_rate = 0.05, .queue_capacity = 100000};
    sim::Network network(simulator, {sim::symmetric_path(link, "p")});
    proto::Trace trace;
    proto::ReceiverConfig receiver_config;
    receiver_config.lifetime_s = traffic.lifetime_s;
    proto::DeadlineReceiver receiver(simulator, receiver_config, trace);
    proto::SenderConfig sender_config;
    sender_config.num_messages = kMessages;
    sender_config.timeout_guard_s = ms(5);
    sender_config.fast_retransmit_dupacks = 3;
    proto::DeadlineSender sender(
        simulator, plan,
        core::make_scheduler(core::SchedulerKind::deficit, plan.x()),
        sender_config, trace);
    receiver.set_ack_sender([&](int path, sim::PooledPacket packet) {
      network.server_send(path, std::move(packet));
    });
    sender.set_data_sender([&](int path, sim::PooledPacket packet) {
      network.client_send(path, std::move(packet));
    });
    network.set_server_receiver([&](int path, sim::PooledPacket packet) {
      receiver.on_data(path, *packet);
    });
    network.set_client_receiver([&](int path, sim::PooledPacket packet) {
      sender.on_ack(path, *packet);
    });
    sender.start();
    simulator.run();
    benchmark::DoNotOptimize(trace.delivered_unique);
    if (enabled) benchmark::DoNotOptimize(recorder.recorded());
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}
BENCHMARK(BM_ProtocolSessionObs)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
