// Ablation: the acknowledgment scheme (Section VIII-C). Varies ack
// frequency, frame size budget, and ack-path loss; the window redundancy in
// later acks is what keeps a lossy ack path from causing retransmission
// storms.
#include <iostream>

#include "core/planner.h"
#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"

namespace {

using namespace dmc;

core::PathSet lossy_ack_network() {
  core::PathSet paths;
  paths.add({.name = "data",
             .bandwidth_bps = mbps(60),
             .delay_s = ms(200),
             .loss_rate = 0.15});
  paths.add({.name = "ack",  // lowest delay -> carries the acks, both ways
             .bandwidth_bps = mbps(20),
             .delay_s = ms(80),
             .loss_rate = 0.10});
  return paths;
}

}  // namespace

int main() {
  const auto messages = exp::default_messages(50000);
  const auto paths = lossy_ack_network();
  const core::TrafficSpec traffic{.rate_bps = mbps(40),
                                  .lifetime_s = ms(900)};
  const core::Plan plan = core::plan_max_quality(paths, traffic);

  exp::banner("Ack scheme ablation (10% ack-path loss both directions)");
  std::cout << "plan: " << plan.summary() << "\nmessages per run: " << messages
            << "\n\n";

  // The in-flight window here is ~1400 packets (280 ms of RTT at 40 Mbps),
  // and cross-path reordering puts slow-path packets ~600 seqs behind the
  // newest arrival the moment they land. A 256-bit vector therefore cannot
  // cover them (their only protection is their own echo), while a 4096-bit
  // vector covers everything — but costs 539-byte acks that congest the
  // return path when sent per packet. This is the paper's VIII-C tradeoff,
  // measured.
  exp::Table frequency({"ack every N", "Q (256-bit window)",
                        "Q (4096-bit window)", "ack Mbps (256)",
                        "ack Mbps (4096)"});
  for (std::uint32_t every : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<std::string> row{std::to_string(every)};
    std::vector<std::string> rates;
    for (std::size_t bits : {256u, 4096u}) {
      exp::RunOptions options;
      options.num_messages = messages;
      options.seed = 501;
      // Equation-4 timeouts leave zero slack for serialization; a small
      // execution guard prevents every ack from losing the race with its
      // timer (the paper's +100 ms guard plays this role in Experiment 1).
      options.timeout_guard_s = ms(40);
      options.session.ack_every = every;
      options.session.ack_window_bits = bits;
      options.session.max_ack_bytes = 27 + bits / 8;
      const auto s = exp::simulate_plan(plan, paths, options);
      row.push_back(exp::Table::percent(s.measured_quality));
      const double ack_bits =
          s.reverse_links[1].bytes_sent * 8.0;  // path 2 carries the acks
      rates.push_back(exp::Table::num(ack_bits / s.elapsed_s / 1e6, 2));
    }
    row.insert(row.end(), rates.begin(), rates.end());
    frequency.add_row(std::move(row));
  }
  frequency.print();
  std::cout << "\nExpected: the wide window holds quality at every ack "
               "frequency but costs ~16x the return-path bandwidth at "
               "N = 1; the narrow window is cheap but leaves slow-path "
               "packets covered only by their own echo, so quality erodes "
               "as acks thin out. Real deployments pick window size to "
               "match the bandwidth-delay product (Section VIII-C).\n";

  exp::banner("Ack frame budget (window truncation)");
  exp::Table budget({"max ack bytes", "window bits carried", "simulated Q"});
  for (std::size_t bytes : {27u + 0u, 27u + 4u, 27u + 16u, 27u + 32u}) {
    exp::RunOptions options;
    options.num_messages = messages;
    options.seed = 502;
    options.timeout_guard_s = ms(40);
    options.session.max_ack_bytes = bytes;
    options.session.ack_window_bits = 256;
    const auto s = exp::simulate_plan(plan, paths, options);
    budget.add_row({std::to_string(bytes),
                    std::to_string(std::min<std::size_t>(256, (bytes - 27) * 8)),
                    exp::Table::percent(s.measured_quality)});
  }
  budget.print();
  std::cout << "\nExpected: even a zero-bit window (echo + cumulative only) "
               "holds quality; the echo acknowledges the triggering packet "
               "and timers cover ack losses.\n";
  return 0;
}
