// Ablation: discretizing x' into per-packet decisions. Algorithm 1
// (deficit) vs weighted random vs proportional round-robin — measured
// quality gap to the LP bound and the realized distribution error.
#include <iostream>

#include "core/planner.h"
#include "core/scheduler.h"
#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"

int main() {
  using namespace dmc;
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  const auto messages = exp::default_messages(50000);

  exp::banner("Scheduler ablation (Algorithm 1 vs alternatives)");
  std::cout << "messages per run: " << messages << "\n\n";

  struct Case {
    const char* name;
    core::SchedulerKind kind;
  };
  const Case cases[] = {
      {"deficit (Algorithm 1)", core::SchedulerKind::deficit},
      {"weighted random", core::SchedulerKind::weighted_random},
      {"round robin", core::SchedulerKind::round_robin},
  };

  for (double rate : {90.0, 120.0}) {
    const auto traffic = exp::table4_traffic_rate(mbps(rate));
    const core::Plan plan = core::plan_max_quality(planning, traffic);
    exp::banner("lambda = " + exp::Table::num(rate, 0) +
                " Mbps (theory Q = " + exp::Table::percent(plan.quality()) +
                ")");
    exp::Table table({"scheduler", "simulated Q", "gap to theory"});
    for (const Case& c : cases) {
      exp::RunOptions options;
      options.num_messages = messages;
      options.seed = 77;
      options.session.scheduler = c.kind;
      const auto session = exp::simulate_plan(plan, truth, options);
      table.add_row(
          {c.name, exp::Table::percent(session.measured_quality),
           exp::Table::num((plan.quality() - session.measured_quality) * 100,
                           2) +
               " pts"});
    }
    table.print();
  }

  // Distribution-tracking error, measured directly on the schedulers.
  exp::banner("Discretization error after N selections (max |share - x'|)");
  const core::Plan plan =
      core::plan_max_quality(planning, exp::table4_traffic_rate(mbps(100)));
  exp::Table table({"N", "deficit", "weighted random", "round robin"});
  for (int n : {100, 1000, 10000, 100000}) {
    std::vector<std::string> row{std::to_string(n)};
    for (const Case& c : cases) {
      auto scheduler = core::make_scheduler(c.kind, plan.x(), 5);
      std::vector<std::int64_t> counts(plan.x().size(), 0);
      for (int i = 0; i < n; ++i) ++counts[scheduler->select()];
      double worst = 0.0;
      for (std::size_t l = 0; l < counts.size(); ++l) {
        worst = std::max(worst, std::abs(static_cast<double>(counts[l]) / n -
                                         plan.x()[l]));
      }
      row.push_back(exp::Table::num(worst, 6));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::cout << "\nExpected: Algorithm 1's error decays as 1/N; weighted "
               "random decays as 1/sqrt(N).\n";
  return 0;
}
