// Admission-control microbenchmarks (google-benchmark): how many admission
// decisions per second the server's control plane sustains as the in-flight
// session count grows. The feasibility-lp policy pays one cross-traffic
// derate + LP solve per decision; always-admit pays the blind solve; the
// threshold gate pays only arithmetic on a rejection. The arg is the number
// of in-flight sessions whose background load the decision must fold in.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/units.h"
#include "experiments/scenarios.h"
#include "server/admission.h"
#include "server/arrivals.h"
#include "server/server.h"

namespace {

using namespace dmc;

// A decision context as the server would build it with `in_flight` live
// sessions of ~8 Mbps each spread over the Table III network.
server::AdmissionContext context_with_load(const core::PathSet& paths,
                                           int in_flight) {
  server::AdmissionContext context;
  context.nominal_paths = &paths;
  context.in_flight = in_flight;
  context.background_bps = {0.0, 0.0};
  for (int s = 0; s < in_flight; ++s) {
    context.background_bps[0] += mbps(6.5);
    context.background_bps[1] += mbps(1.5);
    context.admitted_rate_bps += mbps(8);
  }
  context.residual_bps = {
      std::max(0.0, mbps(80) - context.background_bps[0]),
      std::max(0.0, mbps(20) - context.background_bps[1])};
  return context;
}

server::SessionRequest request_20mbps() {
  server::SessionRequest request;
  request.traffic = exp::table4_traffic_rate(mbps(20));
  request.num_messages = 400;
  return request;
}

void BM_AdmissionFeasibilityLp(benchmark::State& state) {
  const auto paths = exp::table3_model_paths();
  const auto context =
      context_with_load(paths, static_cast<int>(state.range(0)));
  const auto request = request_20mbps();
  auto policy = server::make_policy("feasibility-lp");
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->decide(request, context).verdict);
  }
  state.SetItemsProcessed(state.iterations());  // admissions/sec
}
BENCHMARK(BM_AdmissionFeasibilityLp)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_AdmissionAlwaysAdmit(benchmark::State& state) {
  const auto paths = exp::table3_model_paths();
  const auto context =
      context_with_load(paths, static_cast<int>(state.range(0)));
  const auto request = request_20mbps();
  auto policy = server::make_policy("always-admit");
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->decide(request, context).verdict);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmissionAlwaysAdmit)->Arg(1)->Arg(16);

void BM_AdmissionThresholdReject(benchmark::State& state) {
  // The cheap path: a rejection by rate bookkeeping alone, no LP.
  const auto paths = exp::table3_model_paths();
  auto context = context_with_load(paths, 12);  // 96 Mbps admitted: over cap
  const auto request = request_20mbps();
  auto policy = server::make_policy("threshold:0.9");
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->decide(request, context).verdict);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmissionThresholdReject);

// End-to-end control-plane throughput: a full server run (admission +
// planning + simulation + teardown + re-planning) per policy over a bursty
// 60-arrival workload. items/sec here is arrivals processed per wall
// second, dominated by the simulation itself.
void BM_ServerLoop(benchmark::State& state) {
  server::ServerConfig config;
  config.planning_paths = exp::table3_model_paths();
  config.true_paths = exp::table3_paths();
  config.policy = state.range(0) == 0 ? "always-admit" : "feasibility-lp";
  config.seed = 42;
  server::WorkloadOptions workload;
  workload.count = 60;
  workload.arrivals_per_s = 60.0;
  workload.mean_rate_bps = mbps(30);
  workload.mean_messages = 120;
  workload.seed = 17;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server::run_server(config, workload).deadline_miss_rate);
  }
  state.SetItemsProcessed(state.iterations() * workload.count);
}
BENCHMARK(BM_ServerLoop)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
