// Reproduces Figure 3: sensitivity of the achieved quality to estimation
// errors, per path. lambda = 90 Mbps, delta = 800 ms, Table III network.
//
// Methodology: the sender plans against Table III characteristics with one
// metric of one path perturbed (conservative delays 450/150 as its
// error-free baseline, like Experiment 1), then the plan runs over the true
// network. Three panels: bandwidth error -50..+50%, delay error -50..+50%,
// additive loss error -0.2..+1.0.
#include <algorithm>
#include <iostream>

#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"

namespace {

using namespace dmc;

enum class Metric { bandwidth, delay, loss };

core::PathSet perturb(const core::PathSet& base, std::size_t path,
                      Metric metric, double error) {
  core::PathSet out;
  for (std::size_t i = 0; i < base.size(); ++i) {
    core::PathSpec spec = base[i];
    if (i == path) {
      switch (metric) {
        case Metric::bandwidth:
          spec.bandwidth_bps *= 1.0 + error;
          break;
        case Metric::delay:
          spec.delay_s *= 1.0 + error;
          break;
        case Metric::loss:
          spec.loss_rate = std::clamp(spec.loss_rate + error, 0.0, 0.95);
          break;
      }
    }
    out.add(spec);
  }
  return out;
}

double run_point(const core::PathSet& planning, const core::PathSet& truth,
                 std::uint64_t messages, std::uint64_t seed) {
  const auto traffic = exp::table4_traffic_rate(mbps(90));
  exp::RunOptions options;
  options.num_messages = messages;
  options.seed = seed;
  const auto outcome = exp::run_planned(planning, truth, traffic, options);
  return outcome.session.measured_quality;
}

void panel(const char* title, Metric metric, double lo, double hi,
           double step, std::uint64_t messages) {
  const auto base = exp::table3_model_paths();  // error-free planning inputs
  const auto truth = exp::table3_paths();

  exp::banner(title);
  exp::Table table({"error", "path 1 perturbed", "path 2 perturbed"});
  std::uint64_t seed = 1000;
  for (double error = lo; error <= hi + 1e-9; error += step) {
    const double q1 =
        run_point(perturb(base, 0, metric, error), truth, messages, ++seed);
    const double q2 =
        run_point(perturb(base, 1, metric, error), truth, messages, ++seed);
    const std::string label =
        metric == Metric::loss
            ? exp::Table::num(error, 1)
            : exp::Table::num(error * 100.0, 0) + "%";
    table.add_row({label, exp::Table::percent(q1), exp::Table::percent(q2)});
  }
  table.print();
}

}  // namespace

int main() {
  const auto messages = exp::default_messages(100000);
  std::cout << "messages per point: " << messages
            << " (override with DMC_MESSAGES); 70 simulations total\n";

  panel("Figure 3 (top): error on estimated bandwidth", Metric::bandwidth,
        -0.5, 0.5, 0.1, messages);
  panel("Figure 3 (middle): error on estimated delay", Metric::delay, -0.5,
        0.5, 0.1, messages);
  panel("Figure 3 (bottom): error on estimated loss (additive)", Metric::loss,
        -0.2, 1.0, 0.1, messages);

  std::cout << "\nShape checks (paper): underestimating bandwidth forces "
               "drops (left slope); overestimating congests but barely "
               "moves quality. Delay has a flat plateau within ~10%. Loss "
               "errors cost a few points at the extremes.\n";
  return 0;
}
