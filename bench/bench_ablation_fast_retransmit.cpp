// Ablation: fast retransmit (Section VIII-D). The paper motivates it as
// "correcting for inappropriate timeout values caused by erroneous delay
// estimations": here the sender believes the lossy path takes 450 ms (true:
// 100 ms), so its retransmission timer fires at 600 ms and timer-driven
// recoveries arrive past the 700 ms lifetime. Dup-ack detection reacts in a
// few packet times instead and rescues them. The allocation is built
// manually because a self-consistent LP would never schedule a
// retransmission its own (wrong) model says is late — that is exactly the
// estimation-error regime VIII-D addresses.
#include <iostream>

#include "core/planner.h"
#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"
#include "protocol/baselines.h"

int main() {
  using namespace dmc;
  const auto messages = exp::default_messages(50000);

  core::PathSet truth;
  truth.add({.name = "lossy",
             .bandwidth_bps = mbps(60),
             .delay_s = ms(100),
             .loss_rate = 0.15});
  truth.add({.name = "clean",
             .bandwidth_bps = mbps(20),
             .delay_s = ms(150),
             .loss_rate = 0.0});
  core::PathSet believed;  // 4.5x delay over-estimate on the lossy path
  believed.add({.name = "lossy",
                .bandwidth_bps = mbps(60),
                .delay_s = ms(450),
                .loss_rate = 0.15});
  believed.add({.name = "clean",
                .bandwidth_bps = mbps(20),
                .delay_s = ms(150),
                .loss_rate = 0.0});
  const core::TrafficSpec traffic{.rate_bps = mbps(40), .lifetime_s = ms(700)};

  // 3/4 of traffic on the lossy path with clean-path retransmission, the
  // rest on the clean path. Timeouts derive from the believed delays:
  // t(lossy) = 450 + 150 = 600 ms.
  const core::Model model(believed, traffic);
  std::vector<double> x(model.combos().size(), 0.0);
  const auto idx = [&](std::size_t i, std::size_t j) {
    std::size_t attempts[] = {i, j};
    return model.combos().encode(attempts);
  };
  x[idx(1, 2)] = 0.75;
  x[idx(2, 2)] = 0.25;
  const core::Plan plan = proto::make_manual_plan(believed, traffic, x);

  exp::banner("Fast retransmit ablation (timer 6x too late for the deadline)");
  std::cout << "allocation: " << plan.summary()
            << "   (timer-based recovery arrives at ~750 ms > 700 ms)\n"
            << "messages per run: " << messages << "\n\n";

  exp::Table table({"dup-ack threshold", "simulated Q", "fast rtx",
                    "timer rtx", "duplicates", "p99 delay (ms)"});
  for (int threshold : {0, 1, 2, 3, 5, 8}) {
    exp::RunOptions options;
    options.num_messages = messages;
    options.seed = 31;
    options.session.fast_retransmit_dupacks = threshold;
    const auto session = exp::simulate_plan(plan, truth, options);
    table.add_row(
        {threshold == 0 ? "off" : std::to_string(threshold),
         exp::Table::percent(session.measured_quality),
         std::to_string(session.trace.fast_retransmissions),
         std::to_string(session.trace.retransmissions -
                        session.trace.fast_retransmissions),
         std::to_string(session.trace.duplicates),
         exp::Table::num(to_ms(session.delay_p99_s), 1)});
  }
  table.print();
  std::cout << "\nExpected: off = ~89% (timer recoveries all late); any "
               "threshold <= 3 recovers to ~99-100% with p99 falling from "
               "~750 ms to a few hundred ms. TCP's classic threshold of 3 "
               "costs nothing here because per-path reordering is absent "
               "(Section VIII-D).\n";
  return 0;
}
