// Reproduces Experiment 2: shifted-gamma random delays (Table V),
// lambda = 90 Mbps, delta = 750 ms. Reports the optimized retransmission
// timeouts (paper Equation 35: t12 = 615, t21 = 252, t22 = 323 ms; t11
// undefined), the model's expected quality (93.3%), and the simulated
// on-time count (paper: 93,332 of 100,000). Links are over-provisioned as
// in the paper to isolate the delay distribution from queueing.
#include <cmath>
#include <iostream>

#include "core/planner.h"
#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"

int main() {
  using namespace dmc;
  const auto paths = exp::table5_paths();
  const auto traffic = exp::table5_traffic();

  const core::Plan plan = core::plan_max_quality(paths, traffic);
  const core::Model& model = plan.model();
  const auto& combos = model.combos();

  exp::banner("Experiment 2: optimized retransmission timeouts (Eq. 34)");
  exp::Table timeouts({"pair", "ours (ms)", "paper (ms)", "note"});
  struct PaperTimeout {
    std::size_t i, j;
    const char* paper;
    const char* note;
  };
  for (const PaperTimeout& row :
       {PaperTimeout{1, 1, "undefined", "retransmission cannot be in time"},
        PaperTimeout{1, 2, "615", "unique interior maximum"},
        PaperTimeout{2, 1, "252", "unique interior maximum"},
        PaperTimeout{2, 2, "323", "flat maximum; any plateau point is optimal"}}) {
    std::size_t attempts[] = {row.i, row.j};
    const double t = model.metrics()[combos.encode(attempts)].timeouts[0];
    timeouts.add_row(
        {"t" + std::to_string(row.i) + "," + std::to_string(row.j),
         std::isinf(t) ? "inf" : exp::Table::num(to_ms(t), 1), row.paper,
         row.note});
  }
  timeouts.print();

  exp::banner("Experiment 2: expected vs simulated quality");
  std::cout << "plan: " << plan.summary() << "\n\n";

  const auto messages = exp::default_messages(100000);
  exp::RunOptions options;
  options.num_messages = messages;
  options.seed = 20170619;  // arXiv date of the paper, for determinism
  options.bandwidth_headroom = 3.0;  // paper: "we over-provisioned both paths"
  const auto session = exp::simulate_plan(plan, paths, options);

  exp::Table table({"metric", "ours", "paper"});
  table.add_row({"expected quality (model)",
                 exp::Table::percent(plan.quality(), 2), "93.3%"});
  table.add_row({"simulated on-time",
                 std::to_string(session.trace.on_time) + "/" +
                     std::to_string(session.trace.generated),
                 "93332/100000"});
  table.add_row({"simulated quality",
                 exp::Table::percent(session.measured_quality, 2), "93.33%"});
  table.print();

  std::cout << "\nretransmissions: " << session.trace.retransmissions
            << ", late arrivals: " << session.trace.late
            << ", gave up: " << session.trace.gave_up << "\n";
  return 0;
}
