// Sharded-server throughput benchmarks (google-benchmark): end-to-end
// arrivals processed per wall second for one logical server split into 16
// slice event loops, as the worker-thread count (--shards) grows. The slice
// partition is fixed, so every arg produces bit-identical results; only the
// wall clock should move. BM_ServerClassic is the unsharded baseline on the
// same workload. items_per_second counts arrivals. Record in BENCH_*.json;
// on a single-core host the worker axis measures threading overhead, not
// speedup — note the host's num_cpus next to the numbers.
#include <benchmark/benchmark.h>

#include "core/units.h"
#include "experiments/scenarios.h"
#include "server/arrivals.h"
#include "server/server.h"
#include "server/sharded_server.h"

namespace {

using namespace dmc;

server::ServerConfig shard_bench_config() {
  server::ServerConfig config;
  config.planning_paths = exp::table3_model_paths();
  config.true_paths = exp::table3_paths();
  config.policy = "feasibility-lp";
  config.seed = 42;
  return config;
}

server::WorkloadOptions shard_bench_workload() {
  server::WorkloadOptions workload;
  workload.count = 240;
  workload.arrivals_per_s = 120.0;
  workload.mean_rate_bps = mbps(20);
  workload.mean_messages = 120;
  workload.seed = 17;
  return workload;
}

// Sharded run at state.range(0) worker threads over the fixed 16-slice
// partition. The admitted count is pinned so a scheduling bug that changes
// results (instead of just wall time) aborts the benchmark.
void BM_ServerSharded(benchmark::State& state) {
  server::ServerConfig config = shard_bench_config();
  config.shards = static_cast<std::size_t>(state.range(0));
  const server::WorkloadOptions workload = shard_bench_workload();
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  for (auto _ : state) {
    const server::ServerOutcome outcome =
        server::run_sharded_server(config, workload);
    arrivals = outcome.arrivals;
    if (admitted == 0) admitted = outcome.admitted;
    if (outcome.admitted != admitted) {
      state.SkipWithError("worker count changed the admitted set");
      break;
    }
    benchmark::DoNotOptimize(outcome.deadline_miss_rate);
  }
  state.counters["admitted"] = static_cast<double>(admitted);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(arrivals));
}
BENCHMARK(BM_ServerSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Unsharded baseline: same workload through the classic single-loop server.
void BM_ServerClassic(benchmark::State& state) {
  const server::ServerConfig config = shard_bench_config();
  const server::WorkloadOptions workload = shard_bench_workload();
  std::uint64_t arrivals = 0;
  for (auto _ : state) {
    const server::ServerOutcome outcome = server::run_server(config, workload);
    arrivals = outcome.arrivals;
    benchmark::DoNotOptimize(outcome.deadline_miss_rate);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(arrivals));
}
BENCHMARK(BM_ServerClassic)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
