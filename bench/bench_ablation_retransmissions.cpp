// Ablation: the retransmission budget m (total transmissions per data
// unit). The paper argues 2-3 suffice (Section V / VIII-B): quality gains
// saturate while the LP grows as (n+1)^m. Reports quality and solve cost
// across lifetimes.
#include <chrono>
#include <iostream>

#include "core/planner.h"
#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"

int main() {
  using namespace dmc;
  const auto paths = exp::table3_model_paths();

  exp::banner("Retransmission budget ablation (lambda = 90 Mbps)");
  exp::Table table({"delta (ms)", "m=1", "m=2", "m=3", "m=4"});
  for (double lifetime : {400.0, 800.0, 1200.0, 1600.0, 2400.0}) {
    std::vector<std::string> row{exp::Table::num(lifetime, 0)};
    for (int m = 1; m <= 4; ++m) {
      core::PlanOptions options;
      options.model.transmissions = m;
      const core::Plan plan = core::plan_max_quality(
          paths, exp::table4_traffic_lifetime(ms(lifetime)), options);
      row.push_back(exp::Table::percent(plan.quality(), 2));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::cout << "\nAt lambda = 90 both links saturate, so extra attempts "
               "cannot be funded and m >= 3 changes nothing; the frontier "
               "is capacity, not loss.\n";

  exp::banner("Retransmission budget ablation (lambda = 60 Mbps: slack)");
  exp::Table light({"delta (ms)", "m=1", "m=2", "m=3", "m=4"});
  for (double lifetime : {800.0, 1200.0, 1600.0, 2400.0}) {
    std::vector<std::string> row{exp::Table::num(lifetime, 0)};
    for (int m = 1; m <= 4; ++m) {
      core::PlanOptions options;
      options.model.transmissions = m;
      const core::Plan plan = core::plan_max_quality(
          paths, {.rate_bps = mbps(60), .lifetime_s = ms(lifetime)}, options);
      row.push_back(exp::Table::percent(plan.quality(), 2));
    }
    light.add_row(std::move(row));
  }
  light.print();
  std::cout << "\nExpected: with bandwidth slack, m = 3 pays only once the "
               "deadline fits two retransmission loops (>= 1650 ms for "
               "path-1 chains); m = 2 already achieves 100% at 800 ms.\n";

  exp::banner("LP size and solve time vs m (5 synthetic paths)");
  core::PathSet synthetic;
  for (int i = 0; i < 5; ++i) {
    synthetic.add({.name = "p" + std::to_string(i),
                   .bandwidth_bps = mbps(20.0 + 10.0 * i),
                   .delay_s = ms(100.0 + 80.0 * i),
                   .loss_rate = 0.05 * i});
  }
  exp::Table timing({"m", "variables", "solve (ms)", "quality"});
  for (int m = 1; m <= 4; ++m) {
    core::PlanOptions options;
    options.model.transmissions = m;
    // dmc-lint: allow(det-wallclock) bench timing readout
    const auto start = std::chrono::steady_clock::now();
    const core::Plan plan = core::plan_max_quality(
        synthetic, {.rate_bps = mbps(120), .lifetime_s = seconds(1.2)},
        options);
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             // dmc-lint: allow(det-wallclock) bench timing
                             std::chrono::steady_clock::now() - start)
                             .count();
    timing.add_row({std::to_string(m), std::to_string(plan.x().size()),
                    exp::Table::num(elapsed, 2),
                    exp::Table::percent(plan.quality(), 2)});
  }
  timing.print();
  return 0;
}
