// Extension bench: closed-loop estimation (Sections VIII-A/B). Cold-starts
// with zero loss knowledge and crude delay guesses against the Table III
// network, re-solving on significant estimate changes, and reports the
// convergence timeline plus the gap to the oracle plan.
#include <iostream>

#include "core/planner.h"
#include "core/units.h"
#include "estimation/adaptive.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"
#include "protocol/session.h"

int main() {
  using namespace dmc;
  const auto truth = exp::table3_paths();
  const auto messages = exp::default_messages(100000);
  const core::TrafficSpec traffic{.rate_bps = mbps(90), .lifetime_s = ms(800)};

  // Oracle: plans with the conservative true characteristics.
  const core::Plan oracle =
      core::plan_max_quality(exp::table3_model_paths(), traffic);

  est::AdaptiveOptions options;
  options.initial_estimates.add({.name = "path1",
                                 .bandwidth_bps = mbps(80),
                                 .delay_s = ms(250),  // wrong by 150 ms
                                 .loss_rate = 0.0});  // loss unknown
  options.initial_estimates.add({.name = "path2",
                                 .bandwidth_bps = mbps(20),
                                 .delay_s = ms(60),
                                 .loss_rate = 0.0});
  options.session.num_messages = messages;
  options.session.seed = 9001;
  options.replan_interval_s = 0.25;
  options.delay_margin_factor = 1.15;

  exp::banner("Adaptive estimation: cold start on the Table III network");
  std::cout << "oracle theory Q = " << exp::Table::percent(oracle.quality())
            << ", messages: " << messages << "\n\n";

  const auto result =
      est::run_adaptive_session(proto::to_sim_paths(truth), traffic, options);

  exp::Table timeline({"t (s)", "replanned", "planned Q", "est d1 (ms)",
                       "est d2 (ms)", "est loss1", "est loss2"});
  for (std::size_t i = 0; i < result.timeline.size(); ++i) {
    // Print the first few ticks and then every second.
    if (i > 8 && (i % 4) != 0) continue;
    const auto& event = result.timeline[i];
    timeline.add_row(
        {exp::Table::num(event.time_s, 2), event.replanned ? "yes" : "-",
         event.replanned ? exp::Table::percent(event.planned_quality) : "-",
         exp::Table::num(to_ms(event.estimates[0].delay_s), 0),
         exp::Table::num(to_ms(event.estimates[1].delay_s), 0),
         exp::Table::percent(event.estimates[0].loss_rate, 1),
         exp::Table::percent(event.estimates[1].loss_rate, 1)});
  }
  timeline.print();

  exp::banner("Adaptive outcome");
  exp::Table summary({"metric", "value"});
  summary.add_row({"re-plans", std::to_string(result.replans)});
  summary.add_row({"overall measured Q",
                   exp::Table::percent(result.session.measured_quality)});
  summary.add_row({"converged (last quarter) Q",
                   exp::Table::percent(result.converged_quality)});
  summary.add_row({"oracle theory Q", exp::Table::percent(oracle.quality())});
  summary.add_row(
      {"gap to oracle",
       exp::Table::num(
           (oracle.quality() - result.converged_quality) * 100.0, 2) +
           " pts"});
  summary.print();
  std::cout << "\nExpected: loss estimate climbs to ~20% on path 1 within a "
               "second; re-plans stop once estimates stabilize; converged "
               "quality lands within a few points of the oracle.\n";
  return 0;
}
