// Warm-started vs cold LP re-solves on the admission / re-planning hot path
// (google-benchmark). Each iteration mutates the measured background load —
// the residual-capacity drift one admission or departure causes — and asks
// for a fresh plan, either through the stateless cold pipeline (model
// rebuild + two-phase simplex, the PR-3 status quo) or through a persistent
// core::Planner (metrics re-bind + dual-simplex re-solve from the stored
// basis). The benchmark arg is the real-path count; 10 paths with m = 2
// transmissions is a 121-column LP. The PR-4 acceptance bar: warm admission
// throughput >= 3x cold at 10 paths (see BENCH_pr4.json).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/units.h"
#include "experiments/scenarios.h"
#include "server/admission.h"
#include "server/arrivals.h"

namespace {

using namespace dmc;

// Synthetic n-path networks extending the Table III shape: heterogeneous
// bandwidth, delay, and loss so the LP has real structure at every size.
core::PathSet make_paths(int n) {
  core::PathSet paths;
  for (int i = 0; i < n; ++i) {
    core::PathSpec path;
    path.name = "p" + std::to_string(i);
    path.bandwidth_bps = mbps(20.0 + 15.0 * static_cast<double>(i % 5));
    path.delay_s = ms(60.0 + 35.0 * static_cast<double>(i % 7));
    path.loss_rate = 0.002 * static_cast<double>(1 + i % 4);
    paths.add(std::move(path));
  }
  return paths;
}

server::SessionRequest request_20mbps() {
  server::SessionRequest request;
  request.traffic = exp::table4_traffic_rate(mbps(20));
  request.num_messages = 400;
  return request;
}

// Deterministic background-load drift, mimicking the PR-3 admission
// workload's churn: a cheap xorshift stream scaled per path.
struct LoadDrift {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  double next_fraction() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 1000) / 1250.0;  // [0, 0.8)
  }
  void fill(const core::PathSet& paths, std::vector<double>& out) {
    out.resize(paths.size());
    for (std::size_t p = 0; p < paths.size(); ++p) {
      out[p] = paths[p].bandwidth_bps * next_fraction();
    }
  }
};

server::AdmissionContext make_context(const core::PathSet& paths) {
  server::AdmissionContext context;
  context.nominal_paths = &paths;
  context.background_bps.assign(paths.size(), 0.0);
  context.residual_bps.assign(paths.size(), 0.0);
  return context;
}

// The PR-3 status quo: every decision rebuilds the model and runs the
// two-phase simplex from scratch.
void BM_AdmissionColdLp(benchmark::State& state) {
  const auto paths = make_paths(static_cast<int>(state.range(0)));
  const auto request = request_20mbps();
  auto policy = server::make_policy("feasibility-lp");
  auto context = make_context(paths);
  LoadDrift drift;
  for (auto _ : state) {
    drift.fill(paths, context.background_bps);
    benchmark::DoNotOptimize(policy->decide(request, context).verdict);
  }
  state.SetItemsProcessed(state.iterations());  // admissions/sec
}
BENCHMARK(BM_AdmissionColdLp)->Arg(2)->Arg(4)->Arg(10);

// The PR-4 hot path: one persistent planner across decisions — combination
// metrics re-bound, the LP re-optimized from the previous optimal basis.
void BM_AdmissionWarmLp(benchmark::State& state) {
  const auto paths = make_paths(static_cast<int>(state.range(0)));
  const auto request = request_20mbps();
  auto policy = server::make_policy("feasibility-lp");
  auto context = make_context(paths);
  core::Planner planner(core::Planner::Options{{}, true});
  context.planner = &planner;
  LoadDrift drift;
  for (auto _ : state) {
    drift.fill(paths, context.background_bps);
    benchmark::DoNotOptimize(policy->decide(request, context).verdict);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["warm_solves"] =
      static_cast<double>(planner.lp_stats().warm_solves);
  state.counters["fallbacks"] =
      static_cast<double>(planner.lp_stats().fallbacks);
}
BENCHMARK(BM_AdmissionWarmLp)->Arg(2)->Arg(4)->Arg(10);

// Departure-triggered re-planning: the same session re-solved against a
// drifting residual. Cold rebuilds paths + model + LP; warm pushes the new
// capacities into the session's planner as a rhs-only delta.
void BM_ReplanCold(benchmark::State& state) {
  const auto paths = make_paths(static_cast<int>(state.range(0)));
  const auto traffic = exp::table4_traffic_rate(mbps(20));
  core::CrossTraffic cross;
  LoadDrift drift;
  for (auto _ : state) {
    drift.fill(paths, cross.background_bps);
    benchmark::DoNotOptimize(
        core::plan_max_quality(paths, traffic, cross, {}).quality());
  }
  state.SetItemsProcessed(state.iterations());  // replans/sec
}
BENCHMARK(BM_ReplanCold)->Arg(2)->Arg(4)->Arg(10);

void BM_ReplanWarm(benchmark::State& state) {
  const auto paths = make_paths(static_cast<int>(state.range(0)));
  const auto traffic = exp::table4_traffic_rate(mbps(20));
  core::Planner planner(core::Planner::Options{{}, true});
  core::Plan current = planner.plan(paths, traffic);
  core::ReplanDelta delta;
  delta.bandwidth_bps.assign(paths.size(), 0.0);
  LoadDrift drift;
  std::vector<double> background;
  for (auto _ : state) {
    drift.fill(paths, background);
    for (std::size_t p = 0; p < paths.size(); ++p) {
      delta.bandwidth_bps[p] =
          std::max(1.0, paths[p].bandwidth_bps - background[p]);
    }
    current = planner.replan(current, delta);
    benchmark::DoNotOptimize(current.quality());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["warm_solves"] =
      static_cast<double>(planner.lp_stats().warm_solves);
  state.counters["fallbacks"] =
      static_cast<double>(planner.lp_stats().fallbacks);
}
BENCHMARK(BM_ReplanWarm)->Arg(2)->Arg(4)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
