// Extension bench: time-varying path characteristics (the "varying
// conditions" the paper's conclusion defers to future work). The WiFi-like
// path abruptly degrades mid-run (loss 0% -> 25%, +80 ms delay) and later
// recovers; the adaptive controller must notice through its estimators,
// re-solve, and shift traffic — a static plan rides the degradation down.
#include <iostream>

#include "core/planner.h"
#include "core/units.h"
#include "estimation/adaptive.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"
#include "protocol/session.h"

int main() {
  using namespace dmc;
  const auto messages = exp::default_messages(100000);

  core::PathSet initial_truth;
  initial_truth.add({.name = "path1",
                     .bandwidth_bps = mbps(80),
                     .delay_s = ms(400),
                     .loss_rate = 0.05});
  initial_truth.add({.name = "path2",
                     .bandwidth_bps = mbps(20),
                     .delay_s = ms(100),
                     .loss_rate = 0.0});
  const core::TrafficSpec traffic{.rate_bps = mbps(60), .lifetime_s = ms(800)};

  const double run_length =
      static_cast<double>(messages) * 8.0 * 1024.0 / traffic.rate_bps;
  const double degrade_at = run_length / 3.0;
  const double recover_at = 2.0 * run_length / 3.0;

  est::AdaptiveOptions options;
  options.initial_estimates.add({.name = "path1",
                                 .bandwidth_bps = mbps(80),
                                 .delay_s = ms(430),
                                 .loss_rate = 0.0});
  options.initial_estimates.add({.name = "path2",
                                 .bandwidth_bps = mbps(20),
                                 .delay_s = ms(110),
                                 .loss_rate = 0.0});
  options.session.num_messages = messages;
  options.session.seed = 303;
  options.replan_interval_s = 0.25;
  options.delay_margin_factor = 1.1;
  options.network_events.push_back(
      {degrade_at, [](sim::Network& network) {
         network.forward_link(0).set_loss_rate(0.25);
         network.forward_link(0).set_prop_delay(ms(480));
       }});
  options.network_events.push_back(
      {recover_at, [](sim::Network& network) {
         network.forward_link(0).set_loss_rate(0.05);
         network.forward_link(0).set_prop_delay(ms(400));
       }});

  exp::banner("Time-varying conditions: degrade at t=" +
              exp::Table::num(degrade_at, 1) + "s, recover at t=" +
              exp::Table::num(recover_at, 1) + "s");
  const auto result = est::run_adaptive_session(
      proto::to_sim_paths(initial_truth), traffic, options);

  exp::Table timeline({"t (s)", "replanned", "est loss1", "est d1 (ms)",
                       "planned Q"});
  for (std::size_t i = 0; i < result.timeline.size(); ++i) {
    if (i % 4 != 3) continue;  // print once per second
    const auto& event = result.timeline[i];
    timeline.add_row(
        {exp::Table::num(event.time_s, 2), event.replanned ? "yes" : "-",
         exp::Table::percent(event.estimates[0].loss_rate, 1),
         exp::Table::num(to_ms(event.estimates[0].delay_s), 0),
         event.replanned ? exp::Table::percent(event.planned_quality) : "-"});
  }
  timeline.print();

  std::cout << "\nadaptive: overall Q = "
            << exp::Table::percent(result.session.measured_quality)
            << ", re-plans = " << result.replans << "\n";

  // Static comparison: the initial plan runs unchanged through the same
  // degradation (simulated by splicing three stationary segments).
  const core::Plan static_plan =
      core::plan_max_quality(options.initial_estimates, traffic);
  core::PathSet degraded_truth;
  degraded_truth.add({.name = "path1",
                      .bandwidth_bps = mbps(80),
                      .delay_s = ms(480),
                      .loss_rate = 0.25});
  degraded_truth.add(initial_truth[1]);

  exp::RunOptions run;
  run.num_messages = messages / 3;
  run.seed = 304;
  const auto seg_good = exp::simulate_plan(static_plan, initial_truth, run);
  const auto seg_bad = exp::simulate_plan(static_plan, degraded_truth, run);
  const double static_quality = (2.0 * seg_good.measured_quality +
                                 seg_bad.measured_quality) / 3.0;
  std::cout << "static plan through the same schedule: Q = "
            << exp::Table::percent(static_quality)
            << " (good segments " << exp::Table::percent(seg_good.measured_quality)
            << ", degraded segment "
            << exp::Table::percent(seg_bad.measured_quality) << ")\n";
  std::cout << "\nExpected: the adaptive loss estimate tracks 5% -> 25% -> "
               "5% within a second or two of each event, the planner "
               "shifts traffic away from path 1 while it is degraded, and "
               "overall adaptive quality beats the static plan.\n";
  return 0;
}
