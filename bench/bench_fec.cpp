// Extension bench for Section IX-B: open-loop coding vs closed-loop
// retransmission. The paper's two arguments, measured:
//   1. when the deadline admits a repair round trip, retransmission matches
//      or beats FEC while spending bandwidth only on actual losses;
//   2. correlated (bursty) losses erode FEC much faster than ARQ, because a
//      burst wipes several packets of the same group.
#include <iostream>

#include "core/planner.h"
#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"
#include "protocol/fec.h"
#include "protocol/session.h"

namespace {

using namespace dmc;

std::vector<sim::PathConfig> bursty(const std::vector<sim::PathConfig>& base,
                                    double mean_burst_packets) {
  // Replace each link's i.i.d. loss with a Gilbert-Elliott process of the
  // same stationary rate: loss_bad = 1, p_exit = 1/burst length, p_enter
  // chosen so pi_bad = original loss.
  std::vector<sim::PathConfig> out = base;
  for (auto& path : out) {
    for (sim::LinkConfig* link : {&path.forward, &path.reverse}) {
      const double loss = link->loss_rate;
      if (loss <= 0.0) continue;
      sim::BurstLoss burst;
      burst.loss_bad = 1.0;
      burst.p_exit_bad = 1.0 / mean_burst_packets;
      // pi_bad = p_enter / (p_enter + p_exit) = loss  =>
      burst.p_enter_bad = loss * burst.p_exit_bad / (1.0 - loss);
      link->loss_rate = 0.0;  // all loss now comes from the bad state
      link->burst_loss = burst;
    }
  }
  return out;
}

}  // namespace

int main() {
  const auto messages = exp::default_messages(50000);
  // Both paths arrive quickly, but the ARQ repair loop needs
  // 200 + 150 + d_j >= 500 ms: below that lifetime the LP is stuck with
  // first attempts while FEC still recovers losses — the one regime where
  // open-loop redundancy genuinely pays.
  core::PathSet paths;
  paths.add({.name = "lossy",
             .bandwidth_bps = mbps(80),
             .delay_s = ms(200),
             .loss_rate = 0.2});
  paths.add({.name = "clean",
             .bandwidth_bps = mbps(20),
             .delay_s = ms(150),
             .loss_rate = 0.0});
  const core::PathSet truth = paths;  // no estimation error in this bench

  exp::banner("IX-B: retransmission (ARQ) vs forward error correction");
  std::cout << "lossy 80 Mbps/200 ms/20% + clean 20 Mbps/150 ms, lambda = "
               "60 Mbps, " << messages << " messages per run\n\n";

  exp::Table table({"lifetime (ms)", "ARQ theory", "ARQ sim", "FEC(8,R*) theory",
                    "FEC sim (iid)", "FEC sim (burst=8)", "best R"});
  for (double lifetime_ms : {300.0, 450.0, 600.0, 900.0}) {
    const core::TrafficSpec traffic{.rate_bps = mbps(60),
                                    .lifetime_s = ms(lifetime_ms)};

    // Closed loop: the paper's LP. The execution guard keeps Equation-4
    // timers clear of the serialization-delayed ack (see DESIGN.md).
    const core::Plan arq = core::plan_max_quality(paths, traffic);
    exp::RunOptions options;
    options.num_messages = messages;
    options.seed = 61;
    options.timeout_guard_s = ms(25);
    const auto arq_sim = exp::simulate_plan(arq, truth, options);

    // Open loop: best (8, R) code the bandwidth allows.
    const proto::FecConfig fec = proto::plan_fec(paths, traffic, 8, 8);
    const auto analysis = proto::analyze_fec(paths, traffic, fec);

    proto::FecSessionConfig session;
    session.num_messages = messages;
    session.seed = 62;
    const auto network = proto::to_sim_paths(truth);
    const auto fec_iid =
        proto::run_fec_session(paths, traffic, fec, network, session);
    const auto fec_burst = proto::run_fec_session(
        paths, traffic, fec, bursty(network, 8.0), session);

    table.add_row({exp::Table::num(lifetime_ms, 0),
                   exp::Table::percent(arq.quality()),
                   exp::Table::percent(arq_sim.measured_quality),
                   exp::Table::percent(analysis.quality),
                   exp::Table::percent(fec_iid.measured_quality),
                   exp::Table::percent(fec_burst.measured_quality),
                   std::to_string(fec.parity_per_group)});
  }
  table.print();
  std::cout << "\nExpected: below 500 ms no repair loop fits and ARQ "
               "degenerates to first attempts (86.7%), so FEC wins. From "
               "500 ms the crossover flips: ARQ reaches the capacity "
               "frontier and FEC cannot beat it while paying parity "
               "overhead. Bursts of ~8 packets gut the (8,R) code (several "
               "losses per group) but barely touch ARQ — the paper's IX-B "
               "skepticism, quantified.\n";
  return 0;
}
