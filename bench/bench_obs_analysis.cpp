// Forensics-engine benchmarks (google-benchmark): analyze() over a
// synthetic ~1M-event trace ring shaped like a real overloaded dmc_server
// run (per-message tx/loss/retx/resolution on session tracks joined with
// link enqueue/deliver evidence, plus queue-depth counters). The contract
// pinned here: full root-cause attribution plus the windowed SLO series
// over one million events completes in well under 100 ms, so forensics is
// cheap enough to leave on at the end of every traced run.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <sstream>

#include "obs/analysis.h"
#include "obs/export.h"
#include "obs/trace_recorder.h"

namespace {

using namespace dmc;

// Deterministic ~1M-event ring: 64 sessions x 3600 messages, ~4.4 events
// per message across one of four links. Every 7th message loses its first
// attempt and is retransmitted; every 31st resolves late, every 97th is
// given up on — enough misses that the cascade actually runs.
obs::TraceRecorder synthetic_ring() {
  constexpr std::size_t kSessions = 64;
  constexpr std::uint32_t kMessages = 3600;
  obs::TraceRecorder rec(std::size_t{1} << 21);  // 2M cap: no wraparound
  std::uint16_t links[4] = {
      rec.link_track("p0/fwd"), rec.link_track("p1/fwd"),
      rec.link_track("p2/fwd"), rec.link_track("p3/fwd")};
  for (std::size_t s = 1; s <= kSessions; ++s) {
    const std::uint16_t track = rec.session_track(static_cast<uint32_t>(s));
    const auto session = static_cast<float>(s);
    double t = static_cast<double>(s) * 1e-3;
    rec.record(obs::Ev::session_admit, t, track,
               static_cast<std::uint32_t>(s), 0, 0.97F);
    for (std::uint32_t m = 0; m < kMessages; ++m) {
      const std::uint16_t link = links[(s + m) % 4];
      t += 4e-4;
      rec.record(obs::Ev::msg_tx, t, track, m);
      rec.record(obs::Ev::link_tx, t, link, m, 0, session);
      if (m % 7 == 0) {
        rec.record(obs::Ev::link_loss_drop, t + 1e-4, link, m, 0, session);
        rec.record(obs::Ev::msg_retx, t + 2e-4, track, m);
        rec.record(obs::Ev::link_tx, t + 2e-4, link, m, 0, session);
      }
      rec.record(obs::Ev::link_deliver, t + 3e-4, link, m, 0, session);
      if (m % 97 == 0) {
        rec.record(obs::Ev::msg_gave_up, t + 4e-4, track, m);
      } else if (m % 31 == 0) {
        rec.record(obs::Ev::msg_late, t + 3e-4, track, m, 0, 2e-4F);
      } else {
        rec.record(obs::Ev::msg_deliver, t + 3e-4, track, m);
      }
    }
  }
  return rec;
}

// The headline number: one full analyze() pass — timeline reconstruction,
// cascade attribution, worst-session ranking, windowed SLO series — over
// the ~1M-event ring. items/s therefore reads as events analyzed per
// second; the acceptance bar is < 100 ms per iteration.
void BM_AnalyzeMillionEvents(benchmark::State& state) {
  const obs::TraceRecorder rec = synthetic_ring();
  obs::AnalysisOptions options;
  options.window_s = 0.25;
  std::uint64_t misses = 0;
  for (auto _ : state) {
    const obs::AnalysisReport report = obs::analyze(rec, options);
    misses = report.misses.total();
    benchmark::DoNotOptimize(report.messages_observed);
  }
  benchmark::DoNotOptimize(misses);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rec.size()));
  state.counters["events"] = static_cast<double>(rec.size());
}
BENCHMARK(BM_AnalyzeMillionEvents)->Unit(benchmark::kMillisecond);

// The ring -> TraceData copy dmc_server pays before export; analyze() on a
// recorder does the same copy internally, so this isolates its share.
void BM_ToTraceData(benchmark::State& state) {
  const obs::TraceRecorder rec = synthetic_ring();
  for (auto _ : state) {
    const obs::TraceData data = obs::to_trace_data(rec);
    benchmark::DoNotOptimize(data.events.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rec.size()));
}
BENCHMARK(BM_ToTraceData)->Unit(benchmark::kMillisecond);

// The offline path dmc_trace pays: parse a serialized Chrome trace back
// into TraceData. Dominated by JSON scanning, so it sets the expectation
// for how much slower offline forensics is than in-process.
void BM_ImportChromeTrace(benchmark::State& state) {
  const obs::TraceRecorder rec = synthetic_ring();
  std::ostringstream out;
  obs::write_chrome_trace(out, rec);
  const std::string serialized = out.str();
  for (auto _ : state) {
    std::istringstream in(serialized);
    const obs::TraceData data = obs::import_chrome_trace(in);
    benchmark::DoNotOptimize(data.events.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rec.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(serialized.size()));
}
BENCHMARK(BM_ImportChromeTrace)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
