// Strategy comparison at the paper's operating points: the LP optimum vs
// single paths, proportional (bandwidth-share) splitting, greedy flow-level
// assignment (Wu et al.-style), and open-loop duplication (Section IX-B).
// Theory and simulation side by side.
#include <iostream>

#include "core/planner.h"
#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"
#include "protocol/baselines.h"

namespace {

using namespace dmc;

void compare_at(double rate_mbps, double lifetime_ms,
                std::uint64_t messages) {
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  const core::TrafficSpec traffic{.rate_bps = mbps(rate_mbps),
                                  .lifetime_s = ms(lifetime_ms)};

  exp::banner("Strategies at lambda = " + exp::Table::num(rate_mbps, 0) +
              " Mbps, delta = " + exp::Table::num(lifetime_ms, 0) + " ms");

  exp::Table table({"strategy", "theory Q", "simulated Q"});
  exp::RunOptions options;
  options.num_messages = messages;

  const auto simulate = [&](const core::Plan& plan,
                            std::uint64_t seed) -> std::string {
    options.seed = seed;
    const auto session = exp::simulate_plan(plan, truth, options);
    return exp::Table::percent(session.measured_quality);
  };

  const core::Plan optimal = core::plan_max_quality(planning, traffic);
  table.add_row({"deadline-aware LP (ours)",
                 exp::Table::percent(optimal.quality()),
                 simulate(optimal, 11)});

  const core::Plan split = proto::make_proportional_split_plan(planning, traffic);
  table.add_row({"proportional split",
                 exp::Table::percent(split.quality()), simulate(split, 12)});

  const core::Plan greedy = proto::make_greedy_flow_plan(planning, traffic);
  table.add_row({"greedy flow assignment",
                 exp::Table::percent(greedy.quality()), simulate(greedy, 13)});

  const auto duplication = proto::plan_duplication(planning, traffic);
  table.add_row({"duplication (subset LP)",
                 duplication.feasible
                     ? exp::Table::percent(duplication.quality)
                     : "infeasible",
                 "- (open loop, no retransmission machinery)"});

  for (std::size_t i = 0; i < planning.size(); ++i) {
    core::PathSet single_planning;
    single_planning.add(planning[i]);
    core::PathSet single_truth;
    single_truth.add(truth[i]);
    const core::Plan single = core::plan_max_quality(single_planning, traffic);
    options.seed = 20 + i;
    const auto session = exp::simulate_plan(single, single_truth, options);
    table.add_row({"single " + planning[i].name,
                   exp::Table::percent(single.quality()),
                   exp::Table::percent(session.measured_quality)});
  }
  table.print();
}

}  // namespace

int main() {
  const auto messages = exp::default_messages(50000);
  std::cout << "messages per simulation: " << messages
            << " (override with DMC_MESSAGES)\n";

  compare_at(90, 800, messages);   // the paper's headline operating point
  compare_at(40, 800, messages);   // under capacity: everyone's easier
  compare_at(140, 800, messages);  // over capacity: dropping is mandatory
  compare_at(90, 500, messages);   // tight deadline: retransmission useless
                                   // on the slow path
  std::cout << "\nExpected ordering: LP >= greedy flow >= proportional; "
               "duplication only competitive when capacity is abundant.\n";
  return 0;
}
