// Reproduces Figure 2 (top): communication quality vs data rate lambda,
// delta = 800 ms. Four series as in the paper: multipath simulation,
// multipath theory, and each single path's theoretical best. The planner
// uses the conservative delays (450/150 ms) while the simulated network has
// the true Table III characteristics (400/100 ms) — exactly the paper's
// Experiment 1 methodology.
#include <iostream>

#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"

int main() {
  using namespace dmc;
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  const auto messages = exp::default_messages(100000);

  exp::banner("Figure 2 (top): quality vs data rate (delta = 800 ms)");
  std::cout << "messages per point: " << messages
            << " (override with DMC_MESSAGES)\n\n";

  exp::Table table({"lambda (Mbps)", "multipath (sim)", "multipath (theory)",
                    "path 1 (theory)", "path 2 (theory)"});
  for (double rate = 10; rate <= 150; rate += 10) {
    const auto traffic = exp::table4_traffic_rate(mbps(rate));
    const auto theory = exp::theory_qualities(planning, traffic);

    exp::RunOptions options;
    options.num_messages = messages;
    options.seed = 42 + static_cast<std::uint64_t>(rate);
    const auto outcome = exp::run_planned(planning, truth, traffic, options);

    table.add_row({exp::Table::num(rate, 0),
                   exp::Table::percent(outcome.session.measured_quality),
                   exp::Table::percent(theory.multipath),
                   exp::Table::percent(theory.single_path[0]),
                   exp::Table::percent(theory.single_path[1])});
  }
  table.print();
  std::cout << "\nShape checks (paper): multipath 100% through 80 Mbps, then "
               "84/70/60%; path 1 caps at 80%; path 2 collapses as 20/lambda."
            << "\n";
  return 0;
}
