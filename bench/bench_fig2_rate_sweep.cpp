// Reproduces Figure 2 (top): communication quality vs data rate lambda,
// delta = 800 ms. Four series as in the paper: multipath simulation,
// multipath theory, and each single path's theoretical best. The planner
// uses the conservative delays (450/150 ms) while the simulated network has
// the true Table III characteristics (400/100 ms) — exactly the paper's
// Experiment 1 methodology. The grid is expressed as fleet job specs and
// runs on the work-stealing engine (DMC_THREADS controls parallelism);
// per-point seeds match the historical serial sweep.
#include <iostream>

#include "experiments/runner.h"
#include "fleet/engine.h"
#include "fleet/grids.h"

int main() try {
  using namespace dmc;
  const auto messages = exp::default_messages(100000);

  exp::banner("Figure 2 (top): quality vs data rate (delta = 800 ms)");
  std::cout << "messages per point: " << messages
            << " (override with DMC_MESSAGES; threads with DMC_THREADS)\n\n";

  fleet::GridOptions grid;
  grid.messages = messages;
  fleet::Engine engine;
  const auto records = fleet::run_jobs(engine, fleet::fig2_rate_grid(grid));

  fleet::fig2_table(records, "lambda (Mbps)").print();
  std::cout << "\nShape checks (paper): multipath 100% through 80 Mbps, then "
               "84/70/60%; path 1 caps at 80%; path 2 collapses as 20/lambda."
            << "\n";
  return 0;
} catch (const std::exception& e) {
  // Misconfigured DMC_MESSAGES / DMC_THREADS throw; report, don't abort.
  std::cerr << "bench_fig2_rate_sweep: " << e.what() << "\n";
  return 1;
}
