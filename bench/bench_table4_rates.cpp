// Reproduces Table IV (top): optimal solutions and communication quality as
// the application data rate lambda varies, with delta = 800 ms, over the
// Table III paths (conservative model delays 450/150 ms).
//
// The LP has alternate optimal vertices, so the solution column may differ
// from the paper's printed basis; the quality column is the invariant and
// must match the paper exactly. The paper's own solutions are re-evaluated
// in the last column to demonstrate equivalence.
#include <iostream>
#include <map>
#include <vector>

#include "core/planner.h"
#include "core/units.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"
#include "protocol/baselines.h"

namespace {

using namespace dmc;

// The paper's printed solutions (columns x0,0 x1,2 x2,2), Table IV top.
struct PaperRow {
  double rate_mbps;
  double x00, x12, x22;
  double quality;
};

const std::vector<PaperRow> kPaperRows = {
    {10, 0, 0, 1, 1.00},        {20, 0, 0, 1, 1.00},
    {40, 0, 5.0 / 8, 3.0 / 8, 1.00},
    {60, 0, 5.0 / 6, 1.0 / 6, 1.00},
    {80, 0, 15.0 / 16, 1.0 / 16, 1.00},
    {100, 4.0 / 25, 4.0 / 5, 1.0 / 25, 0.84},
    {120, 3.0 / 10, 2.0 / 3, 1.0 / 30, 0.70},
    {140, 2.0 / 5, 4.0 / 7, 1.0 / 35, 0.60},
};

}  // namespace

int main() {
  const auto paths = exp::table3_model_paths();

  exp::banner("Table IV (top): solutions vs data rate, delta = 800 ms");
  exp::Table table({"lambda (Mbps)", "our solution", "our Q", "paper Q",
                    "paper solution Q (re-evaluated)"});

  for (const PaperRow& row : kPaperRows) {
    const core::TrafficSpec traffic = exp::table4_traffic_rate(mbps(row.rate_mbps));
    const core::Plan plan = core::plan_max_quality(paths, traffic);

    // Evaluate the paper's printed solution through our model.
    const core::Model model(paths, traffic);
    std::vector<double> paper_x(model.combos().size(), 0.0);
    const auto idx = [&](std::size_t i, std::size_t j) {
      std::size_t attempts[] = {i, j};
      return model.combos().encode(attempts);
    };
    paper_x[idx(0, 0)] = row.x00;
    paper_x[idx(1, 2)] = row.x12;
    paper_x[idx(2, 2)] = row.x22;
    const double paper_solution_quality = model.evaluate(paper_x).quality;

    std::string solution;
    for (const auto& [l, w] : plan.nonzero_weights()) {
      if (!solution.empty()) solution += " ";
      solution += plan.label(l) + "=" + exp::Table::num(w, 3);
    }
    table.add_row({exp::Table::num(row.rate_mbps, 0), solution,
                   exp::Table::percent(plan.quality()),
                   exp::Table::percent(row.quality),
                   exp::Table::percent(paper_solution_quality)});
  }
  table.print();
  std::cout << "\nNote: alternate LP optima are expected; the invariant is "
               "the quality column.\n";
  return 0;
}
