// Component micro-benchmarks (google-benchmark): simplex pivots, scheduler
// selection, simulator event throughput, gamma CDF evaluation, numeric
// convolution, and the timeout optimizer. These bound the per-packet and
// per-replan costs a real implementation would pay.
#include <benchmark/benchmark.h>

#include "core/model.h"
#include "core/scheduler.h"
#include "core/timeout_optimizer.h"
#include "core/units.h"
#include "experiments/scenarios.h"
#include "lp/simplex.h"
#include "sim/link.h"
#include "stats/convolution.h"
#include "stats/gamma_math.h"

namespace {

using namespace dmc;

void BM_SimplexPaperPoint(benchmark::State& state) {
  // The paper's reference measurement: 2 paths + blackhole, m = 2
  // (CGAL: ~458 us on a 2.8 GHz i5).
  const core::Model model(exp::table3_model_paths(),
                          {.rate_bps = mbps(90), .lifetime_s = ms(800)});
  const lp::Problem problem = model.quality_lp();
  const lp::SimplexSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(problem).objective_value);
  }
}
BENCHMARK(BM_SimplexPaperPoint)->Unit(benchmark::kMicrosecond);

void BM_DeficitSchedulerSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  core::DeficitScheduler scheduler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.select());
  }
}
BENCHMARK(BM_DeficitSchedulerSelect)->Arg(9)->Arg(121)->Arg(1331);

void BM_WeightedRandomSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  core::WeightedRandomScheduler scheduler(weights, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.select());
  }
}
BENCHMARK(BM_WeightedRandomSelect)->Arg(9)->Arg(121)->Arg(1331);

// Self-rescheduling tick stored inline in the calendar entry (the common
// shape of protocol timers: small, trivially copyable captures).
struct Tick {
  sim::Simulator* simulator;
  int* count;
  void operator()() const {
    if (++*count < 10000) simulator->in(1e-6, *this);
  }
};

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator(1);
    int count = 0;
    simulator.in(1e-6, Tick{&simulator, &count});
    simulator.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

void BM_LinkPacketPath(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator(1);
    sim::LinkConfig config{.rate_bps = gbps(1), .prop_delay_s = ms(1),
                           .loss_rate = 0.05,
                           .queue_capacity = 1000000};
    sim::Link link(simulator, config, "bench");
    std::uint64_t delivered = 0;
    link.set_receiver([&](sim::PooledPacket) { ++delivered; });
    for (int i = 0; i < 5000; ++i) {
      sim::PooledPacket packet = simulator.packets().acquire();
      packet->seq = static_cast<std::uint64_t>(i);
      packet->size_bytes = 1024;
      link.send(std::move(packet));
    }
    simulator.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_LinkPacketPath)->Unit(benchmark::kMillisecond);

void BM_GammaCdf(benchmark::State& state) {
  double x = 0.0;
  for (auto _ : state) {
    x += 1e-4;
    benchmark::DoNotOptimize(
        stats::regularized_gamma_p(10.0, 1.0 + x));
  }
}
BENCHMARK(BM_GammaCdf);

void BM_NumericConvolution(benchmark::State& state) {
  const auto a = stats::make_shifted_gamma(ms(400), 10.0, ms(4));
  const auto b = stats::make_shifted_gamma(ms(100), 5.0, ms(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::sum_distribution(a, b)->mean());
  }
}
BENCHMARK(BM_NumericConvolution)->Unit(benchmark::kMillisecond);

void BM_TimeoutOptimization(benchmark::State& state) {
  const auto a = stats::make_shifted_gamma(ms(400), 10.0, ms(4));
  const auto b = stats::make_shifted_gamma(ms(100), 5.0, ms(2));
  const auto ack = stats::sum_distribution(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::optimize_timeout(*ack, *b, ms(750)).timeout);
  }
}
BENCHMARK(BM_TimeoutOptimization)->Unit(benchmark::kMicrosecond);

void BM_RandomDelayModelBuild(benchmark::State& state) {
  // Full Experiment 2 model construction: convolutions + n^2 timeout
  // optimizations + LP assembly.
  for (auto _ : state) {
    const core::Model model(exp::table5_paths(), exp::table5_traffic());
    benchmark::DoNotOptimize(model.metrics().size());
  }
}
BENCHMARK(BM_RandomDelayModelBuild)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
