// Reproduces Table IV (bottom): optimal solutions and quality as the data
// lifetime delta varies, with lambda = 90 Mbps. The lifetime bands of the
// paper (150-400, 450-700, 750-1000, 1050+) emerge from the feasibility
// breakpoints of the path combinations; a fine sweep locates the band edges.
#include <iostream>
#include <vector>

#include "core/planner.h"
#include "core/units.h"
#include "experiments/scenarios.h"
#include "experiments/table.h"

namespace {

using namespace dmc;

struct PaperBand {
  const char* band;
  double probe_ms;  // representative lifetime inside the band
  double quality;
};

const std::vector<PaperBand> kPaperBands = {
    {"150-400 ms", 300, 2.0 / 9.0},
    {"450-700 ms", 600, 7.6 / 9.0},
    {"750-1000 ms", 800, 42.0 / 45.0},
    {"1050+ ms", 1200, 42.0 / 45.0},
};

}  // namespace

int main() {
  const auto paths = exp::table3_model_paths();

  exp::banner("Table IV (bottom): solutions vs lifetime, lambda = 90 Mbps");
  exp::Table table({"lifetime band", "our solution", "our Q", "paper Q"});
  for (const PaperBand& band : kPaperBands) {
    const core::Plan plan = core::plan_max_quality(
        paths, exp::table4_traffic_lifetime(ms(band.probe_ms)));
    std::string solution;
    for (const auto& [l, w] : plan.nonzero_weights()) {
      if (!solution.empty()) solution += " ";
      solution += plan.label(l) + "=" + exp::Table::num(w, 3);
    }
    table.add_row({band.band, solution, exp::Table::percent(plan.quality()),
                   exp::Table::percent(band.quality)});
  }
  table.print();

  exp::banner("Band-edge sweep (quality breakpoints, 50 ms grid)");
  exp::Table sweep({"lifetime (ms)", "Q"});
  double previous = -1.0;
  for (double lifetime = 150; lifetime <= 1200; lifetime += 50) {
    const core::Plan plan = core::plan_max_quality(
        paths, exp::table4_traffic_lifetime(ms(lifetime)));
    if (std::abs(plan.quality() - previous) > 1e-9) {
      sweep.add_row({exp::Table::num(lifetime, 0),
                     exp::Table::percent(plan.quality(), 2)});
      previous = plan.quality();
    }
  }
  sweep.print();
  std::cout << "\nExpected breakpoints at 450 ms (path-1 first attempts "
               "feasible) and 750 ms (cross-path retransmission feasible).\n";
  return 0;
}
