#include "stats/convolution.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/rng.h"

namespace dmc::stats {
namespace {

TEST(Convolution, DeterministicPlusDeterministic) {
  const auto sum =
      sum_distribution(make_deterministic(0.2), make_deterministic(0.3));
  EXPECT_EQ(sum->cdf(0.49), 0.0);
  EXPECT_EQ(sum->cdf(0.5), 1.0);
  EXPECT_NEAR(sum->mean(), 0.5, 1e-12);
}

TEST(Convolution, DeterministicShiftsOtherDistribution) {
  const auto gamma = make_shifted_gamma(0.1, 5.0, 0.002);
  const auto sum = sum_distribution(make_deterministic(0.2), gamma);
  EXPECT_NEAR(sum->mean(), gamma->mean() + 0.2, 1e-12);
  EXPECT_NEAR(sum->variance(), gamma->variance(), 1e-12);
  EXPECT_NEAR(sum->cdf(0.35), gamma->cdf(0.15), 1e-12);

  const auto sum2 = sum_distribution(gamma, make_deterministic(0.2));
  EXPECT_NEAR(sum2->cdf(0.35), sum->cdf(0.35), 1e-12);
}

TEST(Convolution, GammaPlusGammaSameScaleIsExact) {
  // Gamma(a1, th) + Gamma(a2, th) = Gamma(a1 + a2, th); shifts add.
  const auto a = make_shifted_gamma(0.1, 5.0, 0.002);
  const auto b = make_shifted_gamma(0.2, 3.0, 0.002);
  const auto sum = sum_distribution(a, b);
  const auto* gamma = dynamic_cast<const ShiftedGammaDelay*>(sum.get());
  ASSERT_NE(gamma, nullptr) << "same-scale gammas should fold exactly";
  EXPECT_NEAR(gamma->shift(), 0.3, 1e-12);
  EXPECT_NEAR(gamma->shape(), 8.0, 1e-12);
  EXPECT_NEAR(gamma->scale(), 0.002, 1e-12);
}

TEST(Convolution, NumericMatchesMonteCarlo) {
  // Different scales force the numeric path; compare against sampling.
  const auto a = make_shifted_gamma(0.4, 10.0, 0.004);
  const auto b = make_shifted_gamma(0.1, 5.0, 0.002);
  const auto sum = sum_distribution(a, b);

  Rng rng(123);
  const int n = 200000;
  std::vector<double> samples;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(a->sample(rng) + b->sample(rng));
  std::sort(samples.begin(), samples.end());

  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double empirical =
        samples[static_cast<std::size_t>(p * (n - 1))];
    const double analytic = sum->quantile(p);
    EXPECT_NEAR(analytic, empirical, 1.5e-3)
        << "p=" << p;  // 1.5 ms agreement on a ~550 ms distribution
  }
  EXPECT_NEAR(sum->mean(), a->mean() + b->mean(), 1e-3);
  EXPECT_NEAR(sum->variance(), a->variance() + b->variance(), 5e-5);
}

TEST(Convolution, MeanAndVarianceAddForIndependents) {
  const auto a = make_uniform(0.0, 0.1);
  const auto b = make_shifted_gamma(0.05, 4.0, 0.003);
  const auto sum = sum_distribution(a, b);
  EXPECT_NEAR(sum->mean(), a->mean() + b->mean(), 5e-4);
  EXPECT_NEAR(sum->variance(), a->variance() + b->variance(), 5e-5);
}

TEST(Convolution, NullInputsThrow) {
  EXPECT_THROW((void)sum_distribution(nullptr, make_deterministic(0.1)),
               std::invalid_argument);
  EXPECT_THROW((void)sum_distribution(make_deterministic(0.1), nullptr),
               std::invalid_argument);
}

TEST(GriddedDistribution, BasicInvariants) {
  // CDF table for Uniform(0, 1) on an 11-point grid.
  std::vector<double> cdf;
  for (int i = 0; i <= 10; ++i) cdf.push_back(i / 10.0);
  const GriddedDistribution g(0.0, 0.1, cdf);
  EXPECT_EQ(g.cdf(-0.1), 0.0);
  EXPECT_NEAR(g.cdf(0.55), 0.55, 1e-9);
  EXPECT_EQ(g.cdf(1.5), 1.0);
  EXPECT_NEAR(g.quantile(0.25), 0.25, 1e-9);
  EXPECT_NEAR(g.mean(), 0.5, 1e-3);
  EXPECT_NEAR(g.variance(), 1.0 / 12.0, 1e-3);
}

TEST(GriddedDistribution, SanitizesNonMonotoneInput) {
  const GriddedDistribution g(0.0, 0.5, {0.0, 0.7, 0.4, 0.9});
  double prev = 0.0;
  for (double x = -0.5; x <= 2.0; x += 0.05) {
    const double c = g.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  EXPECT_EQ(g.cdf(10.0), 1.0);
}

TEST(GriddedDistribution, SamplesFollowTable) {
  std::vector<double> cdf;
  for (int i = 0; i <= 100; ++i) cdf.push_back(i / 100.0);
  const GriddedDistribution g(0.0, 0.01, cdf);  // ~Uniform(0,1)
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += g.sample(rng);
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(GriddedDistribution, RejectsDegenerateGrids) {
  EXPECT_THROW(GriddedDistribution(0.0, 0.1, {0.5}), std::invalid_argument);
  EXPECT_THROW(GriddedDistribution(0.0, 0.0, {0.0, 1.0}),
               std::invalid_argument);
}

// Regression: mass at or below the first grid point (an atom at the lower
// support) used to be silently dropped from the moments because the
// midpoint loop started at k = 1.
TEST(GriddedDistribution, AtomAtLowerSupportCountsTowardMoments) {
  // 0.3 of the mass sits exactly at lo = 1.0; the rest spreads over two
  // cells with midpoints 1.25 and 1.75.
  const GriddedDistribution g(1.0, 0.5, {0.3, 0.65, 1.0});
  const double mean = 0.3 * 1.0 + 0.35 * 1.25 + 0.35 * 1.75;
  const double second =
      0.3 * 1.0 + 0.35 * 1.25 * 1.25 + 0.35 * 1.75 * 1.75;
  EXPECT_NEAR(g.mean(), mean, 1e-12);
  EXPECT_NEAR(g.variance(), second - mean * mean, 1e-12);
  // The atom is also visible to the CDF at lo itself (P(X <= lo) = 0.3),
  // while anything strictly below stays at 0.
  EXPECT_NEAR(g.cdf(1.0), 0.3, 1e-12);
  EXPECT_EQ(g.cdf(1.0 - 1e-9), 0.0);
}

TEST(GriddedDistribution, NonFiniteArgumentsNeverReachTheTableCast) {
  // NaN/inf must short-circuit before the float-to-index cast (UB); NaN
  // reads as "not in support" and +inf as "past the support".
  const GriddedDistribution g(1.0, 0.5, {0.3, 0.65, 1.0});
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(g.cdf(nan), 0.0);
  EXPECT_EQ(g.cdf(inf), 1.0);
  EXPECT_EQ(g.cdf(-inf), 0.0);
  double out[3];
  g.cdf_grid(nan, 0.5, 3, out);  // every grid point is NaN
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[2], 0.0);
}

TEST(GriddedDistribution, AtomAtLowerSupportMakesItDiscontinuous) {
  const GriddedDistribution with_atom(1.0, 0.5, {0.3, 0.65, 1.0});
  EXPECT_FALSE(with_atom.continuous());
  const GriddedDistribution smooth(1.0, 0.5, {0.0, 0.65, 1.0});
  EXPECT_TRUE(smooth.continuous());
}

TEST(GriddedDistribution, QuantileEdgeSemantics) {
  const GriddedDistribution g(1.0, 0.5, {0.3, 0.65, 1.0});
  // Closed-interval contract shared by every DelayDistribution.
  EXPECT_EQ(g.quantile(0.0), 1.0);
  EXPECT_EQ(g.quantile(1.0), g.upper_support());
  // p at or below the atom's mass lands on the atom (inf{x : F(x) >= p}).
  EXPECT_EQ(g.quantile(0.1), 1.0);
  EXPECT_EQ(g.quantile(0.3), 1.0);
  EXPECT_THROW((void)g.quantile(-0.01), std::domain_error);
  EXPECT_THROW((void)g.quantile(1.01), std::domain_error);
  EXPECT_THROW((void)g.quantile(std::nan("")), std::domain_error);
  // If the table reaches 1 before the last point, quantile(1) is the first
  // point that does (the true least upper bound of the support).
  const GriddedDistribution early(0.0, 0.25, {0.0, 0.5, 1.0, 1.0, 1.0});
  EXPECT_NEAR(early.quantile(1.0), 0.5, 1e-12);
}

// Regression: the central-difference pdf used to read the flat extension
// beyond the support within half a step of either edge, biasing edge
// densities toward half their true value.
TEST(GriddedDistribution, PdfUsesOneSidedDifferencesAtTheEdges) {
  // Uniform(0, 1) table: the true density is 1 everywhere on the support.
  std::vector<double> cdf;
  for (int i = 0; i <= 100; ++i) cdf.push_back(i / 100.0);
  const GriddedDistribution g(0.0, 0.01, cdf);
  EXPECT_NEAR(g.pdf(0.0), 1.0, 1e-9);          // was 0
  EXPECT_NEAR(g.pdf(0.004), 1.0, 1e-9);        // was ~0.9
  EXPECT_NEAR(g.pdf(1.0), 1.0, 1e-9);          // was 0
  EXPECT_NEAR(g.pdf(1.0 - 0.004), 1.0, 1e-9);  // was ~0.9
  EXPECT_EQ(g.pdf(-0.001), 0.0);
  EXPECT_EQ(g.pdf(1.001), 0.0);
}

TEST(GriddedDistribution, NumericPdfIntegratesToOne) {
  // Numeric-convolution output (a genuinely smooth table): the midpoint
  // integral of pdf() over the support must recover the total mass.
  const auto a = make_shifted_gamma(0.05, 6.0, 0.003);
  const auto b = make_shifted_gamma(0.02, 3.0, 0.002);
  const auto sum = numeric_sum_distribution(a, b);
  const auto* g = dynamic_cast<const GriddedDistribution*>(sum.get());
  ASSERT_NE(g, nullptr);
  const double lo = g->min_support();
  const double hi = g->upper_support();
  const int steps = 20000;
  const double h = (hi - lo) / steps;
  double integral = 0.0;
  for (int i = 0; i < steps; ++i) {
    integral += g->pdf(lo + (i + 0.5) * h) * h;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

}  // namespace
}  // namespace dmc::stats
