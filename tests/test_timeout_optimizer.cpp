#include "core/timeout_optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.h"
#include "core/planner.h"
#include "core/units.h"
#include "experiments/scenarios.h"
#include "stats/convolution.h"

namespace dmc::core {
namespace {

TEST(TimeoutOptimizer, DeterministicReducesToEquationFour) {
  // Fixed delays: the optimal timeout window is [d_i + d_min, delta - d_j];
  // the leftmost policy recovers Equation 4 exactly.
  const auto ack = stats::make_deterministic(ms(600));      // d_i + d_min
  const auto retrans = stats::make_deterministic(ms(150));  // d_j
  const TimeoutChoice choice = optimize_timeout(*ack, *retrans, ms(800));
  ASSERT_TRUE(choice.feasible);
  EXPECT_NEAR(choice.timeout, ms(600), 1e-9);
  EXPECT_NEAR(choice.objective, 1.0, 1e-12);
}

TEST(TimeoutOptimizer, MidpointPolicyPicksPlateauCenter) {
  const auto ack = stats::make_deterministic(ms(600));
  const auto retrans = stats::make_deterministic(ms(150));
  TimeoutOptions options;
  options.plateau_policy = PlateauPolicy::midpoint;
  const TimeoutChoice choice =
      optimize_timeout(*ack, *retrans, ms(800), options);
  ASSERT_TRUE(choice.feasible);
  // Plateau is [600, 650]; midpoint = 625.
  EXPECT_NEAR(choice.timeout, ms(625), ms(1));
}

TEST(TimeoutOptimizer, InfeasibleWhenWindowIsEmpty) {
  // d_i + d_min = 600 but the retransmission needs 300 and delta = 800:
  // 600 + 300 > 800 -> no feasible timeout.
  const auto ack = stats::make_deterministic(ms(600));
  const auto retrans = stats::make_deterministic(ms(300));
  const TimeoutChoice choice = optimize_timeout(*ack, *retrans, ms(800));
  EXPECT_FALSE(choice.feasible);
  EXPECT_TRUE(std::isinf(choice.timeout));
}

TEST(TimeoutOptimizer, InfiniteDeadlineMeansNeverRetransmit) {
  // With no deadline everything arrives in time; the optimizer must not
  // try to grid [lo, inf) (the grid points would be NaN) and "wait
  // forever" loses nothing.
  const auto ack = stats::make_shifted_gamma(ms(200), 10.0, ms(2));
  const auto retrans = stats::make_shifted_gamma(ms(100), 5.0, ms(2));
  const TimeoutChoice choice = optimize_timeout(
      *ack, *retrans, std::numeric_limits<double>::infinity());
  EXPECT_FALSE(choice.feasible);
  EXPECT_TRUE(std::isinf(choice.timeout));
}

TEST(TimeoutOptimizer, InfeasibleWhenAckNeverArrives) {
  const auto ack = stats::make_deterministic(
      std::numeric_limits<double>::infinity());
  const auto retrans = stats::make_deterministic(ms(100));
  const TimeoutChoice choice = optimize_timeout(*ack, *retrans, ms(800));
  EXPECT_FALSE(choice.feasible);
  EXPECT_TRUE(std::isinf(choice.timeout));
}

// Experiment 2: the paper's optimized timeouts (Equation 35). t_{1,2} and
// t_{2,1} have genuinely unique maxima and must match within a few ms;
// t_{2,2} sits on a numerically flat plateau (the paper itself notes the
// solution is not unique), so only feasibility and near-1 objective are
// checked there.
class Experiment2Timeouts : public ::testing::Test {
 protected:
  void SetUp() override {
    path1_ = stats::make_shifted_gamma(ms(400), 10.0, ms(4));
    path2_ = stats::make_shifted_gamma(ms(100), 5.0, ms(2));
    ack1_ = stats::sum_distribution(path1_, path2_);  // d_1 + d_min
    ack2_ = stats::sum_distribution(path2_, path2_);  // d_2 + d_min
  }
  stats::DelayDistributionPtr path1_, path2_, ack1_, ack2_;
  const double delta_ = ms(750);
};

TEST_F(Experiment2Timeouts, T12MatchesPaper) {
  const TimeoutChoice t12 = optimize_timeout(*ack1_, *path2_, delta_);
  ASSERT_TRUE(t12.feasible);
  EXPECT_NEAR(t12.timeout, ms(615), ms(5));
  EXPECT_GT(t12.objective, 0.99);
}

TEST_F(Experiment2Timeouts, T21MatchesPaper) {
  const TimeoutChoice t21 = optimize_timeout(*ack2_, *path1_, delta_);
  ASSERT_TRUE(t21.feasible);
  EXPECT_NEAR(t21.timeout, ms(252), ms(5));
  EXPECT_GT(t21.objective, 0.99);
}

TEST_F(Experiment2Timeouts, T22SitsOnTheNearOptimalPlateau) {
  const TimeoutChoice t22 = optimize_timeout(*ack2_, *path2_, delta_);
  ASSERT_TRUE(t22.feasible);
  EXPECT_GT(t22.objective, 0.9999);
  // The paper chose 323 ms; any point of the plateau is equivalent. Check
  // that the paper's choice scores no better than ours.
  const double paper_objective = ack2_->cdf(ms(323)) * path2_->cdf(delta_ - ms(323));
  EXPECT_GE(t22.objective + 1e-9, paper_objective);
}

TEST_F(Experiment2Timeouts, T11IsInfeasibleAsInPaper) {
  // "The timeout t_{1,1} is not defined here because it is not possible to
  // perform a retransmission in time with that particular path combination."
  const TimeoutChoice t11 = optimize_timeout(*ack1_, *path1_, delta_);
  EXPECT_FALSE(t11.feasible);
  EXPECT_TRUE(std::isinf(t11.timeout));
}

TEST(TimeoutOptimizer, ObjectiveDecomposesIntoBothFactors) {
  const auto ack = stats::make_shifted_gamma(ms(200), 10.0, ms(2));
  const auto retrans = stats::make_shifted_gamma(ms(100), 5.0, ms(2));
  const TimeoutChoice choice = optimize_timeout(*ack, *retrans, ms(750));
  ASSERT_TRUE(choice.feasible);
  EXPECT_NEAR(choice.objective,
              choice.p_ack_in_time * choice.p_retrans_in_time, 1e-12);
  EXPECT_NEAR(choice.p_ack_in_time, ack->cdf(choice.timeout), 1e-12);
  EXPECT_NEAR(choice.p_retrans_in_time,
              retrans->cdf(ms(750) - choice.timeout), 1e-12);
}

TEST(TimeoutOptimizer, ChoiceIsNoWorseThanAnySampledAlternative) {
  // Property: the returned timeout maximizes the product up to tolerance
  // against a fine independent grid.
  const auto ack = stats::make_shifted_gamma(ms(300), 8.0, ms(5));
  const auto retrans = stats::make_shifted_gamma(ms(80), 4.0, ms(3));
  const double delta = ms(700);
  const TimeoutChoice choice = optimize_timeout(*ack, *retrans, delta);
  ASSERT_TRUE(choice.feasible);
  for (int k = 0; k <= 5000; ++k) {
    const double t = delta * k / 5000.0;
    const double g = ack->cdf(t) * retrans->cdf(delta - t);
    EXPECT_LE(g, choice.objective + 1e-6) << "t=" << t;
  }
}

// Atomic distributions defeat the sigma-scaled scan heuristic: two
// far-apart clusters give a huge sigma, but the objective can still hide a
// narrow plateau between atoms. Such inputs must keep the full coarse grid.
TEST(TimeoutOptimizer, AtomicDistributionsKeepTheFullScanGrid) {
  // ack: atoms at 0.1 (mass 1/4) and 5.0 (mass 3/4); retrans: atoms at
  // 0.3 / 0.305 / 3.0. With deadline 5.308 the unique maximum (objective
  // 2/3) lives on t in [5.0, 5.003] — ~3 ms wide inside a ~4.9 s bracket,
  // far below the sigma-scaled resolution (~19 ms) but resolvable at the
  // full 4096-point grid.
  const auto ack = stats::make_empirical({0.1, 5.0, 5.0, 5.0});
  const auto retrans = stats::make_empirical({0.3, 0.305, 3.0});
  const TimeoutChoice choice = optimize_timeout(*ack, *retrans, 5.308);
  ASSERT_TRUE(choice.feasible);
  EXPECT_GT(choice.objective, 0.6);  // 2/3 plateau, not the 1/3 shoulder
  EXPECT_GE(choice.timeout, 4.999);
  EXPECT_LE(choice.timeout, 5.004);
}

TEST(TimeoutOptimizer, RejectsTinyGrids) {
  const auto d = stats::make_deterministic(ms(100));
  TimeoutOptions options;
  options.coarse_points = 2;
  EXPECT_THROW((void)optimize_timeout(*d, *d, ms(500), options),
               std::invalid_argument);
}

// Full-model check: Experiment 2's expected quality is 93.3%.
TEST(RandomDelayModel, Experiment2QualityMatchesPaper) {
  const auto plan =
      plan_max_quality(exp::table5_paths(), exp::table5_traffic());
  ASSERT_TRUE(plan.feasible());
  EXPECT_NEAR(plan.quality(), 0.9333, 0.001);
}

TEST(RandomDelayModel, TimeoutsStoredPerCombination) {
  const Model model(exp::table5_paths(), exp::table5_traffic());
  const auto& combos = model.combos();
  // Combination (1,2): timeout ~615 ms; (1,1): infinite.
  std::size_t a12[] = {1, 2};
  std::size_t a11[] = {1, 1};
  EXPECT_NEAR(model.metrics()[combos.encode(a12)].timeouts[0], ms(615),
              ms(5));
  EXPECT_TRUE(std::isinf(model.metrics()[combos.encode(a11)].timeouts[0]));
}

}  // namespace
}  // namespace dmc::core
