#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <random>

#include "lp/validate.h"

namespace dmc::lp {
namespace {

Problem make_problem(Sense sense, std::vector<double> objective) {
  Problem p;
  p.sense = sense;
  p.objective = std::move(objective);
  return p;
}

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), z = 36.
  Problem p = make_problem(Sense::maximize, {3, 5});
  p.add_constraint({1, 0}, Relation::less_equal, 4);
  p.add_constraint({0, 2}, Relation::less_equal, 12);
  p.add_constraint({3, 2}, Relation::less_equal, 18);

  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 36.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 6.0, 1e-9);
}

TEST(Simplex, SolvesMinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 4, x + 2y >= 6 -> (2, 2), z = 10.
  Problem p = make_problem(Sense::minimize, {2, 3});
  p.add_constraint({1, 1}, Relation::greater_equal, 4);
  p.add_constraint({1, 2}, Relation::greater_equal, 6);

  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 10.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // max x + 2y s.t. x + y = 1 -> (0, 1), z = 2.
  Problem p = make_problem(Sense::maximize, {1, 2});
  p.add_constraint({1, 1}, Relation::equal, 1);

  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 1.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  Problem p = make_problem(Sense::maximize, {1});
  p.add_constraint({1}, Relation::less_equal, 1);
  p.add_constraint({1}, Relation::greater_equal, 2);

  const Solution s = SimplexSolver().solve(p);
  EXPECT_EQ(s.status, SolveStatus::infeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  Problem p = make_problem(Sense::minimize, {1, 1});
  p.add_constraint({1, 1}, Relation::equal, 1);
  p.add_constraint({1, 1}, Relation::equal, 2);

  const Solution s = SimplexSolver().solve(p);
  EXPECT_EQ(s.status, SolveStatus::infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Problem p = make_problem(Sense::maximize, {1, 0});
  p.add_constraint({0, 1}, Relation::less_equal, 1);

  const Solution s = SimplexSolver().solve(p);
  EXPECT_EQ(s.status, SolveStatus::unbounded);
}

TEST(Simplex, MinimizationUnboundedBelow) {
  Problem p = make_problem(Sense::minimize, {-1});
  p.add_constraint({0}, Relation::less_equal, 1);  // vacuous

  const Solution s = SimplexSolver().solve(p);
  EXPECT_EQ(s.status, SolveStatus::unbounded);
}

TEST(Simplex, HandlesNegativeRhsByNormalization) {
  // x >= 2 written as -x <= -2; min x -> 2.
  Problem p = make_problem(Sense::minimize, {1});
  p.add_constraint({-1}, Relation::less_equal, -2);

  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 2.0, 1e-9);
}

TEST(Simplex, SurvivesBealeCyclingExample) {
  // Beale's classic cycling LP (degenerate); Bland fallback must terminate.
  Problem p = make_problem(Sense::minimize, {-0.75, 150, -0.02, 6});
  p.add_constraint({0.25, -60, -0.04, 9}, Relation::less_equal, 0);
  p.add_constraint({0.5, -90, -0.02, 3}, Relation::less_equal, 0);
  p.add_constraint({0, 0, 1, 0}, Relation::less_equal, 1);

  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, -0.05, 1e-9);
}

TEST(Simplex, ZeroObjectiveReturnsFeasiblePoint) {
  Problem p = make_problem(Sense::maximize, {0, 0});
  p.add_constraint({1, 1}, Relation::equal, 1);

  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  const auto report = validate(p, s.x);
  EXPECT_TRUE(report.ok(1e-9));
}

TEST(Simplex, RedundantConstraintsAreHarmless) {
  Problem p = make_problem(Sense::maximize, {1, 1});
  p.add_constraint({1, 1}, Relation::less_equal, 2);
  p.add_constraint({1, 1}, Relation::less_equal, 2);  // duplicate
  p.add_constraint({2, 2}, Relation::less_equal, 4);  // scaled duplicate

  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 2.0, 1e-9);
}

TEST(Simplex, EqualityPlusInequalityMix) {
  // max 2x + y + 3z s.t. x + y + z = 10, x <= 4, z >= 2: z dominates, so
  // the optimum is (0, 0, 10) with objective 30.
  Problem p = make_problem(Sense::maximize, {2, 1, 3});
  p.add_constraint({1, 1, 1}, Relation::equal, 10);
  p.add_constraint({1, 0, 0}, Relation::less_equal, 4);
  p.add_constraint({0, 0, 1}, Relation::greater_equal, 2);

  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 30.0, 1e-9);
  EXPECT_NEAR(s.x[0], 0.0, 1e-9);
  EXPECT_NEAR(s.x[2], 10.0, 1e-9);

  // With z also capped at 6 the classic answer x=4, z=6 appears.
  p.add_constraint({0, 0, 1}, Relation::less_equal, 6);
  const Solution s2 = SimplexSolver().solve(p);
  ASSERT_TRUE(s2.optimal());
  EXPECT_NEAR(s2.objective_value, 26.0, 1e-9);
  EXPECT_NEAR(s2.x[0], 4.0, 1e-9);
  EXPECT_NEAR(s2.x[2], 6.0, 1e-9);
}

TEST(Simplex, ThrowsOnMalformedProblem) {
  Problem p = make_problem(Sense::maximize, {1, 2});
  Constraint bad;
  bad.coefficients = {1.0};  // wrong width, bypassing add_constraint
  bad.relation = Relation::less_equal;
  bad.rhs = 1.0;
  p.constraints.push_back(bad);
  EXPECT_THROW((void)SimplexSolver().solve(p), std::invalid_argument);
}

TEST(Simplex, IterationLimitIsReported) {
  SimplexSolver::Options options;
  options.max_iterations = 0;
  Problem p = make_problem(Sense::maximize, {1});
  p.add_constraint({1}, Relation::less_equal, 1);

  const Solution s = SimplexSolver(options).solve(p);
  EXPECT_EQ(s.status, SolveStatus::iteration_limit);
}

// ------------------------------------------------------------ property

// Brute-force LP reference: enumerate all vertices (intersections of
// constraint/axis hyperplanes) of a small system and pick the best feasible
// one. Only valid when the optimum is attained at a vertex and the LP is
// bounded & feasible — which the generator below guarantees by bounding the
// box and checking feasibility of the origin.
double brute_force_max(const Problem& p) {
  const std::size_t n = p.num_variables();
  // Collect hyperplanes: every constraint as equality, plus x_j = 0 planes,
  // and choose n of them; solve the linear system by Gaussian elimination.
  struct Plane {
    std::vector<double> a;
    double b;
  };
  std::vector<Plane> planes;
  for (const Constraint& c : p.constraints) planes.push_back({c.coefficients, c.rhs});
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> a(n, 0.0);
    a[j] = 1.0;
    planes.push_back({a, 0.0});
  }

  double best = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> pick(n);
  // Enumerate combinations of n planes out of planes.size().
  std::function<void(std::size_t, std::size_t)> recurse = [&](std::size_t start,
                                                              std::size_t k) {
    if (k == n) {
      // Solve the n x n system.
      std::vector<std::vector<double>> m(n, std::vector<double>(n + 1));
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) m[r][c] = planes[pick[r]].a[c];
        m[r][n] = planes[pick[r]].b;
      }
      // Gaussian elimination with partial pivoting.
      for (std::size_t col = 0; col < n; ++col) {
        std::size_t piv = col;
        for (std::size_t r = col + 1; r < n; ++r) {
          if (std::abs(m[r][col]) > std::abs(m[piv][col])) piv = r;
        }
        if (std::abs(m[piv][col]) < 1e-9) return;  // singular: skip
        std::swap(m[col], m[piv]);
        for (std::size_t r = 0; r < n; ++r) {
          if (r == col) continue;
          const double f = m[r][col] / m[col][col];
          for (std::size_t c = col; c <= n; ++c) m[r][c] -= f * m[col][c];
        }
      }
      std::vector<double> x(n);
      for (std::size_t r = 0; r < n; ++r) x[r] = m[r][n] / m[r][r];
      // Feasibility.
      for (double v : x) {
        if (v < -1e-7) return;
      }
      for (const Constraint& c : p.constraints) {
        double lhs = 0.0;
        for (std::size_t j = 0; j < n; ++j) lhs += c.coefficients[j] * x[j];
        if (c.relation == Relation::less_equal && lhs > c.rhs + 1e-7) return;
        if (c.relation == Relation::greater_equal && lhs < c.rhs - 1e-7) return;
        if (c.relation == Relation::equal && std::abs(lhs - c.rhs) > 1e-7) return;
      }
      double z = 0.0;
      for (std::size_t j = 0; j < n; ++j) z += p.objective[j] * x[j];
      best = std::max(best, z);
      return;
    }
    for (std::size_t i = start; i < planes.size(); ++i) {
      pick[k] = i;
      recurse(i + 1, k + 1);
    }
  };
  recurse(0, 0);
  return best;
}

class SimplexRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomProperty, MatchesBruteForceVertexEnumeration) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> coef(0.1, 3.0);
  std::uniform_real_distribution<double> obj(-1.0, 2.0);
  std::uniform_int_distribution<int> dims(2, 4);
  std::uniform_int_distribution<int> rows(2, 5);

  const auto n = static_cast<std::size_t>(dims(rng));
  const int m = rows(rng);

  Problem p;
  p.sense = Sense::maximize;
  for (std::size_t j = 0; j < n; ++j) p.objective.push_back(obj(rng));
  // Nonnegative coefficients and positive rhs keep the origin feasible;
  // a bounding box keeps the LP bounded.
  for (int r = 0; r < m; ++r) {
    std::vector<double> row;
    for (std::size_t j = 0; j < n; ++j) row.push_back(coef(rng));
    p.add_constraint(std::move(row), Relation::less_equal,
                     std::uniform_real_distribution<double>(1.0, 10.0)(rng));
  }
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> row(n, 0.0);
    row[j] = 1.0;
    p.add_constraint(std::move(row), Relation::less_equal, 20.0);
  }

  const Solution s = SimplexSolver().solve(p);
  ASSERT_TRUE(s.optimal()) << to_string(p);
  const double reference = brute_force_max(p);
  EXPECT_NEAR(s.objective_value, reference, 1e-6) << to_string(p);

  const auto report = validate(p, s.x);
  EXPECT_TRUE(report.ok(1e-7))
      << "violation " << report.max_violation << " at "
      << report.worst_constraint;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomProperty,
                         ::testing::Range(1, 41));

TEST(Validate, ReportsViolations) {
  Problem p = make_problem(Sense::maximize, {1, 1});
  p.add_constraint({1, 1}, Relation::less_equal, 1, "capacity");

  const auto bad = validate(p, {0.8, 0.8});
  EXPECT_FALSE(bad.ok(1e-9));
  EXPECT_NEAR(bad.max_violation, 0.6, 1e-12);
  EXPECT_EQ(bad.worst_constraint, "capacity");

  const auto good = validate(p, {0.5, 0.5});
  EXPECT_TRUE(good.ok(1e-9));
  EXPECT_NEAR(good.objective_value, 1.0, 1e-12);
}

TEST(Validate, FlagsNegativeVariables) {
  Problem p = make_problem(Sense::maximize, {1});
  p.add_constraint({1}, Relation::less_equal, 1);
  const auto report = validate(p, {-0.5});
  EXPECT_LT(report.min_variable, 0.0);
  EXPECT_FALSE(report.ok(1e-9));
}

TEST(Validate, ThrowsOnDimensionMismatch) {
  Problem p = make_problem(Sense::maximize, {1, 2});
  EXPECT_THROW((void)validate(p, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace dmc::lp
