#include "lp/interior_point.h"

#include <gtest/gtest.h>

#include <random>

#include "core/model.h"
#include "core/units.h"
#include "experiments/scenarios.h"
#include "lp/validate.h"

namespace dmc::lp {
namespace {

Problem make_problem(Sense sense, std::vector<double> objective) {
  Problem p;
  p.sense = sense;
  p.objective = std::move(objective);
  return p;
}

TEST(InteriorPoint, SolvesTextbookMaximization) {
  Problem p = make_problem(Sense::maximize, {3, 5});
  p.add_constraint({1, 0}, Relation::less_equal, 4);
  p.add_constraint({0, 2}, Relation::less_equal, 12);
  p.add_constraint({3, 2}, Relation::less_equal, 18);

  const Solution s = InteriorPointSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 36.0, 1e-6);
  EXPECT_NEAR(s.x[0], 2.0, 1e-5);
  EXPECT_NEAR(s.x[1], 6.0, 1e-5);
}

TEST(InteriorPoint, SolvesMinimizationWithGreaterEqual) {
  Problem p = make_problem(Sense::minimize, {2, 3});
  p.add_constraint({1, 1}, Relation::greater_equal, 4);
  p.add_constraint({1, 2}, Relation::greater_equal, 6);

  const Solution s = InteriorPointSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 10.0, 1e-6);
}

TEST(InteriorPoint, HandlesEqualityConstraints) {
  Problem p = make_problem(Sense::maximize, {1, 2});
  p.add_constraint({1, 1}, Relation::equal, 1);

  const Solution s = InteriorPointSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 2.0, 1e-6);
}

TEST(InteriorPoint, DegenerateProblemsStillConverge) {
  // Beale's cycling example is harmless for interior-point methods.
  Problem p = make_problem(Sense::minimize, {-0.75, 150, -0.02, 6});
  p.add_constraint({0.25, -60, -0.04, 9}, Relation::less_equal, 0);
  p.add_constraint({0.5, -90, -0.02, 3}, Relation::less_equal, 0);
  p.add_constraint({0, 0, 1, 0}, Relation::less_equal, 1);

  const Solution s = InteriorPointSolver().solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, -0.05, 1e-6);
}

TEST(InteriorPoint, AgreesWithSimplexOnPaperModel) {
  const auto paths = exp::table3_model_paths();
  for (double rate : {40.0, 90.0, 120.0}) {
    const core::TrafficSpec traffic{.rate_bps = mbps(rate),
                                    .lifetime_s = ms(800)};
    const core::Model model(paths, traffic);
    const Problem problem = model.quality_lp();
    const Solution simplex = SimplexSolver().solve(problem);
    const Solution ipm = InteriorPointSolver().solve(problem);
    ASSERT_TRUE(simplex.optimal());
    ASSERT_TRUE(ipm.optimal()) << "rate " << rate;
    EXPECT_NEAR(ipm.objective_value, simplex.objective_value, 1e-6)
        << "rate " << rate;
    EXPECT_TRUE(validate(problem, ipm.x).ok(1e-5));
  }
}

TEST(InteriorPoint, AgreesOnCostMinimization) {
  core::PathSet paths;
  paths.add({.name = "a",
             .bandwidth_bps = mbps(80),
             .delay_s = ms(450),
             .loss_rate = 0.2,
             .cost_per_bit = 2e-6});
  paths.add({.name = "b",
             .bandwidth_bps = mbps(20),
             .delay_s = ms(150),
             .loss_rate = 0.0,
             .cost_per_bit = 1e-6});
  const core::TrafficSpec traffic{.rate_bps = mbps(90), .lifetime_s = ms(800)};
  const core::Model model(paths, traffic);
  const Problem problem = model.cost_min_lp(0.9);
  const Solution simplex = SimplexSolver().solve(problem);
  const Solution ipm = InteriorPointSolver().solve(problem);
  ASSERT_TRUE(simplex.optimal());
  ASSERT_TRUE(ipm.optimal());
  EXPECT_NEAR(ipm.objective_value, simplex.objective_value,
              1e-6 * simplex.objective_value + 1e-6);
}

TEST(InteriorPoint, ScalesToThreeTransmissionProblems) {
  core::PathSet paths;
  for (int i = 0; i < 5; ++i) {
    paths.add({.name = "p" + std::to_string(i),
               .bandwidth_bps = mbps(20.0 + 10.0 * i),
               .delay_s = ms(100.0 + 80.0 * i),
               .loss_rate = 0.05 * i});
  }
  core::ModelOptions options;
  options.transmissions = 3;  // 216 variables
  const core::Model model(paths,
                          {.rate_bps = mbps(120), .lifetime_s = seconds(1.2)},
                          options);
  const Problem problem = model.quality_lp();
  const Solution simplex = SimplexSolver().solve(problem);
  const Solution ipm = InteriorPointSolver().solve(problem);
  ASSERT_TRUE(simplex.optimal());
  ASSERT_TRUE(ipm.optimal());
  EXPECT_NEAR(ipm.objective_value, simplex.objective_value, 1e-5);
}

// Cross-validation on the same random LP family the simplex property test
// uses: both solvers must agree on the optimum.
class InteriorPointRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(InteriorPointRandomProperty, MatchesSimplexObjective) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 77);
  std::uniform_real_distribution<double> coef(0.1, 3.0);
  std::uniform_real_distribution<double> obj(-1.0, 2.0);
  std::uniform_int_distribution<int> dims(2, 6);
  std::uniform_int_distribution<int> rows(2, 6);

  const auto n = static_cast<std::size_t>(dims(rng));
  const int m = rows(rng);

  Problem p;
  p.sense = Sense::maximize;
  for (std::size_t j = 0; j < n; ++j) p.objective.push_back(obj(rng));
  for (int r = 0; r < m; ++r) {
    std::vector<double> row;
    for (std::size_t j = 0; j < n; ++j) row.push_back(coef(rng));
    p.add_constraint(std::move(row), Relation::less_equal,
                     std::uniform_real_distribution<double>(1.0, 10.0)(rng));
  }
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> box(n, 0.0);
    box[j] = 1.0;
    p.add_constraint(std::move(box), Relation::less_equal, 20.0);
  }

  const Solution simplex = SimplexSolver().solve(p);
  const Solution ipm = InteriorPointSolver().solve(p);
  ASSERT_TRUE(simplex.optimal());
  ASSERT_TRUE(ipm.optimal()) << to_string(p);
  EXPECT_NEAR(ipm.objective_value, simplex.objective_value,
              1e-5 * (1.0 + std::abs(simplex.objective_value)))
      << to_string(p);
  EXPECT_TRUE(validate(p, ipm.x).ok(1e-5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, InteriorPointRandomProperty,
                         ::testing::Range(1, 31));

TEST(InteriorPoint, ReportsNonConvergenceOnInfeasibleSystem) {
  Problem p = make_problem(Sense::maximize, {1});
  p.add_constraint({1}, Relation::less_equal, 1);
  p.add_constraint({1}, Relation::greater_equal, 2);
  const Solution s = InteriorPointSolver().solve(p);
  EXPECT_FALSE(s.optimal());  // infeasible or iteration_limit, never optimal
}

TEST(InteriorPoint, IterationCountsAreSmall) {
  // Path-following methods converge in tens of iterations regardless of
  // vertex count — the contrast with simplex the paper alludes to.
  const auto paths = exp::table3_model_paths();
  const core::Model model(paths,
                          {.rate_bps = mbps(90), .lifetime_s = ms(800)});
  const Solution s = InteriorPointSolver().solve(model.quality_lp());
  ASSERT_TRUE(s.optimal());
  EXPECT_LE(s.iterations, 50);
}

}  // namespace
}  // namespace dmc::lp
