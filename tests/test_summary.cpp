#include "stats/summary.h"

#include <gtest/gtest.h>

#include "core/units.h"
#include "stats/rng.h"

namespace dmc::stats {
namespace {

TEST(StreamingSummary, WelfordMatchesDirectComputation) {
  StreamingSummary summary;
  const std::vector<double> values{1.0, 2.0, 4.0, 8.0, 16.0};
  for (double v : values) summary.add(v);
  EXPECT_EQ(summary.count(), 5u);
  EXPECT_NEAR(summary.mean(), 6.2, 1e-12);
  // Sample variance: sum (x - mean)^2 / (n - 1) = 37.2.
  EXPECT_NEAR(summary.variance(), 37.2, 1e-9);
  EXPECT_EQ(summary.min(), 1.0);
  EXPECT_EQ(summary.max(), 16.0);
}

TEST(StreamingSummary, EmptyAndSingleElementEdgeCases) {
  StreamingSummary summary;
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_EQ(summary.mean(), 0.0);
  EXPECT_EQ(summary.variance(), 0.0);
  summary.add(3.0);
  EXPECT_EQ(summary.mean(), 3.0);
  EXPECT_EQ(summary.variance(), 0.0);  // undefined -> 0 by convention
}

TEST(StreamingSummary, ResetClearsState) {
  StreamingSummary summary;
  summary.add(1.0);
  summary.add(2.0);
  summary.reset();
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_EQ(summary.mean(), 0.0);
}

TEST(StreamingSummary, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: huge mean, small variance.
  StreamingSummary summary;
  for (int i = 0; i < 1000; ++i) {
    summary.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  }
  EXPECT_NEAR(summary.variance(), 0.25, 1e-3);
}

TEST(SampleSet, ExactQuantiles) {
  SampleSet samples;
  for (int i = 100; i >= 1; --i) samples.add(static_cast<double>(i));
  EXPECT_EQ(samples.count(), 100u);
  EXPECT_NEAR(samples.quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(samples.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(samples.quantile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(samples.mean(), 50.5, 1e-9);
}

TEST(SampleSet, QuantileAfterMoreInsertionsResorts) {
  SampleSet samples;
  samples.add(10.0);
  samples.add(20.0);
  EXPECT_NEAR(samples.quantile(1.0), 20.0, 1e-12);
  samples.add(5.0);  // invalidates the sort
  EXPECT_NEAR(samples.quantile(0.0), 5.0, 1e-12);
}

TEST(SampleSet, ErrorsOnInvalidUse) {
  SampleSet samples;
  EXPECT_THROW((void)samples.quantile(0.5), std::logic_error);
  samples.add(1.0);
  EXPECT_THROW((void)samples.quantile(-0.1), std::domain_error);
  EXPECT_THROW((void)samples.quantile(1.1), std::domain_error);
}

TEST(Rng, SeededStreamsAreDeterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ForkedStreamsAreIndependentOfParentUsage) {
  // Fork, then drawing from the parent must not perturb the child.
  Rng parent1(7);
  Rng child1 = parent1.fork();
  Rng parent2(7);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 10; ++i) (void)parent2.uniform();  // extra parent draws
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.uniform(), child2.uniform());
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, IntegerStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.integer(7), 7u);
}

TEST(Units, ConversionsRoundTrip) {
  EXPECT_EQ(mbps(90), 90e6);
  EXPECT_EQ(to_mbps(mbps(90)), 90.0);
  EXPECT_EQ(ms(800), 0.8);
  EXPECT_EQ(to_ms(ms(800)), 800.0);
  EXPECT_EQ(us(250), 0.00025);
  EXPECT_EQ(to_us(us(250)), 250.0);
  EXPECT_EQ(kbps(64), 64e3);
  EXPECT_EQ(gbps(1), 1e9);
  EXPECT_EQ(bytes_to_bits(1024), 8192.0);
}

}  // namespace
}  // namespace dmc::stats
