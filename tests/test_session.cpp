// End-to-end protocol tests: sender + receiver + simulated network.
#include "protocol/session.h"

#include <gtest/gtest.h>

#include "core/units.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "protocol/baselines.h"

namespace dmc::proto {
namespace {

SessionConfig quick(std::uint64_t messages = 5000) {
  SessionConfig config;
  config.num_messages = messages;
  config.seed = 7;
  return config;
}

TEST(Session, LosslessSinglePathDeliversEverything) {
  core::PathSet paths;
  paths.add({.name = "clean",
             .bandwidth_bps = mbps(20),
             .delay_s = ms(100),
             .loss_rate = 0.0});
  const core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = ms(500)};
  const auto plan = core::plan_max_quality(paths, traffic);
  const auto result = run_session(plan, to_sim_paths(paths), quick());
  EXPECT_EQ(result.trace.on_time, result.trace.generated);
  EXPECT_EQ(result.trace.late, 0u);
  EXPECT_EQ(result.trace.duplicates, 0u);
  EXPECT_NEAR(result.measured_quality, 1.0, 1e-12);
  // Teardown conservation: every message has exactly one fate.
  EXPECT_TRUE(result.trace.conserved());
}

TEST(Session, RetransmissionRecoversLossesWithinDeadline) {
  core::PathSet paths;
  paths.add({.name = "lossy",
             .bandwidth_bps = mbps(40),
             .delay_s = ms(100),
             .loss_rate = 0.3});
  const core::TrafficSpec traffic{.rate_bps = mbps(10),
                                  .lifetime_s = seconds(1.0)};
  const auto plan = core::plan_max_quality(paths, traffic);
  ASSERT_TRUE(plan.feasible());
  // One retransmission on a 30%-lossy path: expect ~1 - 0.09 = 0.91.
  EXPECT_NEAR(plan.quality(), 0.91, 1e-9);
  const auto result = run_session(plan, to_sim_paths(paths), quick(20000));
  EXPECT_NEAR(result.measured_quality, 0.91, 0.01);
  EXPECT_GT(result.trace.retransmissions, 0u);
  EXPECT_TRUE(result.trace.conserved());
}

TEST(Session, Figure1ScenarioDeliversEverythingInSimulation) {
  // The paper's Figure 1 numbers are *exactly* tight: the retransmission
  // arrives at 600 + 200 + 200 = 1000 ms = the lifetime, so any physical
  // serialization or queueing pushes it past the deadline. A real
  // deployment needs a few percent of slack; 1.05 s leaves room for the
  // ~1 ms serialization and the ack transit while preserving the story
  // (each path alone stays far below 100%).
  core::TrafficSpec traffic = exp::fig1_traffic();
  traffic.lifetime_s = seconds(1.1);
  // Without a guard the timeout (800 ms) ties the ack arrival (800 ms +
  // serialization), so *every* packet would retransmit spuriously and
  // flood the 1 Mbps path — the exact failure mode the paper's +100 ms
  // simulation guard exists to prevent. The model-level guard keeps the
  // LP's feasibility checks and the sender's timers consistent.
  core::PlanOptions options;
  options.model.timeout_guard_s = ms(50);
  const auto plan = core::plan_max_quality(exp::fig1_paths(), traffic, options);
  ASSERT_TRUE(plan.feasible());
  EXPECT_NEAR(plan.quality(), 1.0, 1e-9);

  // The optimum saturates both links *exactly* (10 of 10 Mbps on path 1,
  // the 10% retransmissions fill path 2's 1 Mbps); at utilization 1 a
  // queue diverges on random retransmission bursts, so the physical links
  // get 1.5x headroom over the modeled bandwidths (the Experiment 2
  // over-provisioning technique).
  const auto result = run_session(
      plan, to_sim_paths(exp::fig1_paths(), /*bandwidth_headroom=*/1.5),
      quick(20000));
  EXPECT_GT(result.measured_quality, 0.99);
  EXPECT_LT(core::plan_single_path(exp::fig1_paths(), 0, traffic).quality(),
            0.95);
  EXPECT_LT(core::plan_single_path(exp::fig1_paths(), 1, traffic).quality(),
            0.15);
}

TEST(Session, BlackholeAssignmentsAreCountedAndDropped) {
  const auto paths = exp::table3_model_paths();
  const core::TrafficSpec traffic{.rate_bps = mbps(120),
                                  .lifetime_s = ms(800)};
  const auto plan = core::plan_max_quality(paths, traffic);
  const auto result = run_session(plan, to_sim_paths(paths), quick(12000));
  // Table IV: 1/6 of traffic goes to the blackhole at lambda = 120.
  EXPECT_NEAR(
      static_cast<double>(result.trace.assigned_blackhole) /
          static_cast<double>(result.trace.generated),
      1.0 / 6.0, 0.01);
  EXPECT_NEAR(result.measured_quality, 0.70, 0.02);
  // Blackhole assignments are one of the conserved fates.
  EXPECT_TRUE(result.trace.conserved());
}

TEST(Session, MeasuredQualityTracksTheoryAcrossRates) {
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  for (double rate : {40.0, 90.0, 140.0}) {
    exp::RunOptions options;
    options.num_messages = 15000;
    const auto outcome = exp::run_planned(
        planning, truth, exp::table4_traffic_rate(mbps(rate)), options);
    EXPECT_NEAR(outcome.session.measured_quality, outcome.theory_quality,
                0.015)
        << "rate " << rate;
  }
}

TEST(Session, SinglePathSimulationMatchesSinglePathTheory) {
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  const auto traffic = exp::table4_traffic_rate(mbps(90));

  core::PathSet single_planning;
  single_planning.add(planning[1]);
  core::PathSet single_truth;
  single_truth.add(truth[1]);

  exp::RunOptions options;
  options.num_messages = 10000;
  const auto outcome =
      exp::run_planned(single_planning, single_truth, traffic, options);
  EXPECT_NEAR(outcome.theory_quality, 2.0 / 9.0, 1e-9);
  EXPECT_NEAR(outcome.session.measured_quality, 2.0 / 9.0, 0.01);
}

TEST(Session, DuplicatesDetectedWhenTimeoutsAreTooAggressive) {
  core::PathSet paths;
  paths.add({.name = "p",
             .bandwidth_bps = mbps(40),
             .delay_s = ms(100),
             .loss_rate = 0.0});
  const core::TrafficSpec traffic{.rate_bps = mbps(5),
                                  .lifetime_s = seconds(1.0)};
  // Plan against a path claiming 20 ms delay: the retransmission timer
  // (40 ms) fires long before the true 200 ms RTT, so every packet is
  // retransmitted spuriously and arrives twice.
  core::PathSet wrong;
  wrong.add({.name = "p",
             .bandwidth_bps = mbps(40),
             .delay_s = ms(20),
             .loss_rate = 0.3});  // nonzero loss so retransmission is planned
  const auto plan = core::plan_max_quality(wrong, traffic);
  const auto result = run_session(plan, to_sim_paths(paths), quick(3000));
  EXPECT_GT(result.trace.duplicates, result.trace.generated / 2);
  // Quality does not suffer: the first copies arrive fine.
  EXPECT_NEAR(result.measured_quality, 1.0, 1e-6);
  // Duplicates do not double-count any fate.
  EXPECT_TRUE(result.trace.conserved());
}

TEST(Session, FastRetransmitRecoversFromLostTimersEarlier) {
  // Path with loss and a *late* timeout (mis-estimated delay): fast
  // retransmit (3 dup-acks) recovers within the deadline where the plain
  // timer misses it.
  core::PathSet truth;
  truth.add({.name = "lossy",
             .bandwidth_bps = mbps(40),
             .delay_s = ms(100),
             .loss_rate = 0.2});
  core::PathSet planning;  // delay overestimated: timer at ~2.2 s
  planning.add({.name = "lossy",
                .bandwidth_bps = mbps(40),
                .delay_s = seconds(1.1),
                .loss_rate = 0.2});
  core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = seconds(1.0)};

  core::PlanOptions plan_options;
  // Plan as if the deadline were loose so the LP still schedules the
  // retransmission (with the true 100 ms path it will be in time).
  core::TrafficSpec plan_traffic = traffic;
  plan_traffic.lifetime_s = seconds(5.0);
  const auto plan =
      core::plan_max_quality(planning, plan_traffic, plan_options);

  SessionConfig no_fast = quick(20000);
  const auto base = run_session(plan, to_sim_paths(truth), no_fast);

  SessionConfig with_fast = quick(20000);
  with_fast.fast_retransmit_dupacks = 3;
  const auto fast = run_session(plan, to_sim_paths(truth), with_fast);

  EXPECT_GT(fast.trace.fast_retransmissions, 0u);
  // Deadline verdicts use the *real* 1 s lifetime; recompute quality from
  // delay samples is overkill — the receiver already used plan lifetime.
  // Compare on-time counts under the 5 s plan lifetime is trivially equal,
  // so compare mean delays instead: fast retransmit recovers sooner.
  EXPECT_LT(fast.delay_p99_s, base.delay_p99_s);
}

TEST(Session, AckEveryNReducesAckTraffic) {
  core::PathSet paths;
  paths.add({.name = "p",
             .bandwidth_bps = mbps(20),
             .delay_s = ms(100),
             .loss_rate = 0.0});
  const core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = ms(500)};
  const auto plan = core::plan_max_quality(paths, traffic);

  SessionConfig every1 = quick(4000);
  SessionConfig every4 = quick(4000);
  every4.ack_every = 4;
  const auto r1 = run_session(plan, to_sim_paths(paths), every1);
  const auto r4 = run_session(plan, to_sim_paths(paths), every4);
  EXPECT_NEAR(static_cast<double>(r1.trace.acks_sent) /
                  static_cast<double>(r4.trace.acks_sent),
              4.0, 0.1);
  // Cumulative/window redundancy keeps delivery intact.
  EXPECT_NEAR(r4.measured_quality, 1.0, 1e-6);
  EXPECT_TRUE(r1.trace.conserved());
  EXPECT_TRUE(r4.trace.conserved());
}

TEST(Session, SurvivesLossyAckPath) {
  // Acks can be lost too (the ack path here has 20% loss in both
  // directions). The window redundancy in later acks prevents spurious
  // retransmission storms from collapsing quality.
  core::PathSet paths;
  paths.add({.name = "p",
             .bandwidth_bps = mbps(40),
             .delay_s = ms(100),
             .loss_rate = 0.2});
  const core::TrafficSpec traffic{.rate_bps = mbps(10),
                                  .lifetime_s = seconds(1.0)};
  const auto plan = core::plan_max_quality(paths, traffic);
  const auto result = run_session(plan, to_sim_paths(paths), quick(20000));
  // Theory is 1 - 0.04 = 0.96 against data loss; lost acks cause duplicate
  // sends, not quality loss.
  EXPECT_NEAR(result.measured_quality, 0.96, 0.01);
  EXPECT_GT(result.trace.duplicates, 0u);
  // Even with a lossy reverse path, sender give-ups and receiver verdicts
  // stay disjoint (see the caveat on Trace::conserved).
  EXPECT_TRUE(result.trace.conserved());
}

TEST(Session, RejectsMismatchedNetworks) {
  const auto paths = exp::table3_model_paths();
  const auto plan = core::plan_max_quality(
      paths, {.rate_bps = mbps(10), .lifetime_s = ms(800)});
  core::PathSet one;
  one.add(paths[0]);
  EXPECT_THROW((void)run_session(plan, to_sim_paths(one), quick(10)),
               std::invalid_argument);
}

TEST(ToSimPaths, TranslatesCharacteristics) {
  const auto paths = exp::table3_model_paths();
  const auto sim_paths = to_sim_paths(paths, 2.0, 64);
  ASSERT_EQ(sim_paths.size(), 2u);
  EXPECT_EQ(sim_paths[0].forward.rate_bps, mbps(160));  // 2x headroom
  EXPECT_EQ(sim_paths[0].forward.prop_delay_s, ms(450));
  EXPECT_EQ(sim_paths[0].forward.loss_rate, 0.2);
  EXPECT_EQ(sim_paths[0].forward.queue_capacity, 64u);
  EXPECT_EQ(sim_paths[1].reverse.rate_bps, mbps(40));
  EXPECT_THROW((void)to_sim_paths(paths, 0.5), std::invalid_argument);
}

TEST(ToSimPaths, RandomDelaysSplitIntoShiftAndJitter) {
  const auto paths = exp::table5_paths();
  const auto sim_paths = to_sim_paths(paths);
  EXPECT_NEAR(sim_paths[0].forward.prop_delay_s, ms(400), 1e-12);
  ASSERT_NE(sim_paths[0].forward.extra_delay, nullptr);
  EXPECT_NEAR(sim_paths[0].forward.extra_delay->mean(), ms(40), 1e-9);
}

}  // namespace
}  // namespace dmc::proto
