// Cross-checks the general m-transmission model against the literal
// matrices of the paper (Equations 11-18, 20-23, 28-30): for m = 2 the two
// builders must agree coefficient by coefficient.
#include "core/paper_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.h"
#include "core/planner.h"
#include "core/units.h"
#include "experiments/scenarios.h"
#include "lp/simplex.h"

namespace dmc::core {
namespace {

PathSet model_paths_with_blackhole(const PathSet& real) {
  PathSet out;
  out.add(blackhole_path());
  for (const auto& p : real) out.add(p);
  return out;
}

TEST(PaperModel, QualityObjectiveMatchesGeneralBuilder) {
  const auto real = exp::table3_model_paths();
  const TrafficSpec traffic{.rate_bps = mbps(90), .lifetime_s = ms(800)};
  const auto paper =
      build_paper_quality(model_paths_with_blackhole(real), traffic);
  const Model general(real, traffic);

  ASSERT_EQ(paper.p.size(), general.combos().size());
  for (std::size_t l = 0; l < paper.p.size(); ++l) {
    EXPECT_NEAR(paper.p[l], general.metrics()[l].delivery_probability, 1e-12)
        << general.combos().label(l);
  }
}

TEST(PaperModel, BandwidthRowsMatchGeneralBuilder) {
  const auto real = exp::table3_model_paths();
  const TrafficSpec traffic{.rate_bps = mbps(90), .lifetime_s = ms(800)};
  const auto model_paths = model_paths_with_blackhole(real);
  const auto paper = build_paper_quality(model_paths, traffic);
  const Model general(real, traffic);

  // Row k of the paper's A = lambda * expected_load[k] in the general form.
  for (std::size_t k = 0; k < model_paths.size(); ++k) {
    for (std::size_t l = 0; l < paper.p.size(); ++l) {
      EXPECT_NEAR(paper.a(k, l),
                  traffic.rate_bps * general.metrics()[l].expected_load[k],
                  1e-6)
          << "row " << k << " " << general.combos().label(l);
    }
  }
  // Cost row (all costs are zero in Table III -> all zeros).
  for (std::size_t l = 0; l < paper.p.size(); ++l) {
    EXPECT_NEAR(paper.a(model_paths.size(), l),
                traffic.rate_bps * general.metrics()[l].cost_per_bit, 1e-9);
  }
}

TEST(PaperModel, CostRowMatchesWithNonzeroCosts) {
  PathSet real;
  real.add({.name = "a",
            .bandwidth_bps = mbps(50),
            .delay_s = ms(300),
            .loss_rate = 0.1,
            .cost_per_bit = 3e-6});
  real.add({.name = "b",
            .bandwidth_bps = mbps(10),
            .delay_s = ms(100),
            .loss_rate = 0.05,
            .cost_per_bit = 7e-6});
  const TrafficSpec traffic{.rate_bps = mbps(30), .lifetime_s = ms(700)};
  const auto paper =
      build_paper_quality(model_paths_with_blackhole(real), traffic);
  const Model general(real, traffic);
  const std::size_t cost_row = real.size() + 1;
  for (std::size_t l = 0; l < paper.p.size(); ++l) {
    EXPECT_NEAR(paper.a(cost_row, l),
                traffic.rate_bps * general.metrics()[l].cost_per_bit, 1e-9)
        << general.combos().label(l);
  }
}

TEST(PaperModel, SolvingPaperProblemGivesSameOptimum) {
  const auto real = exp::table3_model_paths();
  for (double rate : {40.0, 90.0, 120.0}) {
    const TrafficSpec traffic{.rate_bps = mbps(rate), .lifetime_s = ms(800)};
    const auto paper =
        build_paper_quality(model_paths_with_blackhole(real), traffic);
    const lp::Solution paper_solution =
        lp::SimplexSolver().solve(to_problem(paper));
    const Plan general = plan_max_quality(real, traffic);
    ASSERT_TRUE(paper_solution.optimal());
    ASSERT_TRUE(general.feasible());
    EXPECT_NEAR(paper_solution.objective_value, general.quality(), 1e-9)
        << "rate " << rate;
  }
}

TEST(PaperModel, CostVariantSelectsCheapPathWhenQualityAllows) {
  PathSet real;
  real.add({.name = "expensive-good",
            .bandwidth_bps = mbps(50),
            .delay_s = ms(100),
            .loss_rate = 0.0,
            .cost_per_bit = 10e-6});
  real.add({.name = "cheap-ok",
            .bandwidth_bps = mbps(50),
            .delay_s = ms(150),
            .loss_rate = 0.1,
            .cost_per_bit = 1e-6});
  const TrafficSpec traffic{.rate_bps = mbps(20), .lifetime_s = ms(800)};

  // Quality >= 0.9 is reachable on the cheap path alone (it can retransmit
  // within the deadline), so the cost optimum must avoid the expensive one.
  const auto paper =
      build_paper_cost(model_paths_with_blackhole(real), traffic, 0.9);
  const lp::Solution solution = lp::SimplexSolver().solve(to_problem(paper));
  ASSERT_TRUE(solution.optimal());

  const Plan reference = plan_min_cost(real, traffic, 0.9);
  ASSERT_TRUE(reference.feasible());
  EXPECT_NEAR(solution.objective_value, reference.cost_per_s(), 1e-6);
  // The cheap path can deliver 0.9 on its own: cost < sending anything on
  // the expensive path.
  EXPECT_LT(solution.objective_value, traffic.rate_bps * 10e-6);
}

TEST(PaperModel, CostVariantInfeasibleWhenQualityTooHigh) {
  const auto real = exp::table3_model_paths();
  const TrafficSpec traffic{.rate_bps = mbps(90), .lifetime_s = ms(800)};
  const auto paper =
      build_paper_cost(model_paths_with_blackhole(real), traffic, 0.99);
  EXPECT_EQ(lp::SimplexSolver().solve(to_problem(paper)).status,
            lp::SolveStatus::infeasible);
}

TEST(PaperModel, RandomVariantMatchesGeneralBuilder) {
  const auto real = exp::table5_paths();
  const auto traffic = exp::table5_traffic();
  const Model general(real, traffic);
  const auto& combos = general.combos();

  // Extract the pairwise timeout table the general model computed.
  const std::size_t n = general.model_paths().size();
  std::vector<std::vector<double>> timeouts(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::size_t attempts[] = {i, j};
      timeouts[i][j] =
          general.metrics()[combos.encode(attempts)].timeouts[0];
    }
  }

  const auto paper = build_paper_random_quality(general.model_paths(),
                                                traffic, timeouts);
  for (std::size_t l = 0; l < combos.size(); ++l) {
    EXPECT_NEAR(paper.p[l], general.metrics()[l].delivery_probability, 1e-9)
        << combos.label(l);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(paper.a(k, l),
                  traffic.rate_bps * general.metrics()[l].expected_load[k],
                  1e-3)
          << combos.label(l) << " row " << k;
    }
  }
}

TEST(PaperModel, DeterministicDistributionsReduceToFixedDelayModel) {
  // Forcing the random-delay machinery onto deterministic paths must
  // reproduce the fixed-delay coefficients (Equation 28 degenerates to 12).
  const auto real = exp::table3_model_paths();
  const TrafficSpec traffic{.rate_bps = mbps(90), .lifetime_s = ms(800)};
  const Model fixed(real, traffic);
  ModelOptions forced;
  forced.force_random = true;
  const Model random(real, traffic, forced);

  for (std::size_t l = 0; l < fixed.combos().size(); ++l) {
    EXPECT_NEAR(fixed.metrics()[l].delivery_probability,
                random.metrics()[l].delivery_probability, 1e-9)
        << fixed.combos().label(l);
    for (std::size_t k = 0; k < fixed.model_paths().size(); ++k) {
      EXPECT_NEAR(fixed.metrics()[l].expected_load[k],
                  random.metrics()[l].expected_load[k], 1e-9);
    }
  }
}

TEST(PaperModel, InputValidation) {
  const TrafficSpec traffic{.rate_bps = 1.0, .lifetime_s = 1.0};
  EXPECT_THROW((void)build_paper_quality(PathSet{}, traffic),
               std::invalid_argument);
  const auto paths = model_paths_with_blackhole(exp::table3_model_paths());
  EXPECT_THROW((void)build_paper_cost(paths, traffic, 1.5),
               std::invalid_argument);
  EXPECT_THROW((void)build_paper_random_quality(paths, traffic, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmc::core
