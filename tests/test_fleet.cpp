// Fleet subsystem tests: the work-stealing engine, thread-count-invariant
// sweeps, the multi-session contention mode, and the JSON/CSV result layer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/units.h"
#include "experiments/scenarios.h"
#include "fleet/engine.h"
#include "fleet/grids.h"
#include "fleet/job.h"
#include "fleet/results.h"
#include "protocol/multi_session.h"

namespace dmc::fleet {
namespace {

TEST(Engine, RunsEveryTaskExactlyOnce) {
  Engine engine({4});
  EXPECT_EQ(engine.threads(), 4u);
  constexpr std::size_t kTasks = 64;
  std::vector<std::atomic<int>> counts(kTasks);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&counts, i] { counts[i].fetch_add(1); });
  }
  engine.run_tasks(std::move(tasks));
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "task " << i;
  }
}

TEST(Engine, MoreThreadsThanTasksStillCompletes) {
  Engine engine({16});
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back([&ran] { ran.fetch_add(1); });
  }
  engine.run_tasks(std::move(tasks));
  EXPECT_EQ(ran.load(), 3);
  engine.run_tasks({});  // empty grid is a no-op
}

TEST(Engine, PropagatesTheFirstTaskException) {
  // At any thread count, one failing task neither aborts its siblings nor
  // gets swallowed: everything runs, then the first exception rethrows.
  for (const unsigned threads : {1u, 2u}) {
    Engine engine({threads});
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    tasks.push_back([&ran] { ran.fetch_add(1); });
    tasks.push_back([] { throw std::runtime_error("boom"); });
    tasks.push_back([&ran] { ran.fetch_add(1); });
    EXPECT_THROW(engine.run_tasks(std::move(tasks)), std::runtime_error);
    EXPECT_EQ(ran.load(), 2) << "threads " << threads;
  }
}

TEST(Engine, MixSeedSeparatesLanesAndIsStable) {
  EXPECT_NE(mix_seed(42, 0), mix_seed(42, 1));
  EXPECT_NE(mix_seed(42, 0), mix_seed(43, 0));
  EXPECT_NE(mix_seed(42, 0), 42u);
  EXPECT_EQ(mix_seed(42, 7), mix_seed(42, 7));
}

TEST(Engine, EnvThreadsIsHardened) {
  setenv("DMC_THREADS", "abc", 1);
  EXPECT_THROW(Engine::env_threads(4), std::invalid_argument);
  setenv("DMC_THREADS", "2x", 1);
  EXPECT_THROW(Engine::env_threads(4), std::invalid_argument);
  setenv("DMC_THREADS", "0", 1);
  EXPECT_THROW(Engine::env_threads(4), std::invalid_argument);
  setenv("DMC_THREADS", "99999999999999999999", 1);
  EXPECT_THROW(Engine::env_threads(4), std::invalid_argument);
  setenv("DMC_THREADS", "3", 1);
  EXPECT_EQ(Engine::env_threads(4), 3u);
  unsetenv("DMC_THREADS");
  EXPECT_EQ(Engine::env_threads(4), 4u);
}

TEST(Fleet, GridIsBitIdenticalAcrossThreadCounts) {
  GridOptions grid;
  grid.messages = 120;
  Engine serial({1});
  Engine parallel({8});
  ResultSet a;
  a.records = run_jobs(serial, fig2_rate_grid(grid));
  ResultSet b;
  b.records = run_jobs(parallel, fig2_rate_grid(grid));
  ASSERT_EQ(a.records.size(), 15u);
  EXPECT_EQ(a.json(), b.json());
}

TEST(Fleet, ReplicatesGetIndependentSeeds) {
  GridOptions grid;
  grid.messages = 100;
  grid.replicates = 3;
  const auto jobs = fig2_rate_grid(grid);
  ASSERT_EQ(jobs.size(), 45u);
  const auto seed_of = [&](std::size_t i) {
    return std::get<SingleJob>(jobs[i].work).options.seed;
  };
  EXPECT_NE(seed_of(0), seed_of(1));
  EXPECT_NE(seed_of(1), seed_of(2));
  // Replicate 0 keeps the historical serial-sweep seed.
  EXPECT_EQ(seed_of(0), 42u + 10u);
}

TEST(Fleet, JobFailureIsCapturedNotThrown) {
  JobSpec job;
  job.scenario = "broken";
  SingleJob work;
  work.planning = exp::table3_model_paths();
  core::PathSet one_path;
  one_path.add(exp::table3_paths()[0]);
  work.truth = one_path;  // path-count mismatch: the simulation must throw
  work.traffic = exp::table4_traffic_rate(mbps(40));
  work.options.num_messages = 50;
  job.work = work;
  const auto records = run_job(job);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_NE(records[0].error.find("paths"), std::string::npos);
}

TEST(Fleet, ContentionDegradesQualityVsIsolation) {
  // Two sessions at 60 Mbps each on the shared 80+20 Mbps network
  // oversubscribe it; isolated, a single 60 Mbps session is perfect.
  GridOptions grid;
  grid.messages = 2500;
  grid.with_theory = false;
  Engine engine({2});
  const auto records = run_jobs(engine, contention_grid(2, mbps(60), grid));
  ASSERT_EQ(records.size(), 3u);  // k=1 -> 1 record, k=2 -> 2 records
  const RunRecord& isolated = records[0];
  ASSERT_TRUE(isolated.ok);
  EXPECT_EQ(isolated.sessions, 1);
  EXPECT_GT(isolated.measured_quality, 0.99);
  ASSERT_TRUE(records[1].ok && records[2].ok);
  const double worst = std::min(records[1].measured_quality,
                                records[2].measured_quality);
  EXPECT_LT(worst, isolated.measured_quality - 0.1)
      << "contending sessions should lose quality vs isolation";
  std::uint64_t shared_drops = 0;
  for (const LinkRecord& link : records[1].links) {
    shared_drops += link.queue_drops;
  }
  EXPECT_GT(shared_drops, 0u) << "oversubscription should fill shared queues";
}

TEST(MultiSession, FourContendersAreDeterministicAndShareLinks) {
  const auto planning = exp::table3_model_paths();
  const auto truth = exp::table3_paths();
  const auto run_once = [&] {
    std::vector<proto::SessionSpec> specs;
    for (int s = 0; s < 4; ++s) {
      proto::SessionConfig config;
      config.num_messages = 800;
      config.seed = mix_seed(7, static_cast<std::uint64_t>(s));
      specs.push_back(proto::SessionSpec{
          core::plan_max_quality(planning, exp::table4_traffic_rate(mbps(25))),
          config, 0.05 * s});
    }
    return proto::run_multi_sessions(proto::to_sim_paths(truth), specs, 99);
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.sessions.size(), 4u);
  std::uint64_t total_transmissions = 0;
  std::uint64_t total_acks_sent = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(a.sessions[s].trace.session_id, s);
    EXPECT_EQ(a.sessions[s].trace.generated, 800u);
    EXPECT_GT(a.sessions[s].measured_quality, 0.0);
    EXPECT_EQ(a.sessions[s].trace.on_time, b.sessions[s].trace.on_time);
    EXPECT_EQ(a.sessions[s].trace.transmissions,
              b.sessions[s].trace.transmissions);
    total_transmissions += a.sessions[s].trace.transmissions;
    total_acks_sent += a.sessions[s].trace.acks_sent;
  }
  EXPECT_EQ(a.events, b.events);
  // Every data transmission of every session entered one of the two shared
  // forward links, and every ack one of the reverse links.
  ASSERT_EQ(a.forward_links.size(), 2u);
  EXPECT_EQ(a.forward_links[0].offered + a.forward_links[1].offered,
            total_transmissions);
  EXPECT_EQ(a.reverse_links[0].offered + a.reverse_links[1].offered,
            total_acks_sent);
}

TEST(Fleet, ServerGridIsBitIdenticalAcrossThreadCounts) {
  // The 1-vs-8-thread bit-identity contract extended to the online
  // admission grid: every cell runs its own event loop with per-cell seed
  // streams, so the JSON must not depend on the worker count.
  ServerAxes axes;
  axes.arrivals_per_s = {20, 50};
  axes.policies = {"always-admit", "feasibility-lp"};
  axes.count = 25;
  axes.mean_messages = 80;
  GridOptions grid;
  Engine serial({1});
  Engine parallel({8});
  ResultSet a;
  a.records = run_jobs(serial, server_grid(axes, grid));
  ResultSet b;
  b.records = run_jobs(parallel, server_grid(axes, grid));
  ASSERT_EQ(a.records.size(), 4u);
  for (const RunRecord& record : a.records) {
    ASSERT_TRUE(record.ok) << record.error;
    EXPECT_EQ(record.arrivals, 25u);
    EXPECT_FALSE(record.policy.empty());
  }
  EXPECT_EQ(a.json(), b.json());
}

TEST(Fleet, ObsEnabledServerGridStaysBitIdenticalAcrossThreadCounts) {
  // The dmc.obs.v1 block contains only simulation-derived metrics, so the
  // thread-count bit-identity contract must survive with collection on —
  // and the simulation columns must not move at all vs collection off.
  ServerAxes axes;
  axes.arrivals_per_s = {20};
  axes.policies = {"feasibility-lp"};
  axes.count = 25;
  axes.mean_messages = 80;
  axes.collect_metrics = true;
  GridOptions grid;
  Engine serial({1});
  Engine parallel({8});
  ResultSet a;
  a.records = run_jobs(serial, server_grid(axes, grid));
  ResultSet b;
  b.records = run_jobs(parallel, server_grid(axes, grid));
  ASSERT_EQ(a.records.size(), 1u);
  ASSERT_TRUE(a.records[0].ok) << a.records[0].error;
  EXPECT_NE(a.records[0].obs_json.find("\"schema\":\"dmc.obs.v1\""),
            std::string::npos);
  EXPECT_EQ(a.json(), b.json());

  axes.collect_metrics = false;
  ResultSet off;
  off.records = run_jobs(serial, server_grid(axes, grid));
  ASSERT_EQ(off.records.size(), 1u);
  EXPECT_TRUE(off.records[0].obs_json.empty());
  EXPECT_EQ(off.records[0].measured_quality, a.records[0].measured_quality);
  EXPECT_EQ(off.records[0].events, a.records[0].events);
  EXPECT_EQ(off.records[0].admitted, a.records[0].admitted);
}

TEST(Fleet, ForensicsEnabledServerGridStaysBitIdenticalAcrossThreadCounts) {
  // The forensics block is a pure function of each cell's trace ring, so
  // the per-cause breakdown must serialize identically at any worker
  // count — and turning it on must not move the simulation columns.
  ServerAxes axes;
  axes.arrivals_per_s = {20};
  axes.policies = {"feasibility-lp"};
  axes.count = 25;
  axes.mean_messages = 80;
  axes.collect_forensics = true;
  GridOptions grid;
  Engine serial({1});
  Engine parallel({8});
  ResultSet a;
  a.records = run_jobs(serial, server_grid(axes, grid));
  ResultSet b;
  b.records = run_jobs(parallel, server_grid(axes, grid));
  ASSERT_EQ(a.records.size(), 1u);
  ASSERT_TRUE(a.records[0].ok) << a.records[0].error;
  EXPECT_TRUE(a.records[0].has_forensics);
  EXPECT_NE(a.json().find("\"forensics\":{\"misses\":"), std::string::npos);
  EXPECT_EQ(a.json(), b.json());
  std::ostringstream csv_a;
  std::ostringstream csv_b;
  a.write_csv(csv_a);
  b.write_csv(csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_NE(csv_a.str().find("cause_loss_burst"), std::string::npos);

  axes.collect_forensics = false;
  ResultSet off;
  off.records = run_jobs(serial, server_grid(axes, grid));
  ASSERT_EQ(off.records.size(), 1u);
  EXPECT_FALSE(off.records[0].has_forensics);
  EXPECT_EQ(off.records[0].measured_quality, a.records[0].measured_quality);
  EXPECT_EQ(off.records[0].events, a.records[0].events);
  EXPECT_EQ(off.records[0].admitted, a.records[0].admitted);
}

TEST(Fleet, ServerGridSharesWorkloadAcrossPolicies) {
  ServerAxes axes;
  axes.arrivals_per_s = {10};
  axes.policies = {"always-admit", "feasibility-lp", "threshold"};
  const auto jobs = server_grid(axes, {});
  ASSERT_EQ(jobs.size(), 3u);
  const auto& a = std::get<ServerJob>(jobs[0].work);
  const auto& b = std::get<ServerJob>(jobs[1].work);
  // Identical workload and network seed: the policy axis is the only
  // difference, so the curves are directly comparable.
  EXPECT_EQ(a.workload.seed, b.workload.seed);
  EXPECT_EQ(a.config.seed, b.config.seed);
  EXPECT_NE(a.config.policy, b.config.policy);
  EXPECT_THROW(server_grid(ServerAxes{.policies = {}}, {}),
               std::invalid_argument);
}

TEST(MultiSession, ValidatesSpecs) {
  const auto truth = exp::table3_paths();
  EXPECT_THROW(proto::run_multi_sessions(proto::to_sim_paths(truth), {}),
               std::invalid_argument);
  proto::SessionSpec spec{
      core::plan_max_quality(exp::table3_model_paths(),
                             exp::table4_traffic_rate(mbps(40))),
      proto::SessionConfig{}, -1.0};
  EXPECT_THROW(proto::run_multi_sessions(proto::to_sim_paths(truth), {spec}),
               std::invalid_argument);
}

TEST(Results, JsonIsSchemaVersionedAndEscaped) {
  ResultSet set;
  RunRecord record;
  record.scenario = "weird \"name\"";
  record.ok = false;
  record.error = "bad\nvalue\t\"quoted\"";
  record.params = {{"x", 1.5}};
  record.theory_quality = std::numeric_limits<double>::quiet_NaN();
  set.records.push_back(record);
  const std::string json = set.json();
  EXPECT_NE(json.find("\"schema\":\"dmc.fleet.result.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("weird \\\"name\\\""), std::string::npos);
  EXPECT_NE(json.find("bad\\nvalue\\t\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"theory_quality\":null"), std::string::npos);
  EXPECT_NE(json.find("\"x\":1.5"), std::string::npos);
}

TEST(Results, ServerFieldsRoundTripThroughJsonAndCsv) {
  // The server-grid fields: special characters in policy names must stay
  // escaped, and non-finite quality values must come out as JSON null /
  // "null" — never literal nan/inf, which would break parsers downstream.
  ResultSet set;
  RunRecord record;
  record.scenario = "server";
  record.policy = "weird \"lp\",v2\n";
  record.arrivals = 200;
  record.admitted = 150;
  record.rejected = 40;
  record.expired = 10;
  record.admission_rate = 0.75;
  record.deadline_miss_rate = std::numeric_limits<double>::quiet_NaN();
  record.goodput_bps = std::numeric_limits<double>::infinity();
  record.mean_queue_wait_s = 0.125;
  record.replans = 7;
  record.orphan_packets = 3;
  set.records.push_back(record);

  const std::string json = set.json();
  EXPECT_NE(json.find("\"server\":{\"policy\":\"weird \\\"lp\\\",v2\\n\""),
            std::string::npos);
  EXPECT_NE(json.find("\"arrivals\":200"), std::string::npos);
  EXPECT_NE(json.find("\"admission_rate\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_miss_rate\":null"), std::string::npos);
  EXPECT_NE(json.find("\"goodput_bps\":null"), std::string::npos);
  EXPECT_NE(json.find("\"replans\":7"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);

  std::ostringstream csv_out;
  set.write_csv(csv_out);
  const std::string csv = csv_out.str();
  EXPECT_NE(csv.find(",policy,arrivals,admitted,rejected,expired,"
                     "admission_rate,deadline_miss_rate,goodput_bps"),
            std::string::npos);
  // Commas/newlines in the policy name are flattened so the row count and
  // column count stay intact.
  EXPECT_NE(csv.find("weird \"lp\";v2;"), std::string::npos);
  EXPECT_NE(csv.find(",200,150,40,10,0.75,null,null"), std::string::npos);
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2u);  // header + 1 record

  // Classic records carry no policy, so their JSON has no server block and
  // stays byte-compatible with pre-server result files.
  ResultSet classic;
  classic.records.resize(1);
  classic.records[0].scenario = "fig2_rate";
  EXPECT_EQ(classic.json().find("\"server\""), std::string::npos);
}

TEST(Results, CsvHasHeaderAndOneRowPerRecord) {
  ResultSet set;
  set.records.resize(2);
  set.records[0].scenario = "a";
  set.records[1].scenario = "b";
  set.records[1].error = "commas, and\nnewlines";
  std::ostringstream out;
  set.write_csv(out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("scenario,params,seed", 0), 0u);
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);  // header + 2 records, despite the newline in error
}

TEST(Results, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(-0.25), "-0.25");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "null");
}

}  // namespace
}  // namespace dmc::fleet
