#include "protocol/fec.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/planner.h"
#include "core/units.h"
#include "experiments/scenarios.h"
#include "protocol/session.h"

namespace dmc::proto {
namespace {

core::PathSet single_path(double loss, double delay_ms = 100.0,
                          double bw_mbps = 100.0) {
  core::PathSet paths;
  paths.add({.name = "p",
             .bandwidth_bps = mbps(bw_mbps),
             .delay_s = ms(delay_ms),
             .loss_rate = loss});
  return paths;
}

TEST(FecAnalysis, NoParityEqualsRawDelivery) {
  const auto paths = single_path(0.1);
  const core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = ms(500)};
  const FecAnalysis a = analyze_fec(paths, traffic, {8, 0, true});
  EXPECT_NEAR(a.quality, 0.9, 1e-12);
  EXPECT_EQ(a.overhead, 0.0);
  EXPECT_NEAR(a.p_recovery_gain, 0.0, 1e-12);
}

TEST(FecAnalysis, SinglePathBinomialTail) {
  // (2,1) code on one path with loss q: packet delivered iff own arrives,
  // or own lost and both others arrive: p + (1-p)... with p = 1-q:
  // P = p + q * p^2.
  const double q = 0.2;
  const auto paths = single_path(q);
  const core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = ms(500)};
  const FecAnalysis a = analyze_fec(paths, traffic, {2, 1, true});
  const double p = 1.0 - q;
  EXPECT_NEAR(a.quality, p + q * p * p, 1e-12);
}

TEST(FecAnalysis, MoreParityMonotonicallyHelps) {
  const auto paths = single_path(0.15);
  const core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = ms(500)};
  double previous = -1.0;
  for (int r = 0; r <= 6; ++r) {
    const FecAnalysis a = analyze_fec(paths, traffic, {8, r, true});
    EXPECT_GE(a.quality + 1e-12, previous) << "r=" << r;
    previous = a.quality;
  }
  EXPECT_GT(previous, 0.99);  // 6 parity over 15% loss is plenty
}

TEST(FecAnalysis, LatePathsContributeNothingToRecovery) {
  core::PathSet paths;
  paths.add({.name = "late",
             .bandwidth_bps = mbps(100),
             .delay_s = ms(900),
             .loss_rate = 0.0});
  const core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = ms(500)};
  const FecAnalysis a = analyze_fec(paths, traffic, {4, 4, true});
  EXPECT_NEAR(a.quality, 0.0, 1e-12);
}

TEST(FecAnalysis, BandwidthAccountsForParityOverhead) {
  const auto paths = single_path(0.1, 100.0, /*bw_mbps=*/12.0);
  const core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = ms(500)};
  const FecAnalysis tight = analyze_fec(paths, traffic, {8, 2, true});
  // 10 Mbps * 10/8 = 12.5 > 12: infeasible.
  EXPECT_FALSE(tight.bandwidth_feasible);
  const FecAnalysis ok = analyze_fec(paths, traffic, {8, 1, true});
  EXPECT_TRUE(ok.bandwidth_feasible);
  EXPECT_NEAR(ok.send_rate_bps[0], mbps(10) * 9.0 / 8.0, 1.0);
}

TEST(FecAnalysis, StripingUsesAllPaths) {
  const auto paths = exp::table3_model_paths();
  const core::TrafficSpec traffic{.rate_bps = mbps(40), .lifetime_s = ms(800)};
  const FecAnalysis striped = analyze_fec(paths, traffic, {8, 2, true});
  EXPECT_GT(striped.send_rate_bps[0], 0.0);
  EXPECT_GT(striped.send_rate_bps[1], 0.0);
  const FecAnalysis single = analyze_fec(paths, traffic, {8, 2, false});
  EXPECT_EQ(single.send_rate_bps[1], 0.0);  // all on the fat path
}

TEST(FecAnalysis, RejectsBadShapes) {
  const auto paths = single_path(0.1);
  const core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = ms(500)};
  EXPECT_THROW((void)analyze_fec(paths, traffic, {0, 1, true}),
               std::invalid_argument);
  EXPECT_THROW((void)analyze_fec(paths, traffic, {60, 10, true}),
               std::invalid_argument);
}

TEST(FecPlanner, PicksZeroParityOnCleanPaths) {
  const auto paths = single_path(0.0);
  const core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = ms(500)};
  const FecConfig config = plan_fec(paths, traffic, 8, 6);
  EXPECT_EQ(config.parity_per_group, 0);
}

TEST(FecPlanner, SpendsParityOnLossyPaths) {
  const auto paths = single_path(0.2);
  const core::TrafficSpec traffic{.rate_bps = mbps(10), .lifetime_s = ms(500)};
  const FecConfig config = plan_fec(paths, traffic, 8, 6);
  EXPECT_GE(config.parity_per_group, 3);  // 20% loss needs real redundancy
}

TEST(FecSession, SimulationMatchesAnalysisUnderIidLoss) {
  const auto paths = single_path(0.15, 100.0, 100.0);
  const core::TrafficSpec traffic{.rate_bps = mbps(20), .lifetime_s = ms(500)};
  const FecConfig config{8, 3, true};
  const FecAnalysis analysis = analyze_fec(paths, traffic, config);

  FecSessionConfig session;
  session.num_messages = 40000;
  session.seed = 9;
  const auto result = run_fec_session(paths, traffic, config,
                                      to_sim_paths(paths), session);
  EXPECT_NEAR(result.measured_quality, analysis.quality, 0.01);
  EXPECT_GT(result.recovered_on_time, 0u);
}

TEST(FecSession, BurstLossHurtsFecMoreThanStationaryRate) {
  // Same stationary 15% loss, but in bursts of ~8 packets: several group
  // members die together and the (8,3) code collapses.
  const auto paths = single_path(0.15, 100.0, 100.0);
  const core::TrafficSpec traffic{.rate_bps = mbps(20), .lifetime_s = ms(500)};
  const FecConfig config{8, 3, true};

  auto iid_network = to_sim_paths(paths);
  auto burst_network = to_sim_paths(paths);
  sim::BurstLoss burst;
  burst.loss_bad = 1.0;
  burst.p_exit_bad = 1.0 / 8.0;
  burst.p_enter_bad = 0.15 * burst.p_exit_bad / 0.85;
  burst_network[0].forward.loss_rate = 0.0;
  burst_network[0].forward.burst_loss = burst;

  FecSessionConfig session;
  session.num_messages = 40000;
  session.seed = 10;
  const auto iid = run_fec_session(paths, traffic, config, iid_network,
                                   session);
  const auto bursty = run_fec_session(paths, traffic, config, burst_network,
                                      session);
  EXPECT_LT(bursty.measured_quality, iid.measured_quality - 0.03);
}

TEST(FecVsArq, RetransmissionWinsWhenDeadlineAllows) {
  // Section IX-B quantified: with room for a repair round trip, the LP's
  // closed-loop plan meets or beats the best FEC configuration.
  const auto paths = exp::table3_model_paths();
  const core::TrafficSpec traffic{.rate_bps = mbps(60), .lifetime_s = ms(800)};
  const core::Plan arq = core::plan_max_quality(paths, traffic);
  const FecConfig best_fec = plan_fec(paths, traffic, 8, 8);
  const FecAnalysis fec = analyze_fec(paths, traffic, best_fec);
  EXPECT_GE(arq.quality() + 1e-9, fec.quality);
}

TEST(FecVsArq, FecWinsWhenNoRepairLoopFits) {
  // Both paths arrive within 300 ms, but the repair loop (200 + 150 + d_j
  // >= 500 ms) cannot complete: ARQ degenerates to first attempts
  // (Q = (20 + 40*0.8)/60 = 86.7%) while parity still recovers losses.
  core::PathSet paths;
  paths.add({.name = "lossy",
             .bandwidth_bps = mbps(80),
             .delay_s = ms(200),
             .loss_rate = 0.2});
  paths.add({.name = "clean",
             .bandwidth_bps = mbps(20),
             .delay_s = ms(150),
             .loss_rate = 0.0});
  const core::TrafficSpec traffic{.rate_bps = mbps(60), .lifetime_s = ms(300)};
  const core::Plan arq = core::plan_max_quality(paths, traffic);
  EXPECT_NEAR(arq.quality(), (20.0 + 40.0 * 0.8) / 60.0, 1e-9);
  const FecConfig best_fec = plan_fec(paths, traffic, 8, 8);
  const FecAnalysis fec = analyze_fec(paths, traffic, best_fec);
  EXPECT_GT(fec.quality, arq.quality() + 0.03);
}

}  // namespace
}  // namespace dmc::proto
