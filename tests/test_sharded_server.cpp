// Sharded session-server tests: the fixed-partition determinism contract
// (bit-identical outcomes, metric snapshots and forensics at any worker
// count), deterministic admission under shared-link overload, the
// reconciliation barrier's effect on admission, sharding-knob validation,
// and the zero-arrival edge case.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/units.h"
#include "experiments/scenarios.h"
#include "obs/export.h"
#include "server/arrivals.h"
#include "server/server.h"
#include "server/sharded_server.h"

namespace dmc::server {
namespace {

ServerConfig table3_config() {
  ServerConfig config;
  config.planning_paths = exp::table3_model_paths();
  config.true_paths = exp::table3_paths();
  config.policy = "feasibility-lp";
  config.seed = 7;
  return config;
}

WorkloadOptions small_workload() {
  WorkloadOptions workload;
  workload.count = 48;
  workload.arrivals_per_s = 40.0;
  workload.mean_rate_bps = mbps(20);
  workload.mean_messages = 100;
  workload.seed = 3;
  return workload;
}

// Sustained overload of the 100 Mbps shared capacity: long sessions arriving
// fast enough that dozens overlap, so admission must turn requests away —
// and *which* ones depends on the reconciled remote load.
WorkloadOptions overload_workload() {
  WorkloadOptions workload;
  workload.count = 80;
  workload.arrivals_per_s = 150.0;
  workload.mean_rate_bps = mbps(30);
  workload.mean_messages = 600;
  workload.seed = 5;
  return workload;
}

// Every result-bearing field, rendered with exact (hexfloat) doubles so two
// runs compare bit-for-bit, not within a tolerance.
std::string fingerprint(const ServerOutcome& outcome) {
  std::ostringstream out;
  out << std::hexfloat;
  out << outcome.arrivals << ' ' << outcome.admitted << ' ' << outcome.rejected
      << ' ' << outcome.expired << ' ' << outcome.replans << ' '
      << outcome.events << ' ' << outcome.shards << ' ' << outcome.conserved
      << ' ' << outcome.admission_rate << ' ' << outcome.deadline_miss_rate
      << ' ' << outcome.goodput_bps << ' ' << outcome.mean_queue_wait_s << ' '
      << outcome.elapsed_s << ' ' << outcome.lp.cold_solves << ' '
      << outcome.lp.warm_solves << '\n';
  for (const SessionRecord& s : outcome.sessions) {
    out << s.request_id << ' ' << to_string(s.fate) << ' '
        << s.predicted_quality << ' ' << s.queue_wait_s << ' '
        << s.admitted_at_s << ' ' << s.completed_at_s << ' ' << s.replans
        << ' ' << s.measured_quality << ' ' << s.trace.generated << ' '
        << s.trace.transmissions << ' ' << s.trace.retransmissions << ' '
        << s.trace.on_time << ' ' << s.trace.late << '\n';
  }
  for (const auto* links : {&outcome.forward_links, &outcome.reverse_links}) {
    for (const sim::LinkStats& l : *links) {
      out << l.offered << ' ' << l.queue_drops << ' ' << l.loss_drops << ' '
          << l.delivered << ' ' << l.bytes_sent << ' ' << l.max_queue_depth
          << '\n';
    }
  }
  return out.str();
}

ServerOutcome run_sharded(ServerConfig config, const WorkloadOptions& workload,
                          std::size_t workers) {
  config.shards = workers;
  return run_sharded_server(config, workload);
}

TEST(ShardedServer, BitIdenticalAcrossWorkerCounts) {
  ServerConfig config = table3_config();
  config.collect_metrics = true;
  config.collect_forensics = true;
  const WorkloadOptions workload = small_workload();

  const ServerOutcome one = run_sharded(config, workload, 1);
  const ServerOutcome two = run_sharded(config, workload, 2);
  const ServerOutcome eight = run_sharded(config, workload, 8);

  ASSERT_EQ(one.arrivals, workload.count);
  EXPECT_GT(one.admitted, 0u);
  EXPECT_EQ(one.shards, config.shard_slices);

  // Outcome, metric snapshot and forensics report are all byte-equal: the
  // worker count schedules the fixed slice partition, nothing more.
  const std::string base = fingerprint(one);
  EXPECT_EQ(base, fingerprint(two));
  EXPECT_EQ(base, fingerprint(eight));
  const std::string obs_json = one.obs.to_json();
  EXPECT_FALSE(one.obs.empty());
  EXPECT_EQ(obs_json, two.obs.to_json());
  EXPECT_EQ(obs_json, eight.obs.to_json());
  ASSERT_TRUE(one.forensics.has_value());
  ASSERT_TRUE(eight.forensics.has_value());
  EXPECT_EQ(one.forensics->to_json(), two.forensics->to_json());
  EXPECT_EQ(one.forensics->to_json(), eight.forensics->to_json());

  // The merged chrome trace is part of the contract too.
  ASSERT_NE(one.trace_data, nullptr);
  std::ostringstream trace_one, trace_eight;
  obs::write_chrome_trace(trace_one, *one.trace_data);
  obs::write_chrome_trace(trace_eight, *eight.trace_data);
  EXPECT_EQ(trace_one.str(), trace_eight.str());
}

TEST(ShardedServer, SessionsStayInRequestOrder) {
  const ServerConfig config = table3_config();
  const WorkloadOptions workload = small_workload();
  const auto requests = poisson_arrivals(workload);
  const ServerOutcome outcome = ShardedSessionServer(config).run(requests);
  ASSERT_EQ(outcome.sessions.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(outcome.sessions[i].request_id, requests[i].id);
    EXPECT_EQ(outcome.sessions[i].arrival_s, requests[i].arrival_s);
  }
  EXPECT_EQ(outcome.admitted + outcome.rejected + outcome.expired,
            outcome.arrivals);
}

TEST(ShardedServer, OverloadAdmissionIsDeterministicAcrossWorkerCounts) {
  const ServerConfig config = table3_config();
  const WorkloadOptions workload = overload_workload();
  const ServerOutcome one = run_sharded(config, workload, 1);
  const ServerOutcome four = run_sharded(config, workload, 4);

  // Overload forces turn-aways; the admitted *set* (not just the count)
  // matches at every worker count.
  EXPECT_GT(one.rejected + one.expired, 0u);
  std::set<std::uint64_t> admitted_one, admitted_four;
  for (const SessionRecord& s : one.sessions) {
    if (s.fate == RequestFate::admitted ||
        s.fate == RequestFate::queued_admitted) {
      admitted_one.insert(s.request_id);
    }
  }
  for (const SessionRecord& s : four.sessions) {
    if (s.fate == RequestFate::admitted ||
        s.fate == RequestFate::queued_admitted) {
      admitted_four.insert(s.request_id);
    }
  }
  EXPECT_EQ(admitted_one, admitted_four);
  EXPECT_EQ(fingerprint(one), fingerprint(four));
}

TEST(ShardedServer, ReconciliationShapesAdmissionUnderOverload) {
  ServerConfig config = table3_config();
  const WorkloadOptions workload = overload_workload();

  auto fates = [](const ServerOutcome& outcome) {
    std::pair<std::uint64_t, std::uint64_t> counts{0, 0};  // direct, queued
    for (const SessionRecord& s : outcome.sessions) {
      if (s.fate == RequestFate::admitted) ++counts.first;
      if (s.fate == RequestFate::queued_admitted) ++counts.second;
    }
    return counts;
  };

  // A barrier interval far past the drain time means no slice ever sees the
  // others' load: every slice admits at arrival as if it owned the network
  // alone, and queued requests are only retried on local departures.
  config.reconcile_interval_s = 1e6;
  const auto [blind_direct, blind_queued] =
      fates(run_sharded_server(config, workload));

  // Tight reconciliation folds the other slices' footprints into admission
  // within 50 ms of simulated time. Both barrier mechanisms must show:
  // arrival-time admissions drop (remote load makes the LP infeasible) and
  // queued-then-admitted rescues rise (barrier retries fire when remote
  // capacity frees, even with no local departure).
  config.reconcile_interval_s = 0.05;
  const auto [tight_direct, tight_queued] =
      fates(run_sharded_server(config, workload));

  EXPECT_LT(tight_direct, blind_direct);
  EXPECT_GT(tight_queued, blind_queued);
  EXPECT_GT(tight_direct, 0u);
}

TEST(ShardedServer, ChecksShardingConfig) {
  const WorkloadOptions workload = small_workload();
  const auto requests = poisson_arrivals(workload);

  ServerConfig config = table3_config();
  config.shards = 0;
  EXPECT_THROW(ShardedSessionServer{config}, std::invalid_argument);
  EXPECT_THROW(SessionServer{config}, std::invalid_argument);

  config = table3_config();
  config.shard_slices = 0;
  EXPECT_THROW(ShardedSessionServer{config}, std::invalid_argument);

  config = table3_config();
  config.reconcile_interval_s = 0.0;
  EXPECT_THROW(ShardedSessionServer{config}, std::invalid_argument);
  config.reconcile_interval_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(ShardedSessionServer{config}, std::invalid_argument);
  config.reconcile_interval_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(ShardedSessionServer{config}, std::invalid_argument);

  config = table3_config();
  config.queue_capacity = 0;
  EXPECT_THROW(ShardedSessionServer{config}, std::invalid_argument);

  // A trace ring smaller than the slice count would leave some slices with
  // zero capacity; check() rejects the combination whenever tracing is on.
  config = table3_config();
  config.collect_trace = true;
  config.trace_capacity = config.shard_slices - 1;
  EXPECT_THROW(ShardedSessionServer{config}, std::invalid_argument);
  config.collect_trace = false;
  config.collect_forensics = true;  // implies a trace ring
  EXPECT_THROW(ShardedSessionServer{config}, std::invalid_argument);
  config.trace_capacity = config.shard_slices;
  EXPECT_NO_THROW(ShardedSessionServer{config});
}

TEST(ShardedServer, ZeroArrivalRunIsDefined) {
  ServerConfig config = table3_config();
  config.collect_metrics = true;
  config.collect_forensics = true;
  const ServerOutcome outcome = ShardedSessionServer(config).run({});
  EXPECT_EQ(outcome.arrivals, 0u);
  EXPECT_EQ(outcome.admitted, 0u);
  EXPECT_TRUE(outcome.sessions.empty());
  EXPECT_TRUE(outcome.conserved);
  EXPECT_EQ(outcome.shards, config.shard_slices);
  // Every rate is exactly 0.0 — never NaN/Inf from a zero denominator.
  EXPECT_EQ(outcome.admission_rate, 0.0);
  EXPECT_EQ(outcome.deadline_miss_rate, 0.0);
  EXPECT_EQ(outcome.goodput_bps, 0.0);
  EXPECT_EQ(outcome.mean_queue_wait_s, 0.0);
  EXPECT_TRUE(std::isfinite(outcome.elapsed_s));
}

TEST(ShardedServer, MergedSnapshotCarriesPerShardCounters) {
  ServerConfig config = table3_config();
  config.collect_metrics = true;
  config.shard_slices = 4;
  const ServerOutcome outcome =
      run_sharded_server(config, small_workload());
  const std::string json = outcome.obs.to_json();
  // One arrivals/admitted/events triple per logical shard, merged after the
  // summed global families.
  for (const char* name :
       {"dmc_shard0_arrivals_total", "dmc_shard3_arrivals_total",
        "dmc_shard0_admitted_total", "dmc_shard3_events_total"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  // The per-shard arrivals sum back to the global counter.
  std::uint64_t global = 0, shard_sum = 0;
  for (const auto& [name, value] : outcome.obs.counters) {
    if (name == "dmc_server_arrivals_total") global = value;
    if (name.rfind("dmc_shard", 0) == 0 &&
        name.find("_arrivals_total") != std::string::npos) {
      shard_sum += value;
    }
  }
  EXPECT_EQ(global, outcome.arrivals);
  EXPECT_EQ(shard_sum, outcome.arrivals);
}

}  // namespace
}  // namespace dmc::server
