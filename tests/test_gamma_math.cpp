#include "stats/gamma_math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace dmc::stats {
namespace {

TEST(GammaMath, KnownValuesShapeOne) {
  // For a = 1 the gamma CDF is 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(GammaMath, KnownValuesShapeTwo) {
  // For a = 2: P(2, x) = 1 - e^{-x}(1 + x).
  for (double x : {0.5, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(regularized_gamma_p(2.0, x),
                1.0 - std::exp(-x) * (1.0 + x), 1e-12);
  }
}

TEST(GammaMath, HalfShapeMatchesErf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 2.25, 4.0}) {
    EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12);
  }
}

TEST(GammaMath, BoundaryValues) {
  EXPECT_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
  EXPECT_EQ(regularized_gamma_q(3.0, 0.0), 1.0);
  EXPECT_EQ(regularized_gamma_p(3.0, std::numeric_limits<double>::infinity()),
            1.0);
}

TEST(GammaMath, ComplementsSumToOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 25.0, 80.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaMath, MonotoneInX) {
  const double a = 4.0;
  double prev = -1.0;
  for (double x = 0.0; x <= 20.0; x += 0.25) {
    const double p = regularized_gamma_p(a, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(GammaMath, InverseRoundTrips) {
  for (double a : {0.5, 1.0, 3.0, 10.0, 40.0}) {
    for (double p : {0.001, 0.1, 0.5, 0.9, 0.999}) {
      const double x = inverse_regularized_gamma_p(a, p);
      EXPECT_NEAR(regularized_gamma_p(a, x), p, 1e-9)
          << "a=" << a << " p=" << p;
    }
  }
}

TEST(GammaMath, InverseEdgeCases) {
  EXPECT_EQ(inverse_regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_THROW((void)inverse_regularized_gamma_p(2.0, 1.0), std::domain_error);
  EXPECT_THROW((void)inverse_regularized_gamma_p(2.0, -0.1),
               std::domain_error);
}

TEST(GammaMath, DomainErrors) {
  EXPECT_THROW((void)regularized_gamma_p(0.0, 1.0), std::domain_error);
  EXPECT_THROW((void)regularized_gamma_p(-1.0, 1.0), std::domain_error);
  EXPECT_THROW((void)regularized_gamma_p(1.0, -1.0), std::domain_error);
}

TEST(GammaMath, PdfIntegratesToCdf) {
  // Trapezoid-integrate the density and compare against the CDF.
  const double a = 7.0;
  const double scale = 2.0;
  const double upper = 40.0;
  const int steps = 40000;
  double integral = 0.0;
  double prev = gamma_pdf(a, scale, 0.0);
  for (int i = 1; i <= steps; ++i) {
    const double x = upper * i / steps;
    const double cur = gamma_pdf(a, scale, x);
    integral += 0.5 * (prev + cur) * (upper / steps);
    prev = cur;
  }
  EXPECT_NEAR(integral, regularized_gamma_p(a, upper / scale), 1e-6);
}

TEST(GammaMath, PdfEdgeBehaviour) {
  EXPECT_EQ(gamma_pdf(2.0, 1.0, -1.0), 0.0);
  EXPECT_EQ(gamma_pdf(2.0, 1.0, 0.0), 0.0);           // shape > 1
  EXPECT_NEAR(gamma_pdf(1.0, 2.0, 0.0), 0.5, 1e-12);  // exponential at 0
  EXPECT_THROW((void)gamma_pdf(0.0, 1.0, 1.0), std::domain_error);
  EXPECT_THROW((void)gamma_pdf(1.0, 0.0, 1.0), std::domain_error);
}

// ------------------------------------------------------- batched kernels

TEST(GammaBatch, MatchesScalarAcrossShapesAndArguments) {
  for (double a : {0.25, 0.5, 1.0, 2.5, 10.0, 100.0}) {
    std::vector<double> x;
    for (double v = 0.0; v <= 4.0 * a + 20.0; v += (a + 1.0) / 7.0) {
      x.push_back(v);
    }
    x.push_back(std::numeric_limits<double>::infinity());
    std::vector<double> batched(x.size());
    regularized_gamma_p_batch(a, x.data(), batched.data(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(batched[i], regularized_gamma_p(a, x[i]))
          << "a=" << a << " x=" << x[i];
    }
  }
}

TEST(GammaBatch, DomainAndBufferErrors) {
  double x[] = {0.5, 1.0};
  double out[2];
  EXPECT_THROW(regularized_gamma_p_batch(0.0, x, out, 2), std::domain_error);
  EXPECT_THROW(regularized_gamma_p_batch(-1.0, x, out, 2),
               std::domain_error);
  double bad[] = {0.5, -1.0};
  EXPECT_THROW(regularized_gamma_p_batch(2.0, bad, out, 2),
               std::domain_error);
  EXPECT_THROW(regularized_gamma_p_batch(2.0, nullptr, out, 2),
               std::invalid_argument);
  EXPECT_NO_THROW(regularized_gamma_p_batch(2.0, nullptr, nullptr, 0));
}

TEST(GammaCdfGrid, MatchesScalarShiftedGammaCdf) {
  // Grid straddling the shift: points at or below it are exactly 0, points
  // above match the scalar evaluation (same series / continued fraction,
  // same prefactor expression; the tolerance only allows for instruction
  // scheduling differences such as FMA contraction).
  const double shift = 0.4, shape = 10.0, scale = 0.004;
  const double t0 = 0.39, dt = 0.0005;
  const std::size_t n = 400;
  std::vector<double> grid(n);
  gamma_cdf_grid(shape, scale, shift, t0, dt, n, grid.data());
  for (std::size_t k = 0; k < n; ++k) {
    const double t = t0 + static_cast<double>(k) * dt;
    if (t <= shift) {
      EXPECT_EQ(grid[k], 0.0);
    } else {
      EXPECT_NEAR(grid[k], regularized_gamma_p(shape, (t - shift) / scale),
                  1e-14)
          << "k=" << k;
    }
  }
}

TEST(GammaCdfGrid, SmallShapesAndChunkBoundaries) {
  // Shapes below 1 have a singular density at the origin; the grid kernel
  // must still match the scalar values. 1000 points also crosses several
  // internal chunk boundaries.
  for (double shape : {0.25, 0.7, 1.0, 3.0}) {
    const std::size_t n = 1000;
    std::vector<double> grid(n);
    gamma_cdf_grid(shape, 1.0, 0.0, -0.5, 0.01, n, grid.data());
    for (std::size_t k = 0; k < n; k += 17) {
      const double t = -0.5 + static_cast<double>(k) * 0.01;
      const double expected =
          t <= 0.0 ? 0.0 : regularized_gamma_p(shape, t);
      EXPECT_NEAR(grid[k], expected, 1e-14) << "shape=" << shape
                                            << " k=" << k;
    }
  }
}

TEST(GammaCdfGrid, InfiniteGridPointsFollowTheScalarContract) {
  // Like the scalar cdf, a grid point at +inf evaluates to exactly 1 (the
  // naive prefactor would be NaN there).
  const double inf = std::numeric_limits<double>::infinity();
  double out[3] = {-1.0, -1.0, -1.0};
  gamma_cdf_grid(10.0, 1.0, 0.0, inf, 1.0, 3, out);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 1.0);
  EXPECT_EQ(out[2], 1.0);
}

TEST(GammaCdfGrid, DomainErrors) {
  double out[4];
  EXPECT_THROW(gamma_cdf_grid(0.0, 1.0, 0.0, 0.0, 0.1, 4, out),
               std::domain_error);
  EXPECT_THROW(gamma_cdf_grid(1.0, 0.0, 0.0, 0.0, 0.1, 4, out),
               std::domain_error);
  EXPECT_THROW(gamma_cdf_grid(1.0, 1.0, 0.0, 0.0, 0.0, 4, out),
               std::domain_error);
  EXPECT_THROW(gamma_cdf_grid(1.0, 1.0, 0.0, 0.0, -0.1, 4, out),
               std::domain_error);
  EXPECT_THROW(gamma_cdf_grid(1.0, 1.0, 0.0, 0.0, 0.1, 4, nullptr),
               std::invalid_argument);
}

// Property sweep: P(a, .) is a valid CDF for a wide range of shapes.
class GammaShapeSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaShapeSweep, BehavesLikeACdf) {
  const double a = GetParam();
  EXPECT_EQ(regularized_gamma_p(a, 0.0), 0.0);
  EXPECT_GT(regularized_gamma_p(a, a * 100.0 + 100.0), 0.999);
  double prev = 0.0;
  for (double x = 0.0; x < 5.0 * a + 10.0; x += (a + 1.0) / 16.0) {
    const double p = regularized_gamma_p(a, x);
    EXPECT_GE(p, prev - 1e-14);
    EXPECT_LE(p, 1.0 + 1e-14);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaShapeSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 5.0, 10.0,
                                           25.0, 100.0));

}  // namespace
}  // namespace dmc::stats
