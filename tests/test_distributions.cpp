#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "stats/rng.h"

namespace dmc::stats {
namespace {

TEST(DeterministicDelay, StepCdf) {
  const DeterministicDelay d(0.5);
  EXPECT_EQ(d.cdf(0.49), 0.0);
  EXPECT_EQ(d.cdf(0.5), 1.0);
  EXPECT_EQ(d.cdf(1.0), 1.0);
  EXPECT_EQ(d.mean(), 0.5);
  EXPECT_EQ(d.variance(), 0.0);
  EXPECT_EQ(d.quantile(0.0), 0.5);
  EXPECT_EQ(d.quantile(0.999), 0.5);
  Rng rng(1);
  EXPECT_EQ(d.sample(rng), 0.5);
}

TEST(DeterministicDelay, InfiniteValueModelsBlackhole) {
  const DeterministicDelay d(std::numeric_limits<double>::infinity());
  EXPECT_EQ(d.cdf(1e12), 0.0);
  EXPECT_TRUE(std::isinf(d.mean()));
}

TEST(DeterministicDelay, RejectsNegative) {
  EXPECT_THROW(DeterministicDelay(-1.0), std::invalid_argument);
}

TEST(ShiftedGammaDelay, MomentsMatchPaperConvention) {
  // Table V path 1: eta = 400 ms, alpha = 10, beta = 4 ms ->
  // E = 440 ms, Var = 160 ms^2 (beta is a *scale* parameter; see the
  // header note on the paper's Eq. 31 inconsistency).
  const ShiftedGammaDelay d(0.400, 10.0, 0.004);
  EXPECT_NEAR(d.mean(), 0.440, 1e-12);
  EXPECT_NEAR(d.variance(), 160e-6, 1e-12);
  EXPECT_EQ(d.min_support(), 0.400);
}

TEST(ShiftedGammaDelay, CdfQuantileRoundTrip) {
  const ShiftedGammaDelay d(0.1, 5.0, 0.002);
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-9);
  }
}

TEST(ShiftedGammaDelay, SampleMomentsConverge) {
  const ShiftedGammaDelay d(0.4, 10.0, 0.004);
  Rng rng(7);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, d.min_support());
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, d.mean(), 3e-4);
  EXPECT_NEAR(var, d.variance(), 2e-5);
}

TEST(ShiftedGammaDelay, RejectsBadParameters) {
  EXPECT_THROW(ShiftedGammaDelay(-0.1, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ShiftedGammaDelay(0.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ShiftedGammaDelay(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(UniformDelay, BasicProperties) {
  const UniformDelay d(0.1, 0.3);
  EXPECT_EQ(d.cdf(0.1), 0.0);
  EXPECT_NEAR(d.cdf(0.2), 0.5, 1e-12);
  EXPECT_EQ(d.cdf(0.3), 1.0);
  EXPECT_NEAR(d.mean(), 0.2, 1e-12);
  EXPECT_NEAR(d.quantile(0.25), 0.15, 1e-12);
  EXPECT_THROW(UniformDelay(0.3, 0.1), std::invalid_argument);
}

TEST(EmpiricalDelay, StepFunctionSemantics) {
  const EmpiricalDelay d({0.3, 0.1, 0.2, 0.2});  // constructor sorts
  EXPECT_EQ(d.cdf(0.05), 0.0);
  EXPECT_NEAR(d.cdf(0.1), 0.25, 1e-12);
  EXPECT_NEAR(d.cdf(0.2), 0.75, 1e-12);
  EXPECT_EQ(d.cdf(0.3), 1.0);
  EXPECT_NEAR(d.mean(), 0.2, 1e-12);
  EXPECT_EQ(d.min_support(), 0.1);
  EXPECT_EQ(d.size(), 4u);
}

TEST(EmpiricalDelay, BootstrapSamplesComeFromData) {
  const EmpiricalDelay d({0.1, 0.2, 0.3});
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = d.sample(rng);
    EXPECT_TRUE(v == 0.1 || v == 0.2 || v == 0.3);
  }
}

TEST(EmpiricalDelay, RejectsEmptyAndNegative) {
  EXPECT_THROW(EmpiricalDelay({}), std::invalid_argument);
  EXPECT_THROW(EmpiricalDelay({-0.1, 0.2}), std::invalid_argument);
}

TEST(ShiftedDelay, ShiftsEverything) {
  const auto base = make_uniform(0.0, 0.1);
  const ShiftedDelay d(base, 0.5);
  EXPECT_NEAR(d.mean(), 0.55, 1e-12);
  EXPECT_EQ(d.min_support(), 0.5);
  EXPECT_NEAR(d.cdf(0.55), 0.5, 1e-12);
  EXPECT_NEAR(d.quantile(0.5), 0.55, 1e-12);
}

TEST(ShiftedDelay, RejectsNegativeSupport) {
  EXPECT_THROW(ShiftedDelay(make_uniform(0.0, 0.1), -0.5),
               std::invalid_argument);
  EXPECT_THROW(ShiftedDelay(nullptr, 0.1), std::invalid_argument);
}

// ----------------------------------------------------- interface property

struct DistributionCase {
  const char* name;
  DelayDistributionPtr dist;
};

class DistributionContract
    : public ::testing::TestWithParam<DistributionCase> {};

TEST_P(DistributionContract, CdfIsMonotoneWithCorrectLimits) {
  const auto& d = *GetParam().dist;
  const double lo = d.min_support();
  const double hi = d.quantile(0.9999);
  EXPECT_LE(d.cdf(lo - 1e-6), 1e-9);
  double prev = 0.0;
  for (int i = 0; i <= 200; ++i) {
    const double x = lo + (hi - lo) * i / 200.0;
    const double c = d.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_GE(d.cdf(hi + (hi - lo) + 1.0), 0.9999 - 1e-9);
}

TEST_P(DistributionContract, QuantileInvertsCdf) {
  const auto& d = *GetParam().dist;
  for (double p : {0.05, 0.3, 0.5, 0.7, 0.95}) {
    const double x = d.quantile(p);
    // Right-continuity: cdf(quantile(p)) >= p, and just below it is < p +
    // an atom's width for step functions.
    EXPECT_GE(d.cdf(x) + 1e-9, p);
  }
}

TEST_P(DistributionContract, SampleMeanApproachesMean) {
  const auto& d = *GetParam().dist;
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  const double tolerance =
      5.0 * std::sqrt(std::max(d.variance(), 1e-12) / n) + 1e-9;
  EXPECT_NEAR(sum / n, d.mean(), tolerance) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DistributionContract,
    ::testing::Values(
        DistributionCase{"deterministic", make_deterministic(0.25)},
        DistributionCase{"gamma", make_shifted_gamma(0.1, 10.0, 0.004)},
        DistributionCase{"gamma_small_shape",
                         make_shifted_gamma(0.0, 0.7, 0.01)},
        DistributionCase{"uniform", make_uniform(0.05, 0.15)},
        DistributionCase{"empirical",
                         make_empirical({0.1, 0.12, 0.15, 0.2, 0.25, 0.3})},
        DistributionCase{"shifted",
                         make_shifted(make_uniform(0.0, 0.1), 0.4)}),
    [](const ::testing::TestParamInfo<DistributionCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace dmc::stats
